#!/usr/bin/env python
"""Energy vs makespan: the Pareto front of one kernel, per platform.

Sweeps every 10%-grid partitioning of the suite's `black_scholes`
benchmark on both simulated machines, measuring simulated seconds AND
simulated joules (idle power over the makespan included), then prints
the per-objective winners and the (makespan, energy) Pareto front.

The point the energy subsystem exists to make: the fastest split is
rarely the most frugal one — pulling work onto the power-hungry CPU to
shave microseconds costs joules, and the exploitable gap between the
two objectives grows with problem size.
"""

from repro import MC1, MC2, Runner, SweepEngine, pareto_front
from repro.benchsuite import get_benchmark
from repro.partitioning import partition_space


def main() -> None:
    bench = get_benchmark("black_scholes")
    size = bench.problem_sizes()[-1]
    instance = bench.make_instance(size, seed=0)

    for platform in (MC1, MC2):
        engine = SweepEngine(Runner(platform))
        space = partition_space(platform.num_devices, 10)
        timings, energies = engine.sweep_with_energy(bench.request(instance), space)

        t_best = min(timings, key=lambda k: (timings[k], k))
        e_best = min(energies, key=lambda k: (energies[k], k))
        front = pareto_front(timings, energies)

        print(f"\n{bench.name} @ size {size} on {platform.name}")
        print(
            f"  makespan-optimal: {t_best:>10}  "
            f"{timings[t_best] * 1e3:8.3f} ms  {energies[t_best]:7.3f} J"
        )
        print(
            f"  energy-optimal:   {e_best:>10}  "
            f"{timings[e_best] * 1e3:8.3f} ms  {energies[e_best]:7.3f} J"
        )
        saving = 1.0 - energies[e_best] / energies[t_best]
        slowdown = timings[e_best] / timings[t_best]
        print(f"  trade-off: {saving:.1%} energy saved at {slowdown:.2f}x makespan")
        print(f"  Pareto front ({len(front)} points, fast -> frugal):")
        for label in front:
            print(
                f"    {label:>10}  {timings[label] * 1e3:8.3f} ms  "
                f"{energies[label]:7.3f} J"
            )


if __name__ == "__main__":
    main()
