#!/usr/bin/env python
"""The paper's full workflow: offline training, then deployment.

Trains the partitioning model on a machine using a subset of the suite
(leaving out `mat_mul`, the program we will deploy), then predicts
partitionings for mat_mul at several problem sizes — demonstrating that
the model generalizes to unseen programs and adapts the split to the
problem size.
"""

from repro import MC2, TrainingConfig, cpu_only, gpu_only, train_system
from repro.benchsuite import get_benchmark

TRAINING_PROGRAMS = (
    "vec_add",
    "saxpy",
    "triad",
    "black_scholes",
    "nbody",
    "hotspot",
    "stencil2d",
    "kmeans",
    "spmv",
    "backprop",
)


def main() -> None:
    benchmarks = tuple(get_benchmark(n) for n in TRAINING_PROGRAMS)
    config = TrainingConfig(repetitions=1, max_sizes=5)

    print(f"training on {len(benchmarks)} programs x 5 sizes on {MC2.name} ...")
    system = train_system(MC2, benchmarks, model_kind="mlp", config=config)
    print(f"database: {len(system.database)} records "
          f"({len(system.database)} x 66 partitionings measured)\n")

    bench = get_benchmark("mat_mul")  # never seen during training
    print(f"deploying on unseen program {bench.name!r}:")
    print(f"{'size':>6} {'predicted':>12} {'t_pred':>10} {'t_cpu':>10} {'t_gpu':>10}")
    for size in bench.problem_sizes()[:5]:
        instance = bench.make_instance(size, seed=1)
        request = bench.request(instance)
        p = system.predict(bench, instance)
        t_pred = system.runner.time_of(request, p)
        t_cpu = system.runner.time_of(request, cpu_only(MC2))
        t_gpu = system.runner.time_of(request, gpu_only(MC2))
        print(
            f"{size:>6} {p.label:>12} {t_pred * 1e3:>8.2f}ms "
            f"{t_cpu * 1e3:>8.2f}ms {t_gpu * 1e3:>8.2f}ms"
        )
    print(
        "\nNote how the predicted partitioning shifts from CPU-heavy at "
        "small sizes toward the GPUs as the problem grows — the paper's "
        "problem-size sensitivity."
    )


if __name__ == "__main__":
    main()
