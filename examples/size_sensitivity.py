#!/usr/bin/env python
"""Reproduce the paper's core observation on two programs.

"It is important to understand that the best-performing task
partitioning changes with different applications, different (input)
problem sizes, and different hardware configurations."  (§1)

This example sweeps the full 66-point partitioning space for
`black_scholes` and `triad` on both machines and prints how the oracle
partitioning moves along the problem-size ladder.
"""

from repro import MC1, MC2, Runner, oracle_search
from repro.benchsuite import get_benchmark
from repro.util.tables import format_table


def main() -> None:
    rows = []
    for machine in (MC1, MC2):
        runner = Runner(machine)
        for name in ("black_scholes", "triad"):
            bench = get_benchmark(name)
            for size in bench.problem_sizes():
                instance = bench.make_instance(size, seed=0)
                request = bench.request(instance)
                best, t_best = oracle_search(lambda p: runner.time_of(request, p))
                rows.append(
                    (machine.name, name, size, best.label, t_best * 1e3)
                )
    print(
        format_table(
            ["machine", "program", "size", "oracle (CPU/GPU0/GPU1)", "t_best (ms)"],
            rows,
            title="Optimal task partitioning vs problem size and machine",
        )
    )
    print(
        "\nReading the table: the same program wants a different split at "
        "different sizes, and a different split again on the other machine "
        "— no static strategy can win everywhere."
    )


if __name__ == "__main__":
    main()
