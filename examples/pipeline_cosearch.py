#!/usr/bin/env python
"""Task-graph co-search: schedule a 3-stage pipeline, beat greedy.

Builds a stencil2d -> reduction -> mat_mul chain whose edges carry the
producer's output tensors over PCIe, then partitions it two ways:

* greedy — each task gets its best *standalone* grid point, exactly
  what chaining today's single-kernel predictions would do.  It is
  transfer-blind: adjacent stages individually fastest on different
  devices pay the full tensor handoff between them.
* co-search — `GraphPlanner` coordinate-descends over the *composed*
  makespan, re-deciding one task at a time along the critical path, so
  placement and partitioning are decided together.

The co-searched plan is never worse than greedy (the search starts
there and keeps only strict improvements) and wins outright whenever
transfers matter — the scheduling-partitioning coupling this example
exists to show.
"""

from repro import MC2, Runner, SweepEngine
from repro.energy import EnergyMeter
from repro.graphs import GraphPlanner, greedy_plan, pipeline_chain


def main() -> None:
    graph = pipeline_chain(
        [("stencil2d", 256), ("reduction", 65536), ("mat_mul", 160)],
        scale_bytes=64.0,
    )
    runner = Runner(MC2)
    engine = SweepEngine(runner)
    requests = engine.graph_requests(graph)
    idle_w = EnergyMeter(runner.devices).platform_idle_w()
    planner = GraphPlanner(engine.measure, runner.devices, idle_w)

    greedy, _ = greedy_plan(graph, requests, engine.measure, planner.space)
    greedy_run = engine.measure_graph(graph, greedy)
    plan, run = planner.search(graph, requests)

    print(f"{graph.name} on {MC2.name} ({len(graph.nodes)} stages)")
    print("\n  task            greedy      co-search   start -> finish")
    for sched in run.schedule:
        node = graph.node(sched.node)
        print(
            f"  {node.program:>9}@{node.size:<6} "
            f"{greedy.partitioning_for(sched.node).label:>9}  "
            f"{sched.partitioning.label:>9}   "
            f"{sched.start_s * 1e3:7.3f} -> {sched.finish_s * 1e3:7.3f} ms"
        )
    print(f"\n  critical path: {' > '.join(run.critical_path)}")
    print(
        f"  greedy makespan:      {greedy_run.median_s * 1e3:8.3f} ms "
        f"({greedy_run.transfer_s * 1e3:.3f} ms in transfers)"
    )
    print(
        f"  co-searched makespan: {run.median_s * 1e3:8.3f} ms "
        f"({run.transfer_s * 1e3:.3f} ms in transfers)"
    )
    print(f"  speedup over greedy:  {greedy_run.median_s / run.median_s:8.2f}x")
    stats = planner.stats
    print(
        f"  search effort: {stats.evaluated} compositions "
        f"({stats.pruned} pruned, {stats.passes} passes)"
    )


if __name__ == "__main__":
    main()
