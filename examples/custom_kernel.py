#!/usr/bin/env python
"""Bring your own kernel: the framework on a user-defined program.

Writes a new OpenCL-style kernel (a polynomial evaluator) in the IR
DSL, compiles it to a multi-device program, extracts its features, and
runs it partitioned across the simulated devices — everything a user
of the original Insieme-based system would get from dropping a new
.cl file into the pipeline.
"""

import numpy as np

from repro import MC1, Partitioning, Runner
from repro.compiler import compile_kernel
from repro.inspire import FLOAT, INT, Intent, KernelBuilder
from repro.runtime import ExecutionRequest


def build_horner_kernel():
    """y[i] = c3*x^3 + c2*x^2 + c1*x + c0, evaluated with Horner's rule."""
    b = KernelBuilder("horner", dim=1)
    x = b.buffer("x", FLOAT, Intent.IN)
    y = b.buffer("y", FLOAT, Intent.OUT)
    n = b.scalar("n", INT)
    c0 = b.scalar("c0", FLOAT)
    c1 = b.scalar("c1", FLOAT)
    c2 = b.scalar("c2", FLOAT)
    c3 = b.scalar("c3", FLOAT)
    gid = b.global_id(0)
    with b.if_(gid < n):
        v = b.let("v", b.load(x, gid))
        acc = b.let("acc", c3)
        b.assign(acc, acc * v + c2)
        b.assign(acc, acc * v + c1)
        b.assign(acc, acc * v + c0)
        b.store(y, gid, acc)
    return b.finish()


def executor(arrays, scalars, offset, count):
    n = int(scalars["n"])
    hi = min(offset + count, n)
    if hi <= offset:
        return
    v = arrays["x"][offset:hi]
    c0, c1, c2, c3 = (np.float32(scalars[k]) for k in ("c0", "c1", "c2", "c3"))
    arrays["y"][offset:hi] = ((c3 * v + c2) * v + c1) * v + c0


def main() -> None:
    kernel = build_horner_kernel()
    compiled = compile_kernel(kernel)

    print("derived buffer distributions:")
    for name, dist in compiled.distribution.buffers.items():
        print(f"  {name}: {dist.kind.value}")
    print("\nstatic features (excerpt):")
    for key, value in sorted(compiled.static_features().items()):
        if value:
            print(f"  {key} = {value:.3f}")
    print("\nemitted multi-device source:\n")
    print(compiled.program.md_source)

    n = 1 << 20
    rng = np.random.default_rng(0)
    arrays = {
        "x": rng.standard_normal(n).astype(np.float32),
        "y": np.zeros(n, dtype=np.float32),
    }
    scalars = {"n": n, "c0": 1.0, "c1": -0.5, "c2": 0.25, "c3": 2.0}
    request = ExecutionRequest(
        compiled=compiled,
        arrays=arrays,
        scalars=scalars,
        total_items=n,
        executor=executor,
        granularity=64,
    )
    runner = Runner(MC1)
    print(f"\ntimings on {MC1.name}:")
    for p in (
        Partitioning((100, 0, 0)),
        Partitioning((0, 100, 0)),
        Partitioning((60, 20, 20)),
    ):
        print(f"  {p.label:>10}: {runner.time_of(request, p) * 1e3:8.3f} ms")

    runner.run(request, Partitioning((60, 20, 20)))
    v = arrays["x"]
    expected = (
        (np.float32(2.0) * v + np.float32(0.25)) * v + np.float32(-0.5)
    ) * v + np.float32(1.0)
    assert np.allclose(arrays["y"], expected, rtol=1e-5)
    print("functional check passed")


if __name__ == "__main__":
    main()
