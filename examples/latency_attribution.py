#!/usr/bin/env python
"""Where does the tail go?  Trace a flash crowd, attribute the p90+.

Serves a flash-crowd trace — stationary load punctuated by bursts that
arrive 4x faster while traffic piles onto one key — on a small
two-pool cluster with ``telemetry="trace"``.  Every request becomes a
span tree over the simulated clock (queue wait, predict, execute,
cross-pool network hops), and the critical-path analyzer turns the
slowest decile into a latency-attribution table.

The point the numbers make: execution owns the typical request, but
the tail belongs to ``queue`` — bursts push past pool capacity and
the slow requests are the ones that sat in line.  That is the
observability loop this example exists to show: trace, attribute,
*then* tune (shedding, hedging, more replicas) against the span that
actually owns the tail.
"""

from dataclasses import replace

from repro.benchsuite import get_benchmark
from repro.cluster import ClusterRouter, with_tenants
from repro.core import TrainingConfig
from repro.serving import SLOConfig, ServeOptions, key_universe, serve_trace
from repro.workloads import WorkloadSpec, make_workload

BENCHMARKS = tuple(get_benchmark(n) for n in ("vec_add", "mat_mul"))
TENANTS = ("gold", "silver")


def main() -> None:
    cluster = ClusterRouter.build(
        2,
        1,
        benchmarks=BENCHMARKS,
        model_kind="knn",
        training=TrainingConfig(repetitions=1, max_sizes=2),
    )
    spec = WorkloadSpec(
        family="flash-crowd",
        num_requests=400,
        skew=1.3,
        seed=7,
        arrival="poisson",
        rate_rps=12_000.0,
        burst_rate=4.0,
    )
    keys = key_universe(list(BENCHMARKS), max_sizes=2)
    workload = make_workload(spec, keys)
    workload = replace(
        workload, requests=with_tenants(workload.requests, TENANTS)
    )

    result = serve_trace(
        cluster,
        workload.timed_items(),
        ServeOptions(
            telemetry="trace",
            slo=SLOConfig(target_s=0.0005),
            work_steal=True,
        ),
    )
    stats = result.stats
    print(
        f"flash-crowd on a {len(cluster.pools)}-pool cluster: "
        f"{stats.completed} completed over {stats.clock_s * 1e3:.1f} ms "
        f"simulated ({spec.rate_rps:.0f} req/s, bursts at "
        f"{spec.rate_rps * spec.burst_rate:.0f})"
    )
    print(
        f"latency p50 {stats.latency.quantile(0.50) * 1e3:.3f} ms, "
        f"p99 {stats.latency.quantile(0.99) * 1e3:.3f} ms, "
        f"SLO violations {stats.violation_rate:.1%}"
    )

    analyzer = result.telemetry.analyzer()
    everyone = analyzer.completed_ids()
    slow = analyzer.slowest(0.10)
    print()
    print(analyzer.table(everyone, title="Critical path, all requests"))
    print()
    print(
        analyzer.table(
            slow, title=f"Critical path, slowest decile ({len(slow)} requests)"
        )
    )

    # The delta the tables encode: how much of the tail is queueing.
    all_queue = analyzer.attribution(everyone)["kinds"]["queue"]["share"]
    tail_queue = analyzer.attribution(slow)["kinds"]["queue"]["share"]
    print()
    print(
        f"queueing share of the critical path: {all_queue:.1%} overall "
        f"-> {tail_queue:.1%} in the slowest decile"
    )

    worst = slow[0]
    print(f"worst request (trace {worst}):")
    for kind, seconds in sorted(analyzer.breakdown(worst).items()):
        if seconds > 0:
            print(f"  {kind:<8} {seconds * 1e3:8.3f} ms")
    print(f"  {'total':<8} {analyzer.latency_s(worst) * 1e3:8.3f} ms")


if __name__ == "__main__":
    main()
