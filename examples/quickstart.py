#!/usr/bin/env python
"""Quickstart: run one OpenCL-style kernel on a heterogeneous machine.

Compiles the suite's `vec_add` benchmark into a multi-device program,
executes it on the simulated mc2 platform (2x Xeon + 2x GTX 480) under
a few hand-picked task partitionings, and prints the simulated wall
clock of each — transfers included, per the paper's methodology.
"""

from repro import MC2, Partitioning, Runner, cpu_only, gpu_only, oracle_search
from repro.benchsuite import get_benchmark


def main() -> None:
    bench = get_benchmark("vec_add")
    instance = bench.make_instance(size=1 << 20, seed=0)
    request = bench.request(instance)
    runner = Runner(MC2)

    print("kernel (single-device source):\n")
    print(bench.compiled(instance).program.source)
    print("\nmulti-device source (offset-parameterized):\n")
    print(bench.compiled(instance).program.md_source)

    print(f"\nvec_add, n = {instance.size} on {MC2.name} ({MC2.description})")
    print(f"{'partitioning (CPU/GPU0/GPU1)':>30} {'time':>12}")
    candidates = [
        cpu_only(MC2),
        gpu_only(MC2),
        Partitioning((0, 50, 50)),
        Partitioning((40, 30, 30)),
        Partitioning((80, 10, 10)),
    ]
    for p in candidates:
        t = runner.time_of(request, p)
        print(f"{p.label:>30} {t * 1e3:>10.3f} ms")

    best, t_best = oracle_search(lambda p: runner.time_of(request, p))
    print(f"\noracle over all 66 partitionings: {best.label} at {t_best * 1e3:.3f} ms")

    # Functional execution: results are exact regardless of the split.
    expected = bench.reference(instance)
    runner.run(request, best)
    bench.verify(instance, expected=expected)
    print("functional check passed: partitioned result == reference")


if __name__ == "__main__":
    main()
