#!/usr/bin/env python
"""Regenerate the paper's Figure 1 end to end (full suite, both machines).

Runs the complete training campaign (23 programs x size ladders x 66
partitionings) on mc1 and mc2, evaluates the MLP predictor under the
leave-one-program-out protocol, and prints the per-program speedup bars
over the CPU-only and GPU-only defaults plus the summary statistics the
paper annotates.

Takes a few minutes; pass --quick for a truncated run.
"""

import sys

from repro import MC1, MC2, TrainingConfig
from repro.benchsuite import all_benchmarks
from repro.core import generate_training_data
from repro.experiments import render_figure1, run_figure1


def main() -> None:
    quick = "--quick" in sys.argv
    config = TrainingConfig(repetitions=1, max_sizes=3 if quick else None)
    results = []
    for machine in (MC1, MC2):
        print(f"training campaign on {machine.name} ...", flush=True)
        db = generate_training_data(machine, all_benchmarks(), config)
        results.append(run_figure1(machine, db=db, model_kind="mlp"))
    print()
    print(render_figure1(results))


if __name__ == "__main__":
    main()
