"""Analytic device power model: watts for every phase the cost model times.

The timing side (:mod:`repro.ocl.costmodel`) prices *when* a command
finishes; this module prices *what it draws* while running.  Power is
derived from the same :class:`~repro.ocl.costmodel.DeviceSpec` the cost
model reads, so the two stay consistent by construction:

* **idle watts** — leakage + board baseline, drawn from power-on to the
  end of the launch regardless of activity (race-to-idle accounting).
* **compute watts** — switching power while ALUs are busy, proportional
  to peak throughput via a per-architecture energy-per-flop constant
  (2012-era parts: CPUs spend ~an order of magnitude more energy per
  flop than GPUs, which is exactly why energy-optimal and
  makespan-optimal partitionings diverge).
* **memory watts** — DRAM + controller power while streaming, derived
  from bandwidth via energy-per-byte.
* **transfer watts** — PCIe link + DMA power during host↔device copies
  (zero for host-resident devices, whose transfers are free in time
  *and* energy).
* **DVFS scaling** — dynamic power follows ``f · V²`` with voltage
  tracking frequency, so a drift rescale ``s`` on the clock multiplies
  dynamic watts by ``s³`` in total: ``s`` arrives through the spec's
  scaled clock (linear in peak throughput) and the remaining ``s²``
  through the explicit ``dvfs_scale`` hook that
  :meth:`~repro.ocl.device.Device.apply_drift` feeds.

Nothing in the learning pipeline reads these formulas: models only see
(features → measured joules) pairs, mirroring the timing side.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ocl.costmodel import DeviceKind, DeviceSpec, KernelCostBreakdown

__all__ = ["PowerSpec", "DevicePowerModel", "DVFS_EXPONENT"]

#: Dynamic power ∝ clock ** DVFS_EXPONENT under voltage-frequency
#: scaling (f · V² with V ∝ f).
DVFS_EXPONENT = 3.0

#: Energy per flop-equivalent in watts per GFLOP/s of peak throughput
#: (i.e. nanojoules per operation), per architecture class.
_COMPUTE_W_PER_GFLOPS = {DeviceKind.CPU: 0.45, DeviceKind.GPU: 0.055}

#: DRAM + memory-controller watts per GB/s of bandwidth.
_MEMORY_W_PER_GBS = {DeviceKind.CPU: 0.60, DeviceKind.GPU: 0.25}

#: Idle (static) watts: per compute unit plus a board baseline.
_IDLE_W_PER_UNIT = {DeviceKind.CPU: 0.8, DeviceKind.GPU: 1.2}
_IDLE_W_BASE = {DeviceKind.CPU: 25.0, DeviceKind.GPU: 10.0}

#: PCIe link watts per GB/s plus the DMA-controller baseline.
_TRANSFER_W_PER_GBS = 0.5
_TRANSFER_W_BASE = 5.0

#: Driver/runtime spin during a kernel launch (host-side, small).
_LAUNCH_W = 3.0


@dataclass(frozen=True)
class PowerSpec:
    """Static power description of one device, one number per phase.

    Attributes:
        idle_w: static draw whenever the device is powered.
        compute_w: dynamic draw while the ALUs are busy (on top of idle).
        memory_w: dynamic draw while streaming global memory.
        transfer_w: dynamic draw during PCIe transfers.
        launch_w: dynamic draw during kernel-launch overhead.
    """

    idle_w: float
    compute_w: float
    memory_w: float
    transfer_w: float
    launch_w: float = _LAUNCH_W

    def __post_init__(self) -> None:
        for name in ("idle_w", "compute_w", "memory_w", "transfer_w", "launch_w"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @classmethod
    def from_device_spec(cls, spec: DeviceSpec) -> "PowerSpec":
        """Derive per-phase watts from a device's performance spec."""
        kind = spec.kind
        transfer_w = (
            0.0
            if spec.is_host_resident
            else spec.pcie_bandwidth_gbs * _TRANSFER_W_PER_GBS + _TRANSFER_W_BASE
        )
        return cls(
            idle_w=spec.compute_units * _IDLE_W_PER_UNIT[kind] + _IDLE_W_BASE[kind],
            compute_w=spec.peak_gflops * _COMPUTE_W_PER_GFLOPS[kind],
            memory_w=spec.mem_bandwidth_gbs * _MEMORY_W_PER_GBS[kind],
            transfer_w=transfer_w,
        )


class DevicePowerModel:
    """Maps execution phases to watts for one device.

    ``dvfs_scale`` is the device's cumulative drift scale (see
    :meth:`~repro.ocl.device.Device.apply_drift`): the spec passed in
    already carries the *linear* clock/bandwidth component of the
    drift, and this model adds the remaining voltage-squared factor so
    dynamic watts follow the full DVFS cube law.  Idle power is
    frequency-independent leakage and does not scale.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        dvfs_scale: float = 1.0,
        power: PowerSpec | None = None,
    ):
        if not dvfs_scale > 0:
            raise ValueError("dvfs_scale must be positive")
        self.spec = spec
        self.power = power if power is not None else PowerSpec.from_device_spec(spec)
        self.dvfs_scale = dvfs_scale
        self._dynamic_factor = dvfs_scale ** (DVFS_EXPONENT - 1.0)

    @property
    def idle_w(self) -> float:
        """Static draw whenever the device is powered."""
        return self.power.idle_w

    def kernel_power_w(self, breakdown: KernelCostBreakdown) -> float:
        """Average dynamic watts over one kernel launch.

        The roofline overlaps compute and memory in *time*, but both
        units draw their own power for their own active spans, so the
        launch's dynamic energy is additive per phase; dividing by the
        overlapped duration yields the average draw the timeline sees.
        """
        total = breakdown.total_s
        if total <= 0:
            return 0.0
        p = self.power
        energy = (
            p.compute_w * breakdown.compute_s
            + p.memory_w * breakdown.memory_s
            + p.launch_w * breakdown.launch_s
        )
        return energy / total * self._dynamic_factor

    def transfer_power_w(self) -> float:
        """Dynamic watts during one PCIe transfer."""
        return self.power.transfer_w * self._dynamic_factor
