"""Optimization objectives over (makespan, energy) measurements.

The paper's pipeline minimizes a single objective — makespan.  Energy
is the other first-order cost on heterogeneous systems (Saad et al.,
PAPERS.md): partition choice swings joules independently of seconds,
because adding a device to a launch trades idle watts on the critical
path for dynamic watts on the extra device.  This module names the
objectives the rest of the stack can optimize and provides the
scalarization + Pareto helpers every layer shares.

Objectives:

* ``MAKESPAN`` — seconds (the paper's objective).
* ``ENERGY`` — joules of the whole platform over the launch, idle
  power included (race-to-idle accounting: every device draws at least
  its idle power until the slowest one finishes).
* ``EDP`` — the energy-delay product, the classic single-number
  compromise (Horowitz): joules × seconds.
* ``ENERGY_CAPPED`` — makespan, restricted to choices whose *average
  power* (joules / seconds) stays under a cap; infeasible choices cost
  ``inf``.  This is the serve-under-a-power-budget regime.
"""

from __future__ import annotations

import enum
import math
from typing import Mapping

__all__ = [
    "Objective",
    "MODEL_OBJECTIVES",
    "coerce_objective",
    "objective_cost",
    "cap_feasible",
    "best_label",
    "pareto_front",
]


class Objective(enum.Enum):
    """What a partitioning choice is optimized for."""

    MAKESPAN = "makespan"
    ENERGY = "energy"
    EDP = "edp"
    ENERGY_CAPPED = "energy-capped-makespan"


#: Objectives a predictor can be trained on.  ``ENERGY_CAPPED`` is a
#: serve-time constraint (the cap is a deployment knob, not a property
#: of the training sweep), so models train on the unconstrained three.
MODEL_OBJECTIVES = (Objective.MAKESPAN, Objective.ENERGY, Objective.EDP)


def coerce_objective(value: "Objective | str") -> Objective:
    """Accept an :class:`Objective` or its string value (CLI plumbing)."""
    if isinstance(value, Objective):
        return value
    try:
        return Objective(value)
    except ValueError:
        names = ", ".join(o.value for o in Objective)
        raise ValueError(f"unknown objective {value!r}; choose from {names}") from None


def cap_feasible(time_s: float, energy_j: float, power_cap_w: float) -> bool:
    """Whether one measurement's average power stays under a cap.

    The single source of truth for the feasibility predicate every
    layer applies (sweep labelling, the serve-time cap substitution,
    the local-search winner filter): zero-duration runs draw nothing
    and are always feasible.
    """
    return time_s <= 0 or energy_j / time_s <= power_cap_w


def objective_cost(
    objective: Objective,
    time_s: float,
    energy_j: float,
    power_cap_w: float | None = None,
) -> float:
    """Scalar cost of one measured (time, energy) under an objective.

    Lower is better for every objective.  ``ENERGY_CAPPED`` requires
    ``power_cap_w`` and prices cap violations at ``inf`` so any
    feasible choice beats every infeasible one.
    """
    if objective is Objective.MAKESPAN:
        return time_s
    if objective is Objective.ENERGY:
        return energy_j
    if objective is Objective.EDP:
        return time_s * energy_j
    if objective is Objective.ENERGY_CAPPED:
        if power_cap_w is None:
            raise ValueError("ENERGY_CAPPED needs a power_cap_w")
        if not cap_feasible(time_s, energy_j, power_cap_w):
            return math.inf
        return time_s
    raise ValueError(f"unhandled objective {objective!r}")  # pragma: no cover


def best_label(
    timings: Mapping[str, float],
    energies: Mapping[str, float],
    objective: Objective,
    power_cap_w: float | None = None,
) -> str:
    """The label minimizing an objective over one measured sweep.

    Labels missing from ``energies`` are skipped for energy-aware
    objectives (a partial online sweep may carry timings only).  With a
    ``power_cap_w`` every objective is additionally restricted to the
    cap-feasible labels; when *no* label is feasible the cap is waived
    (the trace must still be served) and the unconstrained best wins.
    Ties break lexicographically so the choice is deterministic.
    """
    if not timings:
        raise ValueError("empty timing sweep")
    needs_energy = objective is not Objective.MAKESPAN or power_cap_w is not None
    candidates = sorted(timings)
    if needs_energy:
        priced = [label for label in candidates if label in energies]
        if not priced:
            raise ValueError(
                f"objective {objective.value!r} needs energy measurements, "
                "but the sweep has none"
            )
        candidates = priced
    if power_cap_w is not None:
        feasible = [
            label
            for label in candidates
            if cap_feasible(timings[label], energies[label], power_cap_w)
        ]
        candidates = feasible or candidates
    return min(
        candidates,
        key=lambda label: (
            objective_cost(
                objective,
                timings[label],
                energies.get(label, math.nan),
                power_cap_w=power_cap_w,
            ),
            label,
        ),
    )


def pareto_front(
    timings: Mapping[str, float], energies: Mapping[str, float]
) -> tuple[str, ...]:
    """Non-dominated labels in the (makespan, energy) plane.

    A label is on the front when no other label is at least as good on
    both axes and strictly better on one.  Only labels present in both
    mappings participate.  Returned sorted by makespan (fast → frugal),
    ties broken by label for determinism.
    """
    labels = [label for label in timings if label in energies]
    front = []
    for label in labels:
        t, e = timings[label], energies[label]
        dominated = any(
            (timings[o] <= t and energies[o] <= e)
            and (timings[o] < t or energies[o] < e)
            for o in labels
            if o != label
        )
        if not dominated:
            front.append(label)
    return tuple(sorted(front, key=lambda label: (timings[label], label)))
