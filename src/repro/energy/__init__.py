"""The energy subsystem: power models, metering and multi-objective search.

The paper optimizes makespan; this package opens the energy axis the
same learned machinery applies to (Saad et al.; HeSP's pluggable-
objective argument).  Three pieces:

* :mod:`repro.energy.power` — per-device power models derived from the
  same :class:`~repro.ocl.costmodel.DeviceSpec` the timing side reads
  (idle/static watts, per-phase dynamic watts, PCIe transfer power,
  DVFS-cube scaling compatible with runtime drift).
* :mod:`repro.energy.meter` — the :class:`EnergyMeter` that converts
  scheduler/engine timelines into per-run joules with race-to-idle
  accounting (idle watts over the makespan on every device).
* :mod:`repro.energy.objectives` — the :class:`Objective` vocabulary
  (makespan / energy / EDP / energy-capped-makespan), scalarization,
  per-objective sweep argmins and the (time, energy) Pareto front.

Everything downstream — training records, predictors, the serving
loop, fleet routing, the CLI — consumes these three modules rather
than reinventing watts.
"""

from .meter import EnergyBreakdown, EnergyMeter
from .objectives import (
    MODEL_OBJECTIVES,
    Objective,
    best_label,
    coerce_objective,
    objective_cost,
    pareto_front,
)
from .power import DVFS_EXPONENT, DevicePowerModel, PowerSpec

__all__ = [
    "EnergyBreakdown",
    "EnergyMeter",
    "MODEL_OBJECTIVES",
    "Objective",
    "best_label",
    "coerce_objective",
    "objective_cost",
    "pareto_front",
    "DVFS_EXPONENT",
    "DevicePowerModel",
    "PowerSpec",
]
