"""The energy meter: per-device timelines → joules.

The runtime scheduler and the sweep engine both produce per-device
timelines (which commands ran, for how long); the meter prices those
timelines against the devices' :class:`~repro.energy.power.DevicePowerModel`
and folds in idle power over the launch makespan — race-to-idle
accounting, where every device of the platform draws at least its idle
watts until the slowest one finishes.  This is what makes energy a
genuinely different objective from makespan: a partitioning that adds
a device may finish sooner yet cost more joules, because the extra
device's dynamic draw exceeds the idle time it saved everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..ocl.events import CommandKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..inspire.analysis import KernelAnalysis
    from ..ocl.device import Device
    from ..runtime.plan import PlannedCommand

__all__ = ["EnergyBreakdown", "EnergyMeter"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules of one partitioned launch, idle power included."""

    device_energy_j: tuple[float, ...]
    dynamic_j: float
    idle_j: float

    @property
    def total_j(self) -> float:
        return self.dynamic_j + self.idle_j

    def average_power_w(self, makespan_s: float) -> float:
        """Platform draw averaged over the launch (0 for a zero span)."""
        return self.total_j / makespan_s if makespan_s > 0 else 0.0


class EnergyMeter:
    """Prices command timelines on one device set into joules."""

    def __init__(self, devices: Sequence["Device"]):
        self.devices = list(devices)

    def command_power_w(
        self,
        device: "Device",
        command: "PlannedCommand",
        analysis: "KernelAnalysis",
        scalar_args: dict[str, float],
    ) -> float:
        """Average dynamic watts one planned command draws on a device.

        The companion of :func:`~repro.runtime.plan.command_duration_s`:
        duration × this is the command's dynamic energy, and scaling
        the duration (measurement noise) scales the energy with it —
        jitter stretches the draw, it does not change the wattage.
        """
        power = device.power_model
        if command.kind in (CommandKind.WRITE_BUFFER, CommandKind.READ_BUFFER):
            return power.transfer_power_w()
        if command.kind is CommandKind.NDRANGE_KERNEL:
            breakdown = device.cost_model.kernel_time(
                analysis, command.items, scalar_args
            )
            return power.kernel_power_w(breakdown)
        raise ValueError(f"unpriceable command kind {command.kind}")

    def finalize(
        self, dynamic_j: Sequence[float], makespan_s: float
    ) -> EnergyBreakdown:
        """Total joules given per-device dynamic energy and the makespan.

        Every device — active in the launch or not — pays idle watts
        over the full makespan; its dynamic energy rides on top.
        """
        if len(dynamic_j) != len(self.devices):
            raise ValueError(
                f"got dynamic energy for {len(dynamic_j)} devices, "
                f"meter covers {len(self.devices)}"
            )
        per_device = tuple(
            dyn + device.power_model.idle_w * makespan_s
            for dyn, device in zip(dynamic_j, self.devices)
        )
        idle = sum(d.power_model.idle_w for d in self.devices) * makespan_s
        return EnergyBreakdown(
            device_energy_j=per_device,
            dynamic_j=float(sum(dynamic_j)),
            idle_j=idle,
        )

    def platform_idle_w(self) -> float:
        """Floor on average power: every device's idle draw, summed."""
        return sum(d.power_model.idle_w for d in self.devices)
