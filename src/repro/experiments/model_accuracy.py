"""Experiment E4: prediction-model quality and ablations.

Section 2.1 asks the predicted partitioning to be "as close as possible
to the best task partitioning in terms of performance".  We report, per
machine and per model family, the leave-one-program-out exact-label
accuracy and — more meaningfully — the performance delivered relative
to the oracle, plus the feature-class ablation (static-only vs
runtime-only vs combined) that motivates the paper's two feature
classes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.database import TrainingDatabase, TrainingRecord
from ..core.evaluation import evaluate_lopo
from ..ocl.platform import Platform
from ..util.tables import format_table

__all__ = [
    "ModelScore",
    "compare_models",
    "ablate_feature_classes",
    "render_model_comparison",
]


@dataclass(frozen=True)
class ModelScore:
    """LOPO quality of one model family on one machine."""

    machine: str
    model_kind: str
    accuracy: float
    oracle_efficiency: float
    geomean_speedup_vs_cpu: float
    geomean_speedup_vs_gpu: float


def compare_models(
    platform: Platform,
    db: TrainingDatabase,
    kinds: tuple[str, ...] = ("mlp", "tree", "forest", "knn", "majority"),
    seed: int = 0,
) -> list[ModelScore]:
    """Evaluate every model family under the LOPO protocol."""
    scores = []
    for kind in kinds:
        ev = evaluate_lopo(platform, db, model_kind=kind, seed=seed)
        scores.append(
            ModelScore(
                machine=platform.name,
                model_kind=kind,
                accuracy=ev.mean_accuracy,
                oracle_efficiency=ev.geomean_oracle_efficiency,
                geomean_speedup_vs_cpu=ev.geomean_speedup_vs_cpu,
                geomean_speedup_vs_gpu=ev.geomean_speedup_vs_gpu,
            )
        )
    return scores


def _filtered_db(db: TrainingDatabase, prefix: str) -> TrainingDatabase:
    """Project every record's features onto one feature class."""
    out = TrainingDatabase()
    for r in db.records:
        kept = {k: v for k, v in r.features.items() if k.startswith(prefix)}
        out.add(
            TrainingRecord(
                machine=r.machine,
                program=r.program,
                size=r.size,
                features=kept,
                timings=r.timings,
                best_label=r.best_label,
            )
        )
    return out


def ablate_feature_classes(
    platform: Platform,
    db: TrainingDatabase,
    model_kind: str = "mlp",
    seed: int = 0,
) -> list[ModelScore]:
    """Static-only vs runtime-only vs combined features (paper's §4)."""
    variants = [
        ("combined", db),
        ("static-only", _filtered_db(db, "st_")),
        ("runtime-only", _filtered_db(db, "rt_")),
    ]
    out = []
    for label, variant_db in variants:
        ev = evaluate_lopo(platform, variant_db, model_kind=model_kind, seed=seed)
        out.append(
            ModelScore(
                machine=platform.name,
                model_kind=f"{model_kind}[{label}]",
                accuracy=ev.mean_accuracy,
                oracle_efficiency=ev.geomean_oracle_efficiency,
                geomean_speedup_vs_cpu=ev.geomean_speedup_vs_cpu,
                geomean_speedup_vs_gpu=ev.geomean_speedup_vs_gpu,
            )
        )
    return out


def render_model_comparison(scores: list[ModelScore], title: str) -> str:
    rows = [
        (
            s.machine,
            s.model_kind,
            s.accuracy,
            s.oracle_efficiency,
            s.geomean_speedup_vs_cpu,
            s.geomean_speedup_vs_gpu,
        )
        for s in scores
    ]
    return format_table(
        ["machine", "model", "exact-acc", "oracle-eff", "vs CPU", "vs GPU"],
        rows,
        title=title,
    )
