"""Experiment E2: the evaluation-setup table.

Reproduces the §3 setup facts: 23 programs drawn from vendor samples,
SHOC, Rodinia and PolyBench; three OpenCL devices per machine; a
10%-step partitioning space with 66 candidate points.
"""

from __future__ import annotations

from ..benchsuite.registry import all_benchmarks
from ..machines.configs import ALL_MACHINES
from ..partitioning import partition_space
from ..util.tables import format_table

__all__ = ["suite_rows", "render_suite_table"]


def suite_rows() -> list[tuple[str, str, str, int, int, str]]:
    """(program, suite, description, #sizes, iterations, size range)."""
    rows = []
    for bench in all_benchmarks():
        sizes = bench.problem_sizes()
        inst = bench.make_instance(sizes[0])
        rows.append(
            (
                bench.name,
                bench.suite.value,
                bench.description,
                len(sizes),
                inst.iterations,
                f"{sizes[0]}..{sizes[-1]}",
            )
        )
    return rows


def render_suite_table() -> str:
    """The full setup summary the paper's §3 describes."""
    rows = suite_rows()
    table = format_table(
        ["program", "suite", "description", "sizes", "iters", "size range"],
        rows,
        title="Evaluation suite (23 programs)",
    )
    lines = [table, ""]
    for m in ALL_MACHINES:
        devices = ", ".join(s.name for s in m.device_specs)
        lines.append(f"{m.name}: {devices}")
    space = partition_space(3, 10)
    lines.append(
        f"partition space: {len(space)} points over 3 devices at 10% steps "
        f"(includes CPU-only {space[-1].label} and GPU-only corners)"
    )
    counts: dict[str, int] = {}
    for r in rows:
        counts[r[1]] = counts.get(r[1], 0) + 1
    lines.append(
        "suite composition: "
        + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    )
    return "\n".join(lines)
