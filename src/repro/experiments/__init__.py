"""Experiment harnesses that regenerate the paper's tables and figures."""

from .figure1 import Figure1Result, render_figure1, run_figure1
from .model_accuracy import (
    ModelScore,
    ablate_feature_classes,
    compare_models,
    render_model_comparison,
)
from .size_sensitivity import (
    SizeSensitivity,
    analyze_size_sensitivity,
    render_size_sensitivity,
)
from .suite_table import render_suite_table, suite_rows

__all__ = [
    "Figure1Result",
    "render_figure1",
    "run_figure1",
    "ModelScore",
    "ablate_feature_classes",
    "compare_models",
    "render_model_comparison",
    "SizeSensitivity",
    "analyze_size_sensitivity",
    "render_size_sensitivity",
    "render_suite_table",
    "suite_rows",
]
