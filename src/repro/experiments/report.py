"""Consolidated experiment report: every artefact in one text document.

Used by the CLI (``python -m repro report``) and handy for regression
diffing — the output is deterministic given a training database.
"""

from __future__ import annotations

from ..core.database import TrainingDatabase
from ..machines.configs import machine_by_name
from .figure1 import render_figure1, run_figure1
from .model_accuracy import compare_models, render_model_comparison
from .size_sensitivity import analyze_size_sensitivity, render_size_sensitivity
from .suite_table import render_suite_table

__all__ = ["full_report"]


def full_report(
    db: TrainingDatabase,
    model_kind: str = "mlp",
    model_comparison_kinds: tuple[str, ...] = ("mlp", "knn", "majority"),
) -> str:
    """Render E1–E5 for every machine present in the database."""
    sections: list[str] = [
        "REPRODUCTION REPORT",
        "===================",
        "",
        render_suite_table(),
    ]
    figure1_results = []
    for machine_name in db.machines():
        platform = machine_by_name(machine_name)
        figure1_results.append(
            run_figure1(
                platform, db=db.for_machine(machine_name), model_kind=model_kind
            )
        )
    sections.append(render_figure1(figure1_results))
    sections.append(render_size_sensitivity(analyze_size_sensitivity(db)))
    scores = []
    for machine_name in db.machines():
        platform = machine_by_name(machine_name)
        scores.extend(
            compare_models(
                platform, db.for_machine(machine_name), kinds=model_comparison_kinds
            )
        )
    sections.append(
        render_model_comparison(scores, "Model comparison (leave-one-program-out)")
    )
    return "\n\n".join(sections)
