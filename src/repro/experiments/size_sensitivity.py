"""Experiment E3: the problem-size-sensitivity claim.

Section 4 of the paper: *"the optimal task partitioning does depend on
the program, the target architecture, as well as the problem size."*
This experiment tabulates the oracle partitioning per (program, size,
machine) and quantifies how often it changes along the size ladder.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.database import TrainingDatabase
from ..util.tables import format_table

__all__ = ["SizeSensitivity", "analyze_size_sensitivity", "render_size_sensitivity"]


@dataclass(frozen=True)
class SizeSensitivity:
    """Oracle-partitioning trajectory of one program on one machine."""

    machine: str
    program: str
    sizes: tuple[int, ...]
    oracle_labels: tuple[str, ...]

    @property
    def distinct_optima(self) -> int:
        return len(set(self.oracle_labels))

    @property
    def changes_with_size(self) -> bool:
        return self.distinct_optima > 1


def analyze_size_sensitivity(db: TrainingDatabase) -> list[SizeSensitivity]:
    """One trajectory per (machine, program)."""
    out: list[SizeSensitivity] = []
    for machine in db.machines():
        mdb = db.for_machine(machine)
        for program in mdb.programs():
            recs = sorted(mdb.for_program(program).records, key=lambda r: r.size)
            out.append(
                SizeSensitivity(
                    machine=machine,
                    program=program,
                    sizes=tuple(r.size for r in recs),
                    oracle_labels=tuple(r.best_label for r in recs),
                )
            )
    return out


def render_size_sensitivity(trajectories: list[SizeSensitivity]) -> str:
    """Table of oracle partitionings along the size ladder."""
    rows = []
    for t in trajectories:
        rows.append(
            (
                t.machine,
                t.program,
                t.distinct_optima,
                " -> ".join(t.oracle_labels),
            )
        )
    table = format_table(
        [
            "machine",
            "program",
            "#optima",
            "oracle partitioning by size (CPU/GPU0/GPU1)",
        ],
        rows,
        title="Size sensitivity of the optimal task partitioning (E3)",
    )
    changing = sum(1 for t in trajectories if t.changes_with_size)
    return (
        table
        + f"\n\n{changing}/{len(trajectories)} (machine, program) pairs change "
        "their optimal partitioning with the problem size"
    )
