"""Experiment E1: regenerate the paper's Figure 1.

Figure 1 of the paper plots, for every program and both machines, the
speedup of the ML-guided task partitioning over the CPU-only and
GPU-only default strategies (the clipped peak bars are annotated 13.5×
and 19.8× on mc1, 5.7× and 4.9× on mc2).  This module reproduces the
same four series plus the §3 observation that the better default flips
between machines (E5).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.database import TrainingDatabase
from ..core.evaluation import MachineEvaluation, evaluate_lopo
from ..core.trainer import TrainingConfig, generate_training_data
from ..benchsuite.registry import all_benchmarks
from ..ocl.platform import Platform
from ..runtime.strategies import cpu_only, gpu_only
from ..util.tables import format_series, format_table

__all__ = ["Figure1Result", "run_figure1", "render_figure1"]


@dataclass(frozen=True)
class Figure1Result:
    """Everything Figure 1 shows, for one machine."""

    evaluation: MachineEvaluation
    #: programs where the CPU-only default beats the GPU-only default
    cpu_default_wins: int
    #: programs where the GPU-only default beats the CPU-only default
    gpu_default_wins: int

    @property
    def machine(self) -> str:
        return self.evaluation.machine


def run_figure1(
    platform: Platform,
    db: TrainingDatabase | None = None,
    model_kind: str = "mlp",
    config: TrainingConfig = TrainingConfig(),
) -> Figure1Result:
    """Produce Figure 1 data for one machine.

    Pass a pre-generated training database to skip the (slow) sweep.
    """
    if db is None:
        db = generate_training_data(platform, all_benchmarks(), config)
    evaluation = evaluate_lopo(platform, db, model_kind=model_kind)
    cl = cpu_only(platform).label
    gl = gpu_only(platform).label
    cpu_wins = 0
    gpu_wins = 0
    machine_db = db.for_machine(platform.name)
    for program in machine_db.programs():
        recs = machine_db.for_program(program).records
        # Compare the defaults over the whole ladder (geometric mean).
        ratio = 1.0
        for r in recs:
            ratio *= r.timings[gl] / r.timings[cl]
        if ratio >= 1.0:
            cpu_wins += 1
        else:
            gpu_wins += 1
    return Figure1Result(evaluation, cpu_wins, gpu_wins)


def render_figure1(results: list[Figure1Result]) -> str:
    """Render the per-program bars and the summary rows as text."""
    blocks: list[str] = []
    for res in results:
        ev = res.evaluation
        rows = [
            (
                p.program,
                p.speedup_vs_cpu,
                p.speedup_vs_gpu,
                p.oracle_efficiency,
                p.sizes[0].oracle.label,
                p.sizes[-1].oracle.label,
            )
            for p in ev.programs
        ]
        blocks.append(
            format_table(
                [
                    "program",
                    "speedup_vs_cpu",
                    "speedup_vs_gpu",
                    "oracle_eff",
                    "best@min_size",
                    "best@max_size",
                ],
                rows,
                title=(
                    f"Figure 1 [{ev.machine}] — ML-guided partitioning vs "
                    f"single-device defaults (model: {ev.model_kind})"
                ),
            )
        )
        blocks.append(
            format_series(
                f"{ev.machine} speedup-vs-CPU",
                [p.program for p in ev.programs],
                [p.speedup_vs_cpu for p in ev.programs],
            )
        )
        blocks.append(
            format_series(
                f"{ev.machine} speedup-vs-GPU",
                [p.program for p in ev.programs],
                [p.speedup_vs_gpu for p in ev.programs],
            )
        )
        blocks.append(
            f"{ev.machine}: geomean vs CPU = {ev.geomean_speedup_vs_cpu:.2f}x, "
            f"vs GPU = {ev.geomean_speedup_vs_gpu:.2f}x; "
            f"peak vs CPU = {ev.max_speedup_vs_cpu:.1f}x, "
            f"peak vs GPU = {ev.max_speedup_vs_gpu:.1f}x; "
            f"beats both defaults on {ev.wins_vs_both_defaults}/"
            f"{len(ev.programs)} programs"
        )
        blocks.append(
            f"{ev.machine}: default-strategy winner: CPU-only on "
            f"{res.cpu_default_wins}, GPU-only on {res.gpu_default_wins} programs"
        )
    return "\n\n".join(blocks)
