"""repro — reproduction of *Automatic Problem Size Sensitive Task
Partitioning on Heterogeneous Parallel Systems* (Grasso, Kofler,
Cosenza, Fahringer; PPoPP 2013).

The package rebuilds the paper's full stack on a simulated OpenCL
substrate:

* :mod:`repro.inspire` — INSPIRE-like kernel IR with static feature
  extraction, an OpenCL C printer and a reference interpreter;
* :mod:`repro.compiler` — single-device → multi-device translation
  (ND-range splitting, buffer distributions, offset code generation);
* :mod:`repro.ocl` / :mod:`repro.machines` — simulated devices with
  calibrated analytic cost models; the paper's mc1 and mc2 platforms;
* :mod:`repro.runtime` — the multi-device scheduler, per-device
  command planning, default strategies and measurement harness;
* :mod:`repro.engine` — the memoized sweep/measurement engine (the
  training and adaptation hot path);
* :mod:`repro.energy` — device power models, the energy meter and the
  multi-objective layer (makespan / energy / EDP / power-capped);
* :mod:`repro.ml` — from-scratch NumPy classifiers (MLP and friends);
* :mod:`repro.benchsuite` — the 23-program evaluation suite;
* :mod:`repro.graphs` — task graphs as the unit of work: DAG
  composition over memoized tapes and the scheduling × partitioning
  co-search (:class:`repro.graphs.GraphPlanner`);
* :mod:`repro.core` — the contribution: feature assembly, training
  database, partitioning predictor, end-to-end pipeline, evaluation;
* :mod:`repro.serving` — the online-adaptive partitioning service
  (prediction cache, batch dispatch, feedback-driven refits);
* :mod:`repro.experiments` — regenerates every table/figure.

Quickstart::

    from repro import train_system, get_benchmark, MC2
    system = train_system(MC2, model_kind="mlp")
    bench = get_benchmark("mat_mul")
    instance = bench.make_instance(512)
    partitioning = system.predict(bench, instance)
"""

from .benchsuite import all_benchmarks, get_benchmark
from .core import (
    PartitioningModel,
    PartitioningPredictor,
    TrainedSystem,
    TrainingConfig,
    TrainingDatabase,
    evaluate_lopo,
    generate_training_data,
    train_system,
)
from .energy import (
    DevicePowerModel,
    EnergyMeter,
    Objective,
    PowerSpec,
    pareto_front,
)
from .engine import SweepEngine
from .graphs import GraphPlan, GraphPlanner, TaskGraph, pipeline_chain
from .machines import ALL_MACHINES, MC1, MC2, machine_by_name
from .partitioning import Partitioning, neighborhood, partition_space, split_items
from .runtime import Runner, cpu_only, even_split, gpu_only, oracle_search
from .serving import PartitioningService, ServiceConfig

__version__ = "1.0.0"

__all__ = [
    "all_benchmarks",
    "get_benchmark",
    "PartitioningModel",
    "PartitioningPredictor",
    "TrainedSystem",
    "TrainingConfig",
    "TrainingDatabase",
    "evaluate_lopo",
    "generate_training_data",
    "train_system",
    "ALL_MACHINES",
    "MC1",
    "MC2",
    "machine_by_name",
    "Partitioning",
    "neighborhood",
    "partition_space",
    "split_items",
    "PartitioningService",
    "ServiceConfig",
    "Runner",
    "SweepEngine",
    "GraphPlan",
    "GraphPlanner",
    "TaskGraph",
    "pipeline_chain",
    "DevicePowerModel",
    "EnergyMeter",
    "Objective",
    "PowerSpec",
    "pareto_front",
    "cpu_only",
    "gpu_only",
    "even_split",
    "oracle_search",
    "__version__",
]
