"""One serving API: ``serve_trace(backend, trace, options)``.

The serving surface grew an entrypoint per capability — ``submit`` for
one request, ``submit_many`` for batched prediction, ``submit_graph``
for DAGs, ``FleetRouter.serve`` for fleets, ``EventLoop.run`` for
open-loop arrivals — each with its own knob set.  This module folds
them behind two names:

* :class:`ServeOptions` — every serve-time decision in one frozen
  dataclass: the arrival process, SLO targets and shedding, fault
  injection, retries/hedging/failover, cluster-scope speculation and
  work-stealing, the queue discipline, and the objective/power-cap
  *assertions* (those two are build-time service knobs; naming them
  here makes the facade verify the backend was built the way the
  caller believes).
* :func:`serve_trace` — one call that routes any trace through any
  backend: a :class:`~repro.serving.PartitioningService`, a
  :class:`~repro.fleet.FleetRouter`, or a
  :class:`~repro.cluster.ClusterRouter`.

``arrival="sequential"`` is the closed-loop replay (each request
submitted the instant the previous finishes — the legacy synchronous
path, responses returned in order).  The open-loop processes
(``uniform`` / ``poisson``) run the simulated-time
:class:`~repro.serving.EventLoop`; responses are streamed to
``on_complete`` and the result carries the loop's bounded-memory
stats instead of a response list.

The pre-existing entrypoints still exist as thin shims over this
facade and their outputs are golden-pinned bit-identical — old callers
see nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..faults import FaultSchedule
from ..telemetry import TELEMETRY_MODES, Telemetry
from .eventloop import CompletedRequest, EventLoop, EventLoopConfig, EventLoopStats
from .slo import SLOConfig
from .trace import GraphServingRequest, ServingRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.router import ClusterRouter
    from ..fleet.router import FleetRouter
    from ..workloads.spec import DriftEvent
    from .service import PartitioningService

__all__ = ["ServeOptions", "ServeResult", "serve_trace"]


@dataclass(frozen=True)
class ServeOptions:
    """Every serve-time knob of :func:`serve_trace`, in one place.

    Attributes:
        arrival: ``"sequential"`` for the closed-loop replay, or an
            open-loop process (``"uniform"`` / ``"poisson"``) for the
            event-driven path.
        rate_rps: mean open-loop arrival rate; ignored by sequential.
        seed: seed of the arrival-process draws.
        batch_predict: on the sequential service path, answer cold keys
            with one vectorized model pass (the ``submit_many``
            behaviour) instead of per-request inference.
        slo: latency targets, tenant priorities, shedding exemptions.
        shed_policy: one of :data:`~repro.serving.slo.SHED_POLICIES`.
        faults: seeded fault schedule for the event path, or ``None``.
        timeout_factor / max_retries / retry_backoff_s / retry_budget /
            hedge_at / hedge_min_completions / failover: the event
            loop's fault-handling knobs, verbatim
            (:class:`~repro.serving.EventLoopConfig`).
        speculate_at / speculate_min_completions / work_steal /
            queue_discipline: the cluster-scope straggler and fairness
            knobs, verbatim.
        objective: when not ``None``, assert the backend's services
            were built under this training/serving objective — the
            facade cannot change a trained objective at serve time, but
            it can refuse to quietly serve under the wrong one.
        power_cap_w: same assertion for the per-launch power cap.
        telemetry: ``"off"`` (default), ``"metrics"`` (a shared
            :class:`~repro.telemetry.MetricsRegistry` every layer
            publishes into, returned on the result), or ``"trace"``
            (metrics plus request-scoped spans and the JSONL event
            log; event path only).
    """

    arrival: str = "sequential"
    rate_rps: float = 200.0
    seed: int = 0
    batch_predict: bool = True
    slo: SLOConfig = field(default_factory=SLOConfig)
    shed_policy: str = "none"
    faults: FaultSchedule | None = None
    timeout_factor: float | None = None
    max_retries: int = 2
    retry_backoff_s: float = 1e-3
    retry_budget: float = 0.2
    hedge_at: float | None = None
    hedge_min_completions: int = 32
    failover: bool = True
    speculate_at: float | None = None
    speculate_min_completions: int = 32
    work_steal: bool = False
    queue_discipline: str = "fifo"
    objective: object | None = None
    power_cap_w: float | None = None
    telemetry: str = "off"

    def __post_init__(self) -> None:
        from ..workloads.spec import ARRIVAL_PROCESSES

        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; "
                f"choose from {ARRIVAL_PROCESSES}"
            )
        if not self.rate_rps > 0:
            raise ValueError("rate_rps must be positive")
        if self.telemetry not in TELEMETRY_MODES:
            raise ValueError(
                f"unknown telemetry mode {self.telemetry!r}; "
                f"choose from {TELEMETRY_MODES}"
            )
        # Everything event-side is validated once, eagerly, by building
        # the loop config — a sequential run with bad event knobs fails
        # just as loudly as an event run would.
        self.event_config()

    def event_config(self) -> EventLoopConfig:
        """The :class:`EventLoopConfig` these options denote."""
        return EventLoopConfig(
            shed_policy=self.shed_policy,
            slo=self.slo,
            faults=self.faults,
            timeout_factor=self.timeout_factor,
            max_retries=self.max_retries,
            retry_backoff_s=self.retry_backoff_s,
            retry_budget=self.retry_budget,
            hedge_at=self.hedge_at,
            hedge_min_completions=self.hedge_min_completions,
            failover=self.failover,
            speculate_at=self.speculate_at,
            speculate_min_completions=self.speculate_min_completions,
            work_steal=self.work_steal,
            queue_discipline=self.queue_discipline,
        )


@dataclass(frozen=True)
class ServeResult:
    """What one :func:`serve_trace` call produced.

    ``responses`` is populated on the sequential path (one response per
    request, in arrival order) and empty on the event path, where
    per-request results stream through ``on_complete`` and ``stats``
    carries the bounded-memory aggregate instead.  ``telemetry`` is the
    run's :class:`~repro.telemetry.Telemetry` context when the options
    asked for one (``"metrics"`` / ``"trace"``), else ``None``.
    """

    backend_kind: str
    responses: tuple = ()
    stats: EventLoopStats | None = None
    telemetry: Telemetry | None = None


def _backend_kind(backend) -> str:
    from ..cluster.router import ClusterRouter
    from ..fleet.router import FleetRouter
    from .service import PartitioningService

    if isinstance(backend, PartitioningService):
        return "service"
    if isinstance(backend, FleetRouter):
        return "fleet"
    if isinstance(backend, ClusterRouter):
        return "cluster"
    raise TypeError(
        f"serve_trace backends are PartitioningService, FleetRouter or "
        f"ClusterRouter; got {type(backend).__name__}"
    )


def _service_configs(backend, kind: str):
    if kind == "service":
        return [backend.config]
    if kind == "fleet":
        return [r.service.config for r in backend.replicas]
    return [r.service.config for pool in backend.pools for r in pool.replicas]


def _check_build_knobs(backend, kind: str, options: ServeOptions) -> None:
    """Objective/power-cap are baked in at build time; verify, don't mutate."""
    from ..energy.objectives import coerce_objective

    if options.objective is None and options.power_cap_w is None:
        return
    want = (
        coerce_objective(options.objective)
        if options.objective is not None
        else None
    )
    for config in _service_configs(backend, kind):
        if want is not None and config.objective is not want:
            raise ValueError(
                f"options.objective={want.value!r} but the backend was built "
                f"with objective={config.objective.value!r}; rebuild the "
                "service/fleet/cluster under the desired objective"
            )
        if (
            options.power_cap_w is not None
            and config.power_cap_w != options.power_cap_w
        ):
            raise ValueError(
                f"options.power_cap_w={options.power_cap_w!r} but the backend "
                f"was built with power_cap_w={config.power_cap_w!r}"
            )


def _sequential(backend, kind: str, requests: list, options: ServeOptions) -> tuple:
    if kind == "service":
        if options.batch_predict and not any(
            isinstance(r, GraphServingRequest) for r in requests
        ):
            return tuple(backend._submit_many(requests))
        return tuple(
            backend._submit_graph(r)
            if isinstance(r, GraphServingRequest)
            else backend._submit(r, None)
            for r in requests
        )
    if kind == "fleet":
        # Graph requests spread deterministically, exactly as the
        # event-loop fleet backend does; kernels go through the policy.
        responses = []
        for r in requests:
            if isinstance(r, GraphServingRequest):
                index = r.request_id % len(backend.replicas)
                responses.append(backend.replicas[index].service.submit_graph(r))
            else:
                responses.append(backend.submit(r))
        return tuple(responses)
    return tuple(backend.submit(r) for r in requests)


def serve_trace(
    backend,
    trace: "Iterable",
    options: ServeOptions = ServeOptions(),
    *,
    on_complete: Callable[[CompletedRequest], None] | None = None,
    drift_handler: "Callable[[DriftEvent], None] | None" = None,
) -> ServeResult:
    """Serve one trace on one backend under one set of options.

    ``trace`` is a sequence of requests (kernel or graph), or — on the
    event path only — an already-timed stream of ``(arrival_s,
    payload)`` items (e.g. :meth:`Workload.timed_items`), in which case
    the options' arrival process is ignored in favour of the stream's
    own timestamps.

    On a cluster backend the router's per-tenant isolation meters are
    fed automatically; a caller's ``on_complete`` chains after them.
    """
    kind = _backend_kind(backend)
    _check_build_knobs(backend, kind, options)
    telemetry = Telemetry.from_mode(options.telemetry)
    items = list(trace)
    pretimed = bool(items) and isinstance(items[0], tuple)
    if options.arrival == "sequential" and not pretimed:
        if on_complete is not None or drift_handler is not None:
            raise ValueError(
                "on_complete/drift_handler are event-path hooks; "
                "sequential serving returns responses directly"
            )
        if telemetry is not None and telemetry.tracing:
            raise ValueError(
                "telemetry='trace' needs the simulated clock of the event "
                "path; sequential serving supports 'off' and 'metrics'"
            )
        responses = _sequential(backend, kind, items, options)
        if telemetry is not None:
            telemetry.collect(backend)
        return ServeResult(
            backend_kind=kind,
            responses=responses,
            telemetry=telemetry,
        )
    if pretimed:
        stream = items
    else:
        from ..workloads.arrivals import arrival_times
        from ..workloads.spec import WorkloadSpec

        times = arrival_times(
            WorkloadSpec(
                num_requests=len(items),
                seed=options.seed,
                arrival=options.arrival,
                rate_rps=options.rate_rps,
            ),
            len(items),
        )
        stream = zip(times, items)
    observer = on_complete
    if kind == "cluster":
        cluster_observe = backend.observe_completion
        if on_complete is None:
            observer = cluster_observe
        else:
            user_observe = on_complete

            def observer(completed: CompletedRequest) -> None:
                cluster_observe(completed)
                user_observe(completed)

    config = options.event_config()
    if telemetry is not None:
        config = replace(config, telemetry=telemetry)
    loop = {
        "service": EventLoop.for_service,
        "fleet": EventLoop.for_fleet,
        "cluster": EventLoop.for_cluster,
    }[kind](backend, config)
    stats = loop.run(stream, on_complete=observer, drift_handler=drift_handler)
    if telemetry is not None:
        telemetry.collect(backend, stats=stats)
    return ServeResult(backend_kind=kind, stats=stats, telemetry=telemetry)
