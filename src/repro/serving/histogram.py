"""Bounded-memory streaming latency histograms.

A million-request trace must not keep a million per-request records
just to answer "what was the p99?".  The histogram keeps a fixed set
of geometrically-spaced buckets over ``[MIN_TRACKED_S, MAX_TRACKED_S]``
plus an exact zero counter, so memory is O(buckets) regardless of how
many observations stream through, and every counter is an integer —
two runs that observe bit-identical latencies produce bit-identical
histograms, which is what the determinism golden tests compare.

Quantile error bound: a value lands in the bucket
``[MIN * GAMMA^i, MIN * GAMMA^(i+1))`` and is reported as the bucket's
geometric midpoint, so any reported quantile is within a factor
``sqrt(GAMMA)`` of the true order statistic — a relative error of at
most :data:`QUANTILE_RELATIVE_ERROR` (~2.5% for ``GAMMA = 1.05``) for
values inside the tracked range.  Values outside the range clamp into
the edge buckets (and are additionally reported exactly through
``min_s`` / ``max_s``).
"""

from __future__ import annotations

import math

__all__ = [
    "GAMMA",
    "MIN_TRACKED_S",
    "MAX_TRACKED_S",
    "NUM_BUCKETS",
    "QUANTILE_RELATIVE_ERROR",
    "LatencyHistogram",
]

#: Geometric growth factor between adjacent bucket edges.
GAMMA = 1.05

#: Smallest / largest latency resolved by its own bucket (seconds).
MIN_TRACKED_S = 1e-7
MAX_TRACKED_S = 1e4

_LOG_GAMMA = math.log(GAMMA)

#: Fixed bucket count covering the tracked range — the whole memory
#: footprint of one histogram, independent of observation count.
NUM_BUCKETS = int(math.ceil(math.log(MAX_TRACKED_S / MIN_TRACKED_S) / _LOG_GAMMA))

#: Documented worst-case relative error of any reported quantile for
#: observations inside ``[MIN_TRACKED_S, MAX_TRACKED_S]``.
QUANTILE_RELATIVE_ERROR = math.sqrt(GAMMA) - 1.0


class LatencyHistogram:
    """Streaming histogram over seconds with O(1) record and O(buckets) memory."""

    __slots__ = ("_counts", "zeros", "count", "sum_s", "min_s", "max_s")

    def __init__(self) -> None:
        self._counts = [0] * NUM_BUCKETS
        #: Exact count of zero observations (an empty queue wait is
        #: common and must not be smeared into the smallest bucket).
        self.zeros = 0
        self.count = 0
        self.sum_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0

    @staticmethod
    def _bucket(value: float) -> int:
        index = int(math.log(value / MIN_TRACKED_S) / _LOG_GAMMA)
        if index < 0:
            return 0
        if index >= NUM_BUCKETS:
            return NUM_BUCKETS - 1
        return index

    def record(self, value_s: float) -> None:
        """Fold one observation in; negatives are rejected loudly."""
        if value_s < 0:
            raise ValueError("latencies are non-negative")
        self.count += 1
        self.sum_s += value_s
        if value_s < self.min_s:
            self.min_s = value_s
        if value_s > self.max_s:
            self.max_s = value_s
        if value_s == 0.0:
            self.zeros += 1
        else:
            self._counts[self._bucket(value_s)] += 1

    @property
    def mean_s(self) -> float:
        return self.sum_s / self.count if self.count else 0.0

    @property
    def counts(self) -> tuple[int, ...]:
        """The raw bucket counters (bit-comparable across runs)."""
        return tuple(self._counts)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1) in seconds.

        Reported as the geometric midpoint of the bucket holding the
        rank-``ceil(q * count)`` observation, clamped into the exact
        observed ``[min_s, max_s]`` — the clamp can only tighten the
        :data:`QUANTILE_RELATIVE_ERROR` bound, never loosen it.  The
        edges are exact: ``quantile(0.0)`` is the observed minimum,
        ``quantile(1.0)`` the observed maximum; an empty histogram
        reports 0.0 for any ``q``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min_s
        if q == 1.0:
            return self.max_s
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zeros:
            return 0.0
        seen = self.zeros
        for i, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank:
                estimate = MIN_TRACKED_S * GAMMA ** (i + 0.5)
                return min(max(estimate, self.min_s), self.max_s)
        return self.max_s  # pragma: no cover - counts always sum to count

    def quantiles(self) -> dict[str, float]:
        """The serving-dashboard trio: p50 / p95 / p99 (seconds)."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram in (fleet-level aggregation)."""
        for i, c in enumerate(other._counts):
            self._counts[i] += c
        self.zeros += other.zeros
        self.count += other.count
        self.sum_s += other.sum_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)

    def to_dict(self) -> dict:
        """JSON-friendly summary (quantiles + exact extrema, no buckets)."""
        return {
            "count": self.count,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            **{k + "_s": v for k, v in self.quantiles().items()},
        }

    def state_dict(self) -> dict:
        """The full exact state, JSON-safe (``min_s`` is ``None`` when
        empty — ``inf`` does not survive strict JSON)."""
        return {
            "counts": list(self._counts),
            "zeros": self.zeros,
            "count": self.count,
            "sum_s": self.sum_s,
            "min_s": self.min_s if self.count else None,
            "max_s": self.max_s,
        }

    @classmethod
    def from_state(cls, state: dict) -> "LatencyHistogram":
        """Rebuild a histogram bit-for-bit from :meth:`state_dict`."""
        counts = state["counts"]
        if len(counts) != NUM_BUCKETS:
            raise ValueError(
                f"state has {len(counts)} buckets, expected {NUM_BUCKETS}"
            )
        hist = cls()
        hist._counts = [int(c) for c in counts]
        hist.zeros = state["zeros"]
        hist.count = state["count"]
        hist.sum_s = state["sum_s"]
        hist.min_s = math.inf if state["min_s"] is None else state["min_s"]
        hist.max_s = state["max_s"]
        return hist
