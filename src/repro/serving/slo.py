"""Service-level objectives: per-tenant latency targets and shedding.

An SLO is a promise about *end-to-end* latency — queueing included —
so it only becomes meaningful on the event-driven serving path where
requests carry arrival timestamps.  :class:`SLOConfig` names the
targets (a default plus per-tenant overrides and priorities);
:class:`SLOTracker` counts, per tenant, how often the promise was kept,
broken, or pre-empted by admission control.

Shedding policies (:data:`SHED_POLICIES`):

* ``none`` — admit everything; violations are observed, never avoided.
* ``deadline`` — admission control: a request whose *predicted*
  completion (current backlog plus one expected service time) already
  overshoots its SLO target is shed at arrival instead of wasting
  queue space to miss its deadline anyway.
* ``priority`` — the same deadline test, but only tenants whose
  priority is below ``shed_below_priority`` may be shed; premium
  traffic is always admitted and rides out the queue.

The deadline test itself lives here as :func:`shed_decision` so the
backlog arithmetic is shared (and testable) outside the event loop.
The estimate counts *in-flight duplicates* — retries waiting out their
backoff and hedged copies already queued — alongside the plain queue
depth: under a retry storm the real backlog is larger than the queue,
and ignoring duplicates makes admission control over-admit exactly
when the service is least able to absorb it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "SHED_POLICIES",
    "SLOConfig",
    "ShedDecision",
    "TenantSLOStats",
    "SLOTracker",
    "shed_decision",
]

#: The admission-control policies of the event loop.
SHED_POLICIES = ("none", "deadline", "priority")


@dataclass(frozen=True)
class SLOConfig:
    """Latency targets and priorities, keyed by tenant.

    Attributes:
        target_s: default end-to-end latency target in seconds;
            ``None`` disables SLO accounting (and all shedding).
        tenant_targets: per-tenant overrides as (tenant, seconds)
            pairs; a tenant listed here is judged by its own target.
        tenant_priorities: per-tenant priorities as (tenant, priority)
            pairs; unlisted tenants have priority 0.
        shed_below_priority: under the ``priority`` policy, only
            requests with priority strictly below this may be shed.
    """

    target_s: float | None = None
    tenant_targets: tuple[tuple[str, float], ...] = ()
    tenant_priorities: tuple[tuple[str, int], ...] = ()
    shed_below_priority: int = 1

    def __post_init__(self) -> None:
        if self.target_s is not None and not self.target_s > 0:
            raise ValueError("target_s must be positive")
        for tenant, target in self.tenant_targets:
            if not target > 0:
                raise ValueError(f"tenant {tenant!r} target must be positive")
        object.__setattr__(self, "tenant_targets", tuple(self.tenant_targets))
        object.__setattr__(self, "tenant_priorities", tuple(self.tenant_priorities))

    def target_for(self, tenant: str) -> float | None:
        """The latency target one tenant is judged by."""
        for name, target in self.tenant_targets:
            if name == tenant:
                return target
        return self.target_s

    def priority_for(self, tenant: str) -> int:
        for name, priority in self.tenant_priorities:
            if name == tenant:
                return priority
        return 0


@dataclass(frozen=True)
class ShedDecision:
    """Outcome of one admission test.

    ``predicted_s`` is the completion estimate the test compared
    against the tenant's target, or ``None`` when no estimate was
    needed (policy ``none``, no target, exempt priority, idle server).
    """

    shed: bool
    predicted_s: float | None = None


def shed_decision(
    policy: str,
    config: SLOConfig,
    tenant: str,
    *,
    idle: bool,
    busy_wait_s: float,
    queue_depth: int,
    duplicate_depth: int,
    est_service_s: float,
) -> ShedDecision:
    """Deadline-aware admission test against one replica's backlog.

    Predicted completion is ``busy_wait_s + (queue_depth +
    duplicate_depth + 1) × est_service_s``: the time the in-service
    request still needs, plus one expected service time for every
    queued request, every in-flight duplicate contending for the same
    capacity (pending retries, hedged copies), and the candidate
    itself.

    ``idle`` short-circuits to admit: shedding into an idle server
    never helps, and admitting keeps the service-time EWMA calibrated
    even when the initial estimate blows the target.
    """
    if policy not in SHED_POLICIES:
        raise ValueError(
            f"unknown shed policy {policy!r}; choose from {SHED_POLICIES}"
        )
    if queue_depth < 0 or duplicate_depth < 0:
        raise ValueError("queue and duplicate depths must be non-negative")
    if policy == "none":
        return ShedDecision(shed=False)
    target = config.target_for(tenant)
    if target is None:
        return ShedDecision(shed=False)
    if policy == "priority" and (
        config.priority_for(tenant) >= config.shed_below_priority
    ):
        return ShedDecision(shed=False)
    if idle:
        return ShedDecision(shed=False)
    predicted = busy_wait_s + (queue_depth + duplicate_depth + 1) * est_service_s
    return ShedDecision(shed=predicted > target, predicted_s=predicted)


@dataclass
class TenantSLOStats:
    """One tenant's slice of the SLO accounting."""

    completed: int = 0
    violations: int = 0
    shed: int = 0
    #: Requests lost to faults: timed out, crash-stranded, or out of retries.
    failed: int = 0

    @property
    def violation_rate(self) -> float:
        """Violations per *completed* request (shed requests are not
        violations — they were refused, not served late)."""
        return self.violations / self.completed if self.completed else 0.0


@dataclass
class SLOTracker:
    """Streaming per-tenant SLO counters (bounded by the tenant count)."""

    config: SLOConfig = field(default_factory=SLOConfig)
    tenants: dict[str, TenantSLOStats] = field(default_factory=dict)

    def _tenant(self, tenant: str) -> TenantSLOStats:
        stats = self.tenants.get(tenant)
        if stats is None:
            stats = self.tenants[tenant] = TenantSLOStats()
        return stats

    def record_completion(self, tenant: str, latency_s: float) -> bool:
        """Count one served request; True when it violated its target."""
        stats = self._tenant(tenant)
        stats.completed += 1
        target = self.config.target_for(tenant)
        violated = target is not None and latency_s > target
        if violated:
            stats.violations += 1
        return violated

    def record_shed(self, tenant: str) -> None:
        self._tenant(tenant).shed += 1

    def record_failed(self, tenant: str) -> None:
        """Count one request lost to a fault (not a latency violation)."""
        self._tenant(tenant).failed += 1

    @property
    def completed(self) -> int:
        return sum(t.completed for t in self.tenants.values())

    @property
    def violations(self) -> int:
        return sum(t.violations for t in self.tenants.values())

    @property
    def shed(self) -> int:
        return sum(t.shed for t in self.tenants.values())

    @property
    def failed(self) -> int:
        return sum(t.failed for t in self.tenants.values())

    @property
    def violation_rate(self) -> float:
        completed = self.completed
        return self.violations / completed if completed else 0.0

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-tenant counters, bit-comparable and JSON-ready."""
        return {
            tenant: {
                "completed": t.completed,
                "violations": t.violations,
                "shed": t.shed,
                "failed": t.failed,
                "violation_rate": t.violation_rate,
            }
            for tenant, t in sorted(self.tenants.items())
        }

    def publish_metrics(self, registry, prefix: str = "slo") -> None:
        """Publish per-tenant counters as ``slo.tenant.<t>.*`` gauges.

        Gauges, not counters: publication is a point-in-time snapshot
        and must stay idempotent under repeated collection.
        """
        for tenant, counters in self.snapshot().items():
            for name, value in counters.items():
                registry.gauge(f"{prefix}.tenant.{tenant}.{name}").set(value)
