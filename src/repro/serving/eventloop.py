"""The simulated-time event loop: arrivals, queues, tail latency.

The original serving path replays a trace *synchronously*: every
request is measured back-to-back and throughput is derived after the
fact from the batch scheduler's dense timeline.  That answers "how fast
can the service go" but not the production question — "what latency do
requests *see* when they arrive on their own clock?"  There is no
queueing in a closed-loop replay, hence no p99 and nothing for
admission control to do.

This module is the open-loop core.  Requests arrive with explicit
timestamps (a :class:`~repro.workloads.WorkloadSpec` arrival process),
queue FIFO per replica, and each request accrues

    latency = queue wait + predict + execute

on one monotone simulated clock.  The loop streams: per-request state
lives only while the request is in flight, and everything reported at
the end — latency/queue/service histograms, per-tenant SLO counters,
shed counts — is bounded-memory (:mod:`repro.serving.histogram`), so a
million-request trace produces a histogram, not a list of responses.

Admission control runs at arrival time (:mod:`repro.serving.slo`):
``deadline`` sheds requests whose predicted completion already misses
their SLO target, ``priority`` sheds only low-priority tenants.  The
backlog prediction uses a per-replica EWMA of observed service times,
so the decision is deterministic and needs no oracle.

Replicas serve one request at a time.  Execution time comes from the
normal serving loop (:meth:`PartitioningService.submit` at service
*start*, so adaptation/refit state evolves in start order exactly as
it would synchronously); predict time is a configurable simulated cost
that distinguishes a cache hit from a model inference.  Between
requests the replica's devices sit idle on the simulated wall clock,
and that idle span is priced into the runner's
:class:`~repro.runtime.measurement.SessionStats` as idle joules —
energy accounting follows simulated time, not just launch makespans.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..energy.meter import EnergyMeter
from .histogram import LatencyHistogram
from .slo import SHED_POLICIES, SLOConfig, SLOTracker
from .trace import ServingRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fleet.router import FleetRouter
    from ..workloads.spec import DriftEvent
    from .service import PartitioningService, ServedResponse

__all__ = [
    "EventLoopConfig",
    "EventLoopStats",
    "CompletedRequest",
    "EventLoop",
]

#: A timed item on the arrival stream: (timestamp, request-or-drift).
TimedItem = "tuple[float, ServingRequest | DriftEvent]"


@dataclass(frozen=True)
class EventLoopConfig:
    """Knobs of the event-driven serving core.

    Attributes:
        predict_hit_s: simulated seconds one prediction-cache hit adds
            to a request's latency (a dictionary lookup).
        predict_miss_s: simulated seconds a cache miss adds (feature
            assembly + model inference).
        shed_policy: one of :data:`~repro.serving.slo.SHED_POLICIES`.
        slo: latency targets and tenant priorities; shedding policies
            other than ``none`` need at least a default target.
        backlog_alpha: EWMA smoothing of the per-replica observed
            service time the admission test predicts backlogs with.
        initial_service_s: backlog estimate before a replica has
            served anything (only admission decisions read it).
        meter_idle: price inter-request idle spans into the runners'
            session stats (simulated-time energy accounting).
    """

    predict_hit_s: float = 2e-6
    predict_miss_s: float = 5e-5
    shed_policy: str = "none"
    slo: SLOConfig = field(default_factory=SLOConfig)
    backlog_alpha: float = 0.3
    initial_service_s: float = 1e-3
    meter_idle: bool = True

    def __post_init__(self) -> None:
        if self.predict_hit_s < 0 or self.predict_miss_s < 0:
            raise ValueError("predict costs must be non-negative")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {self.shed_policy!r}; "
                f"choose from {SHED_POLICIES}"
            )
        if not 0.0 < self.backlog_alpha <= 1.0:
            raise ValueError("backlog_alpha must be in (0, 1]")
        if not self.initial_service_s > 0:
            raise ValueError("initial_service_s must be positive")
        if self.shed_policy != "none" and self.slo.target_s is None and not (
            self.slo.tenant_targets
        ):
            raise ValueError(
                f"shed policy {self.shed_policy!r} needs an SLO target to shed "
                "against (slo.target_s or tenant_targets)"
            )


@dataclass(frozen=True)
class CompletedRequest:
    """One finished request, handed to the optional observer callback.

    The loop itself never stores these — tests and debuggers opt in
    via ``on_complete`` and pay the memory themselves.
    """

    request: ServingRequest
    replica_index: int
    arrival_s: float
    start_s: float
    finish_s: float
    queue_s: float
    service_s: float
    violated: bool

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s


@dataclass
class EventLoopStats:
    """Everything one event-loop run reports, in bounded memory."""

    arrivals: int = 0
    admitted: int = 0
    completed: int = 0
    shed: int = 0
    #: Final value of the monotone simulated clock.
    clock_s: float = 0.0
    #: Sum of every served request's predict + execute span.
    service_time_s: float = 0.0
    #: Sum of every served request's execute span alone.
    execute_time_s: float = 0.0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    queue_wait: LatencyHistogram = field(default_factory=LatencyHistogram)
    service: LatencyHistogram = field(default_factory=LatencyHistogram)
    slo: SLOTracker = field(default_factory=SLOTracker)
    replica_completed: list[int] = field(default_factory=list)
    replica_busy_s: list[float] = field(default_factory=list)
    #: Joules of inter-request device idle, priced on the loop clock.
    idle_energy_j: float = 0.0

    @property
    def in_flight(self) -> int:
        """Requests admitted but not yet completed (0 after a drain)."""
        return self.admitted - self.completed

    @property
    def throughput_rps(self) -> float:
        """Completions per simulated second of the loop clock."""
        return self.completed / self.clock_s if self.clock_s > 0 else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.arrivals if self.arrivals else 0.0

    @property
    def violation_rate(self) -> float:
        return self.slo.violation_rate

    def to_dict(self) -> dict:
        """JSON-ready summary (benchmarks and baselines consume this)."""
        return {
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "clock_s": self.clock_s,
            "throughput_rps": self.throughput_rps,
            "latency": self.latency.to_dict(),
            "queue_wait": self.queue_wait.to_dict(),
            "service": self.service.to_dict(),
            "violation_rate": self.violation_rate,
            "tenants": self.slo.snapshot(),
            "idle_energy_j": self.idle_energy_j,
        }


@dataclass
class _ReplicaState:
    """Event-loop-side queue and clock of one serving replica."""

    index: int
    idle_w: float
    est_service_s: float
    queue: deque = field(default_factory=deque)
    busy: bool = False
    free_at: float = 0.0
    #: Instant the replica last became idle (idle-span metering).
    idle_since: float = 0.0
    busy_s: float = 0.0


class _ServiceBackend:
    """One :class:`PartitioningService` behind the loop."""

    def __init__(self, service: "PartitioningService"):
        self.services = [service]

    def place(self, request: ServingRequest) -> int:
        return 0

    def serve(self, index: int, request: ServingRequest) -> "ServedResponse":
        return self.services[0].submit(request)


class _FleetBackend:
    """A :class:`FleetRouter` behind the loop: policy placement per arrival."""

    def __init__(self, router: "FleetRouter"):
        self.router = router
        self.services = [r.service for r in router.replicas]

    def place(self, request: ServingRequest) -> int:
        return self.router.place(request)

    def serve(self, index: int, request: ServingRequest) -> "ServedResponse":
        return self.router.serve_on(index, request).response


class EventLoop:
    """Single-use simulated-time serving loop over one backend.

    Build one per trace (:meth:`for_service` / :meth:`for_fleet`), feed
    it a stream of ``(arrival_s, request)`` items — non-decreasing in
    time, optionally interleaved with
    :class:`~repro.workloads.DriftEvent` payloads — and read the
    :class:`EventLoopStats` it returns.
    """

    def __init__(self, backend, config: EventLoopConfig = EventLoopConfig()):
        self.backend = backend
        self.config = config
        self.stats = EventLoopStats(slo=SLOTracker(config.slo))
        self._replicas = [
            _ReplicaState(
                index=i,
                idle_w=EnergyMeter(s.system.runner.devices).platform_idle_w(),
                est_service_s=config.initial_service_s,
            )
            for i, s in enumerate(backend.services)
        ]
        self.stats.replica_completed = [0] * len(self._replicas)
        self.stats.replica_busy_s = [0.0] * len(self._replicas)
        #: (finish_s, admit_seq, replica, arrival_s, start_s, service_s,
        #: request, violated-placeholder) — bounded by one per replica.
        self._completions: list = []
        self._seq = 0
        self._clock = 0.0
        self._ran = False

    @classmethod
    def for_service(
        cls, service: "PartitioningService", config: EventLoopConfig = EventLoopConfig()
    ) -> "EventLoop":
        return cls(_ServiceBackend(service), config)

    @classmethod
    def for_fleet(
        cls, router: "FleetRouter", config: EventLoopConfig = EventLoopConfig()
    ) -> "EventLoop":
        return cls(_FleetBackend(router), config)

    # -- the loop ----------------------------------------------------------

    def run(
        self,
        arrivals: Iterable,
        on_complete: Callable[[CompletedRequest], None] | None = None,
        drift_handler: "Callable[[DriftEvent], None] | None" = None,
    ) -> EventLoopStats:
        """Play the whole arrival stream and drain every queue.

        ``arrivals`` yields ``(timestamp, payload)`` with non-decreasing
        timestamps; a payload that is not a :class:`ServingRequest` is
        treated as a drift event and handed to ``drift_handler`` at its
        place on the simulated timeline (so requests already queued are
        measured on the drifted hardware, exactly as a wall-clock drift
        would hit them).
        """
        if self._ran:
            raise RuntimeError("an EventLoop is single-use; build a new one")
        self._ran = True
        last_arrival = 0.0
        for at_s, payload in arrivals:
            if at_s < last_arrival:
                raise ValueError(
                    f"arrival timestamps must be non-decreasing "
                    f"(got {at_s} after {last_arrival})"
                )
            last_arrival = at_s
            # Completions due before this arrival happen first — the
            # simulated clock never moves backwards.
            while self._completions and self._completions[0][0] <= at_s:
                self._complete(on_complete)
            self._clock = max(self._clock, at_s)
            if isinstance(payload, ServingRequest):
                self._arrive(payload, on_complete)
            else:
                if drift_handler is None:
                    raise ValueError(
                        "arrival stream carries a drift event but no "
                        "drift_handler was given"
                    )
                drift_handler(payload)
        while self._completions:
            self._complete(on_complete)
        self.stats.clock_s = self._clock
        if self.config.meter_idle:
            self._meter_trailing_idle()
        return self.stats

    def _arrive(
        self,
        request: ServingRequest,
        on_complete: Callable[[CompletedRequest], None] | None,
    ) -> None:
        self.stats.arrivals += 1
        replica = self._replicas[self.backend.place(request)]
        if self._should_shed(replica, request):
            self.stats.shed += 1
            self.stats.slo.record_shed(request.tenant)
            return
        self.stats.admitted += 1
        self._seq += 1
        replica.queue.append((self._clock, self._seq, request))
        if not replica.busy:
            self._start_service(replica, self._clock)

    def _should_shed(self, replica: _ReplicaState, request: ServingRequest) -> bool:
        """Deadline-aware admission: predicted completion vs SLO target."""
        policy = self.config.shed_policy
        if policy == "none":
            return False
        target = self.config.slo.target_for(request.tenant)
        if target is None:
            return False
        if policy == "priority" and (
            self.config.slo.priority_for(request.tenant)
            >= self.config.slo.shed_below_priority
        ):
            return False
        # Work-conserving: an idle replica always admits.  Shedding into
        # an idle server never helps, and admitting keeps the service-time
        # EWMA calibrated even when the initial estimate blows the target.
        if not replica.busy and not replica.queue:
            return False
        wait = max(replica.free_at - self._clock, 0.0) if replica.busy else 0.0
        predicted = wait + (len(replica.queue) + 1) * replica.est_service_s
        return predicted > target

    def _start_service(self, replica: _ReplicaState, now: float) -> None:
        arrival_s, seq, request = replica.queue.popleft()
        if self.config.meter_idle and now > replica.idle_since:
            self._record_idle(replica, now - replica.idle_since)
        response = self.backend.serve(replica.index, request)
        predict_s = (
            self.config.predict_hit_s
            if response.cache_hit
            else self.config.predict_miss_s
        )
        service_s = predict_s + response.measured_s
        replica.busy = True
        replica.free_at = now + service_s
        alpha = self.config.backlog_alpha
        replica.est_service_s = (
            alpha * service_s + (1.0 - alpha) * replica.est_service_s
        )
        self.stats.service_time_s += service_s
        self.stats.execute_time_s += response.measured_s
        heapq.heappush(
            self._completions,
            (replica.free_at, seq, replica.index, arrival_s, now, service_s, request),
        )

    def _complete(self, on_complete) -> None:
        finish_s, _seq, index, arrival_s, start_s, service_s, request = heapq.heappop(
            self._completions
        )
        self._clock = max(self._clock, finish_s)
        replica = self._replicas[index]
        replica.busy = False
        replica.idle_since = finish_s
        replica.busy_s += service_s
        latency_s = finish_s - arrival_s
        queue_s = start_s - arrival_s
        self.stats.completed += 1
        self.stats.replica_completed[index] += 1
        self.stats.replica_busy_s[index] = replica.busy_s
        self.stats.latency.record(latency_s)
        self.stats.queue_wait.record(queue_s)
        self.stats.service.record(service_s)
        violated = self.stats.slo.record_completion(request.tenant, latency_s)
        if on_complete is not None:
            on_complete(
                CompletedRequest(
                    request=request,
                    replica_index=index,
                    arrival_s=arrival_s,
                    start_s=start_s,
                    finish_s=finish_s,
                    queue_s=queue_s,
                    service_s=service_s,
                    violated=violated,
                )
            )
        if replica.queue:
            self._start_service(replica, finish_s)

    # -- simulated-time energy accounting ----------------------------------

    def _record_idle(self, replica: _ReplicaState, span_s: float) -> None:
        """Price one inter-request idle span into the replica's runner."""
        runner = self.backend.services[replica.index].system.runner
        runner.stats.record_idle(span_s, replica.idle_w)
        self.stats.idle_energy_j += span_s * replica.idle_w
        if not math.isfinite(self.stats.idle_energy_j):  # pragma: no cover
            raise AssertionError("idle energy overflowed")

    def _meter_trailing_idle(self) -> None:
        """Close every replica's idle span at the final clock.

        After the drain each replica has been idle since its last
        completion; accounting that tail makes busy + idle equal the
        loop span per replica, so utilization and average power over
        the *simulated wall clock* come out of the session stats.
        """
        for replica in self._replicas:
            if self._clock > replica.idle_since:
                self._record_idle(replica, self._clock - replica.idle_since)
                replica.idle_since = self._clock


def timed(
    requests: Iterable[ServingRequest], times: Iterable[float]
) -> Iterator[tuple[float, ServingRequest]]:
    """Zip arrival timestamps onto a request stream."""
    return zip(times, requests)
