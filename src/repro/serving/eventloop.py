"""The simulated-time event loop: arrivals, queues, tail latency, faults.

The original serving path replays a trace *synchronously*: every
request is measured back-to-back and throughput is derived after the
fact from the batch scheduler's dense timeline.  That answers "how fast
can the service go" but not the production question — "what latency do
requests *see* when they arrive on their own clock?"  There is no
queueing in a closed-loop replay, hence no p99 and nothing for
admission control to do.

This module is the open-loop core.  Requests arrive with explicit
timestamps (a :class:`~repro.workloads.WorkloadSpec` arrival process),
queue FIFO per replica, and each request accrues

    latency = queue wait + predict + execute

on one monotone simulated clock.  The loop streams: per-request state
lives only while the request is in flight, and everything reported at
the end — latency/queue/service histograms, per-tenant SLO counters,
shed counts — is bounded-memory (:mod:`repro.serving.histogram`), so a
million-request trace produces a histogram, not a list of responses.

Admission control runs at arrival time (:mod:`repro.serving.slo`):
``deadline`` sheds requests whose predicted completion already misses
their SLO target, ``priority`` sheds only low-priority tenants.  The
backlog prediction uses a per-replica EWMA of observed service times
plus the in-flight duplicate count (pending retries), so the decision
is deterministic and needs no oracle.

Nothing in production completes every dispatched request, so neither
does the loop.  A seeded :class:`~repro.faults.FaultSchedule` injects
replica crashes, straggler slowdown windows and transient errors; the
*handling* side threads through the same event heap: SLO-derived
per-request timeouts, bounded retries with exponential backoff under a
retry-token budget, hedged duplicates fired when a request outlives a
latency-percentile trigger (first completion wins, the loser is
cancelled and its remaining busy span reclaimed), and failover that
routes around crashed replicas and redistributes their queued work.
Every outcome is counted, so conservation tightens to

    arrivals == completed + shed + failed

and a faulted run is exactly as reproducible as a clean one.

At cluster scope (:class:`~repro.cluster.ClusterRouter` behind
``for_cluster``) the loop adds straggler-escape machinery beyond
drain-and-rewarm: *speculative re-execution* launches a duplicate in a
different machine pool when a request outlives a latency-quantile
trigger (first completion wins, the loser is cancelled and retired),
and *work-stealing* lets a replica that just went idle pull the
tail-most queued attempt from the most backlogged replica of another
pool.  Every speculative launch is retired exactly once, so the
identity extends to

    arrivals + speculations == completed + shed + failed + cancelled_speculative

which reduces to the plain form whenever speculation is off.  All of
it is opt-in: with the new knobs at their defaults the loop replays
pre-cluster traces event for event.

Replicas serve one request at a time.  Execution time comes from the
normal serving loop (:meth:`PartitioningService.submit` at service
*start*, so adaptation/refit state evolves in start order exactly as
it would synchronously); predict time is a configurable simulated cost
that distinguishes a cache hit from a model inference.  Between
requests the replica's devices sit idle on the simulated wall clock,
and that idle span is priced into the runner's
:class:`~repro.runtime.measurement.SessionStats` as idle joules —
crashed downtime is idle too: the devices draw idle watts while the
replica is unavailable, so busy + idle still tile the loop span.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..energy.meter import EnergyMeter
from ..faults import FaultInjector, FaultSchedule
from ..telemetry import MetricsRegistry, Telemetry
from .histogram import LatencyHistogram
from .slo import SHED_POLICIES, SLOConfig, SLOTracker, shed_decision
from .trace import GraphServingRequest, ServingRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.router import ClusterRouter
    from ..fleet.router import FleetRouter
    from ..workloads.spec import DriftEvent
    from .service import GraphServedResponse, PartitioningService, ServedResponse

#: What a backend's ``serve`` may return: the loop only reads
#: ``cache_hit`` and ``measured_s``, which both response types carry.
AnyResponse = "ServedResponse | GraphServedResponse"

#: What may arrive on the request stream: a kernel launch or a whole
#: task graph (per-graph latency = queue + predict + composed critical
#: path, accumulated on the same simulated clock).
AnyRequest = (ServingRequest, GraphServingRequest)

__all__ = [
    "QUEUE_DISCIPLINES",
    "EventLoopConfig",
    "EventLoopStats",
    "CompletedRequest",
    "EventLoop",
]

#: Per-replica queue service orders the loop supports.
QUEUE_DISCIPLINES = ("fifo", "weighted-fair")

#: A timed item on the arrival stream: (timestamp, request-or-drift).
TimedItem = "tuple[float, ServingRequest | DriftEvent]"


@dataclass(frozen=True)
class EventLoopConfig:
    """Knobs of the event-driven serving core.

    Attributes:
        predict_hit_s: simulated seconds one prediction-cache hit adds
            to a request's latency (a dictionary lookup).
        predict_miss_s: simulated seconds a cache miss adds (feature
            assembly + model inference).
        shed_policy: one of :data:`~repro.serving.slo.SHED_POLICIES`.
        slo: latency targets and tenant priorities; shedding policies
            other than ``none`` need at least a default target.
        backlog_alpha: EWMA smoothing of the per-replica observed
            service time the admission test predicts backlogs with.
        initial_service_s: backlog estimate before a replica has
            served anything (only admission decisions read it).
        meter_idle: price inter-request idle spans into the runners'
            session stats (simulated-time energy accounting).
        faults: seeded fault schedule to inject, or ``None`` for a
            fault-free run (the default; identical to the pre-fault
            loop, event for event).
        timeout_factor: fail a request outright once its age exceeds
            ``timeout_factor ×`` its tenant's SLO target; ``None``
            disables timeouts.  Needs an SLO target to derive from.
        max_retries: service attempts a request may consume *beyond*
            its first (and beyond any hedge), each after a transient
            failure.
        retry_backoff_s: base backoff before retry ``n`` fires, doubling
            each time (``retry_backoff_s × 2^(n-1)``).
        retry_budget: retry tokens earned per admitted request; one
            retry spends one token.  0.2 caps retry traffic at ~20% of
            admissions, so a fault storm cannot melt into a retry storm.
        hedge_at: latency quantile (e.g. ``0.95``) of completions so
            far whose value triggers one hedged duplicate for any
            request older than it; ``None`` disables hedging.
        hedge_min_completions: completions observed before the hedge
            trigger is trusted (an empty histogram hedges nothing).
        failover: route arrivals and retries around crashed replicas
            and redistribute a crashed replica's queue; ``False`` is
            the availability baseline where work stays stranded.
        speculate_at: latency quantile whose value triggers one
            speculative re-execution of any request older than it;
            ``None`` disables speculation.  Unlike a hedge (which races
            a duplicate on the least-loaded replica anywhere), a
            speculative copy asks the backend where to escape to — on
            a cluster that means a *different pool* than every live
            copy, which is what beats pool-local straggler windows.
        speculate_min_completions: completions observed before the
            speculation trigger is trusted.
        work_steal: let a replica that just went idle pull the
            tail-most queued attempt from the most backlogged replica
            the backend names as a victim (cross-pool on a cluster);
            off by default — stealing reorders queues, so it must be
            opted into.
        queue_discipline: ``"fifo"`` (arrival order per replica) or
            ``"weighted-fair"`` (start-time fair queueing: each
            tenant's attempts carry virtual finish tags advanced by
            ``est_service / weight``, and the replica serves the
            smallest tag first, so a high-priority tenant's queue
            share tracks its weight instead of its arrival rate).
        telemetry: the run's :class:`~repro.telemetry.Telemetry`
            context, or ``None`` (the default) for no tracing and a
            loop-private metrics registry.  With a context the loop's
            stats publish into its shared registry, and in ``trace``
            mode every request is traced span by span.
    """

    predict_hit_s: float = 2e-6
    predict_miss_s: float = 5e-5
    shed_policy: str = "none"
    slo: SLOConfig = field(default_factory=SLOConfig)
    backlog_alpha: float = 0.3
    initial_service_s: float = 1e-3
    meter_idle: bool = True
    faults: FaultSchedule | None = None
    timeout_factor: float | None = None
    max_retries: int = 2
    retry_backoff_s: float = 1e-3
    retry_budget: float = 0.2
    hedge_at: float | None = None
    hedge_min_completions: int = 32
    failover: bool = True
    speculate_at: float | None = None
    speculate_min_completions: int = 32
    work_steal: bool = False
    queue_discipline: str = "fifo"
    telemetry: Telemetry | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.predict_hit_s < 0 or self.predict_miss_s < 0:
            raise ValueError("predict costs must be non-negative")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {self.shed_policy!r}; "
                f"choose from {SHED_POLICIES}"
            )
        if not 0.0 < self.backlog_alpha <= 1.0:
            raise ValueError("backlog_alpha must be in (0, 1]")
        if not self.initial_service_s > 0:
            raise ValueError("initial_service_s must be positive")
        has_target = self.slo.target_s is not None or bool(self.slo.tenant_targets)
        if self.shed_policy != "none" and not has_target:
            raise ValueError(
                f"shed policy {self.shed_policy!r} needs an SLO target to shed "
                "against (slo.target_s or tenant_targets)"
            )
        if self.timeout_factor is not None:
            if not self.timeout_factor > 0:
                raise ValueError("timeout_factor must be positive")
            if not has_target:
                raise ValueError(
                    "timeout_factor derives timeouts from the SLO target "
                    "(slo.target_s or tenant_targets); none is set"
                )
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be non-negative")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")
        if self.hedge_at is not None and not 0.0 < self.hedge_at < 1.0:
            raise ValueError("hedge_at is a quantile in (0, 1)")
        if self.hedge_min_completions < 1:
            raise ValueError("hedge_min_completions must be >= 1")
        if self.speculate_at is not None and not 0.0 < self.speculate_at < 1.0:
            raise ValueError("speculate_at is a quantile in (0, 1)")
        if self.speculate_min_completions < 1:
            raise ValueError("speculate_min_completions must be >= 1")
        if self.queue_discipline not in QUEUE_DISCIPLINES:
            raise ValueError(
                f"unknown queue discipline {self.queue_discipline!r}; "
                f"choose from {QUEUE_DISCIPLINES}"
            )


@dataclass(frozen=True)
class CompletedRequest:
    """One finished request, handed to the optional observer callback.

    The loop itself never stores these — tests and debuggers opt in
    via ``on_complete`` and pay the memory themselves.
    """

    request: ServingRequest
    replica_index: int
    arrival_s: float
    start_s: float
    finish_s: float
    queue_s: float
    service_s: float
    violated: bool
    #: Service attempts this request consumed (first + retries + hedge).
    attempts: int = 1
    #: Whether a hedged duplicate was fired for it.
    hedged: bool = False
    #: Speculative re-executions fired for it (cluster straggler escape).
    speculated: int = 0

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s


#: Scalar stats attribute → stable dotted registry name.  ``clock_s``
#: is a gauge (last value of the monotone clock); the rest are counters
#: whose integer cells stay integers, so JSON baselines compare exactly.
_STAT_SCALARS = {
    "arrivals": "loop.arrivals",
    "admitted": "loop.admitted",
    "completed": "loop.completed",
    "shed": "loop.shed",
    "failed": "loop.failed",
    "clock_s": "loop.clock_s",
    "service_time_s": "loop.service_time_s",
    "execute_time_s": "loop.execute_time_s",
    "idle_energy_j": "loop.idle_energy_j",
    "timeouts": "loop.faults.timeouts",
    "retries": "loop.faults.retries",
    "hedges": "loop.faults.hedges",
    "hedge_wins": "loop.faults.hedge_wins",
    "hedge_cancels": "loop.faults.hedge_cancels",
    "failovers": "loop.faults.failovers",
    "requeued": "loop.faults.requeued",
    "crashes": "loop.faults.crashes",
    "recoveries": "loop.faults.recoveries",
    "exec_errors": "loop.faults.exec_errors",
    "predict_errors": "loop.faults.predict_errors",
    "cancelled_busy_s": "loop.faults.cancelled_busy_s",
    "speculations": "loop.faults.speculations",
    "spec_wins": "loop.faults.spec_wins",
    "cancelled_speculative": "loop.faults.cancelled_speculative",
    "steals": "loop.faults.steals",
}


class EventLoopStats:
    """Everything one event-loop run reports, in bounded memory.

    Since the telemetry layer landed this is a *thin view* over a
    :class:`~repro.telemetry.MetricsRegistry`: every scalar lives in
    the registry under its :data:`_STAT_SCALARS` dotted name and the
    three histograms are registry-owned (``loop.latency`` /
    ``loop.queue_wait`` / ``loop.service``).  The attribute API is
    unchanged — ``stats.completed``, ``stats.retries += 1`` and
    ``to_dict()`` read and write the registry cells through properties
    — so pre-registry callers and committed baselines see identical
    numbers, while ``metrics-report`` reads the same cells by name.

    Scalar semantics (see also :meth:`to_dict`):

    * ``failed`` — admitted requests lost to faults: timed out, out of
      retries, or stranded by a crash with failover off.
    * ``clock_s`` — final value of the monotone simulated clock.
    * ``service_time_s`` / ``execute_time_s`` — sums of every
      dispatched attempt's predict + execute span / execute span alone.
    * ``idle_energy_j`` — joules of inter-request device idle.
    * ``cancelled_busy_s`` — busy seconds reclaimed by cancelling
      losing/lost attempts early.
    * ``speculations`` / ``spec_wins`` / ``cancelled_speculative`` —
      cluster-scope speculative re-execution accounting; every launch
      retires exactly once, extending conservation to ``arrivals +
      speculations == completed + shed + failed +
      cancelled_speculative`` (the plain ``arrivals == completed +
      shed + failed`` whenever speculation is off).
    * ``steals`` — queued attempts pulled to an idle replica.
    """

    def __init__(
        self,
        slo: SLOTracker | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.slo = slo if slo is not None else SLOTracker()
        self.latency: LatencyHistogram = self.registry.histogram("loop.latency")
        self.queue_wait: LatencyHistogram = self.registry.histogram(
            "loop.queue_wait"
        )
        self.service: LatencyHistogram = self.registry.histogram("loop.service")
        self.replica_completed: list[int] = []
        self.replica_busy_s: list[float] = []
        self._cells = {
            attr: (
                self.registry.gauge(name)
                if attr == "clock_s"
                else self.registry.counter(name)
            )
            for attr, name in _STAT_SCALARS.items()
        }

    @property
    def in_flight(self) -> int:
        """Requests admitted but not yet resolved (0 after a drain)."""
        return self.admitted - self.completed - self.failed

    @property
    def availability(self) -> float:
        """Completed fraction of all arrivals (sheds and failures count
        against it — a refused or lost request was not served)."""
        return self.completed / self.arrivals if self.arrivals else 1.0

    @property
    def throughput_rps(self) -> float:
        """Completions per simulated second of the loop clock."""
        return self.completed / self.clock_s if self.clock_s > 0 else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.arrivals if self.arrivals else 0.0

    @property
    def violation_rate(self) -> float:
        return self.slo.violation_rate

    def to_dict(self) -> dict:
        """JSON-ready summary (benchmarks and baselines consume this)."""
        return {
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "failed": self.failed,
            "availability": self.availability,
            "clock_s": self.clock_s,
            "throughput_rps": self.throughput_rps,
            "latency": self.latency.to_dict(),
            "queue_wait": self.queue_wait.to_dict(),
            "service": self.service.to_dict(),
            "violation_rate": self.violation_rate,
            "tenants": self.slo.snapshot(),
            "idle_energy_j": self.idle_energy_j,
            "faults": {
                "timeouts": self.timeouts,
                "retries": self.retries,
                "hedges": self.hedges,
                "hedge_wins": self.hedge_wins,
                "hedge_cancels": self.hedge_cancels,
                "failovers": self.failovers,
                "requeued": self.requeued,
                "crashes": self.crashes,
                "recoveries": self.recoveries,
                "exec_errors": self.exec_errors,
                "predict_errors": self.predict_errors,
                "cancelled_busy_s": self.cancelled_busy_s,
                "speculations": self.speculations,
                "spec_wins": self.spec_wins,
                "cancelled_speculative": self.cancelled_speculative,
                "steals": self.steals,
            },
        }


def _stat_cell_property(attr: str) -> property:
    """A read/write property over one registry cell of the stats view."""

    def fget(self):
        return self._cells[attr].value

    def fset(self, value):
        self._cells[attr].value = value

    return property(fget, fset)


for _attr in _STAT_SCALARS:
    setattr(EventLoopStats, _attr, _stat_cell_property(_attr))
del _attr


@dataclass
class _Pending:
    """One admitted request, alive until it completes or fails."""

    seq: int
    request: ServingRequest
    arrival_s: float
    #: Service attempts started so far (feeds the error hash draws).
    attempts: int = 0
    #: Retries consumed (bounded by ``max_retries``).
    retries: int = 0
    hedged: bool = False
    #: Speculative re-executions launched for this request; retired
    #: into ``cancelled_speculative`` exactly once, at resolution.
    speculated: int = 0
    done: bool = False
    #: Attempts currently queued or running on some replica.
    live: list = field(default_factory=list)


@dataclass
class _Attempt:
    """One queued-or-running service attempt of a pending request."""

    pending: _Pending
    replica: int
    is_hedge: bool = False
    #: A speculative re-execution (cluster straggler escape); accounted
    #: apart from hedges so wins/cancels stay attributable.
    is_spec: bool = False
    running: bool = False
    cancelled: bool = False
    start_s: float = 0.0
    finish_s: float = 0.0
    service_s: float = 0.0
    #: Weighted-fair virtual finish tag (0 under FIFO).
    vtag: float = 0.0
    #: Tracer marker id (0 when tracing is off).
    tid: int = 0


@dataclass
class _ReplicaState:
    """Event-loop-side queue and clock of one serving replica."""

    index: int
    idle_w: float
    est_service_s: float
    queue: deque = field(default_factory=deque)
    busy: bool = False
    free_at: float = 0.0
    #: Instant the replica last became idle (idle-span metering).
    idle_since: float = 0.0
    busy_s: float = 0.0
    crashed: bool = False
    #: Recovery instant while crashed (∞ when up); failover fallback
    #: uses it to pick the least-bad replica when the whole fleet is down.
    recover_at: float = math.inf
    #: The attempt in service right now, if any.
    current: _Attempt | None = None
    #: Live (non-cancelled) entries in ``queue`` — the deque may also
    #: hold lazily-cancelled attempts that are skipped on pop.
    queued_live: int = 0


class _ServiceBackend:
    """One :class:`PartitioningService` behind the loop."""

    def __init__(self, service: "PartitioningService"):
        self.services = [service]

    def place(self, request: "ServingRequest | GraphServingRequest") -> int:
        return 0

    def serve(
        self, index: int, request: "ServingRequest | GraphServingRequest"
    ) -> AnyResponse:
        if isinstance(request, GraphServingRequest):
            return self.services[0].submit_graph(request)
        return self.services[0].submit(request)

    def tick(self, now_s: float) -> None:
        pass


class _FleetBackend:
    """A :class:`FleetRouter` behind the loop: policy placement per arrival."""

    def __init__(self, router: "FleetRouter"):
        self.router = router
        self.services = [r.service for r in router.replicas]

    def place(self, request: "ServingRequest | GraphServingRequest") -> int:
        # Graph requests bypass the router's model-peek policies (those
        # interrogate per-kernel predictors); a deterministic spread
        # keeps fleet graph traffic balanced without asking any model.
        if isinstance(request, GraphServingRequest):
            return request.request_id % len(self.services)
        return self.router.place(request)

    def serve(
        self, index: int, request: "ServingRequest | GraphServingRequest"
    ) -> AnyResponse:
        if isinstance(request, GraphServingRequest):
            return self.services[index].submit_graph(request)
        return self.router.serve_on(index, request).response

    def tick(self, now_s: float) -> None:
        # Simulated time reaches the router so drain cooldowns decay
        # even when no placements arrive (see FleetRouter.tick).
        self.router.tick(now_s)


class _ClusterBackend:
    """A :class:`ClusterRouter` behind the loop: pools, tenants, network.

    Replica indices are the cluster's *flat* indices (pool 0's replicas
    first); the response's ``measured_s`` already carries the
    interconnect handoff when the cluster served a request outside its
    tenant's home pool, so network time accrues into latency with no
    special-casing in the loop.  Beyond ``place``/``serve``/``tick``
    the backend exports the two cluster-scope straggler hooks the loop
    probes for: :meth:`speculative_index` (escape the pools already
    running a copy) and :meth:`steal_candidates` (cross-pool victims).
    """

    def __init__(self, cluster: "ClusterRouter"):
        self.cluster = cluster
        self.services = cluster.services

    def place(self, request: "ServingRequest | GraphServingRequest") -> int:
        return self.cluster.place(request)

    def serve(
        self, index: int, request: "ServingRequest | GraphServingRequest"
    ) -> AnyResponse:
        return self.cluster.serve_on(index, request)

    def tick(self, now_s: float) -> None:
        self.cluster.tick(now_s)

    def speculative_index(
        self, request: "ServingRequest | GraphServingRequest", exclude: set[int]
    ) -> int | None:
        return self.cluster.speculative_index(request, exclude)

    def steal_candidates(self, thief: int) -> tuple[int, ...]:
        return self.cluster.steal_candidates(thief)


class EventLoop:
    """Single-use simulated-time serving loop over one backend.

    Build one per trace (:meth:`for_service` / :meth:`for_fleet`), feed
    it a stream of ``(arrival_s, request)`` items — non-decreasing in
    time, optionally interleaved with
    :class:`~repro.workloads.DriftEvent` payloads — and read the
    :class:`EventLoopStats` it returns.

    Everything that happens between arrivals — completions, attempt
    failures, retry firings, hedge triggers, timeouts, crashes and
    recoveries — lives on one typed event heap ordered by
    ``(time, schedule seq)``, so the simulation is a deterministic
    function of the trace and the fault schedule.
    """

    def __init__(self, backend, config: EventLoopConfig = EventLoopConfig()):
        self.backend = backend
        self.config = config
        #: Span tracer of the run's telemetry context (None = tracing
        #: off; the disabled path costs one ``is None`` test per hook).
        self._tracer = (
            config.telemetry.tracer if config.telemetry is not None else None
        )
        self.stats = EventLoopStats(
            slo=SLOTracker(config.slo),
            registry=(
                config.telemetry.registry
                if config.telemetry is not None
                else None
            ),
        )
        self._replicas = [
            _ReplicaState(
                index=i,
                idle_w=EnergyMeter(s.system.runner.devices).platform_idle_w(),
                est_service_s=config.initial_service_s,
            )
            for i, s in enumerate(backend.services)
        ]
        self.stats.replica_completed = [0] * len(self._replicas)
        self.stats.replica_busy_s = [0.0] * len(self._replicas)
        self._injector = (
            FaultInjector(config.faults, len(self._replicas))
            if config.faults
            else None
        )
        #: The typed event heap: (time, schedule seq, kind, payload).
        self._events: list = []
        self._eseq = 0
        self._seq = 0
        self._clock = 0.0
        self._ran = False
        #: Admitted-but-unresolved requests, by admission seq.
        self._live: dict[int, _Pending] = {}
        #: Retries scheduled but not yet re-enqueued (backoff limbo) —
        #: admission control counts them as in-flight duplicates.
        self._retry_limbo = 0
        self._retry_tokens = 0.0
        #: Weighted-fair queueing: each tenant's virtual finish time,
        #: advanced by est_service/weight per enqueued attempt.
        self._tenant_vtime: dict[str, float] = {}

    @classmethod
    def for_service(
        cls, service: "PartitioningService", config: EventLoopConfig = EventLoopConfig()
    ) -> "EventLoop":
        return cls(_ServiceBackend(service), config)

    @classmethod
    def for_fleet(
        cls, router: "FleetRouter", config: EventLoopConfig = EventLoopConfig()
    ) -> "EventLoop":
        return cls(_FleetBackend(router), config)

    @classmethod
    def for_cluster(
        cls, cluster: "ClusterRouter", config: EventLoopConfig = EventLoopConfig()
    ) -> "EventLoop":
        return cls(_ClusterBackend(cluster), config)

    # -- the loop ----------------------------------------------------------

    def run(
        self,
        arrivals: Iterable,
        on_complete: Callable[[CompletedRequest], None] | None = None,
        drift_handler: "Callable[[DriftEvent], None] | None" = None,
    ) -> EventLoopStats:
        """Play the whole arrival stream and drain every queue.

        ``arrivals`` yields ``(timestamp, payload)`` with non-decreasing
        timestamps; a payload that is not a request (kernel
        :class:`ServingRequest` or :class:`GraphServingRequest`) is
        treated as a drift event and handed to ``drift_handler`` at its
        place on the simulated timeline (so requests already queued are
        measured on the drifted hardware, exactly as a wall-clock drift
        would hit them).
        """
        if self._ran:
            raise RuntimeError("an EventLoop is single-use; build a new one")
        self._ran = True
        self._schedule_crashes()
        last_arrival = 0.0
        for at_s, payload in arrivals:
            if at_s < last_arrival:
                raise ValueError(
                    f"arrival timestamps must be non-decreasing "
                    f"(got {at_s} after {last_arrival})"
                )
            last_arrival = at_s
            # Events due before this arrival happen first — the
            # simulated clock never moves backwards.
            while self._events and self._events[0][0] <= at_s:
                self._dispatch(on_complete)
            self._advance(at_s)
            if isinstance(payload, AnyRequest):
                self._arrive(payload)
            else:
                if drift_handler is None:
                    raise ValueError(
                        "arrival stream carries a drift event but no "
                        "drift_handler was given"
                    )
                drift_handler(payload)
        # Drain until every admitted request is resolved.  Fault windows
        # scheduled beyond the last resolution (a recovery on an already
        # idle fleet) are dropped rather than stretching the clock.
        while self._events and self._live:
            self._dispatch(on_complete)
        self._events.clear()
        for seq in sorted(self._live):  # pragma: no cover - safety net
            self._fail(self._live[seq], self._clock, reason="stranded")
        self.stats.clock_s = self._clock
        if self.config.meter_idle:
            self._meter_trailing_idle()
        return self.stats

    def _push(self, at_s: float, kind: str, payload) -> None:
        self._eseq += 1
        heapq.heappush(self._events, (at_s, self._eseq, kind, payload))

    def _advance(self, at_s: float) -> None:
        if at_s > self._clock:
            self._clock = at_s
            self.backend.tick(at_s)

    def _dispatch(self, on_complete) -> None:
        at_s, _eseq, kind, payload = heapq.heappop(self._events)
        self._advance(at_s)
        if kind == "complete":
            self._on_complete(at_s, payload, on_complete)
        elif kind == "attempt-failed":
            self._on_attempt_failed(at_s, payload)
        elif kind == "retry":
            self._on_retry(at_s, payload)
        elif kind == "hedge":
            self._on_hedge(at_s, payload)
        elif kind == "speculate":
            self._on_speculate(at_s, payload)
        elif kind == "timeout":
            self._on_timeout(at_s, payload)
        elif kind == "crash":
            self._on_crash(at_s, payload)
        else:
            self._on_recover(at_s, payload)

    def _schedule_crashes(self) -> None:
        if self._injector is None:
            return
        for replica in self._replicas:
            for start, end in self._injector.crash_windows(replica.index):
                self._push(start, "crash", (replica.index, end))
                self._push(end, "recover", replica.index)

    # -- arrivals and admission --------------------------------------------

    def _arrive(self, request: ServingRequest) -> None:
        self.stats.arrivals += 1
        replica = self._replicas[self.backend.place(request)]
        if replica.crashed and self.config.failover:
            # Failover placement: route around the dead replica.  The
            # router committed its decision (it has no crash knowledge);
            # the loop overrides the physical target.
            fallback = self._healthy_replica()
            if fallback is not None:
                replica = fallback
                self.stats.failovers += 1
                if self._tracer is not None:
                    self._tracer.event(
                        self._clock,
                        "failover",
                        request_id=request.request_id,
                        replica=replica.index,
                    )
        decision = shed_decision(
            self.config.shed_policy,
            self.config.slo,
            request.tenant,
            idle=not replica.busy and replica.queued_live == 0,
            busy_wait_s=(
                max(replica.free_at - self._clock, 0.0) if replica.busy else 0.0
            ),
            queue_depth=replica.queued_live,
            duplicate_depth=self._retry_limbo,
            est_service_s=replica.est_service_s,
        )
        if decision.shed:
            self.stats.shed += 1
            self.stats.slo.record_shed(request.tenant)
            if self._tracer is not None:
                self._tracer.event(
                    self._clock,
                    "shed",
                    request_id=request.request_id,
                    tenant=request.tenant,
                )
            return
        self.stats.admitted += 1
        self._retry_tokens += self.config.retry_budget
        self._seq += 1
        pending = _Pending(seq=self._seq, request=request, arrival_s=self._clock)
        self._live[pending.seq] = pending
        if self._tracer is not None:
            self._tracer.begin(pending.seq, self._clock, request)
        self._enqueue(pending, replica, is_hedge=False)
        self._schedule_timeout(pending)
        self._schedule_hedge(pending)
        self._schedule_speculation(pending)

    def _schedule_timeout(self, pending: _Pending) -> None:
        if self.config.timeout_factor is None:
            return
        target = self.config.slo.target_for(pending.request.tenant)
        if target is None:
            return
        self._push(
            pending.arrival_s + self.config.timeout_factor * target,
            "timeout",
            pending,
        )

    def _schedule_hedge(self, pending: _Pending) -> None:
        if self.config.hedge_at is None:
            return
        if self.stats.completed < self.config.hedge_min_completions:
            return
        trigger = self.stats.latency.quantile(self.config.hedge_at)
        if trigger <= 0.0:
            return
        self._push(pending.arrival_s + trigger, "hedge", pending)

    def _schedule_speculation(self, pending: _Pending) -> None:
        if self.config.speculate_at is None:
            return
        if self.stats.completed < self.config.speculate_min_completions:
            return
        trigger = self.stats.latency.quantile(self.config.speculate_at)
        if trigger <= 0.0:
            return
        self._push(pending.arrival_s + trigger, "speculate", pending)

    # -- queueing and service ----------------------------------------------

    def _enqueue(
        self,
        pending: _Pending,
        replica: _ReplicaState,
        is_hedge: bool,
        is_spec: bool = False,
    ) -> None:
        attempt = _Attempt(
            pending=pending,
            replica=replica.index,
            is_hedge=is_hedge,
            is_spec=is_spec,
        )
        if self._tracer is not None:
            attempt.tid = self._tracer.enqueue(
                pending.seq, self._clock, replica.index, is_hedge, is_spec
            )
        if self.config.queue_discipline == "weighted-fair":
            # Start-time fair queueing: the attempt's virtual finish tag
            # is the tenant's virtual clock (never behind the real one)
            # plus the replica's estimated service span scaled down by
            # the tenant's weight — a weight-2 tenant's tags advance
            # half as fast, so it wins twice the dequeues under
            # contention.
            tenant = pending.request.tenant
            weight = 1.0 + max(0, self.config.slo.priority_for(tenant))
            vtime = max(self._tenant_vtime.get(tenant, 0.0), self._clock)
            attempt.vtag = vtime + replica.est_service_s / weight
            self._tenant_vtime[tenant] = attempt.vtag
        pending.live.append(attempt)
        replica.queue.append(attempt)
        replica.queued_live += 1
        if not replica.busy and not replica.crashed:
            self._start_next(replica, self._clock)

    def _start_next(self, replica: _ReplicaState, now: float) -> None:
        if self.config.queue_discipline == "weighted-fair":
            best = None
            for attempt in replica.queue:
                if attempt.cancelled:
                    continue
                if best is None or attempt.vtag < best.vtag:
                    best = attempt
            if best is None:
                # Only lazily-cancelled entries left; drop them all.
                replica.queue.clear()
                return
            replica.queue.remove(best)
            replica.queued_live -= 1
            self._begin(replica, best, now)
            return
        while replica.queue:
            attempt = replica.queue.popleft()
            if attempt.cancelled:
                # Lazily dropped; queued_live was adjusted at cancel time.
                continue
            replica.queued_live -= 1
            self._begin(replica, attempt, now)
            return

    def _begin(self, replica: _ReplicaState, attempt: _Attempt, now: float) -> None:
        pending = attempt.pending
        request = pending.request
        if self.config.meter_idle and now > replica.idle_since:
            self._record_idle(replica, now - replica.idle_since)
        attempt_no = pending.attempts
        pending.attempts += 1
        attempt.running = True
        attempt.start_s = now
        replica.busy = True
        replica.current = attempt
        if self._injector is not None and self._injector.predict_error(
            replica.index, request.request_id, attempt_no, now
        ):
            # The prediction path blows up before any execution: the
            # attempt burns one cache-miss span and produces nothing.
            # The service is never consulted, so no EWMA update either.
            self.stats.predict_errors += 1
            attempt.service_s = self.config.predict_miss_s
            attempt.finish_s = now + attempt.service_s
            replica.free_at = attempt.finish_s
            if self._tracer is not None:
                self._tracer.start(
                    attempt.tid,
                    now,
                    predict_end_s=attempt.finish_s,
                    net_start_s=attempt.finish_s,
                    finish_s=attempt.finish_s,
                    outcome="predict-error",
                )
            self._push(attempt.finish_s, "attempt-failed", attempt)
            return
        response = self.backend.serve(replica.index, request)
        predict_s = (
            self.config.predict_hit_s
            if response.cache_hit
            else self.config.predict_miss_s
        )
        service_s = predict_s + response.measured_s
        scale = 1.0
        if self._injector is not None:
            scale = self._injector.slowdown(replica.index, now)
            service_s *= scale
        attempt.service_s = service_s
        attempt.finish_s = now + service_s
        replica.free_at = attempt.finish_s
        alpha = self.config.backlog_alpha
        replica.est_service_s = (
            alpha * service_s + (1.0 - alpha) * replica.est_service_s
        )
        self.stats.service_time_s += service_s
        self.stats.execute_time_s += response.measured_s
        failing = self._injector is not None and self._injector.exec_error(
            replica.index, request.request_id, attempt_no, now
        )
        if self._tracer is not None:
            # The span split of the attempt's service window: predict
            # ends after the (straggler-scaled) cache/model cost, the
            # cross-pool network hop (a cluster response's network_s,
            # zero elsewhere) occupies the tail, execute fills between.
            self._tracer.start(
                attempt.tid,
                now,
                predict_end_s=now + predict_s * scale,
                net_start_s=attempt.finish_s
                - getattr(response, "network_s", 0.0) * scale,
                finish_s=attempt.finish_s,
                outcome="error" if failing else "ok",
            )
        if failing:
            self.stats.exec_errors += 1
            self._push(attempt.finish_s, "attempt-failed", attempt)
        else:
            self._push(attempt.finish_s, "complete", attempt)

    def _release(self, replica: _ReplicaState, attempt: _Attempt, now: float) -> None:
        """Free the replica from its current attempt at instant ``now``."""
        replica.busy = False
        replica.current = None
        replica.idle_since = now
        replica.busy_s += now - attempt.start_s
        self.stats.replica_busy_s[replica.index] = replica.busy_s

    def _cancel(self, attempt: _Attempt, now: float) -> None:
        """First-completion-wins / fault cancellation of one attempt.

        A running loser is cut short and its remaining busy span
        reclaimed; a queued one is dropped lazily (the deque entry
        stays and is skipped on pop).  Callers maintain
        ``pending.live`` themselves.
        """
        if attempt.cancelled:
            return
        attempt.cancelled = True
        if self._tracer is not None:
            self._tracer.cancel_attempt(attempt.tid, now)
        replica = self._replicas[attempt.replica]
        if attempt.running:
            if replica.current is attempt:
                self.stats.cancelled_busy_s += max(attempt.finish_s - now, 0.0)
                self._release(replica, attempt, now)
                if not replica.crashed and replica.queue:
                    self._start_next(replica, now)
        else:
            replica.queued_live -= 1

    # -- event handlers ----------------------------------------------------

    def _on_complete(self, now: float, attempt: _Attempt, on_complete) -> None:
        if attempt.cancelled:
            return
        pending = attempt.pending
        replica = self._replicas[attempt.replica]
        self._release(replica, attempt, now)
        pending.live.remove(attempt)
        pending.done = True
        del self._live[pending.seq]
        # First completion wins: every other in-flight copy is cancelled
        # and, if running, its remaining busy span reclaimed.  Losses in
        # a race a speculative copy is part of are retired through the
        # speculation meter below, not the hedge one.
        for other in list(pending.live):
            self._cancel(other, now)
            if not other.is_spec and not attempt.is_spec:
                self.stats.hedge_cancels += 1
        pending.live.clear()
        # Every speculative launch retires exactly once, win or lose:
        # arrivals + speculations == completed + shed + failed +
        # cancelled_speculative stays an identity.
        self.stats.cancelled_speculative += pending.speculated
        if self._tracer is not None:
            self._tracer.complete(pending.seq, now, attempt.tid)
        latency_s = now - pending.arrival_s
        queue_s = attempt.start_s - pending.arrival_s
        self.stats.completed += 1
        self.stats.replica_completed[replica.index] += 1
        self.stats.latency.record(latency_s)
        self.stats.queue_wait.record(queue_s)
        self.stats.service.record(attempt.service_s)
        if attempt.is_hedge:
            self.stats.hedge_wins += 1
        if attempt.is_spec:
            self.stats.spec_wins += 1
        violated = self.stats.slo.record_completion(pending.request.tenant, latency_s)
        if on_complete is not None:
            on_complete(
                CompletedRequest(
                    request=pending.request,
                    replica_index=replica.index,
                    arrival_s=pending.arrival_s,
                    start_s=attempt.start_s,
                    finish_s=now,
                    queue_s=queue_s,
                    service_s=attempt.service_s,
                    violated=violated,
                    attempts=pending.attempts,
                    hedged=pending.hedged,
                    speculated=pending.speculated,
                )
            )
        if not replica.crashed:
            if replica.queue:
                self._start_next(replica, now)
            if self.config.work_steal and not replica.busy:
                self._try_steal(replica, now)

    def _on_attempt_failed(self, now: float, attempt: _Attempt) -> None:
        if attempt.cancelled:
            return
        pending = attempt.pending
        replica = self._replicas[attempt.replica]
        if self._tracer is not None:
            self._tracer.fail_attempt(attempt.tid, now)
        self._release(replica, attempt, now)
        pending.live.remove(attempt)
        if not replica.crashed:
            if replica.queue:
                self._start_next(replica, now)
            if self.config.work_steal and not replica.busy:
                self._try_steal(replica, now)
        if pending.done or pending.live:
            # A sibling copy is still racing; let it decide the outcome.
            return
        if pending.retries < self.config.max_retries and self._retry_tokens >= 1.0:
            self._retry_tokens -= 1.0
            pending.retries += 1
            self.stats.retries += 1
            delay = self.config.retry_backoff_s * 2.0 ** (pending.retries - 1)
            self._retry_limbo += 1
            if self._tracer is not None:
                self._tracer.event(
                    now,
                    "retry",
                    trace_id=pending.seq,
                    retry=pending.retries,
                    delay_s=delay,
                )
            self._push(now + delay, "retry", pending)
        else:
            self._fail(pending, now, reason="retries-exhausted")

    def _on_retry(self, now: float, pending: _Pending) -> None:
        self._retry_limbo -= 1
        if pending.done:
            return
        self._enqueue(pending, self._fallback_replica(), is_hedge=False)

    def _on_hedge(self, now: float, pending: _Pending) -> None:
        if pending.done or pending.hedged or not pending.live:
            # Resolved, already hedged, or waiting out a retry backoff
            # (the retry path owns it) — nothing to duplicate.
            return
        replica = self._healthy_replica(
            exclude={a.replica for a in pending.live}
        )
        if replica is None:
            return
        pending.hedged = True
        self.stats.hedges += 1
        if self._tracer is not None:
            self._tracer.event(
                now, "hedge", trace_id=pending.seq, replica=replica.index
            )
        self._enqueue(pending, replica, is_hedge=True)

    def _on_speculate(self, now: float, pending: _Pending) -> None:
        if pending.done or pending.speculated or not pending.live:
            # Resolved, already speculating, or in retry backoff limbo.
            return
        exclude = {a.replica for a in pending.live}
        replica = None
        escape = getattr(self.backend, "speculative_index", None)
        if escape is not None:
            # Cluster-aware escape: a pool not already running a copy,
            # so a pool-local straggler window cannot slow both copies.
            index = escape(pending.request, exclude)
            if index is not None and not self._replicas[index].crashed:
                replica = self._replicas[index]
        if replica is None:
            replica = self._healthy_replica(exclude=exclude)
        if replica is None:
            return
        pending.speculated += 1
        self.stats.speculations += 1
        if self._tracer is not None:
            self._tracer.event(
                now, "speculate", trace_id=pending.seq, replica=replica.index
            )
        self._enqueue(pending, replica, is_hedge=False, is_spec=True)

    def _try_steal(self, thief: _ReplicaState, now: float) -> None:
        """Pull the tail-most queued attempt of the most backlogged victim.

        The backend names the eligible victims (cross-pool on a
        cluster); without the hook any other replica qualifies.  The
        steal takes from the *tail* — the work that would have waited
        longest — and lazily-cancelled entries encountered there are
        simply discarded (their live accounting was settled at cancel
        time).
        """
        victims = getattr(self.backend, "steal_candidates", None)
        if victims is not None:
            candidates = [self._replicas[i] for i in victims(thief.index)]
        else:
            candidates = [r for r in self._replicas if r.index != thief.index]
        candidates = [r for r in candidates if r.queued_live > 0]
        if not candidates:
            return
        victim = max(candidates, key=lambda r: (r.queued_live, -r.index))
        while victim.queue:
            attempt = victim.queue.pop()
            if attempt.cancelled:
                continue
            victim.queued_live -= 1
            attempt.replica = thief.index
            self.stats.steals += 1
            if self._tracer is not None:
                self._tracer.steal(attempt.tid, now, thief.index)
            self._begin(thief, attempt, now)
            return

    def _on_timeout(self, now: float, pending: _Pending) -> None:
        if pending.done:
            return
        self.stats.timeouts += 1
        self._fail(pending, now, reason="timeout")

    def _on_crash(self, now: float, payload: tuple[int, float]) -> None:
        index, recover_at = payload
        replica = self._replicas[index]
        replica.crashed = True
        replica.recover_at = recover_at
        self.stats.crashes += 1
        if self._tracer is not None:
            self._tracer.event(
                now, "crash", replica=index, recover_at_s=recover_at
            )
        current = replica.current
        if current is not None:
            # The in-flight attempt dies with the replica.
            pending = current.pending
            self._cancel(current, now)
            pending.live.remove(current)
            if not pending.done and not pending.live:
                if self.config.failover:
                    self.stats.failovers += 1
                    fallback = self._fallback_replica(exclude={index})
                    if self._tracer is not None:
                        self._tracer.event(
                            now,
                            "failover",
                            trace_id=pending.seq,
                            replica=fallback.index,
                        )
                    self._enqueue(
                        pending,
                        fallback,
                        is_hedge=current.is_hedge,
                        is_spec=current.is_spec,
                    )
                else:
                    self._fail(pending, now, reason="crashed")
        if self.config.failover and replica.queued_live:
            # Redistribute the stranded queue; without failover it
            # simply waits out the downtime (and its timeouts).
            stranded = [
                a
                for a in replica.queue
                if not a.cancelled and not a.pending.done
            ]
            for attempt in stranded:
                self._cancel(attempt, now)
                attempt.pending.live.remove(attempt)
                self.stats.requeued += 1
                fallback = self._fallback_replica(exclude={index})
                if self._tracer is not None:
                    self._tracer.event(
                        now,
                        "requeue",
                        trace_id=attempt.pending.seq,
                        replica=fallback.index,
                    )
                self._enqueue(
                    attempt.pending,
                    fallback,
                    is_hedge=attempt.is_hedge,
                    is_spec=attempt.is_spec,
                )

    def _on_recover(self, now: float, index: int) -> None:
        replica = self._replicas[index]
        replica.crashed = False
        replica.recover_at = math.inf
        self.stats.recoveries += 1
        if self._tracer is not None:
            self._tracer.event(now, "recover", replica=index)
        if not replica.busy and replica.queue:
            self._start_next(replica, now)

    def _fail(self, pending: _Pending, now: float, reason: str = "failed") -> None:
        """Resolve one request as lost; conservation counts it as failed."""
        pending.done = True
        for attempt in list(pending.live):
            self._cancel(attempt, now)
        pending.live.clear()
        # Speculative launches of a lost request retire here (the other
        # side of the extended conservation identity).
        self.stats.cancelled_speculative += pending.speculated
        del self._live[pending.seq]
        self.stats.failed += 1
        self.stats.slo.record_failed(pending.request.tenant)
        if self._tracer is not None:
            self._tracer.fail(pending.seq, now, reason)

    # -- placement fallbacks -----------------------------------------------

    def _healthy_replica(self, exclude: set[int] = frozenset()) -> _ReplicaState | None:
        """Least-loaded non-crashed replica, or ``None`` if all are down."""
        candidates = [
            r
            for r in self._replicas
            if not r.crashed and r.index not in exclude
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda r: (r.queued_live + (1 if r.busy else 0), r.index),
        )

    def _fallback_replica(self, exclude: set[int] = frozenset()) -> _ReplicaState:
        """A healthy replica, or the soonest-recovering one if none is up."""
        replica = self._healthy_replica(exclude)
        if replica is not None:
            return replica
        pool = [r for r in self._replicas if r.index not in exclude] or self._replicas
        return min(pool, key=lambda r: (r.recover_at, r.index))

    # -- simulated-time energy accounting ----------------------------------

    def _record_idle(self, replica: _ReplicaState, span_s: float) -> None:
        """Price one inter-request idle span into the replica's runner."""
        runner = self.backend.services[replica.index].system.runner
        runner.stats.record_idle(span_s, replica.idle_w)
        self.stats.idle_energy_j += span_s * replica.idle_w
        if not math.isfinite(self.stats.idle_energy_j):  # pragma: no cover
            raise AssertionError("idle energy overflowed")

    def _meter_trailing_idle(self) -> None:
        """Close every replica's idle span at the final clock.

        After the drain each replica has been idle since its last
        completion (crashed downtime included); accounting that tail
        makes busy + idle equal the loop span per replica, so
        utilization and average power over the *simulated wall clock*
        come out of the session stats.
        """
        for replica in self._replicas:
            if self._clock > replica.idle_since:
                self._record_idle(replica, self._clock - replica.idle_since)
                replica.idle_since = self._clock


def timed(
    requests: Iterable[ServingRequest], times: Iterable[float]
) -> Iterator[tuple[float, ServingRequest]]:
    """Zip arrival timestamps onto a request stream."""
    return zip(times, requests)
