"""The prediction cache of the partitioning service.

Model inference is cheap but not free (feature assembly walks the
kernel analysis, the MLP does two dense layers), and a serving workload
repeats the same (machine, program, size) keys heavily.  An LRU cache
over the predicted partitionings turns the steady state into a
dictionary lookup — and doubles as the consistency point for online
adaptation: a refit invalidates cached predictions, while locally
*validated* partitionings can be pinned back in so adapted keys keep
their search result.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from ..partitioning import Partitioning

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graphs.planner import GraphPlan

__all__ = ["CacheKey", "CacheStats", "CacheValue", "PredictionCache"]

#: (machine, program, size) — the identity of one launch configuration.
#: Graph requests reuse the same shape: (machine, graph signature
#: label, node-size total), so one LRU serves both kinds of traffic.
CacheKey = tuple[str, str, int]

#: What a key resolves to: a single-kernel partitioning or, for
#: graph-level keys, a full per-task plan.
CacheValue = Union[Partitioning, "GraphPlan"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class PredictionCache:
    """LRU cache mapping :data:`CacheKey` to a predicted answer."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[CacheKey, CacheValue] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def peek(self, key: CacheKey) -> CacheValue | None:
        """Cached answer without touching recency or hit/miss stats.

        Introspection path for layers above the service (the fleet
        router asks every replica what it *would* answer): a peek must
        not perturb the cache behaviour the replica itself observes.
        """
        return self._entries.get(key)

    def get(self, key: CacheKey) -> CacheValue | None:
        """Cached answer for a key (counts the hit/miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: CacheKey, partitioning: CacheValue) -> None:
        """Insert/refresh a key, evicting the LRU entry at capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = partitioning
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, key: CacheKey | None = None) -> int:
        """Drop one key (or everything) after the model changed.

        Returns the number of entries dropped.  A full invalidation is
        the post-refit path: every cached prediction may be stale.
        """
        if key is not None:
            dropped = 1 if self._entries.pop(key, None) is not None else 0
        else:
            dropped = len(self._entries)
            self._entries.clear()
        self.stats.invalidations += dropped
        return dropped
