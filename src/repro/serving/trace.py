"""Synthetic request traces for the serving layer.

Production launch streams are heavily skewed: a few hot (program, size)
configurations dominate while a long tail of rare launches keeps
appearing.  The generator models that with a Zipf distribution over the
key universe — the standard assumption for cache workloads — with the
key-to-rank assignment shuffled deterministically per seed so the hot
set is not always the same benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..benchsuite.base import Benchmark
from ..graphs.graph import TaskGraph
from ..util.rng import rng_for

__all__ = [
    "DEFAULT_TENANT",
    "GraphServingRequest",
    "ServingRequest",
    "key_universe",
    "zipf_draws",
    "zipf_trace",
]

#: Tenant of requests that never named one (single-tenant traffic).
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class ServingRequest:
    """One launch request arriving at the service.

    ``tenant`` identifies who submitted it — the unit SLO targets,
    priorities and violation rates are tracked by on the event-driven
    serving path.  Single-tenant traffic leaves the default.
    """

    request_id: int
    program: str
    size: int
    tenant: str = DEFAULT_TENANT

    @property
    def key(self) -> tuple[str, int]:
        return (self.program, self.size)


@dataclass(frozen=True)
class GraphServingRequest:
    """One task-graph request arriving at the service.

    The graph — not a kernel — is the unit of work: the service
    resolves (or co-searches) a full per-task plan, measures the
    composed critical path, and caches the plan under a graph-level
    key.  ``program``/``size`` mirror the single-kernel request shape
    (the graph's signature label and node count) so placement policies
    and SLO accounting treat both kinds uniformly.
    """

    request_id: int
    graph: TaskGraph
    tenant: str = DEFAULT_TENANT

    @property
    def program(self) -> str:
        return self.graph.signature_label

    @property
    def size(self) -> int:
        return self.graph.total_size

    @property
    def key(self) -> tuple[str, int]:
        return (self.program, self.size)


def key_universe(
    benchmarks: Sequence[Benchmark],
    max_sizes: int | None = None,
) -> tuple[tuple[str, int], ...]:
    """Every (program, size) configuration the trace can request.

    ``max_sizes`` caps each benchmark's ladder from the small end, which
    bounds instance-generation cost during a replay.
    """
    keys: list[tuple[str, int]] = []
    for bench in benchmarks:
        sizes = bench.problem_sizes()
        if max_sizes is not None:
            sizes = sizes[:max_sizes]
        keys.extend((bench.name, size) for size in sizes)
    if not keys:
        raise ValueError("empty key universe")
    return tuple(keys)


def zipf_draws(
    keys: Sequence[tuple[str, int]],
    num_requests: int,
    skew: float = 1.5,
    seed: int = 0,
) -> tuple[list[tuple[str, int]], np.ndarray]:
    """The (ranked keys, per-request rank draws) behind :func:`zipf_trace`.

    Split out so the workload generators and the streaming serving path
    can share the exact rng call sequence without materializing request
    objects — a million-request trace is one integer array here.
    """
    if num_requests < 0:
        raise ValueError("num_requests must be non-negative")
    if skew <= 0:
        raise ValueError("skew must be positive")
    rng = rng_for("serving-trace", len(keys), skew, base_seed=seed)
    ranked = list(keys)
    rng.shuffle(ranked)
    weights = 1.0 / np.arange(1, len(ranked) + 1, dtype=np.float64) ** skew
    weights /= weights.sum()
    draws = rng.choice(len(ranked), size=num_requests, p=weights)
    return ranked, draws


def zipf_trace(
    keys: Sequence[tuple[str, int]],
    num_requests: int,
    skew: float = 1.5,
    seed: int = 0,
) -> tuple[ServingRequest, ...]:
    """A Zipf-skewed request trace over a key universe.

    ``p(rank r) ∝ 1 / r^skew`` with ranks assigned by a seeded shuffle
    of the keys.  ``skew`` ≈ 1.0 is a classic web-style workload; higher
    values concentrate traffic on fewer keys (better cache behaviour).
    """
    ranked, draws = zipf_draws(keys, num_requests, skew=skew, seed=seed)
    return tuple(
        ServingRequest(request_id=i, program=ranked[j][0], size=ranked[j][1])
        for i, j in enumerate(draws)
    )
