"""Sliding-window drift detection for the serving loop.

The service's original adaptation trigger was a *single-run* check:
one measurement more than ``regression_threshold`` over the estimate
re-searches the key.  That catches gross mispredictions but is blind to
the two ways production actually degrades:

* **noise masking** — under measurement jitter a single bad run is
  indistinguishable from a genuinely drifted key, so a one-shot
  trigger either over-fires (wasting probes) or is tuned so slack it
  misses slow degradation entirely;
* **budget exhaustion** — once a key's adaptation budget is spent,
  later *platform* drift (the hardware itself changed speed) can never
  trigger another search, leaving the service frozen on pre-drift
  decisions.

The :class:`DriftDetector` replaces sole reliance on that check with a
per-key EWMA of the measured/predicted makespan ratio inside a sliding
request window: a key is flagged only when its *smoothed* ratio stays
past the threshold across several observations, and a burst of flags
across many keys inside the window escalates to platform-level drift
(cache flush + refit) instead of key-by-key firefighting.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

__all__ = ["DriftDetector"]


@dataclass
class _KeyState:
    """Per-key EWMA bookkeeping."""

    ewma: float = 1.0
    observations: int = 0
    cooldown: int = 0


class DriftDetector:
    """Per-key EWMA drift detection with a sliding escalation window.

    Attributes:
        flags: total keys flagged over the detector lifetime.
    """

    def __init__(
        self,
        window: int = 32,
        alpha: float = 0.4,
        threshold: float = 0.3,
        min_observations: int = 3,
        cooldown: int = 8,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.alpha = alpha
        self.threshold = threshold
        self.min_observations = min_observations
        self.cooldown = cooldown
        self.flags = 0
        self._keys: dict[object, _KeyState] = {}
        self._window: deque[bool] = deque(maxlen=window)

    def observe(self, key: object, measured_s: float, estimate_s: float) -> bool:
        """Fold one measurement into the key's EWMA; True when flagged.

        A flag means the key's smoothed measured/estimate ratio sat
        outside ``[1/(1+threshold), 1+threshold]`` for at least
        ``min_observations`` non-cooldown observations — sustained
        disagreement, not one noisy run.  Detection is two-sided:
        a device that *speeds up* (recovered contention, a drift scale
        above 1) leaves the cached decision just as stale as a
        slow-down — the optimal split moved either way — so sustained
        over-estimation triggers the same re-search and re-baselining.
        Flagging resets the key's state (the caller re-baselines the
        estimate) and starts a cooldown so one drift cannot fire a
        search storm.
        """
        if estimate_s <= 0 or not math.isfinite(estimate_s):
            return False
        ratio = measured_s / estimate_s
        if not math.isfinite(ratio):
            # An infinite cost (e.g. a cap-infeasible measurement under
            # the energy-capped objective) carries no ratio information
            # — folding it in would poison the EWMA with inf/NaN
            # forever.  The regression check handles infeasibility.
            return False
        state = self._keys.get(key)
        if state is None:
            state = self._keys[key] = _KeyState(ewma=ratio)
        else:
            state.ewma = self.alpha * ratio + (1.0 - self.alpha) * state.ewma
        state.observations += 1
        flagged = False
        if state.cooldown > 0:
            state.cooldown -= 1
        elif state.observations >= self.min_observations and (
            state.ewma > 1.0 + self.threshold
            or state.ewma < 1.0 / (1.0 + self.threshold)
        ):
            flagged = True
            self.flags += 1
            # Fresh evidence required before this key can flag again.
            state.ewma = 1.0
            state.observations = 0
            state.cooldown = self.cooldown
        self._window.append(flagged)
        return flagged

    def flags_in_window(self) -> int:
        """Flags among the last ``window`` observations (any key)."""
        return sum(self._window)

    def publish_metrics(self, registry, prefix: str = "drift") -> None:
        """Publish detector state as ``drift.*`` gauges (idempotent)."""
        registry.gauge(f"{prefix}.flags").set(self.flags)
        registry.gauge(f"{prefix}.flags_in_window").set(self.flags_in_window())
        registry.gauge(f"{prefix}.tracked_keys").set(len(self._keys))

    def ratio_of(self, key: object) -> float | None:
        """Current smoothed ratio for a key (telemetry), if tracked."""
        state = self._keys.get(key)
        return state.ewma if state is not None else None

    def reset(self, key: object | None = None) -> None:
        """Forget one key's state — or everything, after an escalation."""
        if key is not None:
            self._keys.pop(key, None)
            return
        self._keys.clear()
        self._window.clear()
