"""The serving layer: online-adaptive partitioning as a service.

Everything above one-shot deployment lives here — the LRU prediction
cache, the batch scheduler multiplexing requests over the simulated
devices, synthetic request traces, and the :class:`PartitioningService`
that closes the train→predict→execute loop with online adaptation.
"""

from .cache import CacheKey, CacheStats, PredictionCache
from .dispatch import BatchScheduler, DispatchSlot
from .drift import DriftDetector
from .service import PartitioningService, ServedResponse, ServiceConfig, ServiceStats
from .trace import ServingRequest, key_universe, zipf_trace

__all__ = [
    "CacheKey",
    "CacheStats",
    "DriftDetector",
    "PredictionCache",
    "BatchScheduler",
    "DispatchSlot",
    "PartitioningService",
    "ServedResponse",
    "ServiceConfig",
    "ServiceStats",
    "ServingRequest",
    "key_universe",
    "zipf_trace",
]
