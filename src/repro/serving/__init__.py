"""The serving layer: online-adaptive partitioning as a service.

Everything above one-shot deployment lives here — the LRU prediction
cache, the batch scheduler multiplexing requests over the simulated
devices, synthetic request traces, and the :class:`PartitioningService`
that closes the train→predict→execute loop with online adaptation.
"""

from .cache import CacheKey, CacheStats, PredictionCache
from .dispatch import BatchScheduler, DispatchSlot
from .drift import DriftDetector
from .eventloop import (
    QUEUE_DISCIPLINES,
    CompletedRequest,
    EventLoop,
    EventLoopConfig,
    EventLoopStats,
)
from .histogram import QUANTILE_RELATIVE_ERROR, LatencyHistogram
from .options import ServeOptions, ServeResult, serve_trace
from .service import (
    GraphServedResponse,
    PartitioningService,
    ServedResponse,
    ServiceConfig,
    ServiceStats,
)
from .slo import (
    SHED_POLICIES,
    SLOConfig,
    SLOTracker,
    ShedDecision,
    TenantSLOStats,
    shed_decision,
)
from .trace import (
    DEFAULT_TENANT,
    GraphServingRequest,
    ServingRequest,
    key_universe,
    zipf_draws,
    zipf_trace,
)

__all__ = [
    "CacheKey",
    "CacheStats",
    "DriftDetector",
    "PredictionCache",
    "BatchScheduler",
    "DispatchSlot",
    "CompletedRequest",
    "EventLoop",
    "EventLoopConfig",
    "EventLoopStats",
    "QUEUE_DISCIPLINES",
    "ServeOptions",
    "ServeResult",
    "serve_trace",
    "LatencyHistogram",
    "QUANTILE_RELATIVE_ERROR",
    "SHED_POLICIES",
    "SLOConfig",
    "SLOTracker",
    "ShedDecision",
    "shed_decision",
    "TenantSLOStats",
    "GraphServedResponse",
    "PartitioningService",
    "ServedResponse",
    "ServiceConfig",
    "ServiceStats",
    "DEFAULT_TENANT",
    "GraphServingRequest",
    "ServingRequest",
    "key_universe",
    "zipf_draws",
    "zipf_trace",
]
