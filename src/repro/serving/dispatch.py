"""The batch scheduler: multiplexing requests over the devices.

The paper's runtime executes one launch at a time; a serving workload
has many independent launches in flight.  Because a partitioning only
occupies its *active* devices, requests with disjoint device sets can
overlap on the simulated timeline — a CPU-only launch runs while a
dual-GPU launch occupies the GPUs.  The dispatcher keeps a per-device
availability clock and places each measured execution at the earliest
instant all of its active devices are free, which is exactly the
list-scheduling core of an HeMT-style dispatch layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..partitioning import Partitioning

__all__ = ["DispatchSlot", "BatchScheduler"]


@dataclass(frozen=True)
class DispatchSlot:
    """Placement of one execution on the multiplexed timeline."""

    start_s: float
    end_s: float
    device_indices: tuple[int, ...]

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class BatchScheduler:
    """Per-device availability clocks for a stream of executions."""

    num_devices: int
    device_free_s: list[float] = field(default_factory=list)
    dispatched: int = 0
    busy_s: list[float] = field(default_factory=list)
    zero_duration: int = 0

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if not self.device_free_s:
            self.device_free_s = [0.0] * self.num_devices
        if not self.busy_s:
            self.busy_s = [0.0] * self.num_devices

    def dispatch(self, partitioning: Partitioning, makespan_s: float) -> DispatchSlot:
        """Place one measured execution; returns its timeline slot."""
        if partitioning.num_devices != self.num_devices:
            raise ValueError(
                f"partitioning covers {partitioning.num_devices} devices, "
                f"scheduler tracks {self.num_devices}"
            )
        if makespan_s < 0:
            raise ValueError("makespan_s must be non-negative")
        active = partitioning.active_devices
        start = max(self.device_free_s[d] for d in active)
        end = start + makespan_s
        for d in active:
            self.device_free_s[d] = end
            self.busy_s[d] += makespan_s
        self.dispatched += 1
        if makespan_s == 0.0:
            self.zero_duration += 1
        return DispatchSlot(start_s=start, end_s=end, device_indices=active)

    @property
    def makespan_s(self) -> float:
        """Simulated completion time of everything dispatched so far."""
        return max(self.device_free_s)

    def throughput_rps(self) -> float:
        """Requests per simulated second on the multiplexed timeline.

        When every dispatched execution had zero measured duration the
        span is zero but work *was* served: the sentinel is ``inf``
        (instantaneous), never 0.0 or NaN.  Zero-duration dispatches
        are counted in :attr:`zero_duration` either way.
        """
        span = self.makespan_s
        if span > 0:
            return self.dispatched / span
        return float("inf") if self.dispatched > 0 else 0.0

    def utilization(self) -> tuple[float, ...]:
        """Per-device busy fraction of the multiplexed makespan.

        A zero span (nothing dispatched, or only zero-duration runs)
        yields all-zero fractions rather than NaN.
        """
        span = self.makespan_s
        if span <= 0:
            return tuple(0.0 for _ in range(self.num_devices))
        return tuple(b / span for b in self.busy_s)
