"""The online-adaptive partitioning service.

Ties the trained system into a long-running loop à la HeSP/HeMT:

1. **Predict** — answer each (program, size) request from an LRU
   prediction cache, falling back to the model on a miss.
2. **Dispatch** — place the measured execution on the multiplexed
   device timeline of the :class:`~repro.serving.dispatch.BatchScheduler`.
3. **Observe** — append every measured run to the training database.
4. **Adapt** — when the observed makespan regresses past a threshold
   versus the predicted-best estimate (or a key outside the training
   set arrives), re-search the local partition-space neighbourhood,
   pin the locally-validated winner, and periodically refit the model
   incrementally on the augmented database.
5. **Detect drift** — a sliding-window EWMA detector
   (:mod:`repro.serving.drift`) watches measured vs. predicted makespan
   per key; sustained disagreement invalidates the key's stale cache
   entry, restores its adaptation budget and re-baselines its estimate,
   and a burst of flags across keys escalates to a full cache flush +
   refit (the platform itself drifted, not one key).

The service is deterministic given its seed: the same trace against the
same trained system reproduces the same cache behaviour, adaptations
and refits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..benchsuite.base import Benchmark
from ..benchsuite.registry import get_benchmark
from ..core.database import TrainingDatabase
from ..core.pipeline import TrainedSystem
from ..core.predictor import PartitioningPredictor
from ..energy.meter import EnergyMeter
from ..energy.objectives import (
    Objective,
    cap_feasible,
    coerce_objective,
    objective_cost,
)
from ..engine import SweepEngine
from ..graphs.compose import GraphRun, node_requests
from ..graphs.graph import TaskGraph
from ..graphs.planner import GraphPlan, GraphPlanner
from ..partitioning import (
    DEFAULT_STEP_PERCENT,
    Partitioning,
    neighborhood,
    partition_space,
)
from ..runtime.scheduler import ExecutionRequest
from .cache import CacheKey, PredictionCache
from .dispatch import BatchScheduler, DispatchSlot
from .drift import DriftDetector
from .trace import GraphServingRequest, ServingRequest

__all__ = [
    "ServiceConfig",
    "ServiceStats",
    "ServedResponse",
    "GraphServedResponse",
    "PartitioningService",
]


def _trained_grid_step(database: TrainingDatabase) -> int | None:
    """The partition-grid step the database's sweeps were measured on.

    The gcd of every share ever swept (training sweeps cover the full
    ``partition_space``, so for a 10% grid this is exactly 10).  ``None``
    when the database holds no sweeps yet.
    """
    step = 0
    for record in database:
        for label in record.timings:
            for share in Partitioning.from_label(label).shares:
                step = math.gcd(step, share)
    return step or None


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the serving loop.

    Attributes:
        cache_capacity: LRU prediction-cache entries.
        regression_threshold: relative slack before an observed makespan
            counts as a regression (0.3 = 30% over the estimate).
        adaptation_step: partition-space step of the local re-search.
        max_adaptations_per_key: local searches allowed per key (bounds
            probing cost on persistently noisy keys).
        refit_interval: adaptations to batch before one incremental
            model refit (each refit invalidates the prediction cache,
            so refitting per-adaptation would churn it).
        repetitions: measurement repetitions per served execution.
        validate_cold_keys: locally search keys the training database
            has never seen (the feedback-driven refinement path for
            out-of-distribution programs/sizes).
        incremental_refit: pass-through to the predictor's refit.
        instance_seed: seed for generated problem instances.
        memoize: measure through the memoizing
            :class:`~repro.engine.SweepEngine` (repeated keys and local
            searches compose cached per-device timelines instead of
            re-simulating).  ``False`` is the unmemoized pre-engine
            path, kept for benchmarking the engine against it.
        detect_drift: run the sliding-window EWMA drift detector.
            ``False`` falls back to the single-run regression check
            alone (and is the frozen-model baseline in the drift
            benchmark).
        drift_window: sliding window (in observations) the escalation
            check looks at.
        drift_alpha: EWMA smoothing of the per-key measured/estimate
            ratio (1.0 = last observation only).
        drift_threshold: sustained relative slack before a key is
            flagged as drifted (0.3 = smoothed ratio above 1.3).
        drift_min_observations: observations of a key before it may
            flag (one noisy run is not drift).
        drift_cooldown: observations a flagged key sits out before it
            can flag again (bounds search storms on noisy keys).
        drift_escalation: flags inside the window that escalate to
            platform-level drift — full cache invalidation, pinned
            winners dropped, model refit.  0 disables escalation.
        objective: what the service optimizes (makespan / energy / EDP /
            energy-capped-makespan).  Every measured run is priced in
            this objective's scalar cost: regression checks, drift
            detection and local-search winners all compare costs, so an
            energy-objective service adapts on *energy* regressions.
        power_cap_w: average-power budget per served launch.  When set,
            a model answer whose measured draw exceeds the cap is
            replaced by the best cap-feasible grid point (measured,
            memoized per key) before dispatch.  Required for the
            ``energy-capped-makespan`` objective.
    """

    cache_capacity: int = 512
    regression_threshold: float = 0.3
    adaptation_step: int = DEFAULT_STEP_PERCENT
    max_adaptations_per_key: int = 1
    refit_interval: int = 4
    repetitions: int = 1
    validate_cold_keys: bool = True
    incremental_refit: bool = True
    instance_seed: int = 0
    memoize: bool = True
    detect_drift: bool = True
    drift_window: int = 32
    drift_alpha: float = 0.4
    drift_threshold: float = 0.3
    drift_min_observations: int = 3
    drift_cooldown: int = 8
    drift_escalation: int = 8
    objective: Objective = Objective.MAKESPAN
    power_cap_w: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "objective", coerce_objective(self.objective))
        if self.power_cap_w is not None and not self.power_cap_w > 0:
            raise ValueError("power_cap_w must be positive")
        if self.objective is Objective.ENERGY_CAPPED and self.power_cap_w is None:
            raise ValueError(
                "the energy-capped-makespan objective needs a power_cap_w"
            )
        if self.regression_threshold < 0:
            raise ValueError("regression_threshold must be non-negative")
        if self.refit_interval < 1:
            raise ValueError("refit_interval must be >= 1")
        if self.max_adaptations_per_key < 0:
            raise ValueError("max_adaptations_per_key must be non-negative")
        if not 1 <= self.adaptation_step <= 100:
            raise ValueError("adaptation_step must be a percentage in [1, 100]")
        if self.drift_window < 1:
            raise ValueError("drift_window must be >= 1")
        if not 0.0 < self.drift_alpha <= 1.0:
            raise ValueError("drift_alpha must be in (0, 1]")
        if self.drift_threshold < 0:
            raise ValueError("drift_threshold must be non-negative")
        if self.drift_min_observations < 1:
            raise ValueError("drift_min_observations must be >= 1")
        if self.drift_cooldown < 0:
            raise ValueError("drift_cooldown must be non-negative")
        if self.drift_escalation < 0:
            raise ValueError("drift_escalation must be non-negative")


@dataclass
class ServiceStats:
    """Counters over one service lifetime.

    ``improvement_s`` is measured in the configured objective's units
    (seconds under makespan, joules under energy, J·s under EDP).
    ``energy_j`` totals the joules of every *served* run (adaptation
    probes are visible in the runner's session stats instead).
    """

    requests: int = 0
    adaptations: int = 0
    refits: int = 0
    regressions: int = 0
    cold_validations: int = 0
    improvement_s: float = 0.0
    drift_flags: int = 0
    drift_escalations: int = 0
    rewarms: int = 0
    energy_j: float = 0.0
    power_capped: int = 0
    power_cap_violations: int = 0
    #: Graph requests served (each also counts once in ``requests``).
    graph_requests: int = 0
    #: Full scheduling × partitioning co-searches run (cold graph keys
    #: and graph-level regressions/drift flags trigger them).
    graph_cosearches: int = 0


@dataclass(frozen=True)
class ServedResponse:
    """Everything the service decided and observed for one request.

    ``estimate_s`` and ``improvement_s`` are in the configured
    objective's units (seconds only under the makespan objective).
    """

    request: ServingRequest
    partitioning: Partitioning
    cache_hit: bool
    measured_s: float
    estimate_s: float | None
    slot: DispatchSlot
    adapted: bool = False
    improvement_s: float = 0.0
    energy_j: float = 0.0
    capped: bool = False
    #: Measured scalar cost under the service's objective — the number
    #: ``estimate_s`` is comparable against (equals ``measured_s`` only
    #: under the makespan objective).
    cost: float = 0.0

    @property
    def power_w(self) -> float:
        """Average platform draw over this launch (0 for a zero span)."""
        return self.energy_j / self.measured_s if self.measured_s > 0 else 0.0


@dataclass(frozen=True)
class GraphServedResponse:
    """Everything the service decided and observed for one graph request.

    ``measured_s`` is the composed critical-path makespan the request
    experienced (queue/predict spans are added by the event loop,
    exactly as for single-kernel responses); ``plan`` is the per-task
    partitioning assignment the *next* request under this key will use
    (the co-searched winner when adaptation fired).
    """

    request: GraphServingRequest
    plan: GraphPlan
    cache_hit: bool
    measured_s: float
    estimate_s: float | None
    energy_j: float = 0.0
    adapted: bool = False
    improvement_s: float = 0.0
    #: Measured scalar cost under the service's objective.
    cost: float = 0.0
    #: Task names along the makespan-defining dependency chain.
    critical_path: tuple[str, ...] = ()
    #: The full composed run (schedules, transfers, per-task runs).
    run: GraphRun | None = None

    @property
    def power_w(self) -> float:
        """Average platform draw over the composed run (0 for zero span)."""
        return self.energy_j / self.measured_s if self.measured_s > 0 else 0.0


class PartitioningService:
    """Serves concurrent launch requests against one trained system."""

    def __init__(self, system: TrainedSystem, config: ServiceConfig = ServiceConfig()):
        trained_step = _trained_grid_step(system.database)
        if trained_step is not None and config.adaptation_step % trained_step != 0:
            # An off-grid step would let the local search pin a winner
            # outside partition_space: its label never matches a model
            # class after refit, so the adaptation could never be
            # confirmed (or corrected) by the model again.
            raise ValueError(
                f"adaptation_step {config.adaptation_step} is off the trained "
                f"partition grid (step {trained_step}); use a multiple of it"
            )
        if config.power_cap_w is not None:
            idle_floor = EnergyMeter(system.runner.devices).platform_idle_w()
            if config.power_cap_w <= idle_floor:
                # Idle watts of every device accrue over any launch, so
                # no partitioning can ever average below the floor.
                raise ValueError(
                    f"power_cap_w {config.power_cap_w:g} W is at or below the "
                    f"platform idle floor ({idle_floor:g} W); no partitioning "
                    "can satisfy it"
                )
        if config.objective is not Objective.MAKESPAN or config.power_cap_w:
            # Fail at construction, not on the first request deep in a
            # serve loop: a database recorded before the energy
            # subsystem (e.g. loaded from an old registry snapshot)
            # cannot answer energy-aware estimates.
            legacy = [
                f"{r.program}@{r.size}" for r in system.database if not r.energies
            ]
            if legacy:
                raise ValueError(
                    f"objective {config.objective.value!r}"
                    + (" with a power cap" if config.power_cap_w else "")
                    + f" needs energy sweeps, but {len(legacy)} database "
                    f"records have none (e.g. {legacy[0]}); retrain or "
                    "serve with the makespan objective"
                )
        self.system = system
        self.config = config
        self.cache = PredictionCache(config.cache_capacity)
        self.scheduler = BatchScheduler(system.platform.num_devices)
        self.stats = ServiceStats()
        self.engine = SweepEngine(system.runner) if config.memoize else None
        self.detector = (
            DriftDetector(
                window=config.drift_window,
                alpha=config.drift_alpha,
                threshold=config.drift_threshold,
                min_observations=config.drift_min_observations,
                cooldown=config.drift_cooldown,
            )
            if config.detect_drift
            else None
        )
        self._validated: dict[CacheKey, Partitioning] = {}
        self._adaptations_by_key: dict[CacheKey, int] = {}
        # Power-cap substitutions, memoized per key: the cap decision is
        # measurement-backed, so it survives refits but not drift.
        self._capped: dict[CacheKey, Partitioning] = {}
        # Post-drift estimate re-baselines: the database's best_time is
        # a *pre-drift* minimum the hardware may no longer reach, so a
        # flagged key's estimate is pinned to the best time measured on
        # the drifted hardware instead.
        self._drift_estimates: dict[CacheKey, float] = {}
        # Best measured objective cost per graph key: graphs have no
        # training-database record, so their regression/drift baseline
        # is the best composed cost observed so far (re-based after a
        # drift flag, exactly like _drift_estimates for kernels).
        self._graph_estimates: dict[CacheKey, float] = {}
        self._pending_refit = 0
        # Per-key memoization of the expensive request plumbing: problem
        # instances, execution requests and feature dicts are identical
        # across repeats of a key (timing-only runs never mutate arrays).
        self._requests: dict[CacheKey, ExecutionRequest] = {}
        self._features: dict[CacheKey, dict[str, float]] = {}

    # -- plumbing ---------------------------------------------------------

    @property
    def machine(self) -> str:
        return self.system.platform.name

    def _key(self, request: ServingRequest) -> CacheKey:
        return (self.machine, request.program, request.size)

    def _execution_request(self, bench: Benchmark, key: CacheKey) -> ExecutionRequest:
        if key not in self._requests:
            instance = bench.make_instance(key[2], seed=self.config.instance_seed)
            self._requests[key] = bench.request(instance)
            self._features[key] = self.system.predictor.features_for(bench, instance)
        return self._requests[key]

    def _estimate(self, key: CacheKey) -> float | None:
        """Best achievable objective cost for a key, from the database.

        Post-drift re-baselines (measured on the drifted hardware)
        override the database minimum.  Under a power cap the estimate
        comes from cap-feasible sweep points only — a capped service
        must not judge itself against a draw it is forbidden to use.
        """
        override = self._drift_estimates.get(key)
        if override is not None:
            return override
        record = self.system.database.record_for(*key)
        if record is None:
            return None
        return record.best_cost_for(
            self.config.objective, power_cap_w=self.config.power_cap_w
        )

    def _measure(
        self, exec_request: ExecutionRequest, p: Partitioning
    ) -> tuple[float, float]:
        """Measure one partitioning; returns (median seconds, joules)."""
        if self.engine is not None:
            run = self.engine.measure(
                exec_request, p, repetitions=self.config.repetitions
            )
        else:
            run = self.system.runner.run(
                exec_request, p, functional=False, repetitions=self.config.repetitions
            )
        return run.median_s, run.energy_j

    def _cost(self, time_s: float, energy_j: float) -> float:
        """Scalar cost of one measurement under the configured objective."""
        return objective_cost(
            self.config.objective,
            time_s,
            energy_j,
            power_cap_w=self.config.power_cap_w,
        )

    def peek_prediction(
        self,
        request: ServingRequest,
        features: dict[str, float] | None = None,
    ) -> Partitioning:
        """The partitioning this service would answer with, right now.

        Resolution order matches :meth:`submit` — cache, then locally
        validated winners, then the model — but nothing is served: no
        cache accounting, no dispatch, no database write.  The fleet
        router uses this to ask every replica's model where a request
        would run before placing it; it passes ``features`` (which are
        machine-independent) so N replicas don't each build the
        problem instance just to answer a peek.
        """
        key = self._key(request)
        cached = self.cache.peek(key)
        if cached is None:
            cached = self._validated.get(key)
        if cached is not None:
            return cached
        if features is None:
            self._execution_request(get_benchmark(request.program), key)
            features = self._features[key]
        return self.system.predictor.predict_features(features)

    # -- the serving loop -------------------------------------------------
    #
    # The public entrypoints below are thin shims over the unified
    # ``serve_trace`` facade (:mod:`repro.serving.options`); the serving
    # cores are the private ``_submit`` / ``_submit_many`` /
    # ``_submit_graph`` the facade dispatches back into.  Shim and
    # direct call produce bit-identical responses (golden-pinned in the
    # test suite).

    def submit(self, request: ServingRequest) -> ServedResponse:
        """Serve one launch request end-to-end."""
        from .options import ServeOptions, serve_trace

        result = serve_trace(
            self, [request], ServeOptions(batch_predict=False)
        )
        return result.responses[0]

    def _submit(
        self, request: ServingRequest, prefetched: Partitioning | None
    ) -> ServedResponse:
        """Serve one request; ``prefetched`` is a batch-predicted answer
        for this request's key (used only when the key is cold)."""
        bench = get_benchmark(request.program)
        key = self._key(request)
        self.stats.requests += 1

        cached = self.cache.get(key)
        cache_hit = cached is not None
        exec_request = self._execution_request(bench, key)
        if cached is None:
            # A locally-validated winner outranks the model: it was
            # measured, the prediction wasn't.  This also restores
            # adapted keys that fell out of the LRU cache.
            cached = self._validated.get(key)
        if cached is None:
            cached = prefetched
        if cached is None:
            cached = self.system.predictor.predict_features(self._features[key])
        if not cache_hit:
            self.cache.put(key, cached)
        partitioning = cached

        capped = False
        if self.config.power_cap_w is not None:
            partitioning, capped = self._enforce_cap(key, exec_request, partitioning)
            if capped:
                self.stats.power_capped += 1

        estimate = self._estimate(key)
        cold = estimate is None
        measured, energy = self._measure(exec_request, partitioning)
        cost = self._cost(measured, energy)
        slot = self.scheduler.dispatch(partitioning, measured)
        self.stats.energy_j += energy
        if (
            self.config.power_cap_w is not None
            and measured > 0
            and energy / measured > self.config.power_cap_w
        ):
            self.stats.power_cap_violations += 1

        regressed = (
            estimate is not None
            and cost > (1.0 + self.config.regression_threshold) * estimate
        )
        if regressed:
            self.stats.regressions += 1

        drifted = False
        if self.detector is not None and estimate is not None:
            drifted = self.detector.observe(key, cost, estimate)
        if drifted:
            # Sustained disagreement: every decision made for this key
            # on the old evidence is suspect.  Drop the cached answer,
            # the pinned winner and the power-cap substitution, and
            # restore the adaptation budget so the re-search below is
            # allowed to run.
            self.stats.drift_flags += 1
            self.cache.invalidate(key)
            self._validated.pop(key, None)
            self._adaptations_by_key.pop(key, None)
            self._capped.pop(key, None)

        adapted = False
        improvement = 0.0
        timings = {partitioning.label: measured}
        energies = {partitioning.label: energy}
        costs = {partitioning.label: cost}
        if self._should_search(key, cold, regressed or drifted):
            adapted, improvement, partitioning = self._adapt(
                key, exec_request, partitioning, cost, timings, energies, costs, cold
            )
        if drifted:
            # Re-baseline against the drifted hardware: the freshest
            # measured best is the estimate future requests are judged
            # by (the database minimum may be unreachable now), and the
            # search winner goes back in the cache either way.
            self._drift_estimates[key] = min(costs.values())
            self.cache.put(key, partitioning)
            if (
                self.config.drift_escalation > 0
                and self.detector.flags_in_window() >= self.config.drift_escalation
            ):
                self._escalate()

        # Every measured run — adapted or not — lands in the database.
        self.system.database.merge_timings(
            *key,
            features=dict(self._features[key]),
            timings=timings,
            energies=energies,
        )

        return ServedResponse(
            request=request,
            partitioning=partitioning,
            cache_hit=cache_hit,
            measured_s=measured,
            estimate_s=estimate,
            slot=slot,
            adapted=adapted,
            improvement_s=improvement,
            energy_j=energy,
            capped=capped,
            cost=cost,
        )

    def serve(self, trace: Sequence[ServingRequest]) -> list[ServedResponse]:
        """Serve a whole trace sequentially; returns per-request responses."""
        return [self.submit(r) for r in trace]

    def submit_many(self, trace: Sequence[ServingRequest]) -> list[ServedResponse]:
        """Serve a whole trace with batched model inference.

        Groups the trace by cache key and answers every *cold* unique
        key (neither cached, validated, nor already served) with one
        vectorized model pass, then dispatches the requests in arrival
        order through the normal serving loop — cache accounting,
        adaptation and refit behave exactly as under :meth:`serve`.
        Batch-predicted answers are invalidated whenever a mid-trace
        refit changes the model; the remaining cold keys are then
        re-predicted in one fresh pass.
        """
        from .options import ServeOptions, serve_trace

        return list(serve_trace(self, trace, ServeOptions()).responses)

    def _submit_many(self, trace: Sequence[ServingRequest]) -> list[ServedResponse]:
        """The batched-inference serving core behind :meth:`submit_many`."""
        requests = list(trace)
        responses: list[ServedResponse] = []
        prefetched: dict[CacheKey, Partitioning] = {}
        prefetched_at_refit = -1
        for i, request in enumerate(requests):
            if prefetched_at_refit != self.stats.refits:
                prefetched = self._prefetch(requests[i:])
                prefetched_at_refit = self.stats.refits
            responses.append(self._submit(request, prefetched.get(self._key(request))))
        return responses

    def _prefetch(
        self, remaining: Sequence[ServingRequest]
    ) -> dict[CacheKey, Partitioning]:
        """One vectorized model pass over the remaining cold unique keys."""
        cold_keys: list[CacheKey] = []
        seen: set[CacheKey] = set()
        for request in remaining:
            key = self._key(request)
            if key in seen or key in self.cache or key in self._validated:
                continue
            seen.add(key)
            # Builds (and memoizes) the instance plumbing so the feature
            # dict exists; repeated keys reuse it during dispatch.
            self._execution_request(get_benchmark(request.program), key)
            cold_keys.append(key)
        if not cold_keys:
            return {}
        predictions = self.system.predictor.predict_features_many(
            [self._features[k] for k in cold_keys]
        )
        return dict(zip(cold_keys, predictions))

    # -- graph serving ------------------------------------------------------

    def _graph_key(self, graph: TaskGraph) -> CacheKey:
        """Graph-level prediction-cache key: same shape, graph identity."""
        return (self.machine, graph.signature_label, graph.total_size)

    def _graph_measure(self, graph: TaskGraph, plan: GraphPlan) -> GraphRun:
        """Compose one graph run on the configured measurement path."""
        if self.engine is not None:
            return self.engine.measure_graph(
                graph,
                plan,
                repetitions=self.config.repetitions,
                instance_seed=self.config.instance_seed,
            )
        return self.system.runner.run_graph(
            graph,
            plan,
            repetitions=self.config.repetitions,
            instance_seed=self.config.instance_seed,
        )

    def _predict_plan(self, graph: TaskGraph) -> GraphPlan:
        """Per-task model predictions — the plan before any co-search.

        Each node is answered exactly as a single-kernel request would
        be (features → model), so a cold graph starts from the same
        evidence the kernel path has; what it *cannot* see is the
        transfers and overlap between tasks — that is the co-search's
        job.
        """
        assignments: dict[str, Partitioning] = {}
        for node in graph.nodes:
            node_key = (self.machine, node.program, node.size)
            self._execution_request(get_benchmark(node.program), node_key)
            assignments[node.name] = self.system.predictor.predict_features(
                self._features[node_key]
            )
        return GraphPlan.from_dict(assignments)

    def _graph_search(self, graph: TaskGraph) -> tuple[GraphPlan, GraphRun]:
        """Co-search placement × per-task partitioning for one graph."""
        runner = self.system.runner
        if self.engine is not None:
            measure = self.engine.measure
            requests = self.engine.graph_requests(
                graph, instance_seed=self.config.instance_seed
            )
        else:

            def measure(request, partitioning, repetitions=1):
                return runner.run(
                    request, partitioning, functional=False, repetitions=repetitions
                )

            requests = node_requests(graph, seed=self.config.instance_seed)
        planner = GraphPlanner(
            measure,
            runner.devices,
            EnergyMeter(runner.devices).platform_idle_w(),
            step_percent=self.config.adaptation_step,
        )
        return planner.search(graph, requests, repetitions=self.config.repetitions)

    def submit_graph(self, request: GraphServingRequest) -> GraphServedResponse:
        """Serve one task-graph request end-to-end.

        The graph analogue of :meth:`submit`: resolve a plan (cache →
        pinned winner → per-task model predictions), measure the
        composed critical path, check it against the best cost this
        graph has ever achieved, and co-search scheduling ×
        partitioning when the key is cold, regressed or drift-flagged
        — budgeted by ``max_adaptations_per_key`` exactly like kernel
        adaptations.  Every per-task measurement of the composed run
        lands in the training database under its own (program, size)
        key, so graph traffic keeps teaching the single-kernel model.
        """
        from .options import ServeOptions, serve_trace

        result = serve_trace(
            self, [request], ServeOptions(batch_predict=False)
        )
        return result.responses[0]

    def _submit_graph(self, request: GraphServingRequest) -> GraphServedResponse:
        """The graph serving core behind :meth:`submit_graph`."""
        graph = request.graph
        key = self._graph_key(graph)
        self.stats.requests += 1
        self.stats.graph_requests += 1

        cached = self.cache.get(key)
        cache_hit = cached is not None
        if cached is None:
            cached = self._validated.get(key)
        if cached is None:
            cached = self._predict_plan(graph)
        if not cache_hit:
            self.cache.put(key, cached)
        assert isinstance(cached, GraphPlan)
        plan = cached

        run = self._graph_measure(graph, plan)
        measured = run.median_s
        energy = run.energy_j
        cost = self._cost(measured, energy)
        self.stats.energy_j += energy

        estimate = self._graph_estimates.get(key)
        cold = estimate is None
        regressed = (
            estimate is not None
            and cost > (1.0 + self.config.regression_threshold) * estimate
        )
        if regressed:
            self.stats.regressions += 1

        drifted = False
        if self.detector is not None and estimate is not None:
            drifted = self.detector.observe(key, cost, estimate)
        if drifted:
            self.stats.drift_flags += 1
            self.cache.invalidate(key)
            self._validated.pop(key, None)
            self._adaptations_by_key.pop(key, None)
            # The old baseline was measured on pre-drift hardware; the
            # best cost observed from here on re-bases it.
            estimate = None

        adapted = False
        improvement = 0.0
        best_cost = cost
        if self._should_search(key, cold, regressed or drifted):
            self._adaptations_by_key[key] = (
                self._adaptations_by_key.get(key, 0) + 1
            )
            if cold:
                self.stats.cold_validations += 1
            self.stats.graph_cosearches += 1
            searched_plan, searched_run = self._graph_search(graph)
            searched_cost = self._cost(searched_run.median_s, searched_run.energy_j)
            best_cost = min(best_cost, searched_cost)
            if searched_plan != plan and searched_cost < cost:
                adapted = True
                improvement = cost - searched_cost
                if not math.isfinite(improvement):
                    improvement = 0.0
                self.stats.adaptations += 1
                self.stats.improvement_s += improvement
                plan = searched_plan
            # Measurement-backed winner (even when it matches the
            # prediction): pin it so LRU eviction cannot lose it.
            self._validated[key] = plan
            self.cache.put(key, plan)
        if drifted:
            self.cache.put(key, plan)
        self._graph_estimates[key] = (
            best_cost if estimate is None else min(estimate, best_cost)
        )

        # Per-task evidence flows into the same database single-kernel
        # serving feeds — graph traffic trains the kernel model too.
        for name, node_run in run.node_runs.items():
            node = graph.node(name)
            node_key = (self.machine, node.program, node.size)
            self._execution_request(get_benchmark(node.program), node_key)
            self.system.database.merge_timings(
                *node_key,
                features=dict(self._features[node_key]),
                timings={node_run.partitioning.label: node_run.median_s},
                energies={node_run.partitioning.label: node_run.energy_j},
            )

        return GraphServedResponse(
            request=request,
            plan=plan,
            cache_hit=cache_hit,
            measured_s=measured,
            estimate_s=estimate,
            energy_j=energy,
            adapted=adapted,
            improvement_s=improvement,
            cost=cost,
            critical_path=run.critical_path,
            run=run,
        )

    # -- online adaptation -------------------------------------------------

    def _should_search(self, key: CacheKey, cold: bool, regressed: bool) -> bool:
        if self._adaptations_by_key.get(key, 0) >= self.config.max_adaptations_per_key:
            return False
        return regressed or (cold and self.config.validate_cold_keys)

    def _adapt(
        self,
        key: CacheKey,
        exec_request: ExecutionRequest,
        predicted: Partitioning,
        measured_cost: float,
        timings: dict[str, float],
        energies: dict[str, float],
        costs: dict[str, float],
        cold: bool,
    ) -> tuple[bool, float, Partitioning]:
        """Local neighbourhood re-search around a suspect prediction.

        Candidates are compared in the configured objective's scalar
        cost; under a power cap the winner must additionally be
        cap-feasible unless *nothing* measured is (the request still
        has to run somewhere).
        """
        self._adaptations_by_key[key] = self._adaptations_by_key.get(key, 0) + 1
        for candidate in neighborhood(predicted, self.config.adaptation_step):
            t, e = self._measure(exec_request, candidate)
            timings[candidate.label] = t
            energies[candidate.label] = e
            costs[candidate.label] = self._cost(t, e)
        eligible = costs
        cap = self.config.power_cap_w
        if cap is not None:
            feasible = {
                label: c
                for label, c in costs.items()
                if cap_feasible(timings[label], energies[label], cap)
            }
            eligible = feasible or costs
        best_label = min(eligible, key=lambda label: (eligible[label], label))
        best = Partitioning.from_label(best_label)
        if cold:
            self.stats.cold_validations += 1
        if best == predicted:
            return False, 0.0, predicted

        # The model mispredicted this key: pin the validated winner and
        # queue the new evidence for an incremental refit.  Two
        # infinite costs (cap-infeasible served run AND winner) carry
        # no magnitude — record zero gain rather than inf - inf = NaN.
        improvement = measured_cost - costs[best_label]
        if not math.isfinite(improvement):
            improvement = 0.0
        self.stats.adaptations += 1
        self.stats.improvement_s += improvement
        self._validated[key] = best
        self.cache.put(key, best)
        if cap is not None:
            # The winner was measured under the cap; future cap checks
            # for this key must start from it, not the old substitute.
            self._capped[key] = best
        self._pending_refit += 1
        if self._pending_refit >= self.config.refit_interval:
            self.refit_now()
        return True, improvement, best

    def _enforce_cap(
        self,
        key: CacheKey,
        exec_request: ExecutionRequest,
        predicted: Partitioning,
    ) -> tuple[Partitioning, bool]:
        """Swap an over-cap answer for the best cap-feasible grid point.

        The check is measurement-backed (one probe of the candidate;
        a full grid probe only when it violates), and the decision is
        memoized per key — probes compose from the engine's cached
        tapes, so steady-state requests pay a dictionary lookup.  When
        no grid point satisfies the cap the minimum-power one serves
        (and the violation will be counted at dispatch).
        """
        hit = self._capped.get(key)
        if hit is not None:
            return hit, hit != predicted
        cap = self.config.power_cap_w
        assert cap is not None
        t, e = self._measure(exec_request, predicted)
        if cap_feasible(t, e, cap):
            self._capped[key] = predicted
            return predicted, False
        best: Partitioning | None = None
        best_cost = math.inf
        fallback = predicted
        fallback_power = e / t
        for candidate in partition_space(
            predicted.num_devices, self.config.adaptation_step
        ):
            ct, ce = self._measure(exec_request, candidate)
            power = ce / ct if ct > 0 else 0.0
            if power < fallback_power:
                fallback, fallback_power = candidate, power
            if cap_feasible(ct, ce, cap):
                cost = self._cost(ct, ce)
                if cost < best_cost:
                    best, best_cost = candidate, cost
        chosen = best if best is not None else fallback
        self._capped[key] = chosen
        return chosen, chosen != predicted

    def refit_now(self) -> None:
        """Incrementally refit the model and re-seed the cache.

        The refit consumes the augmented database (training sweeps plus
        every online observation), so the next cache misses are answered
        by a model that has seen the serving traffic.  Locally-validated
        winners survive the invalidation: a measurement beats a model
        prediction.
        """
        self.system.predictor.refit(
            self.system.database, incremental=self.config.incremental_refit
        )
        self.cache.invalidate()
        for key, partitioning in self._validated.items():
            self.cache.put(key, partitioning)
        self._pending_refit = 0
        self.stats.refits += 1

    def _escalate(self) -> None:
        """Platform-level drift: too many keys flagged inside the window.

        When disagreement is spread across the traffic rather than
        confined to one key, the *hardware* (or the whole popularity
        regime) moved — key-by-key firefighting would re-search the
        entire working set one flag at a time.  Drop every pinned
        winner and spent budget, refit on everything observed so far
        and restart detection from a clean slate.  Post-drift estimate
        baselines survive: they were measured on the new hardware.
        """
        self.stats.drift_escalations += 1
        self._validated.clear()
        self._adaptations_by_key.clear()
        self._capped.clear()
        self.detector.reset()
        self.refit_now()

    def rewarm(
        self,
        predictor: PartitioningPredictor | None = None,
        database: TrainingDatabase | None = None,
    ) -> None:
        """Reset every online decision; optionally swap in fresh state.

        The fleet router drains a persistently degraded replica and
        re-warms it through here — with a registry-loaded predictor and
        database when available (roll back to the last known-good
        snapshot), otherwise by refitting the current model on the full
        observation history.  Either way the prediction cache, pinned
        winners, adaptation budgets and detector state all restart
        cold; the scheduler timeline and runner telemetry carry on.
        Post-drift estimate baselines *survive*, exactly as they do
        across an escalation: a model rollback does not roll back the
        hardware, and reverting to pre-drift database minima the
        drifted machine can never reach would re-trip the health check
        and thrash the replica through endless drain/re-warm cycles.
        """
        if database is not None:
            self.system.database = database
        if predictor is not None:
            self.system.predictor = predictor
        else:
            # Refit after any database swap: a model fitted on the
            # discarded history would disagree with the rolled-back
            # records it serves against.
            self.system.predictor.refit(
                self.system.database, incremental=self.config.incremental_refit
            )
        self.cache.invalidate()
        self._validated.clear()
        self._adaptations_by_key.clear()
        self._capped.clear()
        self._pending_refit = 0
        if self.detector is not None:
            self.detector.reset()
        self.stats.rewarms += 1

    def publish_metrics(self, registry, prefix: str = "service") -> None:
        """Publish the service's counters as ``service.*`` gauges.

        Covers :class:`ServiceStats`, the prediction cache, and — when
        drift detection is on — the detector, all under one prefix so a
        fleet/cluster can publish each member service under its own.
        """
        stats = self.stats
        registry.gauge(f"{prefix}.requests").set(stats.requests)
        registry.gauge(f"{prefix}.graph_requests").set(stats.graph_requests)
        registry.gauge(f"{prefix}.graph_cosearches").set(stats.graph_cosearches)
        registry.gauge(f"{prefix}.adaptations").set(stats.adaptations)
        registry.gauge(f"{prefix}.refits").set(stats.refits)
        registry.gauge(f"{prefix}.regressions").set(stats.regressions)
        registry.gauge(f"{prefix}.cold_validations").set(stats.cold_validations)
        registry.gauge(f"{prefix}.improvement_s").set(stats.improvement_s)
        registry.gauge(f"{prefix}.drift_flags").set(stats.drift_flags)
        registry.gauge(f"{prefix}.drift_escalations").set(stats.drift_escalations)
        registry.gauge(f"{prefix}.rewarms").set(stats.rewarms)
        registry.gauge(f"{prefix}.energy_j").set(stats.energy_j)
        registry.gauge(f"{prefix}.power_capped").set(stats.power_capped)
        registry.gauge(f"{prefix}.power_cap_violations").set(
            stats.power_cap_violations
        )
        cache = self.cache.stats
        registry.gauge(f"{prefix}.cache.hits").set(cache.hits)
        registry.gauge(f"{prefix}.cache.misses").set(cache.misses)
        registry.gauge(f"{prefix}.cache.evictions").set(cache.evictions)
        registry.gauge(f"{prefix}.cache.invalidations").set(cache.invalidations)
        registry.gauge(f"{prefix}.cache.hit_rate").set(cache.hit_rate)
        if self.detector is not None:
            self.detector.publish_metrics(registry, prefix=f"{prefix}.drift")
