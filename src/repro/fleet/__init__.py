"""The fleet layer: sharding the partitioning service across machines.

One :class:`FleetRouter` owns N replicas — each a machine from
:mod:`repro.machines` with its own trained system and
:class:`~repro.serving.PartitioningService` — and places a shared
request trace on them via pluggable policies (least-loaded, affinity
hashing, predicted-makespan).  The :class:`ModelRegistry` persists
per-machine models and warm-starts cold machines from the most
spec-similar registered one.
"""

from .registry import ModelRegistry, spec_fingerprint
from .router import (
    ROUTING_POLICIES,
    FleetReplica,
    FleetResponse,
    FleetRouter,
    FleetStats,
    HealthConfig,
    ReplicaHealthView,
    ReplicaStats,
)

__all__ = [
    "ModelRegistry",
    "spec_fingerprint",
    "ROUTING_POLICIES",
    "FleetReplica",
    "FleetResponse",
    "FleetRouter",
    "FleetStats",
    "HealthConfig",
    "ReplicaHealthView",
    "ReplicaStats",
]
