"""The model registry: train once per machine, deploy fleet-wide.

The paper's deployment story — an offline-generated model the runtime
loads later — scaled to a fleet: one directory per machine holding the
serialized model (:func:`repro.core.save_model`), the training
database (:meth:`TrainingDatabase.save`) and a spec fingerprint.

The fingerprint is what makes *warm starts* possible: when a machine
joins the fleet cold (no training campaign yet), the registry finds
the most spec-similar machine it has seen, relabels that machine's
training records to the new name and fits a model on them.  The
predictions are only as good as the donor's similarity — but the
serving layer's cold-key validation and online adaptation then refine
them from live traffic, which beats serving a brand-new machine from
nothing or blocking on a multi-hour sweep.

Layout::

    <root>/<machine>/model.json      serialized classifier
    <root>/<machine>/database.json   training database
    <root>/<machine>/meta.json       schema version + spec fingerprint
"""

from __future__ import annotations

import json
import math
from dataclasses import replace
from pathlib import Path

from ..core.database import TrainingDatabase
from ..core.pipeline import TrainedSystem
from ..core.predictor import (
    PartitioningPredictor,
    load_model,
    make_partitioning_model,
    save_model,
)
from ..ocl.platform import Platform
from ..runtime.measurement import Runner

__all__ = ["ModelRegistry", "spec_fingerprint"]

_REGISTRY_SCHEMA_VERSION = 1

#: Per-device fingerprint dimensions (log-scaled where spans are wide).
_FINGERPRINT_FIELDS = ("kind", "peak_gflops", "mem_bandwidth_gbs", "pcie_bandwidth_gbs")


def spec_fingerprint(platform: Platform) -> list[float]:
    """A flat spec vector used to rank machine similarity.

    Per device: kind (CPU=0/GPU=1), log2 peak GFLOP/s, log2 memory
    bandwidth, PCIe bandwidth.  Log scaling keeps a 2x compute gap
    comparable to a 2x bandwidth gap; fleets with different device
    counts are compared by zero-padding (a missing device is maximally
    dissimilar to any real one).
    """
    vector: list[float] = []
    for spec in platform.device_specs:
        vector.extend(
            (
                0.0 if spec.kind.value == "cpu" else 1.0,
                math.log2(max(spec.peak_gflops, 1e-9)),
                math.log2(max(spec.mem_bandwidth_gbs, 1e-9)),
                spec.pcie_bandwidth_gbs,
            )
        )
    return vector


def _distance(a: list[float], b: list[float]) -> float:
    width = max(len(a), len(b))
    a = a + [0.0] * (width - len(a))
    b = b + [0.0] * (width - len(b))
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


class ModelRegistry:
    """Persists and restores per-machine trained systems."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _dir(self, machine: str) -> Path:
        return self.root / machine

    def machines(self) -> tuple[str, ...]:
        """Registered machine names, sorted for determinism."""
        if not self.root.is_dir():
            return ()
        return tuple(
            sorted(d.name for d in self.root.iterdir() if (d / "meta.json").is_file())
        )

    def has(self, machine: str) -> bool:
        return (self._dir(machine) / "meta.json").is_file()

    # -- persistence -------------------------------------------------------

    def save(self, system: TrainedSystem) -> Path:
        """Persist one machine's model + database; returns its directory."""
        machine = system.platform.name
        directory = self._dir(machine)
        directory.mkdir(parents=True, exist_ok=True)
        save_model(system.predictor.model, directory / "model.json")
        system.database.save(directory / "database.json")
        (directory / "meta.json").write_text(
            json.dumps(
                {
                    "schema_version": _REGISTRY_SCHEMA_VERSION,
                    "machine": machine,
                    "num_devices": system.platform.num_devices,
                    "fingerprint": spec_fingerprint(system.platform),
                    "records": len(system.database),
                },
                indent=1,
                sort_keys=True,
            )
        )
        return directory

    def _meta(self, machine: str) -> dict:
        meta = json.loads((self._dir(machine) / "meta.json").read_text())
        version = meta.get("schema_version")
        if version != _REGISTRY_SCHEMA_VERSION:
            raise ValueError(
                f"registry schema {version} != supported {_REGISTRY_SCHEMA_VERSION}"
            )
        return meta

    def load_snapshot(
        self, platform: Platform
    ) -> tuple[PartitioningPredictor, TrainingDatabase]:
        """The registered predictor + database, without a runner.

        The fleet re-warm path rolls a live replica's model and
        database back to this snapshot while keeping the replica's own
        (possibly drifted) runner — building a throwaway runner per
        re-warm would be waste.
        """
        if not self.has(platform.name):
            raise LookupError(
                f"machine {platform.name!r} is not registered under {self.root}"
            )
        self._meta(platform.name)  # schema check
        directory = self._dir(platform.name)
        model = load_model(directory / "model.json")
        database = TrainingDatabase.load(directory / "database.json")
        return PartitioningPredictor(model, platform.name), database

    def load(
        self, platform: Platform, noise_sigma: float = 0.0, seed: int = 0
    ) -> TrainedSystem:
        """Rebuild a deployable system for a registered machine."""
        predictor, database = self.load_snapshot(platform)
        runner = Runner(platform, noise_sigma=noise_sigma, seed=seed + 1)
        return TrainedSystem(platform, predictor, database, runner)

    # -- warm starts -------------------------------------------------------

    def most_similar(self, platform: Platform) -> str | None:
        """The registered machine whose specs are closest to ``platform``.

        The platform's own entry is excluded (a warm start is for a
        machine the registry has *not* trained); ties break by name.
        """
        target = spec_fingerprint(platform)
        candidates = [m for m in self.machines() if m != platform.name]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda m: (_distance(target, self._meta(m)["fingerprint"]), m),
        )

    def warm_start(
        self,
        platform: Platform,
        model_kind: str = "knn",
        noise_sigma: float = 0.0,
        seed: int = 0,
        donor: str | None = None,
    ) -> TrainedSystem:
        """Seed a cold machine from the most spec-similar registered one.

        The donor's training records are relabeled to the cold machine's
        name (features are machine-independent; the timings become a
        transferable prior) and a fresh model is fitted on them.  The
        returned system is immediately servable — online adaptation
        corrects the donor's biases from live traffic.  Callers that
        already ranked the registry (to report the choice) pass the
        ``donor`` explicitly and skip a second fingerprint scan.
        """
        if donor is None:
            donor = self.most_similar(platform)
        elif not self.has(donor):
            raise LookupError(f"donor machine {donor!r} is not registered")
        if donor is None:
            raise LookupError(
                f"no registered machine to warm-start {platform.name!r} from"
            )
        donor_db = TrainingDatabase.load(self._dir(donor) / "database.json")
        database = TrainingDatabase(
            replace(r, machine=platform.name) for r in donor_db
        )
        model = make_partitioning_model(model_kind, seed=seed).fit(database)
        predictor = PartitioningPredictor(model, platform.name)
        runner = Runner(platform, noise_sigma=noise_sigma, seed=seed + 1)
        return TrainedSystem(platform, predictor, database, runner)
