"""The fleet router: one request stream, many machines.

The paper trains one model per machine and predicts per (program,
size); a production deployment owns a *fleet* of heterogeneous
machines and must decide, per request, which machine serves it —
HeSP's joint scheduling-partitioning question lifted one level up,
and HeMT's dispatch tier made explicit.  The router owns N replicas
(each one machine with its own :class:`TrainedSystem` and
:class:`PartitioningService`) and places every request via a pluggable
policy:

* ``least-loaded`` — the replica whose multiplexed timeline frees up
  first (:attr:`BatchScheduler.makespan_s`), the classic list-scheduling
  greedy.
* ``affinity`` — a stable hash of (program, size): every key always
  lands on the same replica, maximizing that replica's prediction-cache
  and adaptation locality at the price of load balance.
* ``predicted`` — ask each replica's model what partitioning it would
  run and a noise-free cost-model estimate of how long that would take
  on that machine, then place the request where it is predicted to
  *finish* first (device availability + predicted duration).  This is
  the makespan-aware policy: a fast machine that is busy loses to a
  slower idle one.

Routing is deterministic given the seed: the same trace over the same
fleet reproduces the same placements, adaptations and stats.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from ..benchsuite.registry import get_benchmark
from ..core.features import combined_features
from ..core.pipeline import train_system
from ..core.trainer import TrainingConfig
from ..engine import SweepEngine
from ..ocl.platform import Platform
from ..partitioning import Partitioning
from ..runtime.measurement import Runner
from ..runtime.scheduler import ExecutionRequest
from ..serving.service import PartitioningService, ServedResponse, ServiceConfig
from ..serving.trace import ServingRequest

__all__ = [
    "ROUTING_POLICIES",
    "FleetReplica",
    "FleetResponse",
    "ReplicaStats",
    "FleetStats",
    "FleetRouter",
]

#: The pluggable placement policies.
ROUTING_POLICIES = ("least-loaded", "affinity", "predicted")


@dataclass
class FleetReplica:
    """One machine of the fleet: a service plus routing counters."""

    index: int
    service: PartitioningService
    routed: int = 0

    @property
    def platform(self) -> Platform:
        return self.service.system.platform

    @property
    def name(self) -> str:
        return self.platform.name

    @property
    def scheduler(self):
        return self.service.scheduler


@dataclass(frozen=True)
class FleetResponse:
    """A served request plus where the router placed it."""

    replica_index: int
    replica_name: str
    response: ServedResponse


@dataclass(frozen=True)
class ReplicaStats:
    """One replica's slice of the fleet telemetry."""

    name: str
    routed: int
    requests: int
    adaptations: int
    refits: int
    cache_hit_rate: float
    makespan_s: float
    throughput_rps: float
    utilization: tuple[float, ...]


@dataclass(frozen=True)
class FleetStats:
    """Cross-fleet telemetry of one routing session.

    Replicas run concurrently, so the fleet makespan is the *maximum*
    over the replicas' multiplexed timelines and fleet throughput is
    total requests over that span (``inf`` when everything served in
    zero simulated time, matching the scheduler's sentinel).
    """

    replicas: tuple[ReplicaStats, ...]
    requests: int
    makespan_s: float
    throughput_rps: float
    adaptations: int
    refits: int

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)


class FleetRouter:
    """Routes a shared request trace across N partitioning services."""

    def __init__(
        self,
        services: Sequence[PartitioningService],
        policy: str = "least-loaded",
    ):
        if not services:
            raise ValueError("a fleet needs at least one replica")
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; choose from {ROUTING_POLICIES}"
            )
        names = [s.system.platform.name for s in services]
        if len(set(names)) != len(names):
            raise ValueError(
                f"replica machine names must be unique, got {names}: cache keys, "
                "database records and registry entries all key on the name"
            )
        self.policy = policy
        self.replicas = tuple(
            FleetReplica(index=i, service=s) for i, s in enumerate(services)
        )
        # The predicted policy estimates durations on a private noise-free
        # runner per replica, so probing machines never pollutes the
        # serving runners' telemetry or noise streams.
        self._estimators: list[SweepEngine] | None = None
        # Request plumbing shared across replicas: the problem instance
        # and feature dict depend only on (program, size), not machine —
        # peeking N replicas must not build N copies of the arrays.
        self._exec_requests: dict[tuple[str, int], ExecutionRequest] = {}
        self._features: dict[tuple[str, int], dict[str, float]] = {}
        # Peeked predictions, invalidated whenever the replica adapts or
        # refits (either can change what it would answer).
        self._peeked: list[dict[tuple[str, int], Partitioning]] = [
            {} for _ in self.replicas
        ]
        self._peek_generations: list[tuple[int, int]] = [
            (-1, -1) for _ in self.replicas
        ]

    @classmethod
    def build(
        cls,
        platforms: Sequence[Platform],
        benchmarks=None,
        model_kind: str = "knn",
        training: TrainingConfig = TrainingConfig(repetitions=1),
        serving: ServiceConfig = ServiceConfig(),
        policy: str = "least-loaded",
    ) -> "FleetRouter":
        """Train one system per platform and wrap them in a router."""
        services = [
            PartitioningService(
                train_system(p, benchmarks, model_kind=model_kind, config=training),
                serving,
            )
            for p in platforms
        ]
        return cls(services, policy=policy)

    # -- placement policies ------------------------------------------------

    def _affinity_index(self, request: ServingRequest) -> int:
        """Stable key → replica hash (process-independent, unlike hash())."""
        digest = hashlib.sha256(
            f"{request.program}:{request.size}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") % len(self.replicas)

    def _least_loaded_index(self) -> int:
        return min(
            range(len(self.replicas)),
            key=lambda i: (self.replicas[i].scheduler.makespan_s, i),
        )

    def _plumbing(
        self, request: ServingRequest
    ) -> tuple[ExecutionRequest, dict[str, float]]:
        """Per-key execution request + feature dict, shared fleet-wide."""
        key = (request.program, request.size)
        if key not in self._exec_requests:
            bench = get_benchmark(request.program)
            # Seed matches what replica 0's service will instantiate, so
            # the estimator prices exactly the arrays that get served.
            instance = bench.make_instance(
                request.size, seed=self.replicas[0].service.config.instance_seed
            )
            self._exec_requests[key] = bench.request(instance)
            self._features[key] = combined_features(bench.compiled(instance), instance)
        return self._exec_requests[key], self._features[key]

    def _peek(
        self,
        replica: FleetReplica,
        request: ServingRequest,
        features: dict[str, float],
    ) -> Partitioning:
        """Memoized peek_prediction, re-peeked after the replica changes.

        An adaptation pins a validated winner and a refit swaps the
        model; either changes what the replica would answer, so the
        memo is keyed to the (refits, adaptations) generation and
        dropped wholesale when it moves.
        """
        i = replica.index
        generation = (replica.service.stats.refits, replica.service.stats.adaptations)
        if self._peek_generations[i] != generation:
            self._peeked[i].clear()
            self._peek_generations[i] = generation
        memo = self._peeked[i]
        key = (request.program, request.size)
        hit = memo.get(key)
        if hit is None:
            hit = replica.service.peek_prediction(request, features=features)
            memo[key] = hit
        return hit

    def _predicted_index(self, request: ServingRequest) -> int:
        if self._estimators is None:
            self._estimators = [
                SweepEngine(Runner(r.platform)) for r in self.replicas
            ]
        exec_request, features = self._plumbing(request)
        best_index, best_finish = 0, float("inf")
        for replica in self.replicas:
            partitioning = self._peek(replica, request, features)
            duration = self._estimators[replica.index].time_of(
                exec_request, partitioning
            )
            free = replica.scheduler.device_free_s
            start = max(free[d] for d in partitioning.active_devices)
            finish = start + duration
            if finish < best_finish:
                best_index, best_finish = replica.index, finish
        return best_index

    def _route_index(self, request: ServingRequest) -> int:
        if self.policy == "affinity":
            return self._affinity_index(request)
        if self.policy == "predicted":
            return self._predicted_index(request)
        return self._least_loaded_index()

    # -- serving -----------------------------------------------------------

    def submit(self, request: ServingRequest) -> FleetResponse:
        """Place and serve one request; returns the placement + response."""
        index = self._route_index(request)
        replica = self.replicas[index]
        replica.routed += 1
        response = replica.service.submit(request)
        return FleetResponse(
            replica_index=index, replica_name=replica.name, response=response
        )

    def serve(self, trace: Sequence[ServingRequest]) -> list[FleetResponse]:
        """Route a whole trace; placement is sequential by design (the
        least-loaded and predicted policies depend on prior placements)."""
        return [self.submit(r) for r in trace]

    # -- telemetry ---------------------------------------------------------

    def stats(self) -> FleetStats:
        """Per-replica utilization and cross-fleet throughput, right now."""
        per = []
        for r in self.replicas:
            sched = r.scheduler
            stats = r.service.stats
            per.append(
                ReplicaStats(
                    name=r.name,
                    routed=r.routed,
                    requests=stats.requests,
                    adaptations=stats.adaptations,
                    refits=stats.refits,
                    cache_hit_rate=r.service.cache.stats.hit_rate,
                    makespan_s=sched.makespan_s,
                    throughput_rps=sched.throughput_rps(),
                    utilization=sched.utilization(),
                )
            )
        requests = sum(p.routed for p in per)
        makespan = max((p.makespan_s for p in per), default=0.0)
        if makespan > 0:
            throughput = requests / makespan
        else:
            throughput = float("inf") if requests > 0 else 0.0
        return FleetStats(
            replicas=tuple(per),
            requests=requests,
            makespan_s=makespan,
            throughput_rps=throughput,
            adaptations=sum(p.adaptations for p in per),
            refits=sum(p.refits for p in per),
        )
