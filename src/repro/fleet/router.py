"""The fleet router: one request stream, many machines.

The paper trains one model per machine and predicts per (program,
size); a production deployment owns a *fleet* of heterogeneous
machines and must decide, per request, which machine serves it —
HeSP's joint scheduling-partitioning question lifted one level up,
and HeMT's dispatch tier made explicit.  The router owns N replicas
(each one machine with its own :class:`TrainedSystem` and
:class:`PartitioningService`) and places every request via a pluggable
policy:

* ``least-loaded`` — the replica whose multiplexed timeline frees up
  first (:attr:`BatchScheduler.makespan_s`), the classic list-scheduling
  greedy.
* ``affinity`` — a stable hash of (program, size): every key always
  lands on the same replica, maximizing that replica's prediction-cache
  and adaptation locality at the price of load balance.
* ``predicted`` — ask each replica's model what partitioning it would
  run and a noise-free cost-model estimate of how long that would take
  on that machine, then place the request where it is predicted to
  *finish* first (device availability + predicted duration).  This is
  the makespan-aware policy: a fast machine that is busy loses to a
  slower idle one.
* ``energy`` — the same peek, but place the request where serving it
  is predicted to cost the fewest *joules* (idle power over the
  launch included), ties broken by predicted finish time.  This is
  the fleet-level energy router: heterogeneous replicas differ in
  watts as much as in speed, and the greenest machine for a small
  launch is rarely the one with the most GPUs.

The router also owns replica *health*: a per-replica EWMA of the
measured/predicted makespan ratio across everything it serves.  A
replica whose smoothed ratio stays degraded — its hardware drifted and
its service could not repair the gap — is **drained** (taken out of
placement for a cooldown) and **re-warmed**: its model and database
roll back to the registry snapshot when one exists, otherwise the
model refits on the full observation history, and every cached
decision restarts cold.

Routing is deterministic given the seed: the same trace over the same
fleet reproduces the same placements, adaptations and stats.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..benchsuite.registry import get_benchmark
from ..core.features import combined_features
from ..core.pipeline import train_system
from ..core.trainer import TrainingConfig
from ..energy.objectives import MODEL_OBJECTIVES, Objective
from ..engine import SweepEngine
from ..ocl.platform import Platform
from ..partitioning import Partitioning
from ..runtime.measurement import Runner
from ..runtime.scheduler import ExecutionRequest
from ..serving.service import PartitioningService, ServedResponse, ServiceConfig
from ..serving.trace import ServingRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workloads.spec import DriftEvent
    from .registry import ModelRegistry

__all__ = [
    "ROUTING_POLICIES",
    "HealthConfig",
    "FleetReplica",
    "FleetResponse",
    "ReplicaHealthView",
    "ReplicaStats",
    "FleetStats",
    "FleetRouter",
]

#: The pluggable placement policies.
ROUTING_POLICIES = ("least-loaded", "affinity", "predicted", "energy")


@dataclass(frozen=True)
class HealthConfig:
    """Knobs of the router's per-replica degradation tracking.

    Attributes:
        enabled: track health and drain/re-warm degraded replicas.
        alpha: EWMA smoothing of the replica's measured/estimate ratio.
        threshold: sustained relative degradation before a drain (0.5 =
            smoothed ratio above 1.5).  Deliberately slacker than the
            service-level drift threshold: the replica gets to repair
            itself key by key first, and only a gap its own adaptation
            could not close costs it a drain.
        min_observations: served responses before a replica may drain.
        cooldown: placements the drained replica sits out before
            rejoining the rotation (and before it may drain again).
        cooldown_tick_s: simulated seconds per cooldown step when the
            event loop feeds the router time (:meth:`FleetRouter.tick`).
            Placements alone are a bad clock — on a quiet fleet a
            drained replica would sit out forever — so cooldown also
            decays one step per tick interval.  0 disables time decay.
    """

    enabled: bool = True
    alpha: float = 0.3
    threshold: float = 0.5
    min_observations: int = 8
    cooldown: int = 16
    cooldown_tick_s: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if self.cooldown_tick_s < 0:
            raise ValueError("cooldown_tick_s must be non-negative")


@dataclass
class _ReplicaHealth:
    """Router-side health state of one replica."""

    ewma: float = 1.0
    observations: int = 0
    draining: int = 0
    #: Smoothed serving rate (requests per simulated second).  The
    #: batch scheduler reports an ``inf`` sentinel when everything a
    #: replica served took zero simulated time; those samples are
    #: excluded here exactly like non-finite costs are excluded from
    #: the degradation EWMA — one poisoned sample would otherwise make
    #: the smoothed rate ``inf``/``nan`` forever.
    rate_ewma: float = 0.0
    rate_observations: int = 0


@dataclass(frozen=True)
class ReplicaHealthView:
    """Public snapshot of one replica's health bookkeeping.

    This is the documented way to read the router's drain/re-warm
    state — consumers above the router (the cluster tier, benchmarks,
    tests) must not reach into the private ``_health`` counters.  The
    view is a frozen copy: mutating router state goes through
    :meth:`FleetRouter.tick` / :meth:`FleetRouter.rewarm_replica`.

    Attributes:
        index: the replica the snapshot describes.
        ewma: smoothed measured/predicted cost ratio (1.0 = on spec).
        observations: served responses folded into ``ewma`` since the
            last drain.
        draining_steps: placements/ticks the replica still sits out;
            0 means it is in rotation.
        rate_ewma: smoothed serving rate (requests per simulated
            second), always finite.
        rate_observations: finite rate samples folded into the EWMA.
    """

    index: int
    ewma: float
    observations: int
    draining_steps: int
    rate_ewma: float
    rate_observations: int

    @property
    def draining(self) -> bool:
        return self.draining_steps > 0


@dataclass
class FleetReplica:
    """One machine of the fleet: a service plus routing counters."""

    index: int
    service: PartitioningService
    routed: int = 0
    rewarms: int = 0

    @property
    def platform(self) -> Platform:
        return self.service.system.platform

    @property
    def name(self) -> str:
        return self.platform.name

    @property
    def scheduler(self):
        return self.service.scheduler


@dataclass(frozen=True)
class FleetResponse:
    """A served request plus where the router placed it."""

    replica_index: int
    replica_name: str
    response: ServedResponse


@dataclass(frozen=True)
class ReplicaStats:
    """One replica's slice of the fleet telemetry."""

    name: str
    routed: int
    requests: int
    adaptations: int
    refits: int
    cache_hit_rate: float
    makespan_s: float
    throughput_rps: float
    utilization: tuple[float, ...]
    drift_flags: int = 0
    rewarms: int = 0
    health: float = 1.0
    draining: bool = False
    energy_j: float = 0.0
    avg_power_w: float = 0.0
    #: Router-side smoothed serving rate; always finite (the scheduler's
    #: zero-span ``inf`` sentinel never enters the EWMA).
    rate_ewma: float = 0.0


@dataclass(frozen=True)
class FleetStats:
    """Cross-fleet telemetry of one routing session.

    Replicas run concurrently, so the fleet makespan is the *maximum*
    over the replicas' multiplexed timelines and fleet throughput is
    total requests over that span.  Per-replica schedulers report an
    ``inf`` throughput sentinel when everything they served took zero
    simulated time; the *aggregate* never propagates it — replicas in
    that state are counted in :attr:`zero_span_replicas` and the fleet
    throughput stays finite (0.0 when no simulated time elapsed at
    all), so downstream arithmetic (speedup ratios, JSON baselines)
    cannot be poisoned by a leaked ``inf``.
    """

    replicas: tuple[ReplicaStats, ...]
    requests: int
    makespan_s: float
    throughput_rps: float
    adaptations: int
    refits: int
    drift_flags: int = 0
    rewarms: int = 0
    zero_span_replicas: int = 0
    energy_j: float = 0.0
    avg_power_w: float = 0.0

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)


class FleetRouter:
    """Routes a shared request trace across N partitioning services."""

    def __init__(
        self,
        services: Sequence[PartitioningService],
        policy: str = "least-loaded",
        registry: "ModelRegistry | None" = None,
        health: HealthConfig = HealthConfig(),
    ):
        if not services:
            raise ValueError("a fleet needs at least one replica")
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; choose from {ROUTING_POLICIES}"
            )
        names = [s.system.platform.name for s in services]
        if len(set(names)) != len(names):
            raise ValueError(
                f"replica machine names must be unique, got {names}: cache keys, "
                "database records and registry entries all key on the name"
            )
        self.policy = policy
        self.registry = registry
        self.health = health
        self.replicas = tuple(
            FleetReplica(index=i, service=s) for i, s in enumerate(services)
        )
        self._health = [_ReplicaHealth() for _ in self.replicas]
        # The predicted policy estimates durations on a private noise-free
        # runner per replica, so probing machines never pollutes the
        # serving runners' telemetry or noise streams.
        self._estimators: list[SweepEngine] | None = None
        # Request plumbing shared across replicas: the problem instance
        # and feature dict depend only on (program, size), not machine —
        # peeking N replicas must not build N copies of the arrays.
        self._exec_requests: dict[tuple[str, int], ExecutionRequest] = {}
        self._features: dict[tuple[str, int], dict[str, float]] = {}
        # Peeked predictions, invalidated whenever the replica adapts or
        # refits (either can change what it would answer).
        self._peeked: list[dict[tuple[str, int], Partitioning]] = [
            {} for _ in self.replicas
        ]
        self._peek_generations: list[tuple[int, int]] = [
            (-1, -1) for _ in self.replicas
        ]
        # Simulated-time cooldown decay (see tick()): last clock value
        # seen and elapsed time not yet converted into cooldown steps.
        self._sim_clock_s = 0.0
        self._tick_carry_s = 0.0

    @classmethod
    def build(
        cls,
        platforms: Sequence[Platform],
        benchmarks=None,
        model_kind: str = "knn",
        training: TrainingConfig = TrainingConfig(repetitions=1),
        serving: ServiceConfig = ServiceConfig(),
        policy: str = "least-loaded",
        registry: "ModelRegistry | None" = None,
        health: HealthConfig = HealthConfig(),
    ) -> "FleetRouter":
        """Train one system per platform and wrap them in a router.

        Each replica's model trains under the serving config's
        objective, so an energy-objective fleet predicts energy-optimal
        partitionings end to end.  (``energy-capped-makespan`` is a
        serve-time constraint — its models train on makespan and the
        cap is enforced per request by each service.)
        """
        objective = (
            serving.objective
            if serving.objective in MODEL_OBJECTIVES
            else Objective.MAKESPAN
        )
        services = [
            PartitioningService(
                train_system(
                    p,
                    benchmarks,
                    model_kind=model_kind,
                    config=training,
                    objective=objective,
                ),
                serving,
            )
            for p in platforms
        ]
        return cls(services, policy=policy, registry=registry, health=health)

    # -- placement policies ------------------------------------------------

    def _candidates(self) -> tuple[int, ...]:
        """Replica indices currently in rotation.

        Draining replicas are excluded; when *every* replica is
        draining the traffic must still land somewhere, so the full
        fleet becomes eligible again.
        """
        up = tuple(
            i for i in range(len(self.replicas)) if self._health[i].draining == 0
        )
        return up or tuple(range(len(self.replicas)))

    def _affinity_index(self, request: ServingRequest) -> int:
        """Stable key → replica hash (process-independent, unlike hash())."""
        digest = hashlib.sha256(
            f"{request.program}:{request.size}".encode()
        ).digest()
        base = int.from_bytes(digest[:8], "big")
        candidates = self._candidates()
        # Linear probe from the home slot: while a replica drains its
        # keys spill to the next one, and return home afterwards.
        for offset in range(len(self.replicas)):
            index = (base + offset) % len(self.replicas)
            if index in candidates:
                return index
        return base % len(self.replicas)  # pragma: no cover - candidates never empty

    def _least_loaded_index(self) -> int:
        return min(
            self._candidates(),
            key=lambda i: (self.replicas[i].scheduler.makespan_s, i),
        )

    def _plumbing(
        self, request: ServingRequest
    ) -> tuple[ExecutionRequest, dict[str, float]]:
        """Per-key execution request + feature dict, shared fleet-wide."""
        key = (request.program, request.size)
        if key not in self._exec_requests:
            bench = get_benchmark(request.program)
            # Seed matches what replica 0's service will instantiate, so
            # the estimator prices exactly the arrays that get served.
            instance = bench.make_instance(
                request.size, seed=self.replicas[0].service.config.instance_seed
            )
            self._exec_requests[key] = bench.request(instance)
            self._features[key] = combined_features(bench.compiled(instance), instance)
        return self._exec_requests[key], self._features[key]

    def _peek(
        self,
        replica: FleetReplica,
        request: ServingRequest,
        features: dict[str, float],
    ) -> Partitioning:
        """Memoized peek_prediction, re-peeked after the replica changes.

        An adaptation pins a validated winner and a refit swaps the
        model; either changes what the replica would answer, so the
        memo is keyed to the (refits, adaptations) generation and
        dropped wholesale when it moves.
        """
        i = replica.index
        stats = replica.service.stats
        generation = (
            stats.refits,
            stats.adaptations,
            stats.drift_flags,
            stats.rewarms,
        )
        if self._peek_generations[i] != generation:
            self._peeked[i].clear()
            self._peek_generations[i] = generation
        memo = self._peeked[i]
        key = (request.program, request.size)
        hit = memo.get(key)
        if hit is None:
            hit = replica.service.peek_prediction(request, features=features)
            memo[key] = hit
        return hit

    def _ensure_estimators(self) -> list[SweepEngine]:
        if self._estimators is None:
            self._estimators = [
                SweepEngine(Runner(r.platform)) for r in self.replicas
            ]
        return self._estimators

    def _predicted_index(self, request: ServingRequest) -> int:
        self._ensure_estimators()
        exec_request, features = self._plumbing(request)
        candidates = self._candidates()
        best_index, best_finish = candidates[0], float("inf")
        for index in candidates:
            replica = self.replicas[index]
            partitioning = self._peek(replica, request, features)
            duration = self._estimators[replica.index].time_of(
                exec_request, partitioning
            )
            free = replica.scheduler.device_free_s
            start = max(free[d] for d in partitioning.active_devices)
            finish = start + duration
            if finish < best_finish:
                best_index, best_finish = replica.index, finish
        return best_index

    def _energy_index(self, request: ServingRequest) -> int:
        """The replica predicted to serve this request for the fewest joules.

        Same peek-every-model mechanics as the ``predicted`` policy,
        but the score is the estimated *energy* of running the
        replica's predicted partitioning on that machine (idle power
        over the launch included, so a many-GPU machine pays its whole
        board for a small launch).  Ties — identical machines answering
        identically — break by predicted finish time so the energy
        policy still spreads load across twins.
        """
        self._ensure_estimators()
        exec_request, features = self._plumbing(request)
        candidates = self._candidates()
        best_index = candidates[0]
        best_score = (float("inf"), float("inf"))
        for index in candidates:
            replica = self.replicas[index]
            partitioning = self._peek(replica, request, features)
            run = self._estimators[replica.index].measure(exec_request, partitioning)
            free = replica.scheduler.device_free_s
            start = max(free[d] for d in partitioning.active_devices)
            score = (run.energy_j, start + run.median_s)
            if score < best_score:
                best_index, best_score = replica.index, score
        return best_index

    def _route_index(self, request: ServingRequest) -> int:
        if self.policy == "affinity":
            return self._affinity_index(request)
        if self.policy == "predicted":
            return self._predicted_index(request)
        if self.policy == "energy":
            return self._energy_index(request)
        return self._least_loaded_index()

    # -- replica health ----------------------------------------------------

    def _observe_health(self, replica: FleetReplica, response: ServedResponse) -> None:
        """Fold one served response into the replica's health EWMA.

        Deliberately *one-sided*, unlike the service's two-sided
        per-key :class:`~repro.serving.drift.DriftDetector`: a key
        whose device sped up deserves a re-search (the optimum moved),
        but a replica that got *faster* than predicted must never be
        drained — drains are for machines underdelivering on their
        promises, and the per-key detector already refreshes the fast
        replica's decisions in place.
        """
        state = self._health[replica.index]
        rate = replica.scheduler.throughput_rps()
        if math.isfinite(rate):
            # First finite sample seeds the EWMA; the scheduler's
            # zero-span ``inf`` sentinel is skipped entirely (see
            # _ReplicaHealth.rate_ewma).
            if state.rate_observations == 0:
                state.rate_ewma = rate
            else:
                state.rate_ewma = (
                    self.health.alpha * rate
                    + (1.0 - self.health.alpha) * state.rate_ewma
                )
            state.rate_observations += 1
        estimate = response.estimate_s
        if estimate is None or estimate <= 0:
            return
        if not math.isfinite(estimate):
            return
        # Compare in the service's objective units: ``cost`` is the
        # measured scalar the estimate was produced in (seconds only
        # under the makespan objective — an energy-objective replica
        # must be judged in joules, not joules-vs-seconds).
        ratio = response.cost / estimate
        if not math.isfinite(ratio):
            # Cap-infeasible measurements cost inf; inf/NaN would
            # poison the health EWMA permanently.
            return
        state.ewma = (
            self.health.alpha * ratio + (1.0 - self.health.alpha) * state.ewma
        )
        state.observations += 1
        if (
            state.draining == 0
            and state.observations >= self.health.min_observations
            and state.ewma > 1.0 + self.health.threshold
        ):
            self._drain(replica)

    def _drain(self, replica: FleetReplica) -> None:
        """Take a degraded replica out of rotation and re-warm it."""
        state = self._health[replica.index]
        state.draining = self.health.cooldown
        state.ewma = 1.0
        state.observations = 0
        self.rewarm_replica(replica.index)

    def rewarm_replica(self, index: int) -> None:
        """Re-warm one replica: registry rollback or in-place refit.

        With a registered snapshot the replica's model *and* database
        roll back to the last known-good state (online observations
        made on the pre-drift hardware are discarded wholesale);
        without one the model refits on everything observed so far.
        Either way the replica's serving state restarts cold — see
        :meth:`PartitioningService.rewarm`.
        """
        replica = self.replicas[index]
        if self.registry is not None and self.registry.has(replica.name):
            predictor, database = self.registry.load_snapshot(replica.platform)
            replica.service.rewarm(predictor=predictor, database=database)
        else:
            replica.service.rewarm()
        replica.rewarms += 1

    def apply_drift(self, event: "DriftEvent") -> tuple[str, ...]:
        """Apply one platform drift event; returns the machines hit.

        Matches replicas by machine name (``event.machine is None``
        drifts the whole fleet) and rescales both the serving runner
        and the predicted policy's private estimator runner, so
        placement prices the post-drift hardware the requests will
        actually run on.  Estimators are created on the spot when the
        predicted policy has not routed yet — a drift event before the
        first placement must not be lost on them.
        """
        estimators = (
            self._ensure_estimators()
            if self.policy in ("predicted", "energy")
            else None
        )
        hit = []
        for replica in self.replicas:
            if event.machine is not None and replica.name != event.machine:
                continue
            replica.service.system.runner.apply_drift(
                event.scale, device_index=event.device_index
            )
            if estimators is not None:
                estimators[replica.index].runner.apply_drift(
                    event.scale, device_index=event.device_index
                )
            hit.append(replica.name)
        if not hit:
            raise ValueError(
                f"drift event names unknown machine {event.machine!r}; "
                f"fleet has {[r.name for r in self.replicas]}"
            )
        return tuple(hit)

    # -- serving -----------------------------------------------------------

    def place(self, request: ServingRequest) -> int:
        """Pick (and commit to) a replica for one request.

        This is the routing half of :meth:`submit`, split out so the
        event loop can place at *arrival* time and serve at queue-head
        time — placement must see the fleet as it is when the request
        shows up, not when a queue finally drains.  Calling ``place``
        commits the routing side effects (drain countdown, routed
        counter); follow it with :meth:`serve_on`.
        """
        if self.health.enabled:
            # Each routed request moves every draining replica one step
            # closer to rejoining; tick() adds a simulated-time clock on
            # top so a quiet fleet cannot strand a drained replica.
            for state in self._health:
                if state.draining > 0:
                    state.draining -= 1
        index = self._route_index(request)
        self.replicas[index].routed += 1
        return index

    def tick(self, now_s: float) -> None:
        """Advance the router's simulated clock to ``now_s``.

        Drain cooldowns decay one step per ``cooldown_tick_s`` of
        elapsed simulated time, *in addition to* the per-placement
        decrement in :meth:`place`.  Before this, cooldown counted
        placements only, so on a quiet fleet a drained replica could
        sit out forever waiting for traffic that never came.  The event
        loop calls this whenever its clock moves; fractional intervals
        carry over, so many small ticks decay exactly like one big one.
        """
        if now_s <= self._sim_clock_s:
            return
        elapsed = now_s - self._sim_clock_s
        self._sim_clock_s = now_s
        if not self.health.enabled or self.health.cooldown_tick_s <= 0:
            return
        self._tick_carry_s += elapsed
        steps = int(self._tick_carry_s / self.health.cooldown_tick_s)
        if steps <= 0:
            return
        self._tick_carry_s -= steps * self.health.cooldown_tick_s
        for state in self._health:
            if state.draining > 0:
                state.draining = max(0, state.draining - steps)

    def serve_on(self, index: int, request: ServingRequest) -> FleetResponse:
        """Serve one already-placed request on the chosen replica."""
        replica = self.replicas[index]
        response = replica.service.submit(request)
        if self.health.enabled:
            self._observe_health(replica, response)
        return FleetResponse(
            replica_index=index, replica_name=replica.name, response=response
        )

    def submit(self, request: ServingRequest) -> FleetResponse:
        """Place and serve one request; returns the placement + response."""
        return self.serve_on(self.place(request), request)

    def serve(self, trace: Sequence[ServingRequest]) -> list[FleetResponse]:
        """Route a whole trace; placement is sequential by design (the
        least-loaded and predicted policies depend on prior placements)."""
        return [self.submit(r) for r in trace]

    # -- telemetry ---------------------------------------------------------

    def replica_health(self, index: int) -> ReplicaHealthView:
        """A frozen snapshot of one replica's health bookkeeping.

        The supported read path for everything the router tracks per
        replica — drain countdown, degradation EWMA, smoothed serving
        rate — so layers above (the cluster router, benchmarks, tests)
        never couple to the private counters.
        """
        state = self._health[index]
        return ReplicaHealthView(
            index=index,
            ewma=state.ewma,
            observations=state.observations,
            draining_steps=state.draining,
            rate_ewma=state.rate_ewma,
            rate_observations=state.rate_observations,
        )

    def stats(self) -> FleetStats:
        """Per-replica utilization and cross-fleet throughput, right now."""
        per = []
        for r in self.replicas:
            sched = r.scheduler
            stats = r.service.stats
            health = self._health[r.index]
            per.append(
                ReplicaStats(
                    name=r.name,
                    routed=r.routed,
                    requests=stats.requests,
                    adaptations=stats.adaptations,
                    refits=stats.refits,
                    cache_hit_rate=r.service.cache.stats.hit_rate,
                    makespan_s=sched.makespan_s,
                    throughput_rps=sched.throughput_rps(),
                    utilization=sched.utilization(),
                    drift_flags=stats.drift_flags,
                    rewarms=r.rewarms,
                    health=health.ewma,
                    draining=health.draining > 0,
                    rate_ewma=health.rate_ewma,
                    energy_j=stats.energy_j,
                    # Average draw over the replica's own multiplexed
                    # span; zero-span replicas report 0 W, not inf.
                    avg_power_w=(
                        stats.energy_j / sched.makespan_s
                        if sched.makespan_s > 0
                        else 0.0
                    ),
                )
            )
        requests = sum(p.routed for p in per)
        makespan = max((p.makespan_s for p in per), default=0.0)
        # Regression guard: the per-replica scheduler reports an ``inf``
        # sentinel for served-in-zero-time; summing/aggregating that
        # into the fleet number poisons speedup ratios and JSON
        # baselines downstream.  The aggregate stays finite and the
        # sentinel cases are surfaced as a count instead.
        zero_span = sum(1 for p in per if math.isinf(p.throughput_rps))
        throughput = requests / makespan if makespan > 0 else 0.0
        energy = sum(p.energy_j for p in per)
        return FleetStats(
            replicas=tuple(per),
            requests=requests,
            makespan_s=makespan,
            throughput_rps=throughput,
            adaptations=sum(p.adaptations for p in per),
            refits=sum(p.refits for p in per),
            drift_flags=sum(p.drift_flags for p in per),
            rewarms=sum(p.rewarms for p in per),
            zero_span_replicas=zero_span,
            energy_j=energy,
            # Fleet draw averaged over the concurrent span (replicas
            # run side by side, so joules sum but seconds do not).
            avg_power_w=energy / makespan if makespan > 0 else 0.0,
        )

    def publish_metrics(self, registry, prefix: str = "fleet") -> None:
        """Publish fleet aggregates and per-replica slices as gauges.

        ``fleet.*`` carries the cross-fleet numbers;
        ``fleet.replica.<name>.*`` the per-replica routing/health view;
        each member service publishes its own counters under
        ``fleet.replica.<name>.service.*``.
        """
        stats = self.stats()
        registry.gauge(f"{prefix}.requests").set(stats.requests)
        registry.gauge(f"{prefix}.makespan_s").set(stats.makespan_s)
        registry.gauge(f"{prefix}.throughput_rps").set(stats.throughput_rps)
        registry.gauge(f"{prefix}.adaptations").set(stats.adaptations)
        registry.gauge(f"{prefix}.refits").set(stats.refits)
        registry.gauge(f"{prefix}.drift_flags").set(stats.drift_flags)
        registry.gauge(f"{prefix}.rewarms").set(stats.rewarms)
        registry.gauge(f"{prefix}.zero_span_replicas").set(
            stats.zero_span_replicas
        )
        registry.gauge(f"{prefix}.energy_j").set(stats.energy_j)
        registry.gauge(f"{prefix}.avg_power_w").set(stats.avg_power_w)
        for snap, replica in zip(stats.replicas, self.replicas):
            base = f"{prefix}.replica.{snap.name}"
            registry.gauge(f"{base}.routed").set(snap.routed)
            registry.gauge(f"{base}.cache_hit_rate").set(snap.cache_hit_rate)
            registry.gauge(f"{base}.health").set(snap.health)
            registry.gauge(f"{base}.draining").set(int(snap.draining))
            registry.gauge(f"{base}.rate_ewma").set(snap.rate_ewma)
            replica.service.publish_metrics(registry, prefix=f"{base}.service")
