"""Command-line interface: ``python -m repro <command>``.

Commands:
    list                      — the 23-program suite
    machines                  — the simulated platforms
    kernel  <program>         — emitted single- and multi-device OpenCL C
    run     <program>         — sweep the strategies for one launch
    train   <machine>         — training campaign → JSON database
    report  <db.json> [...]   — full experiment report from databases
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .benchsuite import all_benchmarks, get_benchmark
from .core import TrainingConfig, TrainingDatabase, generate_training_data
from .machines import ALL_MACHINES, machine_by_name
from .partitioning import Partitioning
from .runtime import Runner, cpu_only, even_split, gpu_only, oracle_search
from .util.tables import format_table

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        (b.name, b.suite.value, len(b.problem_sizes()), b.description)
        for b in all_benchmarks()
    ]
    print(format_table(["program", "suite", "#sizes", "description"], rows))
    return 0


def _cmd_machines(_args: argparse.Namespace) -> int:
    for m in ALL_MACHINES:
        print(f"{m.name}: {m.description}")
        for spec in m.device_specs:
            kind = spec.kind.value.upper()
            print(
                f"  [{kind}] {spec.name}: peak {spec.peak_gflops:.0f} GFLOP/s, "
                f"{spec.mem_bandwidth_gbs:.0f} GB/s"
                + (
                    f", PCIe {spec.pcie_bandwidth_gbs:.1f} GB/s"
                    if spec.pcie_bandwidth_gbs
                    else ", host-resident"
                )
            )
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    bench = get_benchmark(args.program)
    compiled = bench.compiled()
    print("// ---- single-device ----")
    print(compiled.program.source)
    print("\n// ---- multi-device ----")
    print(compiled.program.md_source)
    print("\n" + compiled.program.host_plan)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    bench = get_benchmark(args.program)
    platform = machine_by_name(args.machine)
    size = args.size if args.size is not None else bench.problem_sizes()[-1]
    instance = bench.make_instance(size, seed=args.seed)
    request = bench.request(instance)
    runner = Runner(platform)
    strategies = [
        ("cpu-only", cpu_only(platform)),
        ("gpu-only", gpu_only(platform)),
        ("even", even_split(platform)),
    ]
    if args.partitioning:
        strategies.append(("custom", Partitioning.from_label(args.partitioning)))
    rows = []
    for label, p in strategies:
        rows.append((label, p.label, runner.time_of(request, p) * 1e3))
    best, t_best = oracle_search(lambda p: runner.time_of(request, p))
    rows.append(("oracle", best.label, t_best * 1e3))
    print(
        format_table(
            ["strategy", "partitioning", "time (ms)"],
            rows,
            title=f"{bench.name} @ size {size} on {platform.name}",
        )
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    platform = machine_by_name(args.machine)
    config = TrainingConfig(
        repetitions=args.repetitions,
        noise_sigma=args.noise,
        seed=args.seed,
        max_sizes=args.max_sizes,
    )
    db = generate_training_data(
        platform,
        all_benchmarks(),
        config,
        progress=print if args.verbose else None,
    )
    out = Path(args.output or f"training_{platform.name}.json")
    db.save(out)
    print(f"wrote {len(db)} records to {out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import full_report

    merged = TrainingDatabase()
    for path in args.databases:
        for record in TrainingDatabase.load(path):
            merged.add(record)
    print(full_report(merged, model_kind=args.model))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Problem-size-sensitive task partitioning (PPoPP'13 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite").set_defaults(fn=_cmd_list)
    sub.add_parser("machines", help="describe the simulated platforms").set_defaults(
        fn=_cmd_machines
    )

    p_kernel = sub.add_parser("kernel", help="print emitted OpenCL C for a program")
    p_kernel.add_argument("program")
    p_kernel.set_defaults(fn=_cmd_kernel)

    p_run = sub.add_parser("run", help="time one launch under several strategies")
    p_run.add_argument("program")
    p_run.add_argument("--machine", default="mc2", choices=[m.name for m in ALL_MACHINES])
    p_run.add_argument("--size", type=int, default=None)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--partitioning", default=None, help='extra candidate, e.g. "40/30/30"'
    )
    p_run.set_defaults(fn=_cmd_run)

    p_train = sub.add_parser("train", help="run the training campaign on a machine")
    p_train.add_argument("machine", choices=[m.name for m in ALL_MACHINES])
    p_train.add_argument("--output", default=None)
    p_train.add_argument("--repetitions", type=int, default=1)
    p_train.add_argument("--noise", type=float, default=0.0)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--max-sizes", type=int, default=None)
    p_train.add_argument("--verbose", action="store_true")
    p_train.set_defaults(fn=_cmd_train)

    p_report = sub.add_parser("report", help="full experiment report from databases")
    p_report.add_argument("databases", nargs="+")
    p_report.add_argument("--model", default="mlp")
    p_report.set_defaults(fn=_cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
