"""Command-line interface: ``python -m repro <command>``.

Commands:
    list                      — the 23-program suite
    machines                  — the simulated platforms
    kernel  <program>         — emitted single- and multi-device OpenCL C
    run     <program>         — sweep the strategies for one launch
    train   <machine>         — training campaign → JSON database
    report  <db.json> [...]   — full experiment report from databases
    energy-sweep <program>    — makespan-vs-energy sweep: per-objective
                                winners and the Pareto front per size
    graph-sweep               — co-search scheduling × partitioning for
                                one task-graph chain vs the greedy
                                partition-each-task baseline
    graph-serve               — serve a Zipf stream of task graphs
                                (the ``pipeline`` workload family)
                                through the graph-level plan cache
    replay                    — serve a synthetic trace (stationary /
                                phase-shift / flash-crowd / diurnal
                                workloads, optional platform drift)
    serve                     — serve "program size" requests from a
                                file or stdin
    trace-export              — serve a synthetic trace with tracing on
                                and export the span/event JSONL
    metrics-report            — serve a synthetic trace and print the
                                unified metrics registry
    fleet-train               — train + persist one model per fleet
                                machine into a model registry
    fleet-serve               — route one trace across a fleet of
                                machines (least-loaded / affinity /
                                predicted / energy placement, drain +
                                re-warm on sustained degradation)
    cluster-train             — train + persist one model per machine
                                across every pool of a cluster
    cluster-serve             — route a multi-tenant trace across
                                machine pools behind a priced
                                interconnect (home-pool tenancy,
                                speculative re-execution, work
                                stealing, weighted-fair queueing)

Shared flag groups (the workload generator, the event-driven serving
path, the objective knobs, ...) are defined once as argparse parent
parsers and attached to every command that supports them, so
``--arrival`` or ``--slo-ms`` mean the same thing everywhere.

The serving commands optimize makespan by default; ``--objective
energy|edp`` retargets the model, the regression checks and the local
search, and ``--power-cap WATTS`` serves under an average-power budget
(see docs/ENERGY.md).

By default the serving commands replay their trace closed-loop (each
request submitted the instant the previous one finishes).  ``--arrival
uniform|poisson`` switches to the event-driven path: requests arrive on
their own simulated clock at ``--arrival-rate``, queue per replica, and
the summary gains end-to-end latency percentiles; ``--slo-ms`` sets a
latency target with violation tracking and ``--shed-policy
deadline|priority`` enables admission control (see docs/SERVING.md).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .benchsuite import all_benchmarks, get_benchmark
from .core import (
    PERSISTABLE_MODEL_KINDS,
    TrainingConfig,
    TrainingDatabase,
    generate_training_data,
    train_system,
)
from .machines import ALL_MACHINES, machine_by_name
from .partitioning import Partitioning
from .runtime import Runner, cpu_only, even_split, gpu_only, oracle_search
from .util.tables import format_table

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        (b.name, b.suite.value, len(b.problem_sizes()), b.description)
        for b in all_benchmarks()
    ]
    print(format_table(["program", "suite", "#sizes", "description"], rows))
    return 0


def _cmd_machines(_args: argparse.Namespace) -> int:
    for m in ALL_MACHINES:
        print(f"{m.name}: {m.description}")
        for spec in m.device_specs:
            kind = spec.kind.value.upper()
            print(
                f"  [{kind}] {spec.name}: peak {spec.peak_gflops:.0f} GFLOP/s, "
                f"{spec.mem_bandwidth_gbs:.0f} GB/s"
                + (
                    f", PCIe {spec.pcie_bandwidth_gbs:.1f} GB/s"
                    if spec.pcie_bandwidth_gbs
                    else ", host-resident"
                )
            )
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    bench = get_benchmark(args.program)
    compiled = bench.compiled()
    print("// ---- single-device ----")
    print(compiled.program.source)
    print("\n// ---- multi-device ----")
    print(compiled.program.md_source)
    print("\n" + compiled.program.host_plan)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    bench = get_benchmark(args.program)
    platform = machine_by_name(args.machine)
    size = args.size if args.size is not None else bench.problem_sizes()[-1]
    instance = bench.make_instance(size, seed=args.seed)
    request = bench.request(instance)
    runner = Runner(platform)
    strategies = [
        ("cpu-only", cpu_only(platform)),
        ("gpu-only", gpu_only(platform)),
        ("even", even_split(platform)),
    ]
    if args.partitioning:
        strategies.append(("custom", Partitioning.from_label(args.partitioning)))
    rows = []
    for label, p in strategies:
        rows.append((label, p.label, runner.time_of(request, p) * 1e3))
    best, t_best = oracle_search(lambda p: runner.time_of(request, p))
    rows.append(("oracle", best.label, t_best * 1e3))
    print(
        format_table(
            ["strategy", "partitioning", "time (ms)"],
            rows,
            title=f"{bench.name} @ size {size} on {platform.name}",
        )
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    platform = machine_by_name(args.machine)
    config = TrainingConfig(
        repetitions=args.repetitions,
        noise_sigma=args.noise,
        seed=args.seed,
        max_sizes=args.max_sizes,
    )
    db = generate_training_data(
        platform,
        all_benchmarks(),
        config,
        progress=print if args.verbose else None,
    )
    out = Path(args.output or f"training_{platform.name}.json")
    db.save(out)
    print(f"wrote {len(db)} records to {out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import full_report

    merged = TrainingDatabase()
    for path in args.databases:
        for record in TrainingDatabase.load(path):
            merged.add(record)
    print(full_report(merged, model_kind=args.model))
    return 0


def _training_objective(args: argparse.Namespace):
    """The objective the predictor trains on for a serving command.

    ``energy-capped-makespan`` is a serve-time constraint (the cap is
    enforced per request), so its models train on plain makespan.
    """
    from .energy import MODEL_OBJECTIVES, Objective, coerce_objective

    objective = coerce_objective(args.objective)
    return objective if objective in MODEL_OBJECTIVES else Objective.MAKESPAN


def _build_service(args: argparse.Namespace):
    """Train a system and wrap it in a PartitioningService (serve/replay)."""
    from .serving import PartitioningService, ServiceConfig

    platform = machine_by_name(args.machine)
    benchmarks = all_benchmarks()
    train_benchmarks = benchmarks
    if args.train_programs is not None:
        if not 1 <= args.train_programs <= len(benchmarks):
            raise SystemExit(
                f"--train-programs must be in [1, {len(benchmarks)}]"
            )
        train_benchmarks = benchmarks[: args.train_programs]
    config = TrainingConfig(
        repetitions=1,
        noise_sigma=args.noise,
        seed=args.seed,
        max_sizes=args.max_sizes,
    )
    system = train_system(
        platform,
        train_benchmarks,
        model_kind=args.model,
        config=config,
        objective=_training_objective(args),
    )
    try:
        service = PartitioningService(
            system,
            ServiceConfig(
                cache_capacity=args.cache_capacity,
                regression_threshold=args.threshold,
                instance_seed=args.seed,
                memoize=not args.no_memoize,
                objective=args.objective,
                power_cap_w=args.power_cap,
            ),
        )
    except ValueError as error:
        raise SystemExit(str(error)) from error
    return benchmarks, train_benchmarks, service


def _parse_drift_events(values: list[str]):
    """``AT:SCALE[:MACHINE[:DEVICE]]`` strings → DriftEvents."""
    from .workloads import DriftEvent

    events = []
    for value in values:
        parts = value.split(":")
        if not 2 <= len(parts) <= 4:
            raise SystemExit(
                f"--drift {value!r}: want AT:SCALE[:MACHINE[:DEVICE]], "
                "e.g. 100:0.5:mc2:1"
            )
        try:
            events.append(
                DriftEvent(
                    at_request=int(parts[0]),
                    scale=float(parts[1]),
                    machine=parts[2] if len(parts) > 2 and parts[2] else None,
                    device_index=int(parts[3]) if len(parts) > 3 else None,
                )
            )
        except ValueError as error:
            raise SystemExit(f"--drift {value!r}: {error}") from error
    return tuple(events)


def _parse_fault_specs(values: list[str]):
    """``KIND:AT:DURATION[:MAGNITUDE[:REPLICA]]`` strings → FaultSpecs."""
    from .faults import FAULT_KINDS, FaultSpec

    specs = []
    for value in values:
        parts = value.split(":")
        if not 3 <= len(parts) <= 5:
            raise SystemExit(
                f"--faults {value!r}: want KIND:AT:DURATION[:MAGNITUDE[:REPLICA]], "
                "e.g. crash:0.5:0.2::0 or straggler:0.1:0.4:6"
            )
        if parts[0] not in FAULT_KINDS:
            raise SystemExit(
                f"--faults {value!r}: unknown kind {parts[0]!r}; "
                f"choose from {FAULT_KINDS}"
            )
        try:
            specs.append(
                FaultSpec(
                    kind=parts[0],
                    at_s=float(parts[1]),
                    duration_s=float(parts[2]),
                    magnitude=(
                        float(parts[3]) if len(parts) > 3 and parts[3] else 1.0
                    ),
                    replica=int(parts[4]) if len(parts) > 4 and parts[4] else None,
                )
            )
        except ValueError as error:
            raise SystemExit(f"--faults {value!r}: {error}") from error
    return tuple(specs)


def _workload_from_args(args: argparse.Namespace, keys):
    """Build the WorkloadSpec the serving commands share and generate it."""
    from .workloads import WorkloadSpec, make_workload

    if args.workload == "pipeline":
        raise SystemExit(
            "the pipeline family emits task-graph requests; "
            "serve it with the graph-serve command"
        )
    if args.faults and not args.arrival:
        raise SystemExit(
            "--faults needs the event-driven path; pick an --arrival process"
        )
    _telemetry_mode(args)  # fail fast: tracing needs the event path
    spec = WorkloadSpec(
        family=args.workload,
        num_requests=args.requests,
        skew=args.skew,
        seed=args.seed,
        phases=args.phases,
        burst_every=args.burst_every,
        burst_length=args.burst_length,
        burst_share=args.burst_share,
        period=args.period,
        skew_min=args.skew_min,
        skew_max=args.skew_max,
        drift_events=_parse_drift_events(args.drift),
        faults=_parse_fault_specs(args.faults),
        arrival=args.arrival or "sequential",
        rate_rps=args.arrival_rate,
    )
    return make_workload(spec, keys)


def _parse_tenant_priorities(values: list[str]):
    """``TENANT:PRIO`` strings → the SLOConfig pair-tuple form."""
    pairs = []
    for value in values:
        tenant, sep, prio = value.partition(":")
        if not sep or not tenant or not prio.lstrip("-").isdigit():
            raise SystemExit(
                f"--tenant-priority {value!r}: want TENANT:PRIO, e.g. premium:2"
            )
        pairs.append((tenant, int(prio)))
    return tuple(pairs)


def _serve_options_from_args(args: argparse.Namespace):
    """The :class:`ServeOptions` behind the shared serving flag groups.

    Every serving command funnels through here, so ``--slo-ms`` or
    ``--hedge-at`` mean exactly the same thing on one machine, a fleet
    or a cluster.  Cluster-only flags are read defensively: commands
    that don't mount the tenancy parent simply keep the defaults.
    """
    from .faults import FaultSchedule
    from .serving import ServeOptions, SLOConfig

    target_s = args.slo_ms / 1e3 if args.slo_ms is not None else None
    specs = _parse_fault_specs(args.faults)
    faults = None
    if specs:
        seed = args.fault_seed if args.fault_seed is not None else args.seed
        faults = FaultSchedule(specs=specs, seed=seed)
    priorities = _parse_tenant_priorities(getattr(args, "tenant_priority", []))
    try:
        return ServeOptions(
            arrival=args.arrival or "sequential",
            telemetry=_telemetry_mode(args),
            rate_rps=args.arrival_rate,
            seed=args.seed,
            slo=SLOConfig(target_s=target_s, tenant_priorities=priorities),
            shed_policy=args.shed_policy,
            faults=faults,
            timeout_factor=args.timeout_factor,
            max_retries=args.max_retries,
            retry_backoff_s=args.retry_backoff_ms / 1e3,
            retry_budget=args.retry_budget,
            hedge_at=args.hedge_at,
            failover=not args.no_failover,
            speculate_at=getattr(args, "speculate_at", None),
            work_steal=getattr(args, "work_steal", False),
            queue_discipline=getattr(args, "queue_discipline", "fifo"),
        )
    except ValueError as error:
        raise SystemExit(str(error)) from error


def _event_config_from_args(args: argparse.Namespace, telemetry=None):
    """The event-loop config behind ``--arrival/--slo-ms/--shed-policy``
    and the fault-handling knobs (docs/FAULTS.md)."""
    from dataclasses import replace

    config = _serve_options_from_args(args).event_config()
    if telemetry is not None:
        config = replace(config, telemetry=telemetry)
    return config


def _telemetry_mode(args: argparse.Namespace) -> str:
    """The effective ``--telemetry`` mode (``--trace-out`` implies trace)."""
    mode = getattr(args, "telemetry", "off")
    if getattr(args, "trace_out", None) and mode != "trace":
        mode = "trace"
    if mode == "trace" and not getattr(args, "arrival", None):
        raise SystemExit(
            "--telemetry trace / --trace-out need the simulated clock of "
            "the event-driven path; pick an --arrival process"
        )
    return mode


def _telemetry_from_args(args: argparse.Namespace):
    """The run's Telemetry context (or None), for the direct-loop paths."""
    from .telemetry import Telemetry

    return Telemetry.from_mode(_telemetry_mode(args))


def _finish_telemetry(args, telemetry, backend=None, stats=None) -> None:
    """Collect, report and export whatever telemetry the run produced.

    Collection is idempotent (published series are gauges), so commands
    that already collected through :func:`serve_trace` can funnel their
    result's context through here unchanged.
    """
    if telemetry is None:
        return
    telemetry.collect(backend, stats=stats)
    if telemetry.tracing:
        analyzer = telemetry.analyzer()
        slowest = analyzer.slowest(0.1)
        if slowest:
            print(
                analyzer.table(
                    slowest,
                    title=f"Critical path, slowest decile "
                    f"({len(slowest)} requests)",
                )
            )
        if getattr(args, "trace_out", None):
            telemetry.tracer.export(args.trace_out)
            print(
                f"trace: {len(telemetry.tracer.spans)} spans over "
                f"{len(analyzer.trace_ids())} requests -> {args.trace_out}"
            )
    else:
        print(
            f"metrics: {len(telemetry.registry)} series collected "
            "(metrics-report prints a full registry)"
        )


def _print_metrics_report(registry, as_json: bool = False) -> None:
    """The whole registry, one series per row (or raw JSON)."""
    import json

    snapshot = registry.snapshot()
    if as_json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return
    rows = []
    for name, value in snapshot.items():
        if isinstance(value, dict):
            rows.append(
                (
                    name,
                    f"n={value['count']} mean={value['mean_s'] * 1e3:.3f}ms "
                    f"p50={value['p50_s'] * 1e3:.3f}ms "
                    f"p99={value['p99_s'] * 1e3:.3f}ms",
                )
            )
        elif isinstance(value, float):
            rows.append((name, f"{value:.6g}"))
        else:
            rows.append((name, f"{value}"))
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"Metrics registry ({len(rows)} series)",
        )
    )


def _objective_quantity(service, value: float) -> str:
    """Format an objective-cost delta with its objective's unit."""
    from .energy import Objective

    objective = service.config.objective
    if objective is Objective.ENERGY:
        return f"{value:.3f} J"
    if objective is Objective.EDP:
        return f"{value:.6f} J*s"
    return f"{value * 1e3:.3f} ms"


def _print_service_summary(service, serialized: float, wall_s: float) -> None:
    """``serialized`` is the summed execute seconds of the served requests
    (streamed as a float so the event path never holds a response list)."""
    stats = service.stats
    cache = service.cache.stats
    sched = service.scheduler
    runner_stats = service.system.runner.stats
    multiplexed = sched.makespan_s
    served_executions = stats.requests * service.config.repetitions
    probes = runner_stats.executions - served_executions
    rows = [
        ("objective", service.config.objective.value),
        ("requests", f"{stats.requests}"),
        (
            "executions",
            f"{runner_stats.executions} ({probes} adaptation probes)",
        ),
        (
            "cache hit rate",
            f"{cache.hit_rate * 100.0:.1f}% "
            f"({cache.hits} hits / {cache.misses} misses / "
            f"{cache.evictions} evictions)",
        ),
        (
            "adaptations",
            f"{stats.adaptations} "
            f"(cold validations {stats.cold_validations}, "
            f"regressions {stats.regressions})",
        ),
        ("refits", f"{stats.refits}"),
        (
            "drift",
            f"{stats.drift_flags} flags, {stats.drift_escalations} escalations",
        ),
        ("adaptation gain", _objective_quantity(service, stats.improvement_s)),
        ("simulated serial", f"{serialized * 1e3:.3f} ms"),
        ("simulated multiplexed", f"{multiplexed * 1e3:.3f} ms"),
        (
            "batching speedup",
            f"{serialized / multiplexed:.2f}x" if multiplexed > 0 else "n/a",
        ),
        ("throughput (simulated)", f"{sched.throughput_rps():.1f} req/s"),
        (
            "throughput (wall)",
            f"{stats.requests / wall_s:.1f} req/s" if wall_s > 0 else "n/a",
        ),
        (
            "device utilization",
            " ".join(f"{u * 100.0:.0f}%" for u in sched.utilization()),
        ),
        ("served energy", f"{stats.energy_j:.3f} J"),
        (
            # Joules over the *serial* served seconds: each run's energy
            # charges platform idle over its own makespan, so dividing
            # by the compressed multiplexed span would overstate the
            # draw (and could contradict the cap row below).
            "avg power (served)",
            f"{stats.energy_j / serialized:.1f} W" if serialized > 0 else "n/a",
        ),
    ]
    if service.config.power_cap_w is not None:
        rows.append(
            (
                "power cap",
                f"{service.config.power_cap_w:g} W "
                f"({stats.power_capped} capped, "
                f"{stats.power_cap_violations} violations)",
            )
        )
    if service.engine is not None:
        es = service.engine.stats
        rows.append(
            (
                "sweep engine",
                f"{es.compositions} compositions, "
                f"{es.tape_hit_rate * 100.0:.1f}% tape hits",
            )
        )
    print(format_table(["metric", "value"], rows, title="Serving summary"))


def _print_latency_summary(loop_stats) -> None:
    """The event-driven path's report: tail latency, queueing, SLOs."""
    lat = loop_stats.latency
    queue = loop_stats.queue_wait
    rows = [
        ("arrivals", f"{loop_stats.arrivals}"),
        (
            "completed",
            f"{loop_stats.completed} "
            f"({loop_stats.shed} shed, {loop_stats.shed_rate * 100.0:.1f}%; "
            f"{loop_stats.failed} failed)",
        ),
        ("availability", f"{loop_stats.availability * 100.0:.2f}%"),
        ("simulated span", f"{loop_stats.clock_s * 1e3:.3f} ms"),
        ("throughput (event)", f"{loop_stats.throughput_rps:.1f} req/s"),
        (
            "latency p50/p95/p99",
            " / ".join(f"{v * 1e3:.3f} ms" for v in lat.quantiles().values()),
        ),
        ("latency mean", f"{lat.mean_s * 1e3:.3f} ms"),
        (
            "queue wait p50/p95/p99",
            " / ".join(f"{v * 1e3:.3f} ms" for v in queue.quantiles().values()),
        ),
        (
            "SLO violations",
            f"{loop_stats.slo.violations} "
            f"({loop_stats.violation_rate * 100.0:.1f}% of completed)",
        ),
        ("loop idle energy", f"{loop_stats.idle_energy_j:.3f} J"),
    ]
    faulted = (
        loop_stats.crashes
        or loop_stats.timeouts
        or loop_stats.retries
        or loop_stats.hedges
        or loop_stats.exec_errors
        or loop_stats.predict_errors
        or loop_stats.failovers
        or loop_stats.requeued
    )
    if faulted:
        rows.extend(
            [
                (
                    "crashes",
                    f"{loop_stats.crashes} ({loop_stats.recoveries} recovered)",
                ),
                (
                    "failover",
                    f"{loop_stats.failovers} diverted, "
                    f"{loop_stats.requeued} requeued",
                ),
                ("timeouts", f"{loop_stats.timeouts}"),
                ("retries", f"{loop_stats.retries}"),
                (
                    "hedges",
                    f"{loop_stats.hedges} ({loop_stats.hedge_wins} wins, "
                    f"{loop_stats.hedge_cancels} cancelled)",
                ),
                (
                    "transient errors",
                    f"{loop_stats.exec_errors} exec, "
                    f"{loop_stats.predict_errors} predict",
                ),
                (
                    "reclaimed busy",
                    f"{loop_stats.cancelled_busy_s * 1e3:.3f} ms",
                ),
            ]
        )
    tenants = loop_stats.slo.snapshot()
    if len(tenants) > 1:
        for tenant, t in tenants.items():
            rows.append(
                (
                    f"tenant {tenant}",
                    f"{t['completed']} done, {t['shed']} shed, "
                    f"{t['violation_rate'] * 100.0:.1f}% violated",
                )
            )
    print(format_table(["metric", "value"], rows, title="Latency summary"))


def _cmd_replay(args: argparse.Namespace) -> int:
    from .serving import key_universe

    benchmarks, train_benchmarks, service = _build_service(args)
    keys = key_universe(benchmarks, max_sizes=args.max_sizes)
    workload = _workload_from_args(args, keys)
    print(
        f"trained on {len(train_benchmarks)}/{len(benchmarks)} programs "
        f"({len(service.system.database)} records, model {args.model}) "
        f"on {args.machine}"
    )
    print(
        f"replaying {len(workload)} requests over {len(keys)} keys "
        f"({args.workload} workload, skew {args.skew}, seed {args.seed}, "
        f"{len(workload.drift_events)} drift events)"
    )
    if args.arrival:
        return _replay_event_driven(args, service, workload)
    responses = []
    t0 = time.perf_counter()
    for events, batch in workload.segments():
        for event in events:
            if event.machine is not None and event.machine != args.machine:
                print(f"!! drift event targets {event.machine!r}, not {args.machine}")
                continue
            try:
                service.system.runner.apply_drift(
                    event.scale, device_index=event.device_index
                )
            except ValueError as error:
                raise SystemExit(str(error)) from error
            where = (
                f"device {event.device_index}"
                if event.device_index is not None
                else "all devices"
            )
            print(f"-- drift: {where} x{event.scale:g} before request {len(responses)}")
        if not batch:
            continue
        if args.no_batch:
            responses.extend(service.serve(batch))
        else:
            responses.extend(service.submit_many(batch))
    wall_s = time.perf_counter() - t0
    _print_service_summary(service, sum(r.measured_s for r in responses), wall_s)
    _finish_telemetry(args, _telemetry_from_args(args), backend=service)
    return 0


def _replay_event_driven(args: argparse.Namespace, service, workload) -> int:
    """The open-loop replay: arrivals on a simulated clock, queueing, SLOs."""
    from .serving import EventLoop

    telemetry = _telemetry_from_args(args)
    loop = EventLoop.for_service(
        service, _event_config_from_args(args, telemetry)
    )

    def on_drift(event) -> None:
        if event.machine is not None and event.machine != args.machine:
            print(f"!! drift event targets {event.machine!r}, not {args.machine}")
            return
        try:
            service.system.runner.apply_drift(
                event.scale, device_index=event.device_index
            )
        except ValueError as error:
            raise SystemExit(str(error)) from error
        where = (
            f"device {event.device_index}"
            if event.device_index is not None
            else "all devices"
        )
        print(
            f"-- drift: {where} x{event.scale:g} "
            f"before request {loop.stats.arrivals}"
        )

    print(
        f"event-driven: {args.arrival} arrivals at {args.arrival_rate:g} req/s "
        f"(shed policy {args.shed_policy}"
        + (f", {len(args.faults)} fault windows" if args.faults else "")
        + (f", hedge at p{args.hedge_at * 100:g}" if args.hedge_at else "")
        + ")"
    )
    t0 = time.perf_counter()
    stats = loop.run(workload.timed_items(), drift_handler=on_drift)
    wall_s = time.perf_counter() - t0
    _print_service_summary(service, stats.execute_time_s, wall_s)
    _print_latency_summary(stats)
    _finish_telemetry(args, telemetry, backend=service, stats=stats)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serving import ServingRequest

    if args.faults and not args.arrival:
        raise SystemExit(
            "--faults needs the event-driven path; pick an --arrival process"
        )
    _telemetry_mode(args)  # fail fast: tracing needs the event path
    benchmarks, _train_benchmarks, service = _build_service(args)
    known = {b.name for b in benchmarks}
    stream = Path(args.trace).open() if args.trace else sys.stdin
    print(f"serving on {args.machine}; requests are '<program> <size>' lines")
    requests = []
    responses = []
    t0 = time.perf_counter()
    try:
        for line in stream:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if (
                len(parts) != 2
                or parts[0] not in known
                or not parts[1].isdigit()
                or int(parts[1]) < 1
            ):
                print(f"!! malformed request {line!r} (want '<program> <size>')")
                continue
            request = ServingRequest(
                request_id=len(requests), program=parts[0], size=int(parts[1])
            )
            requests.append(request)
            if args.arrival:
                # Event mode queues the whole trace on a simulated
                # arrival clock; serving happens after the read loop.
                continue
            r = service.submit(request)
            flags = ("hit" if r.cache_hit else "miss") + (
                "+adapted" if r.adapted else ""
            )
            print(
                f"{r.request.program}@{r.request.size}: {r.partitioning.label} "
                f"{r.measured_s * 1e3:.3f} ms [{flags}]"
            )
            responses.append(r)
    finally:
        if args.trace:
            stream.close()
    if args.arrival:
        return _serve_event_driven(args, service, requests, t0)
    wall_s = time.perf_counter() - t0
    if responses:
        _print_service_summary(
            service, sum(r.measured_s for r in responses), wall_s
        )
    _finish_telemetry(args, _telemetry_from_args(args), backend=service)
    return 0


def _serve_event_driven(args: argparse.Namespace, service, requests, t0) -> int:
    """Event-mode ``serve``: arrival timestamps over the parsed trace."""
    from .serving import EventLoop
    from .workloads import WorkloadSpec, arrival_times

    if not requests:
        return 0
    spec = WorkloadSpec(
        num_requests=len(requests),
        seed=args.seed,
        arrival=args.arrival,
        rate_rps=args.arrival_rate,
    )
    print(
        f"event-driven: {args.arrival} arrivals at {args.arrival_rate:g} req/s "
        f"(shed policy {args.shed_policy}"
        + (f", {len(args.faults)} fault windows" if args.faults else "")
        + (f", hedge at p{args.hedge_at * 100:g}" if args.hedge_at else "")
        + ")"
    )
    telemetry = _telemetry_from_args(args)
    loop = EventLoop.for_service(
        service, _event_config_from_args(args, telemetry)
    )
    stats = loop.run(zip(arrival_times(spec), requests))
    wall_s = time.perf_counter() - t0
    _print_service_summary(service, stats.execute_time_s, wall_s)
    _print_latency_summary(stats)
    _finish_telemetry(args, telemetry, backend=service, stats=stats)
    return 0


def _fleet_train_benchmarks(args: argparse.Namespace):
    """The (all, training-subset) benchmark split shared by fleet commands."""
    benchmarks = all_benchmarks()
    train_benchmarks = benchmarks
    if args.train_programs is not None:
        if not 1 <= args.train_programs <= len(benchmarks):
            raise SystemExit(f"--train-programs must be in [1, {len(benchmarks)}]")
        train_benchmarks = benchmarks[: args.train_programs]
    return benchmarks, train_benchmarks


def _cmd_fleet_train(args: argparse.Namespace) -> int:
    from .fleet import ModelRegistry
    from .machines import fleet_platforms

    if args.model not in PERSISTABLE_MODEL_KINDS:
        # Catch this before spending minutes on the first machine's
        # training campaign only to fail in save_model.
        raise SystemExit(
            f"--model {args.model!r} cannot be persisted; "
            f"choose from {', '.join(PERSISTABLE_MODEL_KINDS)}"
        )
    _benchmarks, train_benchmarks = _fleet_train_benchmarks(args)
    platforms = fleet_platforms(args.machines)
    registry = ModelRegistry(args.registry)
    config = TrainingConfig(
        repetitions=1,
        noise_sigma=args.noise,
        seed=args.seed,
        max_sizes=args.max_sizes,
    )
    rows = []
    for platform in platforms:
        system = train_system(
            platform, train_benchmarks, model_kind=args.model, config=config
        )
        path = registry.save(system)
        rows.append((platform.name, len(system.database), args.model, str(path)))
    print(
        format_table(
            ["machine", "records", "model", "path"],
            rows,
            title=f"Fleet training ({args.machines} machines)",
        )
    )
    return 0


def _cmd_fleet_serve(args: argparse.Namespace) -> int:
    from .fleet import FleetRouter, ModelRegistry
    from .machines import fleet_platforms
    from .serving import PartitioningService, ServiceConfig, key_universe

    benchmarks, train_benchmarks = _fleet_train_benchmarks(args)
    platforms = fleet_platforms(args.machines)
    registry = ModelRegistry(args.registry) if args.registry else None
    config = TrainingConfig(
        repetitions=1,
        noise_sigma=args.noise,
        seed=args.seed,
        max_sizes=args.max_sizes,
    )
    service_config = ServiceConfig(
        cache_capacity=args.cache_capacity,
        regression_threshold=args.threshold,
        instance_seed=args.seed,
        memoize=not args.no_memoize,
        objective=args.objective,
        power_cap_w=args.power_cap,
    )
    services, sources = [], []
    for platform in platforms:
        if registry is not None and registry.has(platform.name):
            system = registry.load(platform, noise_sigma=args.noise, seed=args.seed)
            source = "registry"
        elif registry is not None and args.warm_start and registry.machines():
            donor = registry.most_similar(platform)
            system = registry.warm_start(
                platform,
                model_kind=args.model,
                noise_sigma=args.noise,
                seed=args.seed,
                donor=donor,
            )
            source = f"warm({donor})"
        else:
            system = train_system(
                platform,
                train_benchmarks,
                model_kind=args.model,
                config=config,
                objective=_training_objective(args),
            )
            source = "trained"
        try:
            services.append(PartitioningService(system, service_config))
        except ValueError as error:
            raise SystemExit(str(error)) from error
        sources.append(source)
    router = FleetRouter(services, policy=args.policy, registry=registry)
    keys = key_universe(benchmarks, max_sizes=args.max_sizes)
    workload = _workload_from_args(args, keys)
    print(
        f"fleet of {len(platforms)} machines (policy {args.policy}); "
        f"routing {len(workload)} requests over {len(keys)} keys "
        f"({args.workload} workload, skew {args.skew}, seed {args.seed}, "
        f"{len(workload.drift_events)} drift events)"
    )
    if args.arrival:
        return _fleet_serve_event_driven(args, router, sources, workload)
    served = 0
    t0 = time.perf_counter()
    for events, batch in workload.segments():
        for event in events:
            try:
                hit = router.apply_drift(event)
            except ValueError as error:
                raise SystemExit(str(error)) from error
            where = (
                f"device {event.device_index}"
                if event.device_index is not None
                else "all devices"
            )
            print(
                f"-- drift: {', '.join(hit)} ({where}) x{event.scale:g} "
                f"before request {served}"
            )
        router.serve(batch)
        served += len(batch)
    wall_s = time.perf_counter() - t0
    _print_fleet_summary(router, sources, wall_s)
    _finish_telemetry(args, _telemetry_from_args(args), backend=router)
    return 0


def _fleet_serve_event_driven(args, router, sources, workload) -> int:
    """Event-mode fleet serving: place at arrival, queue per replica."""
    from .serving import EventLoop

    telemetry = _telemetry_from_args(args)
    loop = EventLoop.for_fleet(router, _event_config_from_args(args, telemetry))

    def on_drift(event) -> None:
        try:
            hit = router.apply_drift(event)
        except ValueError as error:
            raise SystemExit(str(error)) from error
        where = (
            f"device {event.device_index}"
            if event.device_index is not None
            else "all devices"
        )
        print(
            f"-- drift: {', '.join(hit)} ({where}) x{event.scale:g} "
            f"before request {loop.stats.arrivals}"
        )

    print(
        f"event-driven: {args.arrival} arrivals at {args.arrival_rate:g} req/s "
        f"(shed policy {args.shed_policy}"
        + (f", {len(args.faults)} fault windows" if args.faults else "")
        + (f", hedge at p{args.hedge_at * 100:g}" if args.hedge_at else "")
        + ")"
    )
    t0 = time.perf_counter()
    stats = loop.run(workload.timed_items(), drift_handler=on_drift)
    wall_s = time.perf_counter() - t0
    _print_fleet_summary(router, sources, wall_s)
    _print_latency_summary(stats)
    _finish_telemetry(args, telemetry, backend=router, stats=stats)
    return 0


def _print_fleet_summary(router, sources, wall_s: float) -> None:
    stats = router.stats()
    rows = [
        (
            r.name,
            source,
            f"{r.routed}",
            f"{r.cache_hit_rate * 100.0:.0f}%",
            f"{r.adaptations}",
            f"{r.refits}",
            f"{r.drift_flags}",
            f"{r.rewarms}" + (" (draining)" if r.draining else ""),
            f"{r.health:.2f}",
            f"{r.makespan_s * 1e3:.3f}",
            f"{r.energy_j:.3f}",
            f"{r.avg_power_w:.0f}",
            " ".join(f"{u * 100.0:.0f}%" for u in r.utilization),
        )
        for r, source in zip(stats.replicas, sources)
    ]
    print(
        format_table(
            [
                "replica",
                "model source",
                "routed",
                "cache hit",
                "adapt",
                "refits",
                "drift",
                "rewarms",
                "health",
                "makespan (ms)",
                "energy (J)",
                "power (W)",
                "device util",
            ],
            rows,
            title="Fleet summary",
        )
    )
    totals = [
        ("requests", f"{stats.requests}"),
        ("fleet makespan (simulated)", f"{stats.makespan_s * 1e3:.3f} ms"),
        (
            "fleet throughput (simulated)",
            f"{stats.throughput_rps:.1f} req/s"
            + (
                f" ({stats.zero_span_replicas} zero-span replicas)"
                if stats.zero_span_replicas
                else ""
            ),
        ),
        (
            "throughput (wall)",
            f"{stats.requests / wall_s:.1f} req/s" if wall_s > 0 else "n/a",
        ),
        ("adaptations", f"{stats.adaptations}"),
        ("refits", f"{stats.refits}"),
        ("drift flags", f"{stats.drift_flags}"),
        ("replica rewarms", f"{stats.rewarms}"),
        ("fleet energy", f"{stats.energy_j:.3f} J"),
        ("fleet avg power", f"{stats.avg_power_w:.1f} W"),
    ]
    print(format_table(["metric", "value"], totals, title="Fleet totals"))


def _cmd_cluster_train(args: argparse.Namespace) -> int:
    from .fleet import ModelRegistry
    from .machines import cluster_platforms

    if args.model not in PERSISTABLE_MODEL_KINDS:
        raise SystemExit(
            f"--model {args.model!r} cannot be persisted; "
            f"choose from {', '.join(PERSISTABLE_MODEL_KINDS)}"
        )
    _benchmarks, train_benchmarks = _fleet_train_benchmarks(args)
    registry = ModelRegistry(args.registry)
    config = TrainingConfig(
        repetitions=1,
        noise_sigma=args.noise,
        seed=args.seed,
        max_sizes=args.max_sizes,
    )
    rows = []
    for pool, chunk in enumerate(
        cluster_platforms(args.pools, args.machines_per_pool)
    ):
        for platform in chunk:
            system = train_system(
                platform, train_benchmarks, model_kind=args.model, config=config
            )
            path = registry.save(system)
            rows.append(
                (pool, platform.name, len(system.database), args.model, str(path))
            )
    print(
        format_table(
            ["pool", "machine", "records", "model", "path"],
            rows,
            title=(
                f"Cluster training ({args.pools} pools x "
                f"{args.machines_per_pool} machines)"
            ),
        )
    )
    return 0


def _cmd_cluster_serve(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .cluster import ClusterRouter, NetworkSpec, with_tenants
    from .serving import ServiceConfig, key_universe, serve_trace

    benchmarks, train_benchmarks = _fleet_train_benchmarks(args)
    options = _serve_options_from_args(args)
    try:
        cluster = ClusterRouter.build(
            pools=args.pools,
            machines_per_pool=args.machines_per_pool,
            benchmarks=train_benchmarks,
            model_kind=args.model,
            training=TrainingConfig(
                repetitions=1,
                noise_sigma=args.noise,
                seed=args.seed,
                max_sizes=args.max_sizes,
            ),
            serving=ServiceConfig(
                cache_capacity=args.cache_capacity,
                regression_threshold=args.threshold,
                instance_seed=args.seed,
                memoize=not args.no_memoize,
                objective=args.objective,
                power_cap_w=args.power_cap,
            ),
            policy=args.policy,
            network=NetworkSpec(
                bandwidth_gbs=args.net_bandwidth,
                latency_s=args.net_latency_us * 1e-6,
                link_watts=args.net_watts,
            ),
            slo=options.slo,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from error
    keys = key_universe(benchmarks, max_sizes=args.max_sizes)
    workload = _workload_from_args(args, keys)
    if args.tenants:
        tenants = tuple(t.strip() for t in args.tenants.split(",") if t.strip())
        if not tenants:
            raise SystemExit("--tenants: want a comma-separated tenant list")
        workload = replace(
            workload, requests=with_tenants(workload.requests, tenants)
        )
    num_tenants = len({r.tenant for r in workload.requests})
    print(
        f"cluster of {args.pools}x{args.machines_per_pool} machines "
        f"(policy {args.policy}, net {args.net_bandwidth:g} GB/s + "
        f"{args.net_latency_us:g} us); routing {len(workload)} requests "
        f"from {num_tenants} tenant{'s' if num_tenants != 1 else ''} over "
        f"{len(keys)} keys ({args.workload} workload, skew {args.skew}, "
        f"seed {args.seed})"
    )

    def on_drift(event) -> None:
        try:
            hit = cluster.apply_drift(event)
        except ValueError as error:
            raise SystemExit(str(error)) from error
        where = (
            f"device {event.device_index}"
            if event.device_index is not None
            else "all devices"
        )
        print(f"-- drift: {', '.join(hit)} ({where}) x{event.scale:g}")

    t0 = time.perf_counter()
    if args.arrival:
        print(
            f"event-driven: {args.arrival} arrivals at "
            f"{args.arrival_rate:g} req/s (shed policy {args.shed_policy}, "
            f"queue {args.queue_discipline}"
            + (
                f", speculate at p{args.speculate_at * 100:g}"
                if args.speculate_at
                else ""
            )
            + (", work-steal" if args.work_steal else "")
            + ")"
        )
        result = serve_trace(
            cluster, workload.timed_items(), options, drift_handler=on_drift
        )
        wall_s = time.perf_counter() - t0
        _print_cluster_summary(cluster, wall_s)
        _print_latency_summary(result.stats)
        _finish_telemetry(
            args, result.telemetry, backend=cluster, stats=result.stats
        )
    else:
        result = None
        for events, batch in workload.segments():
            for event in events:
                on_drift(event)
            result = serve_trace(cluster, batch, options)
        wall_s = time.perf_counter() - t0
        _print_cluster_summary(cluster, wall_s)
        if result is not None:
            _finish_telemetry(args, result.telemetry, backend=cluster)
    return 0


def _print_cluster_summary(cluster, wall_s: float) -> None:
    """Pool table, network toll and per-tenant isolation report."""
    stats = cluster.stats()
    rows = [
        (
            f"pool {p}",
            " ".join(r.name for r in cluster.pools[p].replicas),
            f"{ps.requests}",
            f"{ps.makespan_s * 1e3:.3f}",
            f"{ps.energy_j:.3f}",
            f"{ps.rewarms}",
        )
        for p, ps in enumerate(stats.pools)
    ]
    print(
        format_table(
            ["pool", "machines", "requests", "makespan (ms)", "energy (J)", "rewarms"],
            rows,
            title="Cluster pools",
        )
    )
    cross = (
        f"{stats.cross_pool} ({stats.cross_pool / stats.served * 100.0:.1f}%)"
        if stats.served
        else "0"
    )
    totals = [
        ("served", f"{stats.served}"),
        ("cross-pool", cross),
        ("network time", f"{stats.network_s * 1e3:.3f} ms"),
        ("network energy", f"{stats.network_j:.3f} J"),
        ("fairness gap", f"{stats.fairness_gap:.3f}"),
        (
            "throughput (wall)",
            f"{stats.served / wall_s:.1f} req/s" if wall_s > 0 else "n/a",
        ),
    ]
    print(format_table(["metric", "value"], totals, title="Cluster totals"))
    if stats.tenants:
        trows = [
            (
                t.tenant,
                f"{t.completed}",
                f"{t.share * 100.0:.1f}%",
                f"{t.fair_share * 100.0:.1f}%",
                f"{t.weight:g}",
                f"{t.p50_s * 1e3:.3f}",
                f"{t.p99_s * 1e3:.3f}",
            )
            for t in stats.tenants
        ]
        print(
            format_table(
                [
                    "tenant",
                    "done",
                    "share",
                    "fair share",
                    "weight",
                    "p50 (ms)",
                    "p99 (ms)",
                ],
                trows,
                title="Tenant isolation",
            )
        )


# -- shared flag groups ------------------------------------------------------
#
# Each group is defined exactly once, as an argparse *parent* parser
# (add_help=False); build_parser() mounts the groups a command supports
# via parents=[...].  Adding a flag here adds it to every command that
# mounts the group.


def _model_flags(
    p: argparse.ArgumentParser, model_default: str, noise_default: float
) -> None:
    """The model/training flags every serving command carries."""
    p.add_argument("--model", default=model_default, help="prediction model kind")
    p.add_argument(
        "--train-programs",
        type=int,
        default=16,
        help="train on the first N suite programs (the rest arrive cold)",
    )
    p.add_argument(
        "--max-sizes",
        type=int,
        default=3,
        help="cap each program's size ladder (training and trace)",
    )
    p.add_argument("--noise", type=float, default=noise_default)
    p.add_argument("--seed", type=int, default=0)


def _fleet_parent() -> argparse.ArgumentParser:
    """Flags shared by fleet-train and fleet-serve."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--machines",
        type=int,
        default=4,
        help="fleet size (machines generated by repro.machines.fleet_platforms)",
    )
    _model_flags(p, model_default="knn", noise_default=0.0)
    return p


def _cluster_parent() -> argparse.ArgumentParser:
    """Topology + model flags shared by cluster-train and cluster-serve."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--pools",
        type=int,
        default=2,
        help="machine pools (each pool is a full fleet router)",
    )
    p.add_argument(
        "--machines-per-pool",
        type=int,
        default=2,
        help="machines per pool (repro.machines.cluster_platforms)",
    )
    _model_flags(p, model_default="knn", noise_default=0.0)
    return p


def _network_parent() -> argparse.ArgumentParser:
    """The interconnect cost model pricing cross-pool handoffs."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--net-bandwidth",
        type=float,
        default=10.0,
        metavar="GB/S",
        help="interconnect bandwidth charged per cross-pool handoff",
    )
    p.add_argument(
        "--net-latency-us",
        type=float,
        default=50.0,
        metavar="US",
        help="fixed interconnect latency per cross-pool transfer",
    )
    p.add_argument(
        "--net-watts",
        type=float,
        default=8.0,
        metavar="W",
        help="link power while a handoff is in flight (joules metering)",
    )
    return p


def _tenancy_parent() -> argparse.ArgumentParser:
    """Multi-tenant and straggler-handling flags (cluster-serve)."""
    from .serving import QUEUE_DISCIPLINES

    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--tenants",
        default=None,
        metavar="A,B,...",
        help="tenant names assigned round-robin over the trace",
    )
    p.add_argument(
        "--tenant-priority",
        action="append",
        default=[],
        metavar="TENANT:PRIO",
        help="one tenant's priority (repeatable; fair-share weight is "
        "1 + priority)",
    )
    p.add_argument(
        "--queue-discipline",
        default="fifo",
        choices=QUEUE_DISCIPLINES,
        help="per-replica queue order on the event-driven path",
    )
    p.add_argument(
        "--speculate-at",
        type=float,
        default=None,
        metavar="Q",
        help="speculatively re-execute in another pool once a request "
        "outlives the Q latency quantile (first completion wins)",
    )
    p.add_argument(
        "--work-steal",
        action="store_true",
        help="idle replicas steal queued work from other pools",
    )
    return p


def _workload_parent() -> argparse.ArgumentParser:
    """Flags of the trace generator (replay, fleet-serve, cluster-serve)."""
    from .workloads import WORKLOAD_FAMILIES

    p = argparse.ArgumentParser(add_help=False)

    p.add_argument(
        "--workload",
        default="stationary",
        choices=WORKLOAD_FAMILIES,
        help="trace family (see docs/WORKLOADS.md)",
    )
    p.add_argument(
        "--phases",
        type=int,
        default=3,
        help="hot-set rotations (phase-shift family)",
    )
    p.add_argument(
        "--burst-every",
        type=int,
        default=50,
        help="requests between flash-crowd bursts",
    )
    p.add_argument(
        "--burst-length", type=int, default=12, help="requests per burst"
    )
    p.add_argument(
        "--burst-share",
        type=float,
        default=0.8,
        help="traffic share the burst key takes during a burst",
    )
    p.add_argument(
        "--period", type=int, default=100, help="requests per diurnal cycle"
    )
    p.add_argument(
        "--skew-min", type=float, default=0.3, help="diurnal trough skew"
    )
    p.add_argument(
        "--skew-max", type=float, default=2.2, help="diurnal peak skew"
    )
    p.add_argument(
        "--drift",
        action="append",
        default=[],
        metavar="AT:SCALE[:MACHINE[:DEVICE]]",
        help="platform drift event, e.g. 100:0.5:mc2:1 (repeatable)",
    )
    return p


def _trace_parent() -> argparse.ArgumentParser:
    """Trace length and popularity skew (every trace-serving command)."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--requests", type=int, default=200)
    p.add_argument("--skew", type=float, default=1.5)
    return p


def _service_parent() -> argparse.ArgumentParser:
    """The PartitioningService build knobs every serve command shares."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--cache-capacity", type=int, default=512)
    p.add_argument(
        "--threshold",
        type=float,
        default=0.3,
        help="relative regression slack before adaptation triggers",
    )
    p.add_argument(
        "--no-memoize",
        action="store_true",
        help="measure without the memoizing sweep engine (A/B baseline)",
    )
    return p


def _serving_parent() -> argparse.ArgumentParser:
    """Flags of the single-machine serving commands (serve/replay/...)."""
    p = argparse.ArgumentParser(
        add_help=False, parents=[_service_parent(), _objective_parent()]
    )
    p.add_argument(
        "--machine", default="mc2", choices=[m.name for m in ALL_MACHINES]
    )
    _model_flags(p, model_default="mlp", noise_default=0.05)
    return p


def _event_parent() -> argparse.ArgumentParser:
    """Flags of the event-driven serving path (docs/SERVING.md)."""
    from .serving import SHED_POLICIES
    from .telemetry import TELEMETRY_MODES

    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--arrival",
        default=None,
        choices=("uniform", "poisson"),
        help="arrival process: open-loop event-driven serving "
        "(default: closed-loop replay, no timestamps)",
    )
    p.add_argument(
        "--arrival-rate",
        type=float,
        default=200.0,
        metavar="RPS",
        help="mean arrival rate in requests per simulated second",
    )
    p.add_argument(
        "--slo-ms",
        type=float,
        default=None,
        metavar="MS",
        help="end-to-end latency target; violations are tracked per tenant",
    )
    p.add_argument(
        "--shed-policy",
        default="none",
        choices=SHED_POLICIES,
        help="admission control under --slo-ms (deadline-aware shedding)",
    )
    p.add_argument(
        "--faults",
        action="append",
        default=[],
        metavar="KIND:AT:DUR[:MAG[:REPLICA]]",
        help="inject one fault window (repeatable): kind crash|straggler|"
        "error|predict-error, start and duration in simulated seconds, "
        "magnitude a slowdown factor or error probability, replica index "
        "or empty for all (docs/FAULTS.md)",
    )
    p.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="seed of the fault schedule's error draws (default: --seed)",
    )
    p.add_argument(
        "--timeout-factor",
        type=float,
        default=None,
        metavar="X",
        help="fail a request once its age exceeds X times its SLO target",
    )
    p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="extra service attempts after transient failures",
    )
    p.add_argument(
        "--retry-backoff-ms",
        type=float,
        default=1.0,
        metavar="MS",
        help="base retry backoff, doubling per retry",
    )
    p.add_argument(
        "--retry-budget",
        type=float,
        default=0.2,
        metavar="X",
        help="retry tokens earned per admitted request (caps retry traffic)",
    )
    p.add_argument(
        "--hedge-at",
        type=float,
        default=None,
        metavar="Q",
        help="fire a hedged duplicate once a request outlives the Q latency "
        "quantile of completions so far (e.g. 0.95)",
    )
    p.add_argument(
        "--no-failover",
        action="store_true",
        help="do not route around crashed replicas (availability baseline)",
    )
    p.add_argument(
        "--telemetry",
        default="off",
        choices=TELEMETRY_MODES,
        help="metrics: publish every layer into one registry; trace: also "
        "record per-request spans and the JSONL event log "
        "(docs/OBSERVABILITY.md)",
    )
    p.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the span/event JSONL trace here (implies --telemetry "
        "trace; event-driven path only)",
    )
    return p


def _objective_parent() -> argparse.ArgumentParser:
    """Flags of the energy-aware serving commands."""
    from .energy import Objective

    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--objective",
        default=Objective.MAKESPAN.value,
        choices=[o.value for o in Objective],
        help="what the model and the adaptation loop optimize",
    )
    p.add_argument(
        "--power-cap",
        type=float,
        default=None,
        metavar="WATTS",
        help="average-power budget per served launch (docs/ENERGY.md)",
    )
    return p


def _cmd_energy_sweep(args: argparse.Namespace) -> int:
    from .energy import Objective, best_label, pareto_front
    from .engine import SweepEngine
    from .partitioning import partition_space

    bench = get_benchmark(args.program)
    platforms = (
        [machine_by_name(args.machine)] if args.machine else list(ALL_MACHINES)
    )
    sizes = bench.problem_sizes()
    if args.size is not None:
        sizes = [args.size]
    elif args.max_sizes is not None:
        sizes = sizes[: args.max_sizes]
    for platform in platforms:
        engine = SweepEngine(Runner(platform))
        space = partition_space(platform.num_devices, args.step)
        rows = []
        for size in sizes:
            instance = bench.make_instance(size, seed=args.seed)
            timings, energies = engine.sweep_with_energy(
                bench.request(instance), space
            )
            engine.reset()
            t_best = best_label(timings, energies, Objective.MAKESPAN)
            e_best = best_label(timings, energies, Objective.ENERGY)
            edp_best = best_label(timings, energies, Objective.EDP)
            front = pareto_front(timings, energies)
            rows.append(
                (
                    size,
                    f"{t_best} ({timings[t_best] * 1e3:.3f} ms)",
                    f"{e_best} ({energies[e_best]:.3f} J)",
                    edp_best,
                    f"{1.0 - energies[e_best] / energies[t_best]:.1%}",
                    f"{timings[e_best] / timings[t_best]:.2f}x",
                    len(front),
                )
            )
        print(
            format_table(
                [
                    "size",
                    Objective.MAKESPAN.value + "-best",
                    Objective.ENERGY.value + "-best",
                    "edp-best",
                    "energy saved",
                    "slowdown",
                    "pareto",
                ],
                rows,
                title=(
                    f"{bench.name} on {platform.name} "
                    f"({args.step}% grid, energy vs makespan)"
                ),
            )
        )
    return 0


def _parse_stages(value: str) -> list[tuple[str, int]]:
    """``prog@size,prog@size,...`` → pipeline stage list."""
    known = {b.name for b in all_benchmarks()}
    stages: list[tuple[str, int]] = []
    for part in value.split(","):
        part = part.strip()
        prog, sep, size = part.partition("@")
        if not sep or prog not in known or not size.isdigit() or int(size) < 1:
            raise SystemExit(
                f"--stages: bad stage {part!r} "
                "(want '<program>@<size>', e.g. stencil2d@256)"
            )
        stages.append((prog, int(size)))
    if len(stages) < 2:
        raise SystemExit("--stages: a pipeline needs at least 2 stages")
    return stages


def _cmd_graph_sweep(args: argparse.Namespace) -> int:
    from .energy import EnergyMeter
    from .engine import SweepEngine
    from .graphs import GraphPlanner, greedy_plan, pipeline_chain

    platform = machine_by_name(args.machine)
    stages = _parse_stages(args.stages)
    graph = pipeline_chain(stages, scale_bytes=args.scale_bytes)
    runner = Runner(platform, noise_sigma=args.noise, seed=args.seed)
    engine = SweepEngine(runner)
    requests = engine.graph_requests(graph, instance_seed=args.seed)
    idle_w = EnergyMeter(runner.devices).platform_idle_w()
    planner = GraphPlanner(
        engine.measure, runner.devices, idle_w, step_percent=args.step
    )
    greedy, _ = greedy_plan(graph, requests, engine.measure, planner.space)
    greedy_run = engine.measure_graph(graph, greedy, instance_seed=args.seed)
    plan, run = planner.search(graph, requests)
    greedy_labels = greedy.labels()
    labels = plan.labels()
    rows = [
        (
            name,
            f"{graph.node(name).program}@{graph.node(name).size}",
            greedy_labels[name],
            labels[name],
            f"{sched.start_s * 1e3:.3f}",
            f"{sched.finish_s * 1e3:.3f}",
            "*" if name in run.critical_path else "",
        )
        for name, sched in ((s.node, s) for s in run.schedule)
    ]
    print(
        format_table(
            [
                "task",
                "stage",
                "greedy",
                "co-search",
                "start (ms)",
                "finish (ms)",
                "crit",
            ],
            rows,
            title=f"{graph.name} on {platform.name} ({args.step}% grid)",
        )
    )
    stats = planner.stats
    speedup = greedy_run.median_s / run.median_s if run.median_s > 0 else 1.0
    summary = [
        ("greedy makespan", f"{greedy_run.median_s * 1e3:.3f} ms"),
        ("co-searched makespan", f"{run.median_s * 1e3:.3f} ms"),
        ("speedup over greedy", f"{speedup:.2f}x"),
        ("transfer time", f"{run.transfer_s * 1e3:.3f} ms"),
        ("graph energy", f"{run.energy_j:.3f} J"),
        ("critical path", " > ".join(run.critical_path)),
        (
            "search effort",
            f"{stats.evaluated} compositions, {stats.pruned} pruned, "
            f"{stats.passes} passes, {stats.improvements} improvements",
        ),
    ]
    print(format_table(["metric", "value"], summary, title="Co-search summary"))
    return 0


def _service_drift_handler(args: argparse.Namespace, service):
    """Drift hook for the single-service telemetry commands."""

    def on_drift(event) -> None:
        if event.machine is not None and event.machine != args.machine:
            print(f"!! drift event targets {event.machine!r}, not {args.machine}")
            return
        try:
            service.system.runner.apply_drift(
                event.scale, device_index=event.device_index
            )
        except ValueError as error:
            raise SystemExit(str(error)) from error

    return on_drift


def _cmd_trace_export(args: argparse.Namespace) -> int:
    """Serve a synthetic workload with tracing on; write the JSONL spans."""
    from .serving import key_universe, serve_trace

    if not args.trace_out:
        raise SystemExit("trace-export needs --trace-out PATH")
    args.telemetry = "trace"
    if not args.arrival:
        args.arrival = "poisson"
    benchmarks, _train_benchmarks, service = _build_service(args)
    keys = key_universe(benchmarks, max_sizes=args.max_sizes)
    workload = _workload_from_args(args, keys)
    options = _serve_options_from_args(args)
    print(
        f"tracing {len(workload)} requests over {len(keys)} keys "
        f"({args.workload} workload, {args.arrival} arrivals at "
        f"{args.arrival_rate:g} req/s, seed {args.seed})"
    )
    result = serve_trace(
        service,
        workload.timed_items(),
        options,
        drift_handler=_service_drift_handler(args, service),
    )
    _print_latency_summary(result.stats)
    _finish_telemetry(
        args, result.telemetry, backend=service, stats=result.stats
    )
    return 0


def _cmd_metrics_report(args: argparse.Namespace) -> int:
    """Serve a synthetic workload; print the unified metrics registry."""
    from .serving import key_universe, serve_trace

    if _telemetry_mode(args) == "off":
        args.telemetry = "metrics"
    benchmarks, _train_benchmarks, service = _build_service(args)
    keys = key_universe(benchmarks, max_sizes=args.max_sizes)
    workload = _workload_from_args(args, keys)
    options = _serve_options_from_args(args)
    print(
        f"serving {len(workload)} requests over {len(keys)} keys "
        f"({args.workload} workload, seed {args.seed}) "
        f"with telemetry={options.telemetry}"
    )
    if args.arrival:
        result = serve_trace(
            service,
            workload.timed_items(),
            options,
            drift_handler=_service_drift_handler(args, service),
        )
    else:
        result = serve_trace(service, list(workload.requests), options)
    _print_metrics_report(result.telemetry.registry, as_json=args.json)
    if result.telemetry.tracing and args.trace_out:
        result.telemetry.tracer.export(args.trace_out)
        print(f"trace -> {args.trace_out}")
    return 0


def _cmd_graph_serve(args: argparse.Namespace) -> int:
    from .serving import key_universe
    from .workloads import WorkloadSpec, make_workload

    benchmarks, train_benchmarks, service = _build_service(args)
    keys = key_universe(benchmarks, max_sizes=args.max_sizes)
    spec = WorkloadSpec(
        family="pipeline",
        num_requests=args.requests,
        skew=args.skew,
        seed=args.seed,
        arrival=args.arrival or "sequential",
        rate_rps=args.arrival_rate,
    )
    workload = make_workload(spec, keys)
    graphs = {r.graph.signature_label for r in workload.requests}
    print(
        f"trained on {len(train_benchmarks)}/{len(benchmarks)} programs "
        f"({len(service.system.database)} records, model {args.model}) "
        f"on {args.machine}"
    )
    print(
        f"serving {len(workload)} task-graph requests over {len(graphs)} "
        f"distinct pipelines (skew {args.skew}, seed {args.seed})"
    )
    t0 = time.perf_counter()
    telemetry = _telemetry_from_args(args)
    if args.arrival:
        from .serving import EventLoop

        loop = EventLoop.for_service(
            service, _event_config_from_args(args, telemetry)
        )
        print(
            f"event-driven: {args.arrival} arrivals at {args.arrival_rate:g} req/s"
        )
        loop_stats = loop.run(workload.timed_items())
        wall_s = time.perf_counter() - t0
        serialized = loop_stats.execute_time_s
    else:
        serialized = 0.0
        for request in workload.requests:
            serialized += service.submit_graph(request).measured_s
        wall_s = time.perf_counter() - t0
        loop_stats = None
    stats = service.stats
    cache = service.cache.stats
    rows = [
        ("objective", service.config.objective.value),
        ("graph requests", f"{stats.graph_requests}"),
        ("distinct pipelines", f"{len(graphs)}"),
        (
            "plan cache hit rate",
            f"{cache.hit_rate * 100.0:.1f}% "
            f"({cache.hits} hits / {cache.misses} misses)",
        ),
        ("co-searches", f"{stats.graph_cosearches}"),
        (
            "adaptations",
            f"{stats.adaptations} (cold validations {stats.cold_validations}, "
            f"regressions {stats.regressions})",
        ),
        ("adaptation gain", _objective_quantity(service, stats.improvement_s)),
        (
            "drift",
            f"{stats.drift_flags} flags, {stats.drift_escalations} escalations",
        ),
        ("simulated serial", f"{serialized * 1e3:.3f} ms"),
        (
            "throughput (wall)",
            f"{stats.graph_requests / wall_s:.1f} req/s" if wall_s > 0 else "n/a",
        ),
        ("served energy", f"{stats.energy_j:.3f} J"),
    ]
    if service.engine is not None:
        es = service.engine.stats
        rows.append(
            (
                "sweep engine",
                f"{es.compositions} compositions, "
                f"{es.tape_hit_rate * 100.0:.1f}% tape hits",
            )
        )
    print(format_table(["metric", "value"], rows, title="Graph serving summary"))
    if loop_stats is not None:
        _print_latency_summary(loop_stats)
    _finish_telemetry(args, telemetry, backend=service, stats=loop_stats)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Problem-size-sensitive task partitioning (PPoPP'13 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite").set_defaults(fn=_cmd_list)
    sub.add_parser("machines", help="describe the simulated platforms").set_defaults(
        fn=_cmd_machines
    )

    p_kernel = sub.add_parser("kernel", help="print emitted OpenCL C for a program")
    p_kernel.add_argument("program")
    p_kernel.set_defaults(fn=_cmd_kernel)

    p_run = sub.add_parser("run", help="time one launch under several strategies")
    p_run.add_argument("program")
    p_run.add_argument(
        "--machine", default="mc2", choices=[m.name for m in ALL_MACHINES]
    )
    p_run.add_argument("--size", type=int, default=None)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--partitioning", default=None, help='extra candidate, e.g. "40/30/30"'
    )
    p_run.set_defaults(fn=_cmd_run)

    p_train = sub.add_parser("train", help="run the training campaign on a machine")
    p_train.add_argument("machine", choices=[m.name for m in ALL_MACHINES])
    p_train.add_argument("--output", default=None)
    p_train.add_argument("--repetitions", type=int, default=1)
    p_train.add_argument("--noise", type=float, default=0.0)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--max-sizes", type=int, default=None)
    p_train.add_argument("--verbose", action="store_true")
    p_train.set_defaults(fn=_cmd_train)

    p_report = sub.add_parser("report", help="full experiment report from databases")
    p_report.add_argument("databases", nargs="+")
    p_report.add_argument("--model", default="mlp")
    p_report.set_defaults(fn=_cmd_report)

    p_esweep = sub.add_parser(
        "energy-sweep",
        help="makespan-vs-energy sweep: per-objective winners + Pareto front",
    )
    p_esweep.add_argument("program")
    p_esweep.add_argument(
        "--machine",
        default=None,
        choices=[m.name for m in ALL_MACHINES],
        help="one platform (default: all)",
    )
    p_esweep.add_argument("--size", type=int, default=None)
    p_esweep.add_argument(
        "--max-sizes", type=int, default=None, help="cap the size ladder"
    )
    p_esweep.add_argument("--step", type=int, default=10)
    p_esweep.add_argument("--seed", type=int, default=0)
    p_esweep.set_defaults(fn=_cmd_energy_sweep)

    p_gsweep = sub.add_parser(
        "graph-sweep",
        help="co-search scheduling x partitioning for one task-graph chain",
    )
    p_gsweep.add_argument(
        "--stages",
        default="stencil2d@256,reduction@65536,mat_mul@160",
        metavar="P@S,P@S,...",
        help="pipeline stages as '<program>@<size>' (comma-separated)",
    )
    p_gsweep.add_argument(
        "--machine", default="mc2", choices=[m.name for m in ALL_MACHINES]
    )
    p_gsweep.add_argument(
        "--scale-bytes",
        type=float,
        default=32.0,
        help="multiplier on the producer-output handoff bytes per edge",
    )
    p_gsweep.add_argument("--step", type=int, default=10)
    p_gsweep.add_argument("--noise", type=float, default=0.0)
    p_gsweep.add_argument("--seed", type=int, default=0)
    p_gsweep.set_defaults(fn=_cmd_graph_sweep)

    serving = _serving_parent()
    workload = _workload_parent()
    event = _event_parent()
    objective = _objective_parent()
    trace = _trace_parent()
    service = _service_parent()

    p_gserve = sub.add_parser(
        "graph-serve",
        help="serve a Zipf stream of task graphs (pipeline workload family)",
        parents=[trace, serving, event],
    )
    p_gserve.set_defaults(fn=_cmd_graph_serve, requests=50)

    p_replay = sub.add_parser(
        "replay",
        help="serve a synthetic request trace (online adaptation)",
        parents=[trace, serving, workload, event],
    )
    p_replay.add_argument(
        "--no-batch",
        action="store_true",
        help="serve sequentially instead of batching model inference",
    )
    p_replay.set_defaults(fn=_cmd_replay)

    p_serve = sub.add_parser(
        "serve",
        help="serve '<program> <size>' requests from a file or stdin",
        parents=[serving, event],
    )
    p_serve.add_argument(
        "--trace", default=None, help="request file (default: read stdin)"
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_texport = sub.add_parser(
        "trace-export",
        help="serve a synthetic trace with tracing on and export the "
        "span/event JSONL (docs/OBSERVABILITY.md)",
        parents=[trace, serving, workload, event],
    )
    p_texport.set_defaults(fn=_cmd_trace_export)

    p_mreport = sub.add_parser(
        "metrics-report",
        help="serve a synthetic trace and print the unified metrics registry",
        parents=[trace, serving, workload, event],
    )
    p_mreport.add_argument(
        "--json", action="store_true", help="raw JSON instead of a table"
    )
    p_mreport.set_defaults(fn=_cmd_metrics_report)

    fleet = _fleet_parent()

    p_ftrain = sub.add_parser(
        "fleet-train",
        help="train + persist one model per fleet machine",
        parents=[fleet],
    )
    p_ftrain.add_argument("--registry", required=True, help="model registry directory")
    p_ftrain.set_defaults(fn=_cmd_fleet_train)

    from .fleet import ROUTING_POLICIES

    p_fserve = sub.add_parser(
        "fleet-serve",
        help="route one request trace across a fleet of machines",
        parents=[fleet, trace, service, workload, event, objective],
    )
    p_fserve.add_argument(
        "--policy", default="least-loaded", choices=ROUTING_POLICIES
    )
    p_fserve.add_argument(
        "--registry", default=None, help="load machines registered here"
    )
    p_fserve.add_argument(
        "--warm-start",
        action="store_true",
        help="seed unregistered machines from the most similar registered one",
    )
    p_fserve.set_defaults(fn=_cmd_fleet_serve)

    cluster = _cluster_parent()

    p_ctrain = sub.add_parser(
        "cluster-train",
        help="train + persist one model per machine across every pool",
        parents=[cluster],
    )
    p_ctrain.add_argument("--registry", required=True, help="model registry directory")
    p_ctrain.set_defaults(fn=_cmd_cluster_train)

    p_cserve = sub.add_parser(
        "cluster-serve",
        help="route a multi-tenant trace across machine pools behind a "
        "priced interconnect",
        parents=[
            cluster,
            trace,
            service,
            _network_parent(),
            _tenancy_parent(),
            workload,
            event,
            objective,
        ],
    )
    p_cserve.add_argument(
        "--policy", default="least-loaded", choices=ROUTING_POLICIES
    )
    p_cserve.set_defaults(fn=_cmd_cluster_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
