"""The memoized sweep/measurement engine.

Training sweeps (66 partition-space points per launch on the 10% grid)
and serving-time neighbourhood re-searches repeatedly simulate the same
per-device chunks: a device's timeline depends only on (kernel,
instance, device, chunk, iterations), and across a sweep the grid
chunks repeat heavily.  :class:`SweepEngine` caches each chunk's
deterministic command *tape* (noise-free per-command durations) and
composes makespans from the cached tapes, turning a sweep from
O(points × devices) full simulations into O(unique chunks per device)
plannings plus cheap compositions.

Noise fidelity: tapes are cached noise-free; when the runner carries a
measurement-noise model the engine perturbs each cached duration at
composition time through the *runner's own* per-device noise streams,
in the exact order the unmemoized scheduler would have enqueued the
commands — so memoized measurements are bit-identical to unmemoized
ones at ``noise_sigma=0`` and statistically indistinguishable (same
stream, same labels, same order) under noise.

Energy rides on the same tapes: each cached command carries its
average dynamic watts next to its duration, and compositions replay
the scheduler's timeline arithmetic so composed joules (idle power
over the makespan included) stay bit-identical to the unmemoized
path too — see :mod:`repro.energy`.
"""

from .sweep import EngineStats, SweepEngine

__all__ = ["EngineStats", "SweepEngine"]
