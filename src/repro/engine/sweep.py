"""Memoizing measurement engine over one :class:`~repro.runtime.measurement.Runner`.

See the package docstring for the memoization model.  The engine is the
timing-only fast path: functional execution (needed once per record for
semantic checks) stays on the unmemoized :meth:`Runner.run`.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..compiler.splitter import DeviceChunk, DistributionKind, plan_chunks
from ..energy.meter import EnergyMeter
from ..inspire.ast import ParamIntent
from ..ocl.events import CommandKind
from ..partitioning import Partitioning
from ..runtime.measurement import MeasuredRun, Runner
from ..runtime.plan import command_duration_s, plan_device_commands
from ..runtime.scheduler import ExecutionRequest, ExecutionResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graphs.compose import GraphRun
    from ..graphs.graph import TaskGraph
    from ..graphs.planner import GraphPlan

__all__ = ["EngineStats", "SweepEngine"]


@dataclass
class EngineStats:
    """Cache-effectiveness counters of one engine lifetime."""

    compositions: int = 0
    tape_hits: int = 0
    tape_misses: int = 0
    plan_hits: int = 0
    plan_misses: int = 0

    @property
    def tape_hit_rate(self) -> float:
        total = self.tape_hits + self.tape_misses
        return self.tape_hits / total if total else 0.0


def _replay_timeline(
    commands: "Sequence[tuple[str, float, float]]",
) -> tuple[float, float]:
    """(busy seconds, dynamic joules) of one command sequence.

    Joules are priced as watts × event duration, where the event
    duration is read back off the advancing clock exactly as the
    scheduler reads ``end_s - start_s`` from its profiling events —
    the float round-trip included, so composed energies stay
    bit-identical to the unmemoized path.
    """
    clock = 0.0
    joules = 0.0
    for _label, duration, watts in commands:
        start = clock
        clock = start + duration
        joules += watts * (clock - start)
    return clock, joules


@dataclass(frozen=True)
class _Tape:
    """Noise-free timeline of one device chunk.

    Each command carries its average dynamic watts next to its
    duration, so compositions price energy from the same tape: joules
    are watts × (possibly noise-perturbed) duration, command by
    command, exactly as the unmemoized scheduler accumulates them.
    """

    commands: tuple[tuple[str, float, float], ...]  # (label, duration_s, watts)
    total_s: float
    dynamic_j: float


@dataclass(frozen=True)
class _RequestMeta:
    """Per-request constants the signature/tape computations reuse."""

    buffer_sizes: dict[str, int]
    itemsizes: dict[str, int]
    in_names: tuple[str, ...]  # IN/INOUT buffer params, declaration order
    #: OUT/INOUT buffer params as (name, full_range, elements_per_item)
    out_specs: tuple[tuple[str, bool, float], ...]
    scalar_args: dict[str, float]


class SweepEngine:
    """Composes measurements from memoized per-device chunk timelines.

    One engine serves one :class:`Runner` (one simulated machine) and
    records every composed measurement into the runner's
    :class:`~repro.runtime.measurement.SessionStats`, so serving
    telemetry cannot tell memoized and unmemoized executions apart.

    Cache keys pin the :class:`ExecutionRequest` objects they reference
    (``id()`` stability); callers measuring many distinct requests
    should reuse request objects per (program, size) — as the trainer
    and the serving layer do — and may :meth:`reset` between campaigns.
    """

    def __init__(self, runner: Runner):
        self.runner = runner
        self.stats = EngineStats()
        self._meter = EnergyMeter(runner.devices)
        # With no noise model every composition is deterministic, so the
        # finished ExecutionResult itself can be cached per partitioning.
        self._deterministic = all(d.noise is None for d in runner.devices)
        self._results: dict[tuple, ExecutionResult] = {}
        self._tapes: dict[tuple, _Tape] = {}
        self._chunks: dict[tuple, tuple[tuple[DeviceChunk, ...], bool]] = {}
        self._meta: dict[int, _RequestMeta] = {}
        self._kernel_s: dict[tuple[int, int, int], float] = {}
        self._pinned: dict[int, ExecutionRequest] = {}
        self._drift_generation = runner.drift_generation
        # Graph-node requests, memoized by (program, size, seed) so the
        # same pipeline stage composes from the same cached tapes across
        # graphs and calls (tape keys pin request identity).
        self._graph_requests: dict[tuple[str, int, int], ExecutionRequest] = {}

    def reset(self) -> None:
        """Drop all cached tapes and plans (between campaigns)."""
        self._results.clear()
        self._tapes.clear()
        self._chunks.clear()
        self._meta.clear()
        self._kernel_s.clear()
        self._pinned.clear()
        self._graph_requests.clear()

    # -- memoized planning -------------------------------------------------

    def _request_id(self, request: ExecutionRequest) -> int:
        rid = id(request)
        if rid not in self._pinned:
            self._pinned[rid] = request
            kernel = request.compiled.kernel
            distribution = request.compiled.distribution
            out_specs = []
            for p in kernel.buffer_params:
                if p.intent not in (ParamIntent.OUT, ParamIntent.INOUT):
                    continue
                dist = distribution.of(p.name)
                full = dist.kind in (DistributionKind.REDUCED, DistributionKind.FULL)
                out_specs.append((p.name, full, dist.elements_per_item))
            self._meta[rid] = _RequestMeta(
                buffer_sizes={n: int(a.size) for n, a in request.arrays.items()},
                itemsizes={n: int(a.itemsize) for n, a in request.arrays.items()},
                in_names=tuple(
                    p.name
                    for p in kernel.buffer_params
                    if p.intent in (ParamIntent.IN, ParamIntent.INOUT)
                ),
                out_specs=tuple(out_specs),
                scalar_args={k: float(v) for k, v in request.scalars.items()},
            )
        return rid

    def _signature(self, meta: _RequestMeta, chunk: DeviceChunk, multi: bool) -> tuple:
        """What a chunk's durations actually depend on: sizes, not offsets.

        Two chunks on the same device produce identical tapes whenever
        their kernel item counts and per-buffer transfer counts match —
        the offsets only matter through halo/epilogue clipping, which
        the counts already capture.  Keying tapes by this signature
        instead of (offset, count) roughly halves the unique-tape count
        on a 3-device grid sweep (interior chunks of equal size share).
        """
        ranges = chunk.buffer_ranges
        d2h = []
        for name, full, epi in meta.out_specs:
            if full:
                d2h.append(meta.buffer_sizes[name])
            else:
                off = int(chunk.item_offset * epi)
                stop = min(
                    meta.buffer_sizes[name],
                    int((chunk.item_offset + chunk.item_count) * epi),
                )
                d2h.append(max(0, stop - off))
        return (
            chunk.item_count,
            multi,
            tuple(ranges[name][1] for name in meta.in_names),
            tuple(d2h),
        )

    def _kernel_time(self, rid: int, device_index: int, items: int) -> float:
        """Memoized noise-free kernel duration for one (device, items)."""
        key = (rid, device_index, items)
        hit = self._kernel_s.get(key)
        if hit is None:
            device = self.runner.devices[device_index]
            hit = device.cost_model.kernel_time(
                self._pinned[rid].compiled.analysis, items, self._meta[rid].scalar_args
            ).total_s
            self._kernel_s[key] = hit
        return hit

    def _plan(
        self, request: ExecutionRequest, partitioning: Partitioning
    ) -> tuple[tuple[DeviceChunk, ...], bool]:
        rid = self._request_id(request)
        key = (rid, partitioning.shares)
        hit = self._chunks.get(key)
        if hit is not None:
            self.stats.plan_hits += 1
            return hit
        self.stats.plan_misses += 1
        chunks = plan_chunks(
            request.total_items,
            partitioning,
            request.compiled.distribution,
            self._meta[rid].buffer_sizes,
            request.granularity,
        )
        multi = sum(1 for c in chunks if not c.is_empty) > 1
        self._chunks[key] = (chunks, multi)
        return chunks, multi

    def _tape(self, rid: int, chunk: DeviceChunk, multi: bool) -> _Tape:
        meta = self._meta[rid]
        key = (rid, chunk.device_index, self._signature(meta, chunk, multi))
        hit = self._tapes.get(key)
        if hit is not None:
            self.stats.tape_hits += 1
            return hit
        self.stats.tape_misses += 1
        device = self.runner.devices[chunk.device_index]
        request = self._pinned[rid]
        analysis = request.compiled.analysis
        commands: list[tuple[str, float, float]] = []
        for cmd in plan_device_commands(
            request, chunk, multi, meta.buffer_sizes, meta.itemsizes
        ):
            if cmd.kind is CommandKind.NDRANGE_KERNEL:
                # Launches repeat per iteration and across partitionings
                # sharing an item count — worth a dedicated memo table.
                duration = self._kernel_time(rid, chunk.device_index, cmd.items)
            else:
                duration = command_duration_s(
                    device, cmd, analysis, meta.scalar_args
                )
            watts = self._meter.command_power_w(
                device, cmd, analysis, meta.scalar_args
            )
            commands.append((cmd.label, duration, watts))
        tape = _Tape(tuple(commands), *_replay_timeline(commands))
        self._tapes[key] = tape
        return tape

    # -- composition -------------------------------------------------------

    def _compose(
        self, request: ExecutionRequest, partitioning: Partitioning
    ) -> ExecutionResult:
        """One simulated execution, composed from cached chunk tapes."""
        if partitioning.num_devices != len(self.runner.devices):
            raise ValueError(
                f"partitioning has {partitioning.num_devices} shares but the "
                f"runner has {len(self.runner.devices)} devices"
            )
        self.stats.compositions += 1
        # Platform drift rescales device cost models; every cached
        # duration (tape, kernel time, finished result) is priced on the
        # pre-drift hardware and must be dropped.  Plans and request
        # metadata are duration-free and survive.
        generation = self.runner.drift_generation
        if generation != self._drift_generation:
            self._results.clear()
            self._tapes.clear()
            self._kernel_s.clear()
            self._drift_generation = generation
        rid = self._request_id(request)
        result_key = (rid, partitioning.shares)
        if self._deterministic:
            cached = self._results.get(result_key)
            if cached is not None:
                return cached
        chunks, multi = self._plan(request, partitioning)
        busy = [0.0] * len(self.runner.devices)
        dynamic_j = [0.0] * len(self.runner.devices)
        for chunk in chunks:
            if chunk.is_empty:
                continue
            tape = self._tape(rid, chunk, multi)
            noise = self.runner.devices[chunk.device_index].noise
            if noise is None:
                busy[chunk.device_index] = tape.total_s
                dynamic_j[chunk.device_index] = tape.dynamic_j
            else:
                # Sample the noise stream command by command, in enqueue
                # order — the same draws the unmemoized path would make.
                # Jitter stretches each command's draw with its duration.
                total, joules = _replay_timeline(
                    [
                        (label, noise(duration, label), watts)
                        for label, duration, watts in tape.commands
                    ]
                )
                busy[chunk.device_index] = total
                dynamic_j[chunk.device_index] = joules
        makespan = max(busy)
        energy = self._meter.finalize(dynamic_j, makespan)
        result = ExecutionResult(
            partitioning=partitioning,
            makespan_s=makespan,
            device_busy_s=tuple(busy),
            device_energy_j=energy.device_energy_j,
            energy_j=energy.total_j,
            idle_j=energy.idle_j,
        )
        if self._deterministic:
            self._results[result_key] = result
        return result

    # -- the Runner-shaped measurement API ---------------------------------

    def measure(
        self,
        request: ExecutionRequest,
        partitioning: Partitioning,
        repetitions: int = 1,
    ) -> MeasuredRun:
        """Median-of-repetitions timing, composed from cached tapes."""
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        samples: list[float] = []
        energy_samples: list[float] = []
        result: ExecutionResult | None = None
        for _ in range(repetitions):
            r = self._compose(request, partitioning)
            if result is None:
                result = r
            samples.append(r.makespan_s)
            energy_samples.append(r.energy_j)
            self.runner.stats.record(r)
        assert result is not None
        return MeasuredRun(
            partitioning=partitioning,
            median_s=statistics.median(samples),
            samples_s=tuple(samples),
            result=result,
            energy_j=statistics.median(energy_samples),
            energy_samples_j=tuple(energy_samples),
        )

    def time_of(
        self,
        request: ExecutionRequest,
        partitioning: Partitioning,
        repetitions: int = 1,
    ) -> float:
        """Timing-only convenience, mirroring :meth:`Runner.time_of`."""
        return self.measure(request, partitioning, repetitions=repetitions).median_s

    def sweep(
        self,
        request: ExecutionRequest,
        space: Sequence[Partitioning] | Iterable[Partitioning],
        repetitions: int = 1,
    ) -> dict[str, float]:
        """Measure every partitioning; returns label → median seconds."""
        return {
            p.label: self.time_of(request, p, repetitions=repetitions) for p in space
        }

    def graph_requests(
        self, graph: "TaskGraph", instance_seed: int = 0
    ) -> dict[str, ExecutionRequest]:
        """Per-task execution requests, memoized for tape-cache identity.

        The planner composes many trial plans over the same graph; by
        resolving node requests through the engine's memo, every trial
        hits the same cached tapes :meth:`measure_graph` uses.
        """
        from ..graphs.compose import node_requests

        return node_requests(graph, seed=instance_seed, shared=self._graph_requests)

    def measure_graph(
        self,
        graph: "TaskGraph",
        plan: "GraphPlan | Mapping[str, Partitioning]",
        repetitions: int = 1,
        instance_seed: int = 0,
    ) -> "GraphRun":
        """Compose one task-graph execution from memoized per-task tapes.

        Per-task measurements route through :meth:`measure` — the same
        cached tapes, the same noise sampling at composition time — and
        the inter-task transfers are inserted at composition time by
        :func:`~repro.graphs.compose.compose_graph`, so a graph
        measurement is bit-identical to the unmemoized
        :meth:`~repro.runtime.measurement.Runner.run_graph` whenever
        the per-task paths agree (the engine's core guarantee).  A
        single-node graph reproduces :meth:`measure` exactly, time and
        energy.
        """
        from ..graphs.compose import compose_graph, node_requests
        from ..graphs.planner import GraphPlan

        if isinstance(plan, GraphPlan):
            plan = plan.as_dict()
        requests = node_requests(
            graph, seed=instance_seed, shared=self._graph_requests
        )
        return compose_graph(
            graph,
            plan,
            requests,
            self.measure,
            self.runner.devices,
            self._meter.platform_idle_w(),
            repetitions=repetitions,
        )

    def sweep_with_energy(
        self,
        request: ExecutionRequest,
        space: Sequence[Partitioning] | Iterable[Partitioning],
        repetitions: int = 1,
    ) -> tuple[dict[str, float], dict[str, float]]:
        """Measure every partitioning; returns (label → seconds, label → joules).

        One composed measurement yields both numbers, so an energy-aware
        sweep costs exactly what a timing sweep does.
        """
        timings: dict[str, float] = {}
        energies: dict[str, float] = {}
        for p in space:
            run = self.measure(request, p, repetitions=repetitions)
            timings[p.label] = run.median_s
            energies[p.label] = run.energy_j
        return timings, energies
