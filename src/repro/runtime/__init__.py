"""The Insieme-like runtime system: scheduling, strategies, measurement."""

from .measurement import MeasuredRun, Runner, SessionStats
from .plan import PlannedCommand, command_duration_s, plan_device_commands
from .scheduler import (
    ExecutionRequest,
    ExecutionResult,
    ExecutorFn,
    execute_partitioned,
)
from .strategies import (
    StrategyFn,
    all_gpus,
    cpu_only,
    even_split,
    gpu_only,
    oracle_search,
)

__all__ = [
    "MeasuredRun",
    "Runner",
    "SessionStats",
    "PlannedCommand",
    "plan_device_commands",
    "command_duration_s",
    "ExecutionRequest",
    "ExecutionResult",
    "ExecutorFn",
    "execute_partitioned",
    "StrategyFn",
    "cpu_only",
    "gpu_only",
    "all_gpus",
    "even_split",
    "oracle_search",
]
