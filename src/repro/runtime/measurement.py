"""Measurement harness: repetitions, medians, noise.

The paper's training phase executes every (program, size, partitioning)
combination and stores the measured time.  Real measurements jitter, so
the harness supports repetitions with a median reduction — with the
deterministic noise model of :mod:`repro.ocl.platform` this reproduces
the statistics of a real campaign while staying bit-reproducible.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ..ocl.context import Context
from ..ocl.platform import Platform, make_lognormal_noise
from ..partitioning import Partitioning
from .scheduler import ExecutionRequest, ExecutionResult, execute_partitioned

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graphs.compose import GraphRun
    from ..graphs.graph import TaskGraph
    from ..graphs.planner import GraphPlan

__all__ = ["MeasuredRun", "Runner", "SessionStats"]


@dataclass(frozen=True)
class MeasuredRun:
    """Median-of-repetitions timing (and energy) for one partitioning."""

    partitioning: Partitioning
    median_s: float
    samples_s: tuple[float, ...]
    result: ExecutionResult
    energy_j: float = 0.0
    energy_samples_j: tuple[float, ...] = ()

    @property
    def repetitions(self) -> int:
        return len(self.samples_s)

    @property
    def average_power_w(self) -> float:
        """Median platform draw over the launch (0 for a zero span)."""
        return self.energy_j / self.median_s if self.median_s > 0 else 0.0


@dataclass
class SessionStats:
    """Accumulated telemetry of one long-lived Runner session.

    A Runner serving many requests (the serving layer's execution
    backend) records every partitioned execution here: execution count,
    total simulated seconds and per-device busy seconds.  The serving
    CLI reports adaptation-probe overhead from it (executions beyond
    the served requests); :meth:`utilization` gives the per-device
    busy share of the *serialized* timeline, complementing the batch
    scheduler's multiplexed view.
    """

    executions: int = 0
    simulated_s: float = 0.0
    energy_j: float = 0.0
    device_busy_s: list[float] = field(default_factory=list)
    device_idle_s: list[float] = field(default_factory=list)
    #: Inter-request idle accumulated by an event loop, on the *loop's*
    #: simulated clock — gaps where the whole machine sat waiting for
    #: the next arrival, distinct from the per-launch device_idle_s
    #: imbalance inside a partitioned execution.
    loop_idle_s: float = 0.0
    loop_idle_j: float = 0.0

    def record_idle(self, span_s: float, idle_w: float) -> None:
        """Price one event-loop idle span at the platform's idle draw.

        This is how energy accounting follows simulated time: the
        execution records capture busy joules, and the serving loop
        calls this for every gap between a completion and the next
        service start, so total session energy covers the whole
        simulated wall clock rather than just launch makespans.
        """
        if span_s < 0:
            raise ValueError("idle span must be non-negative")
        if idle_w < 0:
            raise ValueError("idle power must be non-negative")
        self.loop_idle_s += span_s
        self.loop_idle_j += span_s * idle_w
        self.energy_j += span_s * idle_w

    def record(self, result: ExecutionResult) -> None:
        if not self.device_busy_s:
            self.device_busy_s = [0.0] * len(result.device_busy_s)
            self.device_idle_s = [0.0] * len(result.device_busy_s)
        self.executions += 1
        self.simulated_s += result.makespan_s
        self.energy_j += result.energy_j
        for i, (busy, idle) in enumerate(result.device_spans):
            self.device_busy_s[i] += busy
            self.device_idle_s[i] += idle

    def utilization(self) -> tuple[float, ...]:
        """Per-device busy fraction of the serialized simulated time."""
        if self.simulated_s <= 0.0:
            return tuple(0.0 for _ in self.device_busy_s)
        return tuple(t / self.simulated_s for t in self.device_busy_s)

    def idle_fractions(self) -> tuple[float, ...]:
        """Per-device idle fraction of the serialized simulated time.

        Complements :meth:`utilization` from the accumulated idle
        spans; busy + idle sums to the serialized makespan per device,
        so the two fractions sum to 1 wherever anything ran.
        """
        if self.simulated_s <= 0.0:
            return tuple(0.0 for _ in self.device_idle_s)
        return tuple(t / self.simulated_s for t in self.device_idle_s)

    def average_power_w(self) -> float:
        """Platform draw averaged over the serialized simulated time."""
        return self.energy_j / self.simulated_s if self.simulated_s > 0 else 0.0


class Runner:
    """Executes kernels on one simulated machine.

    One Runner corresponds to one physical testbed: it owns the device
    instances (and their noise streams) for a whole training or
    evaluation campaign.
    """

    def __init__(
        self,
        platform: Platform,
        noise_sigma: float = 0.0,
        seed: int = 0,
    ):
        noise = make_lognormal_noise(noise_sigma, seed) if noise_sigma > 0 else None
        self.platform = platform
        self.devices = platform.create_devices(noise)
        self.context = Context(self.devices)
        self.stats = SessionStats()

    def reset_stats(self) -> SessionStats:
        """Start a fresh accounting session; returns the closed stats."""
        closed = self.stats
        self.stats = SessionStats()
        return closed

    def apply_drift(self, scale: float, device_index: int | None = None) -> None:
        """Rescale device throughput mid-session (platform drift).

        ``device_index=None`` drifts every device (machine-wide
        contention); otherwise only the named device drifts, which is
        what shifts the *optimal* partitioning rather than just the
        absolute timings.  Future measurements price against the
        drifted cost models; nothing already measured is rewritten.
        """
        if device_index is None:
            targets = self.devices
        else:
            # Explicit range check: a negative index must not silently
            # wrap around to the wrong device, and an out-of-range one
            # must fail as a validation error, not a bare IndexError.
            if not 0 <= device_index < len(self.devices):
                raise ValueError(
                    f"device_index {device_index} out of range for "
                    f"{self.platform.name} ({len(self.devices)} devices)"
                )
            targets = (self.devices[device_index],)
        for device in targets:
            device.apply_drift(scale)

    @property
    def drift_generation(self) -> tuple[int, ...]:
        """Per-device drift counters (cache-staleness fingerprint)."""
        return tuple(d.drift_generation for d in self.devices)

    def run(
        self,
        request: ExecutionRequest,
        partitioning: Partitioning,
        functional: bool = True,
        repetitions: int = 1,
    ) -> MeasuredRun:
        """Measure one partitioning; functional execution only on rep 0."""
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        samples: list[float] = []
        energy_samples: list[float] = []
        result: ExecutionResult | None = None
        for rep in range(repetitions):
            r = execute_partitioned(
                self.context,
                request,
                partitioning,
                functional=functional and rep == 0,
            )
            if rep == 0:
                result = r
            samples.append(r.makespan_s)
            energy_samples.append(r.energy_j)
            self.stats.record(r)
        assert result is not None
        return MeasuredRun(
            partitioning=partitioning,
            median_s=statistics.median(samples),
            samples_s=tuple(samples),
            result=result,
            energy_j=statistics.median(energy_samples),
            energy_samples_j=tuple(energy_samples),
        )

    def time_of(
        self,
        request: ExecutionRequest,
        partitioning: Partitioning,
        repetitions: int = 1,
    ) -> float:
        """Timing-only convenience (no functional execution)."""
        return self.run(
            request, partitioning, functional=False, repetitions=repetitions
        ).median_s

    def run_graph(
        self,
        graph: "TaskGraph",
        plan: "GraphPlan | Mapping[str, Partitioning]",
        repetitions: int = 1,
        instance_seed: int = 0,
    ) -> "GraphRun":
        """Execute one task graph unmemoized (the reference graph path).

        Each task runs through :meth:`run` (timing-only) in topological
        order — the same order, and therefore the same per-device noise
        draws, as the memoized
        :meth:`~repro.engine.SweepEngine.measure_graph` — and the
        composed timeline inserts the inter-task transfers identically,
        so the two paths agree bit for bit.  A single-node graph
        reproduces the single-kernel :meth:`run` measurement exactly,
        time and energy.
        """
        from ..energy.meter import EnergyMeter
        from ..graphs.compose import compose_graph, node_requests
        from ..graphs.planner import GraphPlan

        if isinstance(plan, GraphPlan):
            plan = plan.as_dict()
        requests = node_requests(graph, seed=instance_seed)

        def measure(
            request: ExecutionRequest,
            partitioning: Partitioning,
            repetitions: int = 1,
        ) -> MeasuredRun:
            return self.run(
                request, partitioning, functional=False, repetitions=repetitions
            )

        return compose_graph(
            graph,
            plan,
            requests,
            measure,
            self.devices,
            EnergyMeter(self.devices).platform_idle_w(),
            repetitions=repetitions,
        )
