"""The multi-device runtime scheduler.

Given a compiled kernel, host buffers and a :class:`Partitioning`, the
scheduler plays the role of the paper's Insieme runtime system: it
computes each device's chunk, enqueues the host→device transfers the
chunk needs, launches the kernel sub-range, reads results back and
merges reduction outputs.  The simulated wall-clock of the whole launch
is the maximum over the per-device timelines — transfers included, per
the paper's measurement methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..compiler.frontend import CompiledKernel
from ..compiler.splitter import DistributionKind, plan_chunks
from ..energy.meter import EnergyMeter
from ..inspire.ast import ParamIntent
from ..ocl.context import Context
from ..ocl.events import Event
from ..partitioning import Partitioning
from .plan import command_duration_s, plan_device_commands

__all__ = ["ExecutorFn", "ExecutionRequest", "ExecutionResult", "execute_partitioned"]

#: Functional payload: (arrays, scalars, item_offset, item_count) -> None.
#: Must write only outputs derivable from work items in
#: [item_offset, item_offset + item_count).
ExecutorFn = Callable[
    [dict[str, np.ndarray], Mapping[str, float | int], int, int], None
]


@dataclass(frozen=True)
class ExecutionRequest:
    """Everything needed to run one kernel on one problem instance.

    Attributes:
        compiled: the compiled kernel (analysis + distributions).
        arrays: host arrays keyed by buffer parameter name.
        scalars: scalar kernel arguments keyed by parameter name.
        total_items: ND-range extent along the partition axis.
        executor: vectorized functional implementation.
        granularity: work-group size; chunks align to it.
        iterations: kernel launches per transfer cycle (time steps,
            refinement rounds); functional execution runs once.
        refresh_buffers: FULL-distributed inputs re-broadcast to every
            active device on each iteration after the first, when two or
            more devices are active (multi-device synchronization cost).
    """

    compiled: CompiledKernel
    arrays: Mapping[str, np.ndarray]
    scalars: Mapping[str, float | int]
    total_items: int
    executor: ExecutorFn
    granularity: int = 16
    iterations: int = 1
    refresh_buffers: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.total_items <= 0:
            raise ValueError("total_items must be positive")
        if self.granularity < 1:
            raise ValueError("granularity must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        unknown = set(self.refresh_buffers) - {
            p.name for p in self.compiled.kernel.buffer_params
        }
        if unknown:
            raise ValueError(f"refresh_buffers name unknown buffers: {sorted(unknown)}")
        param_buffers = {p.name for p in self.compiled.kernel.buffer_params}
        missing = param_buffers - set(self.arrays)
        if missing:
            raise ValueError(f"missing arrays for buffers: {sorted(missing)}")
        param_scalars = {p.name for p in self.compiled.kernel.scalar_params}
        missing_s = param_scalars - set(self.scalars)
        if missing_s:
            raise ValueError(f"missing scalar args: {sorted(missing_s)}")


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one partitioned execution.

    Attributes:
        partitioning: the split that ran.
        makespan_s: wall-clock of the slowest device, transfers included.
        device_busy_s: per-device active seconds.
        device_energy_j: per-device joules (dynamic + that device's idle
            share over the makespan); empty when energy was not metered.
        energy_j: platform joules of the launch, idle power included.
        idle_j: the idle-power portion of :attr:`energy_j`.
        events: profiling events (scheduler path only).
    """

    partitioning: Partitioning
    makespan_s: float
    device_busy_s: tuple[float, ...]
    device_energy_j: tuple[float, ...] = ()
    energy_j: float = 0.0
    idle_j: float = 0.0
    events: tuple[Event, ...] = field(repr=False, default=())

    @property
    def active_device_count(self) -> int:
        return sum(1 for t in self.device_busy_s if t > 0)

    @property
    def device_idle_s(self) -> tuple[float, ...]:
        """Per-device idle seconds: makespan minus that device's busy time."""
        return tuple(self.makespan_s - t for t in self.device_busy_s)

    @property
    def device_spans(self) -> tuple[tuple[float, float], ...]:
        """Per-device (busy_s, idle_s) spans over the launch makespan.

        Energy accounting reads these (idle watts apply to the idle
        span), and utilization telemetry rolls them up standalone.
        """
        return tuple(
            (t, self.makespan_s - t) for t in self.device_busy_s
        )

    @property
    def average_power_w(self) -> float:
        """Platform draw averaged over the launch (0 for a zero span)."""
        return self.energy_j / self.makespan_s if self.makespan_s > 0 else 0.0


_REDUCE_IDENTITY = {
    "sum": lambda dtype: np.zeros(1, dtype=dtype)[0],
    "min": lambda dtype: np.array(
        np.inf if np.issubdtype(dtype, np.floating) else np.iinfo(dtype).max,
        dtype=dtype,
    )[()],
    "max": lambda dtype: np.array(
        -np.inf if np.issubdtype(dtype, np.floating) else np.iinfo(dtype).min,
        dtype=dtype,
    )[()],
}

_REDUCE_MERGE = {
    "sum": lambda host, private: np.add(host, private, out=host),
    "min": lambda host, private: np.minimum(host, private, out=host),
    "max": lambda host, private: np.maximum(host, private, out=host),
}


def execute_partitioned(
    context: Context,
    request: ExecutionRequest,
    partitioning: Partitioning,
    functional: bool = True,
) -> ExecutionResult:
    """Run a kernel split across the context's devices.

    With ``functional=False`` only the timing side runs — the training
    sweep measures dozens of partitionings per problem size and the
    functional result is partition-invariant, so recomputing it would
    only burn host time (the simulated clock is unaffected).
    """
    if partitioning.num_devices != context.num_devices:
        raise ValueError(
            f"partitioning has {partitioning.num_devices} shares but the "
            f"context has {context.num_devices} devices"
        )
    compiled = request.compiled
    kernel = compiled.kernel
    buffer_sizes = {name: int(a.size) for name, a in request.arrays.items()}
    chunks = plan_chunks(
        request.total_items,
        partitioning,
        compiled.distribution,
        buffer_sizes,
        request.granularity,
    )

    context.reset_timelines()
    scalar_args = {k: float(v) for k, v in request.scalars.items()}
    itemsizes = {
        name: int(np.asarray(a).itemsize) for name, a in request.arrays.items()
    }

    # Private copies for reduction-merged outputs, one per active device.
    reduced_names = [
        name
        for name in request.arrays
        if compiled.distribution.of(name).kind is DistributionKind.REDUCED
        and kernel.param(name).intent is not ParamIntent.IN
    ]
    private_copies: dict[int, dict[str, np.ndarray]] = {}

    active_devices = sum(1 for c in chunks if not c.is_empty)
    all_events: list[Event] = []
    meter = EnergyMeter(context.devices)
    dynamic_j = [0.0] * context.num_devices
    for chunk in chunks:
        if chunk.is_empty:
            continue
        device = context.devices[chunk.device_index]
        queue = context.queue_for(device)

        # Functional payload: compute this sub-range's outputs once,
        # independent of the (iterated) timing commands below.
        if functional:
            device_arrays = dict(request.arrays)
            if reduced_names:
                copies: dict[str, np.ndarray] = {}
                for name in reduced_names:
                    host = request.arrays[name]
                    op = compiled.distribution.of(name).reduce_op
                    identity = _REDUCE_IDENTITY[op](host.dtype)
                    copies[name] = np.full_like(host, identity)
                private_copies[chunk.device_index] = copies
                device_arrays.update(copies)
            request.executor(
                device_arrays, request.scalars, chunk.item_offset, chunk.item_count
            )

        # Timing: replay the planned command sequence on the queue.
        # Energy rides on the same events: watts are noise-free model
        # outputs, the (possibly noise-perturbed) event duration sets
        # how long the device draws them.
        for cmd in plan_device_commands(
            request, chunk, active_devices > 1, buffer_sizes, itemsizes
        ):
            duration = command_duration_s(device, cmd, compiled.analysis, scalar_args)
            watts = meter.command_power_w(device, cmd, compiled.analysis, scalar_args)
            event = queue.enqueue_timed(cmd.kind, cmd.label, duration)
            dynamic_j[chunk.device_index] += watts * event.duration_s
            all_events.append(event)

    # 4. Merge reduction outputs into the host arrays.
    if functional and private_copies:
        for name in reduced_names:
            op = compiled.distribution.of(name).reduce_op
            merge = _REDUCE_MERGE[op]
            host = request.arrays[name]
            for copies in private_copies.values():
                merge(host, copies[name])

    busy = tuple(d.clock_s for d in context.devices)
    makespan = context.makespan_s()
    energy = meter.finalize(dynamic_j, makespan)
    return ExecutionResult(
        partitioning=partitioning,
        makespan_s=makespan,
        device_busy_s=busy,
        device_energy_j=energy.device_energy_j,
        energy_j=energy.total_j,
        idle_j=energy.idle_j,
        events=tuple(all_events),
    )
