"""Per-device command planning: the timing skeleton of one execution.

``execute_partitioned`` used to interleave three concerns — planning
which commands a device runs, executing the functional payload, and
advancing the simulated timeline.  This module isolates the first one:
:func:`plan_device_commands` turns (request, chunk) into the exact
sequence of transfer/kernel commands the device would enqueue, and
:func:`command_duration_s` prices one command on one device.

The split buys two things:

* the scheduler replays a plan through the command queues (identical
  timelines, one source of truth for the command sequence), and
* the :mod:`repro.engine` sweep engine caches plans' noise-free
  durations per (request, device, chunk) and composes makespans without
  re-simulating — the training sweep's 66 points repeat the same
  per-device chunks heavily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..compiler.splitter import DeviceChunk, DistributionKind
from ..inspire.analysis import KernelAnalysis
from ..inspire.ast import ParamIntent
from ..ocl.costmodel import TransferDirection
from ..ocl.device import Device
from ..ocl.events import CommandKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .scheduler import ExecutionRequest

__all__ = ["PlannedCommand", "plan_device_commands", "command_duration_s"]


@dataclass(frozen=True)
class PlannedCommand:
    """One device command with its timing inputs (no duration yet).

    Attributes:
        kind: transfer direction or kernel launch.
        label: event label (doubles as the noise-stream key).
        nbytes: payload size for transfers.
        items: work items for kernel launches.
    """

    kind: CommandKind
    label: str
    nbytes: int = 0
    items: int = 0


def plan_device_commands(
    request: "ExecutionRequest",
    chunk: DeviceChunk,
    multi_device: bool,
    buffer_sizes: Mapping[str, int],
    itemsizes: Mapping[str, int],
) -> tuple[PlannedCommand, ...]:
    """The exact command sequence one device enqueues for its chunk.

    Mirrors the runtime scheduler's enqueue order: h2d transfers for the
    inputs the chunk reads, the kernel launch (iterated, with halo /
    refresh re-broadcasts between steps when more than one device is
    active), then d2h read-back of the outputs.  The plan is purely a
    function of (request, chunk, multi_device) — no timeline state.
    """
    compiled = request.compiled
    kernel = compiled.kernel
    commands: list[PlannedCommand] = []

    # 1. Host→device transfers for inputs this chunk reads.
    for p in kernel.buffer_params:
        if p.intent not in (ParamIntent.IN, ParamIntent.INOUT):
            continue
        off, cnt = chunk.buffer_ranges[p.name]
        if cnt > 0:
            commands.append(
                PlannedCommand(
                    CommandKind.WRITE_BUFFER,
                    f"h2d:{p.name}",
                    nbytes=cnt * itemsizes[p.name],
                )
            )

    # 2. Kernel launches (iterated).
    launch = PlannedCommand(
        CommandKind.NDRANGE_KERNEL, f"kernel:{kernel.name}", items=chunk.item_count
    )
    commands.append(launch)
    for _ in range(request.iterations - 1):
        # Multi-device iteration requires re-synchronizing shared state:
        # halo rows of HALO-distributed inputs, and any declared refresh
        # buffers, cross the bus every step.
        if multi_device:
            for p in kernel.buffer_params:
                if p.intent is ParamIntent.OUT:
                    continue
                dist = compiled.distribution.of(p.name)
                if dist.kind is DistributionKind.HALO:
                    halo_elems = min(2 * dist.halo, buffer_sizes[p.name])
                    if halo_elems > 0:
                        commands.append(
                            PlannedCommand(
                                CommandKind.WRITE_BUFFER,
                                f"h2d:{p.name}",
                                nbytes=halo_elems * itemsizes[p.name],
                            )
                        )
                elif p.name in request.refresh_buffers:
                    off, cnt = chunk.buffer_ranges[p.name]
                    if cnt > 0:
                        commands.append(
                            PlannedCommand(
                                CommandKind.WRITE_BUFFER,
                                f"h2d:{p.name}",
                                nbytes=cnt * itemsizes[p.name],
                            )
                        )
        commands.append(launch)

    # 3. Device→host read-back of outputs (halo-free written range).
    for p in kernel.buffer_params:
        if p.intent not in (ParamIntent.OUT, ParamIntent.INOUT):
            continue
        dist = compiled.distribution.of(p.name)
        if dist.kind is DistributionKind.REDUCED or dist.kind is DistributionKind.FULL:
            off, cnt = 0, buffer_sizes[p.name]
        else:
            epi = dist.elements_per_item
            off = int(chunk.item_offset * epi)
            stop = min(
                buffer_sizes[p.name],
                int((chunk.item_offset + chunk.item_count) * epi),
            )
            cnt = max(0, stop - off)
        if cnt > 0:
            commands.append(
                PlannedCommand(
                    CommandKind.READ_BUFFER,
                    f"d2h:{p.name}",
                    nbytes=cnt * itemsizes[p.name],
                )
            )
    return tuple(commands)


def command_duration_s(
    device: Device,
    command: PlannedCommand,
    analysis: KernelAnalysis,
    scalar_args: dict[str, float],
) -> float:
    """Noise-free duration of one planned command on one device."""
    model = device.cost_model
    if command.kind is CommandKind.WRITE_BUFFER:
        return model.transfer_time_s(command.nbytes, TransferDirection.HOST_TO_DEVICE)
    if command.kind is CommandKind.READ_BUFFER:
        return model.transfer_time_s(command.nbytes, TransferDirection.DEVICE_TO_HOST)
    if command.kind is CommandKind.NDRANGE_KERNEL:
        return model.kernel_time(analysis, command.items, scalar_args).total_s
    raise ValueError(f"unplannable command kind {command.kind}")
