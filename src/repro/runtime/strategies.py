"""Task-partitioning strategies.

The paper evaluates its learned predictor against the two *default
strategies* — run everything on the CPU, or everything on (one) GPU —
and internally against the *oracle*, the best partitioning found by
exhaustive search during training.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..ocl.platform import Platform
from ..partitioning import DEFAULT_STEP_PERCENT, Partitioning, partition_space

__all__ = [
    "cpu_only",
    "gpu_only",
    "even_split",
    "all_gpus",
    "oracle_search",
    "StrategyFn",
]

#: A strategy maps a platform to a concrete partitioning.
StrategyFn = Callable[[Platform], Partitioning]


def cpu_only(platform: Platform) -> Partitioning:
    """100% of the work on the (fused) CPU device."""
    cpus = platform.cpu_indices
    if not cpus:
        raise ValueError(f"platform {platform.name} has no CPU device")
    return Partitioning.single_device(cpus[0], platform.num_devices)


def gpu_only(platform: Platform) -> Partitioning:
    """100% of the work on a single GPU (the paper's GPU-only default).

    A single-device OpenCL program uses one GPU even when two are
    installed, so the baseline deliberately ignores the second GPU.
    """
    gpus = platform.gpu_indices
    if not gpus:
        raise ValueError(f"platform {platform.name} has no GPU device")
    return Partitioning.single_device(gpus[0], platform.num_devices)


def all_gpus(platform: Platform) -> Partitioning:
    """Work spread evenly over the GPUs only (no CPU share)."""
    gpus = platform.gpu_indices
    if not gpus:
        raise ValueError(f"platform {platform.name} has no GPU device")
    shares = [0] * platform.num_devices
    per = 100 // len(gpus) // DEFAULT_STEP_PERCENT * DEFAULT_STEP_PERCENT
    for g in gpus:
        shares[g] = per
    shares[gpus[0]] += 100 - sum(shares)
    return Partitioning(tuple(shares))


def even_split(platform: Platform) -> Partitioning:
    """The grid point closest to an even split over all devices."""
    return Partitioning.even(platform.num_devices)


def oracle_search(
    run: Callable[[Partitioning], float],
    space: Sequence[Partitioning] | None = None,
    num_devices: int = 3,
) -> tuple[Partitioning, float]:
    """Exhaustively evaluate the partition space; return (best, time).

    ``run`` measures one partitioning (seconds).  This is the training
    phase's label generator: the best task partitioning for a given
    (program, problem size, machine) triple.
    """
    if space is None:
        space = partition_space(num_devices)
    if not space:
        raise ValueError("empty partition space")
    best: Partitioning | None = None
    best_t = float("inf")
    for p in space:
        t = run(p)
        if t < best_t:
            best, best_t = p, t
    assert best is not None
    return best, best_t
