"""A simulated OpenCL device with its own timeline.

Each device advances a private clock as commands execute on it; the
multi-device runtime launches work on several devices "concurrently" by
enqueueing on each and taking the maximum of their completion times —
the same makespan a real host program observes after ``clFinish`` on
every queue.
"""

from __future__ import annotations

from typing import Callable

from .costmodel import DeviceCostModel, DeviceKind, DeviceSpec

__all__ = ["Device", "NoiseModel"]

#: Optional measurement-noise hook: (duration_s, label) -> perturbed duration.
NoiseModel = Callable[[float, str], float]


class Device:
    """One simulated OpenCL device.

    Attributes:
        index: device index within its platform (stable identifier).
        spec: the performance description.
        cost_model: analytic timing model derived from the spec.
    """

    def __init__(self, index: int, spec: DeviceSpec, noise: NoiseModel | None = None):
        self.index = index
        self.spec = spec
        self.cost_model = DeviceCostModel(spec)
        self.noise = noise
        self._clock_s = 0.0
        self.throughput_scale = 1.0
        self.drift_generation = 0
        self._power_model = None

    @property
    def power_model(self):
        """Lazily-built power model (see :mod:`repro.energy.power`).

        Rebuilt after drift: the drifted spec carries the linear clock
        component and ``throughput_scale`` feeds the DVFS voltage term.
        Imported lazily so :mod:`repro.ocl` stays importable without
        the energy package initialized (no import cycle).
        """
        if self._power_model is None:
            from ..energy.power import DevicePowerModel

            self._power_model = DevicePowerModel(
                self.spec, dvfs_scale=self.throughput_scale
            )
        return self._power_model

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def kind(self) -> DeviceKind:
        return self.spec.kind

    @property
    def is_cpu(self) -> bool:
        return self.spec.kind is DeviceKind.CPU

    @property
    def is_gpu(self) -> bool:
        return self.spec.kind is DeviceKind.GPU

    @property
    def clock_s(self) -> float:
        """Current position of this device's timeline."""
        return self._clock_s

    def reset_clock(self, to_s: float = 0.0) -> None:
        """Rewind the timeline (between independent measurements)."""
        self._clock_s = to_s

    def apply_drift(self, scale: float) -> None:
        """Rescale this device's effective throughput mid-campaign.

        Models runtime platform drift — thermal throttling, co-tenant
        contention, a frequency-bin change — by rescaling the spec's
        clock and memory bandwidth by ``scale`` (< 1 slows the device
        down, > 1 speeds it up) and rebuilding the cost model.  Scales
        compose multiplicatively across calls; :attr:`drift_generation`
        increments so duration caches layered above (the sweep engine)
        can detect that their cached timings went stale.
        """
        if not scale > 0:
            raise ValueError("drift scale must be positive")
        self.spec = self.spec.scaled(scale, scale)
        self.cost_model = DeviceCostModel(self.spec)
        self.throughput_scale *= scale
        self.drift_generation += 1
        # Watts drift with the clock (DVFS cube law); rebuild lazily.
        self._power_model = None

    def occupy(self, duration_s: float, label: str) -> tuple[float, float]:
        """Advance the timeline by ``duration_s``; returns (start, end).

        The optional noise model perturbs the duration, emulating real
        measurement jitter; it must never produce a negative time.
        """
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        if self.noise is not None:
            duration_s = self.noise(duration_s, label)
            if duration_s < 0:
                raise ValueError("noise model produced a negative duration")
        start = self._clock_s
        self._clock_s = start + duration_s
        return start, self._clock_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Device({self.index}, {self.spec.name!r})"
