"""Analytic device performance model.

This is the substitution for real OpenCL hardware (see DESIGN.md §2):
each simulated device owns a :class:`DeviceSpec` describing its
first-order performance characteristics, and :class:`DeviceCostModel`
turns (kernel analysis, launch size, scalar arguments) into a simulated
execution time.

The model is a roofline with overheads:

* **compute term** — per-item weighted operation count divided by the
  device's *effective* throughput.  Effectiveness folds in the paper's
  architecture observations: the ATI VLIW GPUs of platform mc1 need
  explicitly vectorized, divergence-free code to approach peak (Thoman
  et al., Euro-Par'11 — reference [7] of the paper), which none of the
  untuned benchmarks provide, so their scalar issue efficiency is low.
* **memory term** — per-buffer global traffic divided by bandwidth scaled
  by an access-pattern efficiency (coalesced / strided / indirect /
  broadcast-cached).
* **overheads** — kernel launch latency, and PCIe transfer time + latency
  for discrete devices.  The CPU device is host-resident (zero copy),
  which is exactly why small problem sizes favour the CPU and large ones
  the GPU — the size-sensitivity the paper's model learns.

Nothing in the learning pipeline reads these formulas: the model only
ever sees (features → measured time) pairs, as in the paper.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace

from ..inspire.analysis import AccessPattern, KernelAnalysis, OpCounts

__all__ = [
    "DeviceKind",
    "DeviceSpec",
    "TransferDirection",
    "DeviceCostModel",
    "KernelCostBreakdown",
]


class DeviceKind(enum.Enum):
    """OpenCL device class."""

    CPU = "cpu"
    GPU = "gpu"


class TransferDirection(enum.Enum):
    """Host↔device copy direction."""

    HOST_TO_DEVICE = "h2d"
    DEVICE_TO_HOST = "d2h"


@dataclass(frozen=True)
class DeviceSpec:
    """Static performance description of one OpenCL device.

    Attributes:
        name: marketing name, e.g. ``"GeForce GTX 480"``.
        kind: CPU or GPU.
        compute_units: cores (CPU) or compute units (GPU).
        clock_ghz: core clock.
        lanes_per_unit: SIMD lanes per unit (CPU vector width, GPU PEs).
        vliw_width: instruction-packing width (ATI VLIW5 → 5; scalar → 1).
        flops_per_lane_cycle: FLOPs per lane per cycle (2 with FMA/mad).
        mem_bandwidth_gbs: device (or host, for CPUs) memory bandwidth.
        pcie_bandwidth_gbs: effective host-link bandwidth; 0 means the
            device is host-resident and transfers are free.
        pcie_latency_us: per-transfer fixed latency.
        launch_overhead_us: per-kernel-launch driver/runtime latency.
        scalar_issue_efficiency: fraction of peak reachable by *scalar*,
            untuned code (VLIW architectures are poor here).
        branch_penalty: multiplier applied to divergent operations
            (SIMT wavefront serialization; ~1 on CPUs).
        branch_cost: flop-equivalent cost of *any* branch/loop back-edge.
            VLIW architectures break instruction clauses at control flow,
            so even uniform branches are expensive there (ATI's "high
            branch miss penalty" the paper cites); scalar GPUs pay a few
            cycles; CPUs predict them nearly for free.
        transcendental_cost: cost of one transcendental op in
            flop-equivalents (CPUs pay libm; GPUs have SFUs).
        atomic_cost: cost of one global atomic in flop-equivalents.
        access_efficiency: bandwidth derating per access pattern.
        memory_latency_us: fixed per-launch memory-system warm-up cost.
    """

    name: str
    kind: DeviceKind
    compute_units: int
    clock_ghz: float
    lanes_per_unit: int
    vliw_width: int = 1
    flops_per_lane_cycle: float = 2.0
    mem_bandwidth_gbs: float = 50.0
    pcie_bandwidth_gbs: float = 0.0
    pcie_latency_us: float = 0.0
    launch_overhead_us: float = 5.0
    scalar_issue_efficiency: float = 1.0
    branch_penalty: float = 1.0
    branch_cost: float = 1.0
    transcendental_cost: float = 4.0
    atomic_cost: float = 8.0
    access_efficiency: dict[AccessPattern, float] = field(default_factory=dict)
    memory_latency_us: float = 0.0

    def __post_init__(self) -> None:
        if self.compute_units <= 0 or self.clock_ghz <= 0:
            raise ValueError("compute_units and clock_ghz must be positive")
        if not 0.0 < self.scalar_issue_efficiency <= 1.0:
            raise ValueError("scalar_issue_efficiency must be in (0, 1]")
        defaults = _DEFAULT_ACCESS_EFFICIENCY[self.kind]
        merged = dict(defaults)
        merged.update(self.access_efficiency)
        object.__setattr__(self, "access_efficiency", merged)

    @property
    def peak_gflops(self) -> float:
        """Theoretical peak single-precision throughput."""
        return (
            self.compute_units
            * self.lanes_per_unit
            * self.vliw_width
            * self.flops_per_lane_cycle
            * self.clock_ghz
        )

    @property
    def is_host_resident(self) -> bool:
        """True when the device shares host memory (no PCIe transfers)."""
        return self.pcie_bandwidth_gbs <= 0.0

    def scaled(self, clock_scale: float, mem_scale: float) -> "DeviceSpec":
        """This spec with its throughput factors rescaled.

        Clock and memory bandwidth are the two knobs real fleets drift
        on (frequency bins, thermal throttling, co-tenant contention);
        fixed overheads (launch latency, PCIe latency) stay put, which
        is what makes drift *shape*-changing rather than a uniform
        slowdown — the optimal partitioning moves.
        """
        if clock_scale <= 0 or mem_scale <= 0:
            raise ValueError("scale factors must be positive")
        return replace(
            self,
            clock_ghz=self.clock_ghz * clock_scale,
            mem_bandwidth_gbs=self.mem_bandwidth_gbs * mem_scale,
        )


#: Bandwidth efficiency per access pattern.  Broadcast loads are served
#: from cache, hence the > 1 relief factors.
_DEFAULT_ACCESS_EFFICIENCY: dict[DeviceKind, dict[AccessPattern, float]] = {
    DeviceKind.CPU: {
        AccessPattern.COALESCED: 1.0,
        AccessPattern.BROADCAST: 6.0,
        AccessPattern.STRIDED: 0.55,
        AccessPattern.INDIRECT: 0.30,
    },
    DeviceKind.GPU: {
        AccessPattern.COALESCED: 1.0,
        AccessPattern.BROADCAST: 4.0,
        AccessPattern.STRIDED: 0.22,
        AccessPattern.INDIRECT: 0.08,
    },
}


@dataclass(frozen=True)
class KernelCostBreakdown:
    """Component times (seconds) of one simulated kernel execution."""

    compute_s: float
    memory_s: float
    launch_s: float

    @property
    def total_s(self) -> float:
        # Roofline: compute and memory overlap; overheads are serial.
        return max(self.compute_s, self.memory_s) + self.launch_s


class DeviceCostModel:
    """Maps kernel launches and transfers to simulated durations."""

    def __init__(self, spec: DeviceSpec):
        self.spec = spec

    # -- kernel execution ----------------------------------------------------

    def effective_gflops(self, vector_fraction: float) -> float:
        """Attainable GFLOP/s for a kernel with the given vector-op share.

        VLIW devices interpolate between the poor scalar-issue efficiency
        and full issue width as the kernel's explicit vectorization
        increases; scalar architectures are insensitive.
        """
        spec = self.spec
        if spec.vliw_width <= 1:
            return spec.peak_gflops * spec.scalar_issue_efficiency
        eff = spec.scalar_issue_efficiency + (1.0 - spec.scalar_issue_efficiency) * min(
            1.0, max(0.0, vector_fraction)
        )
        return spec.peak_gflops * eff

    def weighted_ops(self, counts: OpCounts) -> float:
        """Per-item operation count in flop-equivalents."""
        spec = self.spec
        scalar_ops = counts.int_ops + counts.float_ops + counts.selects
        divergent = counts.divergent_ops
        # Divergent lanes serialize: they cost `branch_penalty` times more.
        base = scalar_ops + divergent * (spec.branch_penalty - 1.0)
        base += counts.transcendental_ops * spec.transcendental_cost
        base += counts.vector_ops * 4.0  # one vector op ≈ 4 lane-ops of work
        base += counts.atomic_ops * spec.atomic_cost
        base += counts.branches * spec.branch_cost
        # Loop back-edges break VLIW clauses just like branches do; the
        # analysis already charges 2 int-ops per iteration, so charge the
        # architectural surcharge only beyond the first flop-equivalent.
        return max(base, 1.0)

    def memory_time_s(
        self, counts: OpCounts, analysis: KernelAnalysis, items: float
    ) -> float:
        """Global-memory traffic time for ``items`` work items."""
        spec = self.spec
        bw = spec.mem_bandwidth_gbs * 1e9
        total = 0.0
        untracked = counts.mem_bytes - sum(counts.bytes_by_buffer.values())
        for buf, nbytes in counts.bytes_by_buffer.items():
            eff = spec.access_efficiency[analysis.pattern_of(buf)]
            total += nbytes / (bw * eff)
        if untracked > 0:
            total += untracked / bw
        return total * items + spec.memory_latency_us * 1e-6

    def kernel_time(
        self,
        analysis: KernelAnalysis,
        items: int,
        scalar_args: dict[str, float] | None = None,
    ) -> KernelCostBreakdown:
        """Simulated execution time of ``items`` work items of a kernel."""
        if items <= 0:
            return KernelCostBreakdown(0.0, 0.0, 0.0)
        counts = analysis.op_counts(scalar_args)
        ops_total = counts.compute_ops + counts.transcendental_ops
        vector_fraction = counts.vector_ops / ops_total if ops_total > 0 else 0.0
        gflops = self.effective_gflops(vector_fraction)
        compute_s = items * self.weighted_ops(counts) / (gflops * 1e9)
        memory_s = self.memory_time_s(counts, analysis, items)
        # Finite parallelism: very small launches cannot fill the machine.
        min_occupancy_items = self.spec.compute_units * self.spec.lanes_per_unit
        if items < min_occupancy_items:
            util = max(items / min_occupancy_items, 1.0 / min_occupancy_items)
            compute_s /= util
        launch_s = self.spec.launch_overhead_us * 1e-6
        return KernelCostBreakdown(compute_s, memory_s, launch_s)

    # -- transfers -------------------------------------------------------------

    def transfer_time_s(self, nbytes: int, direction: TransferDirection) -> float:
        """Host↔device copy time; zero for host-resident devices."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        spec = self.spec
        if spec.is_host_resident or nbytes == 0:
            return 0.0
        bw = spec.pcie_bandwidth_gbs * 1e9
        # Reads back are slightly slower on PCIe 2.0 era hardware.
        if direction is TransferDirection.DEVICE_TO_HOST:
            bw *= 0.9
        return nbytes / bw + spec.pcie_latency_us * 1e-6

    # -- convenience -------------------------------------------------------------

    def single_item_ops(
        self, analysis: KernelAnalysis, scalar_args: dict[str, float] | None = None
    ) -> float:
        """Weighted per-item op count (used as a runtime feature)."""
        return self.weighted_ops(analysis.op_counts(scalar_args))


def geometric_mean(values: list[float]) -> float:
    """Geometric mean, tolerant of empty input."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
