"""Simulated OpenCL substrate.

Replaces the real OpenCL stack of the paper's testbeds with functional
NumPy execution plus an analytic timing model (see DESIGN.md §2 for the
substitution argument).  The public surface mirrors the OpenCL host API
shape: platforms → devices → context → queues → buffers → events.
"""

from .buffers import Buffer, BufferSlice
from .context import Context
from .costmodel import (
    DeviceCostModel,
    DeviceKind,
    DeviceSpec,
    KernelCostBreakdown,
    TransferDirection,
    geometric_mean,
)
from .device import Device, NoiseModel
from .events import CommandKind, Event
from .platform import Platform, make_lognormal_noise
from .queue import CommandQueue, KernelLaunch

__all__ = [
    "Buffer",
    "BufferSlice",
    "Context",
    "DeviceCostModel",
    "DeviceKind",
    "DeviceSpec",
    "KernelCostBreakdown",
    "TransferDirection",
    "geometric_mean",
    "Device",
    "NoiseModel",
    "CommandKind",
    "Event",
    "Platform",
    "make_lognormal_noise",
    "CommandQueue",
    "KernelLaunch",
]
