"""Contexts tie devices, buffers and queues together (``cl_context``)."""

from __future__ import annotations

import numpy as np

from .buffers import Buffer
from .device import Device
from .queue import CommandQueue

__all__ = ["Context"]


class Context:
    """A simulated OpenCL context over a set of devices.

    The context is the unit the multi-device runtime works with: it owns
    one command queue per device and hands out buffers backed by host
    arrays.
    """

    def __init__(self, devices: list[Device]):
        if not devices:
            raise ValueError("a context needs at least one device")
        names = [d.name for d in devices]
        self.devices = list(devices)
        self.queues = [CommandQueue(d) for d in devices]
        self._buffers: list[Buffer] = []
        self._names = names

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    def queue_for(self, device: Device) -> CommandQueue:
        """The queue bound to ``device``."""
        for q in self.queues:
            if q.device is device:
                return q
        raise KeyError(f"device {device.name!r} not in this context")

    def create_buffer(self, name: str, host: np.ndarray) -> Buffer:
        """Create a buffer wrapping (not copying) a host array."""
        buf = Buffer(name, host)
        self._buffers.append(buf)
        return buf

    def reset_timelines(self) -> None:
        """Rewind all device clocks and drop recorded events."""
        for d in self.devices:
            d.reset_clock()
        for q in self.queues:
            q.reset()

    def makespan_s(self) -> float:
        """Wall-clock of the slowest device since the last reset."""
        return max(d.clock_s for d in self.devices)
