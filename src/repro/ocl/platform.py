"""Platform discovery: the simulated analogue of ``clGetPlatformIDs``.

A :class:`Platform` bundles the device specs of one target machine
(e.g. the paper's mc1 / mc2) and instantiates fresh :class:`Device`
objects — optionally with a measurement-noise model — for each run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.rng import rng_for
from .costmodel import DeviceKind, DeviceSpec
from .device import Device, NoiseModel

__all__ = ["Platform", "make_lognormal_noise"]


def make_lognormal_noise(sigma: float, seed: int) -> NoiseModel:
    """Multiplicative lognormal jitter, deterministic per (seed, label).

    Real measurements vary run to run; the trainer takes medians over
    repetitions exactly like the paper's measurement phase.  The noise
    stream is derived from the label so repeated measurements of the
    same command differ while whole experiments stay reproducible.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    counter = {"n": 0}

    def noise(duration_s: float, label: str) -> float:
        if duration_s == 0.0 or sigma == 0.0:
            return duration_s
        counter["n"] += 1
        rng = rng_for("noise", label, counter["n"], base_seed=seed)
        return float(duration_s * rng.lognormal(mean=0.0, sigma=sigma))

    return noise


@dataclass(frozen=True)
class Platform:
    """A named heterogeneous machine: an ordered list of device specs.

    Device order is significant: partitioning vectors index devices in
    this order (CPU first, then GPUs, matching the paper's machines).
    """

    name: str
    device_specs: tuple[DeviceSpec, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.device_specs:
            raise ValueError("platform must have at least one device")

    @property
    def num_devices(self) -> int:
        return len(self.device_specs)

    @property
    def cpu_indices(self) -> tuple[int, ...]:
        return tuple(
            i for i, s in enumerate(self.device_specs) if s.kind is DeviceKind.CPU
        )

    @property
    def gpu_indices(self) -> tuple[int, ...]:
        return tuple(
            i for i, s in enumerate(self.device_specs) if s.kind is DeviceKind.GPU
        )

    def create_devices(self, noise: NoiseModel | None = None) -> list[Device]:
        """Instantiate Device objects with fresh timelines."""
        return [Device(i, spec, noise) for i, spec in enumerate(self.device_specs)]
