"""Simulated ``cl_mem`` buffers.

A :class:`Buffer` owns a host-side NumPy array (the single source of
truth for functional results) plus transfer bookkeeping.  Sub-range
views (:class:`BufferSlice`) describe the region a device reads or
writes when a kernel is partitioned — the splitter computes them, the
queues charge their bytes to the PCIe link.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Buffer", "BufferSlice"]


class Buffer:
    """A global-memory buffer shared by all devices of a context.

    Functional kernel execution mutates :attr:`host` directly (the
    simulation keeps one coherent copy); what *would* move over PCIe is
    accounted separately by the command queues using byte counts from
    :class:`BufferSlice`.
    """

    _counter = 0

    def __init__(self, name: str, host: np.ndarray):
        if not isinstance(host, np.ndarray):
            raise TypeError("Buffer requires a NumPy array")
        Buffer._counter += 1
        self.uid = Buffer._counter
        self.name = name
        self.host = host

    @property
    def nbytes(self) -> int:
        return int(self.host.nbytes)

    @property
    def itemsize(self) -> int:
        return int(self.host.itemsize)

    @property
    def size(self) -> int:
        """Number of elements (flattened)."""
        return int(self.host.size)

    def full_slice(self) -> "BufferSlice":
        """A slice covering the whole buffer."""
        return BufferSlice(self, 0, self.size)

    def slice(self, offset: int, count: int) -> "BufferSlice":
        """A clamped sub-range of ``count`` elements starting at ``offset``."""
        return BufferSlice(self, offset, count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Buffer({self.name!r}, {self.host.dtype}, {self.host.shape})"


@dataclass(frozen=True)
class BufferSlice:
    """A contiguous element range of a buffer (flattened indexing)."""

    buffer: Buffer
    offset: int
    count: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.count < 0:
            raise ValueError("offset and count must be non-negative")
        if self.offset + self.count > self.buffer.size:
            raise ValueError(
                f"slice [{self.offset}, {self.offset + self.count}) exceeds "
                f"buffer {self.buffer.name!r} of size {self.buffer.size}"
            )

    @property
    def nbytes(self) -> int:
        return self.count * self.buffer.itemsize

    def view(self) -> np.ndarray:
        """A writable NumPy view of the slice (no copy)."""
        return self.buffer.host.reshape(-1)[self.offset : self.offset + self.count]
