"""Profiling events, mirroring ``cl_event`` timing queries.

Every enqueued command yields an :class:`Event` carrying its simulated
start/end timestamps on the owning device's timeline.  The runtime's
measurement layer aggregates these to a launch makespan, always
*including* transfer events — the paper is explicit (citing Gregg &
Hazelwood) that CPU/GPU comparisons are meaningless without them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["CommandKind", "Event"]


class CommandKind(enum.Enum):
    """The kind of command an event profiles."""

    WRITE_BUFFER = "write_buffer"
    READ_BUFFER = "read_buffer"
    NDRANGE_KERNEL = "ndrange_kernel"
    MARKER = "marker"


@dataclass(frozen=True)
class Event:
    """A completed simulated command with profiling info."""

    kind: CommandKind
    label: str
    device_name: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError("event ends before it starts")

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s
