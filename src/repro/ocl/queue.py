"""In-order command queues, mirroring ``cl_command_queue``.

A queue serializes commands on its device's timeline and returns
profiling :class:`~repro.ocl.events.Event` objects.  Kernel launches
carry both the *functional* payload (a NumPy callback that computes the
sub-range's outputs) and the *timing* payload (the kernel analysis fed
to the device cost model) — separating semantics from performance the
same way a real runtime separates results from profiling counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..inspire.analysis import KernelAnalysis
from .buffers import BufferSlice
from .costmodel import TransferDirection
from .device import Device
from .events import CommandKind, Event

__all__ = ["KernelLaunch", "CommandQueue"]


@dataclass(frozen=True)
class KernelLaunch:
    """One device's share of a (possibly partitioned) kernel execution.

    Attributes:
        kernel_name: for event labels.
        analysis: static analysis of the kernel (timing input).
        items: number of work items this device executes.
        scalar_args: scalar kernel arguments (problem size etc.), used to
            evaluate size-dependent loop trip counts exactly.
        functional: optional callback that computes this sub-range's
            outputs on the host arrays; None for timing-only runs
            (training sweeps measure thousands of partitionings and skip
            redundant recomputation, as results are partition-invariant).
    """

    kernel_name: str
    analysis: KernelAnalysis
    items: int
    scalar_args: dict[str, float] = field(default_factory=dict)
    functional: Callable[[], None] | None = None

    def __post_init__(self) -> None:
        if self.items < 0:
            raise ValueError("items must be non-negative")


class CommandQueue:
    """An in-order queue bound to one device."""

    def __init__(self, device: Device):
        self.device = device
        self.events: list[Event] = []

    def _record(self, kind: CommandKind, label: str, duration_s: float) -> Event:
        start, end = self.device.occupy(duration_s, label)
        ev = Event(kind, label, self.device.name, start, end)
        self.events.append(ev)
        return ev

    # -- transfers ---------------------------------------------------------

    def enqueue_write(self, slice_: BufferSlice) -> Event:
        """Copy a host sub-range to the device (h2d)."""
        t = self.device.cost_model.transfer_time_s(
            slice_.nbytes, TransferDirection.HOST_TO_DEVICE
        )
        return self._record(
            CommandKind.WRITE_BUFFER, f"h2d:{slice_.buffer.name}", t
        )

    def enqueue_read(self, slice_: BufferSlice) -> Event:
        """Copy a device sub-range back to the host (d2h)."""
        t = self.device.cost_model.transfer_time_s(
            slice_.nbytes, TransferDirection.DEVICE_TO_HOST
        )
        return self._record(
            CommandKind.READ_BUFFER, f"d2h:{slice_.buffer.name}", t
        )

    # -- kernels -----------------------------------------------------------

    def enqueue_kernel(self, launch: KernelLaunch) -> Event:
        """Execute a kernel launch: run the functional payload (if any)
        and advance the device timeline by the modeled duration."""
        if launch.functional is not None and launch.items > 0:
            launch.functional()
        breakdown = self.device.cost_model.kernel_time(
            launch.analysis, launch.items, launch.scalar_args
        )
        return self._record(
            CommandKind.NDRANGE_KERNEL,
            f"kernel:{launch.kernel_name}",
            breakdown.total_s,
        )

    def enqueue_timed(self, kind: CommandKind, label: str, duration_s: float) -> Event:
        """Enqueue a pre-priced command (the planner's replay path).

        The duration must be the *noise-free* modeled time; the device's
        noise model is applied here exactly as for the other enqueues,
        so a replayed plan produces the same timeline as the equivalent
        sequence of ``enqueue_write``/``enqueue_kernel`` calls.
        """
        return self._record(kind, label, duration_s)

    def enqueue_marker(self, label: str = "marker") -> Event:
        """A zero-duration marker event (for timeline bookkeeping)."""
        return self._record(CommandKind.MARKER, label, 0.0)

    # -- synchronization -----------------------------------------------------

    def finish(self) -> float:
        """Block until all commands complete; returns the device clock."""
        return self.device.clock_s

    def reset(self) -> None:
        """Clear recorded events (between measurements)."""
        self.events.clear()
