"""Source-to-source compiler: single-device → multi-device programs."""

from .backend import (
    OFFSET_PARAM,
    MultiDeviceProgram,
    emit_multi_device,
    make_offset_kernel,
)
from .frontend import CompiledKernel, compile_kernel
from .passes import (
    constant_fold,
    dead_store_elimination,
    run_default_passes,
    simplify_algebra,
)
from .splitter import (
    BufferDistribution,
    DeviceChunk,
    DistributionKind,
    KernelDistribution,
    derive_distributions,
    plan_chunks,
)

__all__ = [
    "OFFSET_PARAM",
    "MultiDeviceProgram",
    "emit_multi_device",
    "make_offset_kernel",
    "CompiledKernel",
    "compile_kernel",
    "constant_fold",
    "simplify_algebra",
    "dead_store_elimination",
    "run_default_passes",
    "BufferDistribution",
    "DistributionKind",
    "KernelDistribution",
    "DeviceChunk",
    "derive_distributions",
    "plan_chunks",
]
