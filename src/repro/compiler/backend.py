"""Multi-device code generation.

The paper: *"The compiler translates a single-device OpenCL program
into a multi-device OpenCL program."*  Functionally our simulated
devices execute NumPy payloads, but the translation itself is real: the
backend rewrites the kernel so every ``get_global_id`` on the partition
axis is displaced by a new ``__chunk_offset`` parameter, emits the
per-device OpenCL C source, and packages a host execution plan template
describing the per-device transfers and launches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..inspire import ast as ir
from ..inspire.printer import print_kernel
from ..inspire.types import INT
from ..inspire.visitors import rewrite_kernel
from .splitter import DistributionKind, KernelDistribution

__all__ = [
    "OFFSET_PARAM",
    "make_offset_kernel",
    "MultiDeviceProgram",
    "emit_multi_device",
]

#: Name of the injected chunk-offset parameter.
OFFSET_PARAM = "__chunk_offset"


def make_offset_kernel(kernel: ir.Kernel) -> ir.Kernel:
    """Rewrite a kernel to take its partition-axis offset as a parameter.

    ``get_global_id(axis)`` becomes ``get_global_id(axis) + __chunk_offset``
    so a device launched with a sub-range observes the global indices of
    its chunk — the classic multi-device OpenCL idiom (an explicit
    offset parameter is more portable than ``clEnqueueNDRangeKernel``'s
    ``global_work_offset``, which some 2012 runtimes ignored).
    """
    axis = kernel.dim - 1
    offset_var = ir.Var(OFFSET_PARAM, INT)

    def shift(e: ir.Expr) -> ir.Expr | None:
        if (
            isinstance(e, ir.WorkItemQuery)
            and e.fn is ir.WorkItemFn.GLOBAL_ID
            and e.dim == axis
        ):
            return ir.BinOp("+", e, offset_var, INT)
        return None

    shifted = rewrite_kernel(kernel, shift)
    params = shifted.params + (
        ir.KernelParam(OFFSET_PARAM, INT, ir.ParamIntent.VALUE),
    )
    return ir.Kernel(shifted.name + "_md", params, shifted.body, shifted.dim)


@dataclass(frozen=True)
class MultiDeviceProgram:
    """The backend's output: rewritten kernel + emitted sources + plan.

    Attributes:
        kernel: the original single-device kernel.
        offset_kernel: the offset-parameterized multi-device kernel.
        source: single-device OpenCL C.
        md_source: multi-device OpenCL C (offset-parameterized).
        host_plan: human-readable host orchestration template.
    """

    kernel: ir.Kernel
    offset_kernel: ir.Kernel
    source: str
    md_source: str
    host_plan: str


def _plan_lines(kernel: ir.Kernel, distribution: KernelDistribution) -> str:
    lines = [
        f"// host plan for kernel '{kernel.name}' over D devices",
        "// for each device d with chunk (offset_d, count_d):",
    ]
    for p in kernel.params:
        if not p.is_buffer:
            continue
        dist = distribution.of(p.name)
        if p.intent in (ir.ParamIntent.IN, ir.ParamIntent.INOUT):
            if dist.kind is DistributionKind.SPLIT:
                lines.append(
                    f"//   clEnqueueWriteBuffer(q[d], {p.name}, "
                    "slice(offset_d, count_d))"
                )
            elif dist.kind is DistributionKind.HALO:
                lines.append(
                    f"//   clEnqueueWriteBuffer(q[d], {p.name}, "
                    f"slice(offset_d - {dist.halo}, count_d + {2 * dist.halo}))"
                )
            else:
                lines.append(f"//   clEnqueueWriteBuffer(q[d], {p.name}, full)")
    lines.append(
        f"//   clSetKernelArg(k, .., {OFFSET_PARAM} = offset_d); "
        "clEnqueueNDRangeKernel(q[d], k, global=count_d)"
    )
    for p in kernel.params:
        if not p.is_buffer:
            continue
        dist = distribution.of(p.name)
        if p.intent in (ir.ParamIntent.OUT, ir.ParamIntent.INOUT):
            if dist.kind is DistributionKind.REDUCED:
                lines.append(
                    f"//   clEnqueueReadBuffer(q[d], {p.name}, full); "
                    f"host merges private copies ({dist.reduce_op})"
                )
            else:
                lines.append(
                    f"//   clEnqueueReadBuffer(q[d], {p.name}, "
                    "slice(offset_d, count_d))"
                )
    lines.append("// clFinish(q[d]) for all d; makespan = max over devices")
    return "\n".join(lines)


def emit_multi_device(
    kernel: ir.Kernel, distribution: KernelDistribution
) -> MultiDeviceProgram:
    """Translate a single-device kernel into a multi-device program."""
    offset_kernel = make_offset_kernel(kernel)
    return MultiDeviceProgram(
        kernel=kernel,
        offset_kernel=offset_kernel,
        source=print_kernel(kernel),
        md_source=print_kernel(offset_kernel),
        host_plan=_plan_lines(kernel, distribution),
    )
