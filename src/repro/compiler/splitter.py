"""ND-range splitting and buffer-distribution analysis.

The single-device → multi-device translation has two halves:

1. **Range splitting** — the global ND-range is cut along the partition
   axis into contiguous per-device chunks (``repro.partitioning``).
2. **Data distribution** — for every buffer, decide which elements each
   device needs: its proportional slice (``SPLIT``), its slice plus a
   halo (``HALO``, stencils), the full buffer (``FULL``, e.g. the B
   matrix of a GEMM), or a private full copy merged by reduction after
   execution (``REDUCED``, e.g. histograms).

Distributions are derived automatically from the kernel's index
expressions where possible and can be overridden by the benchmark
(mirroring how Insieme combines analysis with annotations).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from ..inspire import ast as ir
from ..inspire.analysis import (
    KernelAnalysis,
    _LinearForm,
    _linearize,
    _single_assignment_map,
    _substitute_locals,
)
from ..partitioning import Partitioning, split_items

__all__ = [
    "DistributionKind",
    "BufferDistribution",
    "KernelDistribution",
    "derive_distributions",
    "DeviceChunk",
    "plan_chunks",
]


class DistributionKind(enum.Enum):
    """How one buffer is distributed across devices."""

    SPLIT = "split"  # device gets its proportional contiguous slice
    HALO = "halo"  # slice plus a fixed-width boundary halo
    FULL = "full"  # every device needs the whole buffer
    REDUCED = "reduced"  # private copy per device, merged afterwards


@dataclass(frozen=True)
class BufferDistribution:
    """Distribution of a single buffer.

    Attributes:
        kind: distribution class.
        halo: halo width in *elements per side* (HALO only).
        elements_per_item: buffer elements owned per work item along the
            partition axis (SPLIT/HALO); e.g. a row-partitioned matrix
            has one row per item.
        reduce_op: merge operator for REDUCED buffers.
    """

    kind: DistributionKind
    halo: int = 0
    elements_per_item: float = 1.0
    reduce_op: str = "sum"

    def __post_init__(self) -> None:
        if self.halo < 0:
            raise ValueError("halo must be non-negative")
        if self.kind is DistributionKind.HALO and self.halo == 0:
            raise ValueError("HALO distribution requires halo > 0")
        if self.elements_per_item <= 0:
            raise ValueError("elements_per_item must be positive")
        if self.reduce_op not in ("sum", "min", "max"):
            raise ValueError(f"unknown reduce_op {self.reduce_op!r}")

    @classmethod
    def split(cls, elements_per_item: float = 1.0) -> "BufferDistribution":
        """Proportional contiguous slice per device."""
        return cls(DistributionKind.SPLIT, elements_per_item=elements_per_item)

    @classmethod
    def with_halo(
        cls, halo: int, elements_per_item: float = 1.0
    ) -> "BufferDistribution":
        """Slice plus a boundary halo of ``halo`` elements per side."""
        return cls(
            DistributionKind.HALO, halo=halo, elements_per_item=elements_per_item
        )

    @classmethod
    def full(cls) -> "BufferDistribution":
        """Every device needs the entire buffer."""
        return cls(DistributionKind.FULL)

    @classmethod
    def reduced(cls, op: str = "sum") -> "BufferDistribution":
        """Private full copy per device, merged by ``op`` on the host."""
        return cls(DistributionKind.REDUCED, reduce_op=op)


@dataclass(frozen=True)
class KernelDistribution:
    """Per-buffer distributions for one kernel."""

    buffers: Mapping[str, BufferDistribution] = field(default_factory=dict)

    def of(self, buffer_name: str) -> BufferDistribution:
        """Distribution of a buffer (defaults to FULL when undeclared)."""
        return self.buffers.get(
            buffer_name, BufferDistribution(DistributionKind.FULL)
        )

    @property
    def has_reduced(self) -> bool:
        return any(d.kind is DistributionKind.REDUCED for d in self.buffers.values())


def derive_distributions(analysis: KernelAnalysis) -> KernelDistribution:
    """Infer buffer distributions from index expressions.

    A buffer whose every access is affine in the partition-axis global id
    with coefficient 1 is ``SPLIT`` (or ``HALO`` when constant offsets
    differ); written buffers with unanalyzable indices become
    ``REDUCED``; everything else is ``FULL``.  This mirrors the paper's
    compiler, which must prove where each device's data lives before it
    can emit per-device transfers.
    """
    kernel = analysis.kernel
    axis_key = _LinearForm.GID0 if kernel.dim == 1 else _LinearForm.GID1
    uniform = frozenset(p.name for p in kernel.scalar_params)
    defs = _single_assignment_map(kernel)

    # Gather every (buffer, index, is_write) access in the kernel.
    accesses: list[tuple[str, ir.Expr, bool]] = []

    from ..inspire.visitors import walk

    for node in walk(kernel.body):
        if isinstance(node, ir.Load):
            accesses.append((node.buffer.name, node.index, False))
        elif isinstance(node, ir.Store):
            accesses.append((node.buffer.name, node.index, True))
        elif isinstance(node, ir.AtomicUpdate):
            accesses.append((node.buffer.name, node.index, True))

    per_buffer: dict[str, list[tuple[_LinearForm, bool]]] = {}
    for name, index, is_write in accesses:
        form = _linearize(_substitute_locals(index, defs), {}, uniform)
        per_buffer.setdefault(name, []).append((form, is_write))

    out: dict[str, BufferDistribution] = {}
    for name, forms in per_buffer.items():
        offsets: list[float] = []
        splittable = True
        written = any(w for _, w in forms)
        for form, _ in forms:
            if form.indirect or form.nonlinear:
                splittable = False
                break
            coeff = form.coeffs.get(axis_key)
            others = {
                k: c
                for k, c in form.coeffs.items()
                if k != axis_key and c not in (0.0,)
            }
            if coeff != 1.0 or others or form.const is None:
                splittable = False
                break
            offsets.append(form.const)
        if splittable and offsets:
            halo = int(max(abs(o) for o in offsets))
            if halo > 0:
                out[name] = BufferDistribution(DistributionKind.HALO, halo=halo)
            else:
                out[name] = BufferDistribution(DistributionKind.SPLIT)
        elif written:
            out[name] = BufferDistribution(DistributionKind.REDUCED)
        else:
            out[name] = BufferDistribution(DistributionKind.FULL)
    return KernelDistribution(out)


@dataclass(frozen=True)
class DeviceChunk:
    """One device's assignment: its work-item range and buffer ranges."""

    device_index: int
    item_offset: int
    item_count: int
    #: buffer name -> (element offset, element count) this device touches
    buffer_ranges: Mapping[str, tuple[int, int]]

    @property
    def is_empty(self) -> bool:
        return self.item_count == 0


def _buffer_range(
    dist: BufferDistribution,
    buffer_elems: int,
    item_offset: int,
    item_count: int,
) -> tuple[int, int]:
    if dist.kind is DistributionKind.FULL or dist.kind is DistributionKind.REDUCED:
        return (0, buffer_elems)
    epi = dist.elements_per_item
    start = int(item_offset * epi)
    stop = int((item_offset + item_count) * epi)
    if dist.kind is DistributionKind.HALO:
        start -= dist.halo
        stop += dist.halo
    start = max(0, start)
    stop = min(buffer_elems, stop)
    if stop < start:
        stop = start
    return (start, stop - start)


def plan_chunks(
    total_items: int,
    partitioning: Partitioning,
    distribution: KernelDistribution,
    buffer_sizes: Mapping[str, int],
    granularity: int = 1,
) -> tuple[DeviceChunk, ...]:
    """Compute every device's item range and buffer element ranges.

    ``buffer_sizes`` maps buffer names to their element counts.  The
    returned chunks cover the ND-range exactly and are the direct input
    to the runtime scheduler's transfer/launch planning.
    """
    ranges = split_items(total_items, partitioning, granularity)
    chunks: list[DeviceChunk] = []
    for dev_index, (offset, count) in enumerate(ranges):
        buffer_ranges: dict[str, tuple[int, int]] = {}
        for name, elems in buffer_sizes.items():
            dist = distribution.of(name)
            if count == 0:
                buffer_ranges[name] = (0, 0)
            else:
                buffer_ranges[name] = _buffer_range(dist, elems, offset, count)
        chunks.append(DeviceChunk(dev_index, offset, count, buffer_ranges))
    return tuple(chunks)
