"""Compiler frontend: validate → normalize → analyze → emit.

`compile_kernel` is the single entry point the rest of the system uses;
it corresponds to the paper's "code analyzer + backend" stages and
produces everything the runtime and the feature extractor need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..inspire import ast as ir
from ..inspire.analysis import KernelAnalysis, analyze_kernel
from ..inspire.validate import validate_kernel
from .backend import MultiDeviceProgram, emit_multi_device
from .passes import run_default_passes
from .splitter import BufferDistribution, KernelDistribution, derive_distributions

__all__ = ["CompiledKernel", "compile_kernel"]


@dataclass(frozen=True)
class CompiledKernel:
    """A fully processed kernel ready for multi-device execution.

    Attributes:
        kernel: the normalized IR.
        analysis: static analysis (features, access patterns).
        distribution: per-buffer data distributions.
        program: emitted single- and multi-device OpenCL C.
    """

    kernel: ir.Kernel
    analysis: KernelAnalysis
    distribution: KernelDistribution
    program: MultiDeviceProgram

    @property
    def name(self) -> str:
        return self.kernel.name

    def static_features(self) -> dict[str, float]:
        """Static program features (stored in the training database)."""
        return self.analysis.static_features()


def compile_kernel(
    kernel: ir.Kernel,
    distribution_overrides: Mapping[str, BufferDistribution] | None = None,
    optimize: bool = True,
) -> CompiledKernel:
    """Run the full frontend pipeline on a kernel.

    ``distribution_overrides`` lets a benchmark declare distributions the
    automatic analysis cannot prove (Insieme's annotation escape hatch);
    every override must name a real buffer parameter.
    """
    validate_kernel(kernel)
    if optimize:
        kernel = run_default_passes(kernel)
        validate_kernel(kernel)
    analysis = analyze_kernel(kernel)
    derived = derive_distributions(analysis)
    buffers = dict(derived.buffers)
    if distribution_overrides:
        param_names = {p.name for p in kernel.buffer_params}
        for name, dist in distribution_overrides.items():
            if name not in param_names:
                raise KeyError(
                    f"distribution override for unknown buffer {name!r} "
                    f"(kernel {kernel.name})"
                )
            buffers[name] = dist
    # Buffers never accessed in the body (e.g. scratch) default to FULL.
    for p in kernel.buffer_params:
        buffers.setdefault(p.name, BufferDistribution.full())
    distribution = KernelDistribution(buffers)
    program = emit_multi_device(kernel, distribution)
    return CompiledKernel(kernel, analysis, distribution, program)
