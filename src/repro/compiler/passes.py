"""IR optimization passes run by the compiler frontend.

The paper's pipeline analyses INSPIRE before feature extraction; these
passes normalize kernels the same way so that equivalent formulations
yield equal features (e.g. ``x * 1.0`` never inflates the float-op
count).
"""

from __future__ import annotations

import math

from ..inspire import ast as ir
from ..inspire.types import BOOL, ScalarType, is_floating
from ..inspire.visitors import rewrite_kernel, walk

__all__ = [
    "constant_fold",
    "simplify_algebra",
    "run_default_passes",
    "dead_store_elimination",
]


def _const_value(e: ir.Expr) -> float | int | bool | None:
    return e.value if isinstance(e, ir.Const) else None


def _make_const(value: float | int | bool, ty: ir.Expr) -> ir.Const:
    target = ty.type
    if isinstance(target, ScalarType):
        if target is BOOL:
            return ir.Const(bool(value), target)
        if target.floating:
            return ir.Const(float(value), target)
        return ir.Const(int(value), target)
    return ir.Const(value, target)


def constant_fold(kernel: ir.Kernel) -> ir.Kernel:
    """Fold arithmetic/comparisons over literal operands."""

    def fold(e: ir.Expr) -> ir.Expr | None:
        if isinstance(e, ir.BinOp):
            a = _const_value(e.lhs)
            b = _const_value(e.rhs)
            if a is None or b is None:
                return None
            try:
                if e.op == "+":
                    return _make_const(a + b, e)
                if e.op == "-":
                    return _make_const(a - b, e)
                if e.op == "*":
                    return _make_const(a * b, e)
                if e.op == "/":
                    if b == 0:
                        return None
                    if is_floating(e.type):
                        return _make_const(a / b, e)
                    return _make_const(int(math.trunc(a / b)), e)
                if e.op in ("<", "<=", ">", ">=", "==", "!="):
                    table = {
                        "<": a < b,
                        "<=": a <= b,
                        ">": a > b,
                        ">=": a >= b,
                        "==": a == b,
                        "!=": a != b,
                    }
                    return ir.Const(bool(table[e.op]), BOOL)
            except (TypeError, OverflowError):
                return None
        if isinstance(e, ir.UnOp) and e.op == "-":
            v = _const_value(e.operand)
            if v is not None:
                return _make_const(-v, e)
        if isinstance(e, ir.Select):
            c = _const_value(e.cond)
            if c is not None:
                return e.if_true if c else e.if_false
        return None

    return rewrite_kernel(kernel, fold)


def simplify_algebra(kernel: ir.Kernel) -> ir.Kernel:
    """Strength-reduce trivial identities: ``x*1``, ``x+0``, ``x-0``, ``x*0``."""

    def simp(e: ir.Expr) -> ir.Expr | None:
        if not isinstance(e, ir.BinOp):
            return None
        a, b = e.lhs, e.rhs
        av, bv = _const_value(a), _const_value(b)
        if e.op == "+":
            if av == 0:
                return b if b.type == e.type else ir.Cast(b, e.type)
            if bv == 0:
                return a if a.type == e.type else ir.Cast(a, e.type)
        if e.op == "-" and bv == 0:
            return a if a.type == e.type else ir.Cast(a, e.type)
        if e.op == "*":
            if av == 1:
                return b if b.type == e.type else ir.Cast(b, e.type)
            if bv == 1:
                return a if a.type == e.type else ir.Cast(a, e.type)
            if av == 0 or bv == 0:
                return _make_const(0, e)
        if e.op == "/" and bv == 1:
            return a if a.type == e.type else ir.Cast(a, e.type)
        return None

    return rewrite_kernel(kernel, simp)


def dead_store_elimination(kernel: ir.Kernel) -> ir.Kernel:
    """Remove declared-but-never-read locals (straight-line only).

    Conservative: a local is dead only if no expression anywhere in the
    kernel reads it and its defining expression has no side effects
    (expressions in this IR never have side effects).
    """
    used: set[str] = set()
    assigned: dict[str, int] = {}
    for node in walk(kernel.body):
        if isinstance(node, ir.Assign):
            assigned[node.var.name] = assigned.get(node.var.name, 0) + 1
            for sub in walk(node.value):
                if isinstance(sub, ir.Var):
                    used.add(sub.name)
        else:
            targets = ()
            if isinstance(node, (ir.Store, ir.AtomicUpdate)):
                targets = (node.index, node.value)
            elif isinstance(node, ir.If):
                targets = (node.cond,)
            elif isinstance(node, ir.For):
                targets = (node.start, node.end, node.step)
            elif isinstance(node, ir.While):
                targets = (node.cond,)
            elif isinstance(node, ir.Select):
                targets = (node.cond, node.if_true, node.if_false)
            for t in targets:
                for sub in walk(t):
                    if isinstance(sub, ir.Var):
                        used.add(sub.name)
    dead = {name for name in assigned if name not in used}
    if not dead:
        return kernel

    def prune(block: ir.Block) -> ir.Block:
        out: list[ir.Stmt] = []
        for s in block.stmts:
            if isinstance(s, ir.Assign) and s.var.name in dead:
                continue
            if isinstance(s, ir.If):
                s = ir.If(s.cond, prune(s.then_body), prune(s.else_body))
            elif isinstance(s, ir.For):
                s = ir.For(s.var, s.start, s.end, s.step, prune(s.body))
            elif isinstance(s, ir.While):
                s = ir.While(s.cond, prune(s.body), expected_trips=s.expected_trips)
            elif isinstance(s, ir.Block):
                s = prune(s)
            out.append(s)
        return ir.Block(tuple(out))

    return ir.Kernel(kernel.name, kernel.params, prune(kernel.body), kernel.dim)


def run_default_passes(kernel: ir.Kernel) -> ir.Kernel:
    """The frontend's standard normalization pipeline."""
    kernel = constant_fold(kernel)
    kernel = simplify_algebra(kernel)
    kernel = constant_fold(kernel)
    kernel = dead_store_elimination(kernel)
    return kernel
