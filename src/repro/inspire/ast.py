"""AST node definitions for the INSPIRE-like kernel IR.

The IR models a single OpenCL kernel body: straight-line statements,
structured control flow (``if``/``for``/``while``), global-memory loads
and stores, work-item intrinsics (``get_global_id`` etc.) and a small set
of builtin math functions.  All nodes are immutable dataclasses so that
compiler passes can share subtrees safely.

The node set intentionally stays close to what the paper's static feature
extractor needs to observe: arithmetic operations by class (int / float /
transcendental / vector), memory operations with analysable index
expressions, branches and loops.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from .types import INT, BufferType, ScalarType, Type, VectorType

__all__ = [
    "Node",
    "Expr",
    "Stmt",
    "Const",
    "Var",
    "BinOp",
    "UnOp",
    "Call",
    "Cast",
    "Select",
    "Load",
    "WorkItemQuery",
    "WorkItemFn",
    "Assign",
    "Store",
    "AtomicUpdate",
    "If",
    "For",
    "While",
    "Barrier",
    "Block",
    "ParamIntent",
    "KernelParam",
    "Kernel",
    "BINARY_OPS",
    "COMPARISON_OPS",
    "LOGICAL_OPS",
    "BITWISE_OPS",
    "BUILTIN_FUNCTIONS",
    "TRANSCENDENTAL_FUNCTIONS",
]


class Node:
    """Common base for all IR nodes (expressions and statements)."""

    def children(self) -> Sequence["Node"]:
        """Direct child nodes, in evaluation order."""
        return ()


class Expr(Node):
    """Base class of all expression nodes; every expression has a type."""

    type: Type


class Stmt(Node):
    """Base class of all statement nodes."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

#: Arithmetic binary operators (produce a value of the promoted type).
BINARY_OPS = frozenset({"+", "-", "*", "/", "%"})
#: Comparison operators (produce bool).
COMPARISON_OPS = frozenset({"<", "<=", ">", ">=", "==", "!="})
#: Short-circuit logical operators (bool × bool → bool).
LOGICAL_OPS = frozenset({"&&", "||"})
#: Bitwise/shift operators (integers only).
BITWISE_OPS = frozenset({"&", "|", "^", "<<", ">>"})

#: Builtin functions and their arity.  These mirror OpenCL C builtins.
BUILTIN_FUNCTIONS: dict[str, int] = {
    "sqrt": 1,
    "rsqrt": 1,
    "exp": 1,
    "log": 1,
    "log2": 1,
    "sin": 1,
    "cos": 1,
    "tan": 1,
    "atan": 1,
    "atan2": 2,
    "pow": 2,
    "fabs": 1,
    "floor": 1,
    "ceil": 1,
    "fmin": 2,
    "fmax": 2,
    "min": 2,
    "max": 2,
    "abs": 1,
    "clamp": 3,
    "mad": 3,
    "erf": 1,
    "mix": 3,
}

#: The subset of builtins counted as "transcendental" static features.
#: These map to the GPU special-function unit and are weighted separately
#: in the device cost model.
TRANSCENDENTAL_FUNCTIONS = frozenset(
    {
        "sqrt",
        "rsqrt",
        "exp",
        "log",
        "log2",
        "sin",
        "cos",
        "tan",
        "atan",
        "atan2",
        "pow",
        "erf",
    }
)


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant."""

    value: float | int | bool
    type: Type

    def __repr__(self) -> str:
        return f"Const({self.value!r}: {self.type.cl_name})"


@dataclass(frozen=True)
class Var(Expr):
    """A reference to a kernel parameter or a local variable."""

    name: str
    type: Type

    def __repr__(self) -> str:
        return f"Var({self.name}: {self.type.cl_name})"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation ``lhs op rhs``."""

    op: str
    lhs: Expr
    rhs: Expr
    type: Type

    def children(self) -> Sequence[Node]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation: ``-x`` or ``!x``."""

    op: str
    operand: Expr
    type: Type

    def children(self) -> Sequence[Node]:
        return (self.operand,)


@dataclass(frozen=True)
class Call(Expr):
    """A call to an OpenCL builtin function."""

    func: str
    args: tuple[Expr, ...]
    type: Type

    def children(self) -> Sequence[Node]:
        return self.args


@dataclass(frozen=True)
class Cast(Expr):
    """An explicit type conversion."""

    expr: Expr
    type: Type

    def children(self) -> Sequence[Node]:
        return (self.expr,)


@dataclass(frozen=True)
class Select(Expr):
    """The ternary operator ``cond ? if_true : if_false``.

    Counted as a (cheap, predicated) branch by the feature extractor.
    """

    cond: Expr
    if_true: Expr
    if_false: Expr
    type: Type

    def children(self) -> Sequence[Node]:
        return (self.cond, self.if_true, self.if_false)


@dataclass(frozen=True)
class Load(Expr):
    """A global-memory read ``buffer[index]``."""

    buffer: Var
    index: Expr
    type: Type

    def children(self) -> Sequence[Node]:
        return (self.buffer, self.index)


class WorkItemFn(enum.Enum):
    """Work-item intrinsics exposed by the IR."""

    GLOBAL_ID = "get_global_id"
    GLOBAL_SIZE = "get_global_size"
    LOCAL_ID = "get_local_id"
    LOCAL_SIZE = "get_local_size"
    GROUP_ID = "get_group_id"
    NUM_GROUPS = "get_num_groups"


@dataclass(frozen=True)
class WorkItemQuery(Expr):
    """A work-item intrinsic call such as ``get_global_id(dim)``.

    The multi-device backend rewrites ``get_global_id`` into
    ``get_global_id(dim) + offset_dim`` so that each device observes
    global indices of its assigned sub-range — this is the heart of the
    single-device → multi-device translation.
    """

    fn: WorkItemFn
    dim: int
    type: Type = INT


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Assign(Stmt):
    """Assignment to (and implicit declaration of) a local variable."""

    var: Var
    value: Expr
    declares: bool = False

    def children(self) -> Sequence[Node]:
        return (self.var, self.value)


@dataclass(frozen=True)
class Store(Stmt):
    """A global-memory write ``buffer[index] = value``."""

    buffer: Var
    index: Expr
    value: Expr

    def children(self) -> Sequence[Node]:
        return (self.buffer, self.index, self.value)


@dataclass(frozen=True)
class AtomicUpdate(Stmt):
    """An atomic read-modify-write: ``atomic_add(&buffer[index], value)``.

    ``op`` is one of ``add``/``min``/``max``.  Atomics mark the kernel as
    needing reduce-style output merging when partitioned across devices.
    """

    buffer: Var
    index: Expr
    value: Expr
    op: str = "add"

    def children(self) -> Sequence[Node]:
        return (self.buffer, self.index, self.value)


@dataclass(frozen=True)
class Block(Stmt):
    """A sequence of statements."""

    stmts: tuple[Stmt, ...] = ()

    def children(self) -> Sequence[Node]:
        return self.stmts


@dataclass(frozen=True)
class If(Stmt):
    """A conditional statement."""

    cond: Expr
    then_body: Block
    else_body: Block = field(default_factory=Block)

    def children(self) -> Sequence[Node]:
        return (self.cond, self.then_body, self.else_body)


@dataclass(frozen=True)
class For(Stmt):
    """A counted loop ``for (var = start; var < end; var += step)``.

    When ``end`` is a scalar-parameter reference, the trip count is a
    *runtime feature*: it depends on the problem size, and the analysis
    evaluates it against the actual scalar arguments at prediction time.
    """

    var: Var
    start: Expr
    end: Expr
    step: Expr
    body: Block

    def children(self) -> Sequence[Node]:
        return (self.var, self.start, self.end, self.step, self.body)


@dataclass(frozen=True)
class While(Stmt):
    """A condition-controlled loop with a declared nominal trip count.

    OpenCL kernels with data-dependent loops (e.g. Mandelbrot escape
    iteration) cannot be statically counted; ``expected_trips`` records
    the analyst-provided average used for the static feature value.
    """

    cond: Expr
    body: Block
    expected_trips: int = 8

    def children(self) -> Sequence[Node]:
        return (self.cond, self.body)


@dataclass(frozen=True)
class Barrier(Stmt):
    """A work-group barrier (``barrier(CLK_LOCAL_MEM_FENCE)``)."""


# ---------------------------------------------------------------------------
# Kernel container
# ---------------------------------------------------------------------------


class ParamIntent(enum.Enum):
    """Dataflow direction of a kernel parameter.

    Intents drive the runtime's transfer accounting: ``IN`` buffers are
    copied host→device before launch, ``OUT`` buffers device→host after,
    and ``INOUT`` both ways — exactly the overhead the paper insists on
    including in every measurement (per Gregg & Hazelwood).
    """

    IN = "in"
    OUT = "out"
    INOUT = "inout"
    VALUE = "value"


@dataclass(frozen=True)
class KernelParam:
    """A kernel parameter: a global buffer or a scalar passed by value."""

    name: str
    type: Type
    intent: ParamIntent

    @property
    def is_buffer(self) -> bool:
        return isinstance(self.type, BufferType)

    def var(self) -> Var:
        """The Var node through which the body references this parameter."""
        return Var(self.name, self.type)


@dataclass(frozen=True)
class Kernel:
    """A complete kernel: signature plus body.

    Attributes:
        name: kernel function name.
        params: ordered parameter list.
        body: statement block.
        dim: ND-range dimensionality (1 or 2).  Partitioning always splits
            dimension 0, matching the paper's contiguous-chunk splitting.
    """

    name: str
    params: tuple[KernelParam, ...]
    body: Block
    dim: int = 1

    def param(self, name: str) -> KernelParam:
        """Look up a parameter by name."""
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"kernel {self.name!r} has no parameter {name!r}")

    @property
    def buffer_params(self) -> tuple[KernelParam, ...]:
        return tuple(p for p in self.params if p.is_buffer)

    @property
    def scalar_params(self) -> tuple[KernelParam, ...]:
        return tuple(p for p in self.params if not p.is_buffer)

    def children(self) -> Sequence[Node]:
        return (self.body,)


def _expr_types_ok(ty: Type) -> bool:
    return isinstance(ty, (ScalarType, VectorType, BufferType))
