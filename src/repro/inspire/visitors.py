"""Generic traversal and rewriting utilities over the kernel IR.

Compiler passes and the static feature extractor are written against
these helpers rather than hand-rolled recursion, so adding a node type
only requires updating ``children()`` on the node itself.
"""

from __future__ import annotations

from typing import Callable, Iterator, TypeVar

from . import ast as ir

__all__ = [
    "walk",
    "walk_exprs",
    "walk_stmts",
    "rewrite_expr",
    "rewrite_kernel",
    "count_nodes",
]

N = TypeVar("N", bound=ir.Node)


def walk(node: ir.Node) -> Iterator[ir.Node]:
    """Yield ``node`` and all descendants in pre-order."""
    yield node
    for child in node.children():
        yield from walk(child)


def walk_kernel(kernel: ir.Kernel) -> Iterator[ir.Node]:
    """Yield every node in a kernel body."""
    yield from walk(kernel.body)


def walk_exprs(node: ir.Node) -> Iterator[ir.Expr]:
    """Yield all expression nodes under ``node`` (inclusive)."""
    for n in walk(node):
        if isinstance(n, ir.Expr):
            yield n


def walk_stmts(node: ir.Node) -> Iterator[ir.Stmt]:
    """Yield all statement nodes under ``node`` (inclusive)."""
    for n in walk(node):
        if isinstance(n, ir.Stmt):
            yield n


def count_nodes(node: ir.Node) -> int:
    """Total node count (a crude kernel-complexity feature)."""
    return sum(1 for _ in walk(node))


ExprRewriter = Callable[[ir.Expr], ir.Expr | None]


def rewrite_expr(expr: ir.Expr, fn: ExprRewriter) -> ir.Expr:
    """Bottom-up expression rewrite.

    ``fn`` is applied to each rebuilt node; returning ``None`` keeps the
    node, returning a new node substitutes it.
    """
    rebuilt: ir.Expr
    if isinstance(expr, ir.BinOp):
        rebuilt = ir.BinOp(
            expr.op, rewrite_expr(expr.lhs, fn), rewrite_expr(expr.rhs, fn), expr.type
        )
    elif isinstance(expr, ir.UnOp):
        rebuilt = ir.UnOp(expr.op, rewrite_expr(expr.operand, fn), expr.type)
    elif isinstance(expr, ir.Call):
        rebuilt = ir.Call(
            expr.func, tuple(rewrite_expr(a, fn) for a in expr.args), expr.type
        )
    elif isinstance(expr, ir.Cast):
        rebuilt = ir.Cast(rewrite_expr(expr.expr, fn), expr.type)
    elif isinstance(expr, ir.Select):
        rebuilt = ir.Select(
            rewrite_expr(expr.cond, fn),
            rewrite_expr(expr.if_true, fn),
            rewrite_expr(expr.if_false, fn),
            expr.type,
        )
    elif isinstance(expr, ir.Load):
        rebuilt = ir.Load(expr.buffer, rewrite_expr(expr.index, fn), expr.type)
    else:  # Const, Var, WorkItemQuery: leaves
        rebuilt = expr
    out = fn(rebuilt)
    return rebuilt if out is None else out


def _rewrite_stmt(stmt: ir.Stmt, fn: ExprRewriter) -> ir.Stmt:
    if isinstance(stmt, ir.Assign):
        return ir.Assign(stmt.var, rewrite_expr(stmt.value, fn), declares=stmt.declares)
    if isinstance(stmt, ir.Store):
        return ir.Store(
            stmt.buffer, rewrite_expr(stmt.index, fn), rewrite_expr(stmt.value, fn)
        )
    if isinstance(stmt, ir.AtomicUpdate):
        return ir.AtomicUpdate(
            stmt.buffer,
            rewrite_expr(stmt.index, fn),
            rewrite_expr(stmt.value, fn),
            op=stmt.op,
        )
    if isinstance(stmt, ir.Block):
        return ir.Block(tuple(_rewrite_stmt(s, fn) for s in stmt.stmts))
    if isinstance(stmt, ir.If):
        return ir.If(
            rewrite_expr(stmt.cond, fn),
            _rewrite_block(stmt.then_body, fn),
            _rewrite_block(stmt.else_body, fn),
        )
    if isinstance(stmt, ir.For):
        return ir.For(
            stmt.var,
            rewrite_expr(stmt.start, fn),
            rewrite_expr(stmt.end, fn),
            rewrite_expr(stmt.step, fn),
            _rewrite_block(stmt.body, fn),
        )
    if isinstance(stmt, ir.While):
        return ir.While(
            rewrite_expr(stmt.cond, fn),
            _rewrite_block(stmt.body, fn),
            expected_trips=stmt.expected_trips,
        )
    if isinstance(stmt, ir.Barrier):
        return stmt
    raise TypeError(f"unknown statement {stmt!r}")


def _rewrite_block(block: ir.Block, fn: ExprRewriter) -> ir.Block:
    return ir.Block(tuple(_rewrite_stmt(s, fn) for s in block.stmts))


def rewrite_kernel(kernel: ir.Kernel, fn: ExprRewriter) -> ir.Kernel:
    """Apply an expression rewriter to every expression in a kernel body."""
    return ir.Kernel(
        name=kernel.name,
        params=kernel.params,
        body=_rewrite_block(kernel.body, fn),
        dim=kernel.dim,
    )
