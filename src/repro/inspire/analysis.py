"""Static program analysis: the paper's feature extractor.

The training and deployment phases both start by extracting *static
program features* from the intermediate representation (§2 of the paper).
This module walks a kernel and produces per-work-item operation counts,
control-flow statistics and memory-access-pattern classifications.

Two evaluation modes cover the paper's two feature classes:

* **static** — loop trip counts that depend on scalar kernel arguments
  (i.e. on the problem size) are replaced by a nominal constant, giving
  pure compile-time features;
* **runtime** — given the actual scalar arguments of a launch, the same
  counts are re-evaluated exactly, yielding the *problem size dependent
  runtime features* that make the model size-sensitive.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Mapping

from . import ast as ir
from .types import BufferType, ScalarType, VectorType, is_floating

__all__ = [
    "AccessPattern",
    "OpCounts",
    "KernelAnalysis",
    "analyze_kernel",
    "DEFAULT_TRIP_COUNT",
]

#: Nominal trip count substituted for size-dependent loops in static mode.
DEFAULT_TRIP_COUNT = 16.0


class AccessPattern(enum.Enum):
    """Classification of a buffer access w.r.t. the global-id axis.

    The classification drives the memory-efficiency factor of the device
    cost model: GPUs lose most of their bandwidth on uncoalesced and
    indirect accesses, CPUs are far less sensitive.
    """

    COALESCED = "coalesced"  # stride 1 across adjacent work-items
    STRIDED = "strided"  # constant stride > 1 across work-items
    BROADCAST = "broadcast"  # same address for all work-items (cached)
    INDIRECT = "indirect"  # data-dependent (gather/scatter)

    @property
    def severity(self) -> int:
        """Ordering used when merging patterns (worst wins)."""
        return {
            AccessPattern.BROADCAST: 0,
            AccessPattern.COALESCED: 1,
            AccessPattern.STRIDED: 2,
            AccessPattern.INDIRECT: 3,
        }[self]


def _worst(a: AccessPattern, b: AccessPattern) -> AccessPattern:
    return a if a.severity >= b.severity else b


_SCALAR_COUNT_FIELDS = (
    "int_ops",
    "float_ops",
    "transcendental_ops",
    "vector_ops",
    "loads",
    "stores",
    "atomic_ops",
    "load_bytes",
    "store_bytes",
    "branches",
    "selects",
    "barriers",
    "divergent_ops",
)


@dataclass
class OpCounts:
    """Estimated per-work-item dynamic operation counts.

    All fields are floating point: loop weighting produces fractional
    expectations (e.g. an op behind a 50%-taken branch counts 0.5).
    ``bytes_by_buffer`` records global traffic per buffer so the device
    cost model can weight each buffer by its access-pattern efficiency.
    """

    int_ops: float = 0.0
    float_ops: float = 0.0
    transcendental_ops: float = 0.0
    vector_ops: float = 0.0
    loads: float = 0.0
    stores: float = 0.0
    atomic_ops: float = 0.0
    load_bytes: float = 0.0
    store_bytes: float = 0.0
    branches: float = 0.0
    selects: float = 0.0
    barriers: float = 0.0
    divergent_ops: float = 0.0
    bytes_by_buffer: dict[str, float] = field(default_factory=dict)

    def _add_buffer_bytes(self, name: str, nbytes: float) -> None:
        self.bytes_by_buffer[name] = self.bytes_by_buffer.get(name, 0.0) + nbytes

    def __iadd__(self, other: "OpCounts") -> "OpCounts":
        for name in _SCALAR_COUNT_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for k, v in other.bytes_by_buffer.items():
            self._add_buffer_bytes(k, v)
        return self

    def scaled(self, k: float) -> "OpCounts":
        """All counts multiplied by ``k`` (loop weighting)."""
        out = OpCounts()
        for name in _SCALAR_COUNT_FIELDS:
            setattr(out, name, getattr(self, name) * k)
        out.bytes_by_buffer = {n: v * k for n, v in self.bytes_by_buffer.items()}
        return out

    @property
    def compute_ops(self) -> float:
        """All arithmetic work, with transcendentals already separate."""
        return self.int_ops + self.float_ops + self.vector_ops

    @property
    def mem_bytes(self) -> float:
        return self.load_bytes + self.store_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOP-ish ops per byte of global traffic (roofline x-axis)."""
        denom = self.mem_bytes
        if denom <= 0.0:
            return float("inf") if self.compute_ops > 0 else 0.0
        return (self.float_ops + self.transcendental_ops + self.vector_ops) / denom

    @property
    def divergence_fraction(self) -> float:
        total = self.compute_ops + self.transcendental_ops
        if total <= 0.0:
            return 0.0
        return min(1.0, self.divergent_ops / total)


# ---------------------------------------------------------------------------
# Linear index-expression analysis
# ---------------------------------------------------------------------------


@dataclass
class _LinearForm:
    """``const + sum(coeff_i * var_i)`` with unknown/nonlinear markers."""

    const: float | None = 0.0
    coeffs: dict[str, float | None] = field(default_factory=dict)
    indirect: bool = False
    nonlinear: bool = False

    GID0 = "__gid0__"
    GID1 = "__gid1__"

    def plus(self, other: "_LinearForm", sign: float = 1.0) -> "_LinearForm":
        out = _LinearForm(
            const=None
            if self.const is None or other.const is None
            else self.const + sign * other.const,
            indirect=self.indirect or other.indirect,
            nonlinear=self.nonlinear or other.nonlinear,
        )
        out.coeffs = dict(self.coeffs)
        for k, v in other.coeffs.items():
            if k in out.coeffs:
                a = out.coeffs[k]
                out.coeffs[k] = None if a is None or v is None else a + sign * v
            else:
                out.coeffs[k] = None if v is None else sign * v
        return out

    def times_const(self, k: float | None) -> "_LinearForm":
        out = _LinearForm(
            const=None if self.const is None or k is None else self.const * k,
            indirect=self.indirect,
            nonlinear=self.nonlinear,
        )
        out.coeffs = {
            name: (None if c is None or k is None else c * k)
            for name, c in self.coeffs.items()
        }
        return out

    @property
    def is_const(self) -> bool:
        return not self.coeffs and not self.indirect and not self.nonlinear


def _linearize(
    expr: ir.Expr,
    scalar_env: Mapping[str, float],
    uniform_vars: frozenset[str] = frozenset(),
) -> _LinearForm:
    """Best-effort linear decomposition of an index expression.

    Variables tracked: the global ids (dims 0/1) and loop induction
    variables / locals (by name).  Scalar kernel parameters are uniform
    across work items: those present in ``scalar_env`` fold to constants,
    those merely named in ``uniform_vars`` become *symbolic* constants
    (``None``), which the pattern classifier treats as a large stride
    when they multiply a tracked variable.
    """
    if isinstance(expr, ir.Const):
        return _LinearForm(const=float(expr.value))
    if isinstance(expr, ir.WorkItemQuery):
        if expr.fn is ir.WorkItemFn.GLOBAL_ID:
            key = _LinearForm.GID0 if expr.dim == 0 else _LinearForm.GID1
            return _LinearForm(const=0.0, coeffs={key: 1.0})
        return _LinearForm(const=None)  # sizes etc.: uniform unknowns
    if isinstance(expr, ir.Var):
        if expr.name in scalar_env:
            return _LinearForm(const=float(scalar_env[expr.name]))
        if expr.name in uniform_vars:
            return _LinearForm(const=None)
        # A local or loop variable: tracked symbolically by name.
        return _LinearForm(const=0.0, coeffs={expr.name: 1.0})
    if isinstance(expr, ir.Cast):
        return _linearize(expr.expr, scalar_env, uniform_vars)
    if isinstance(expr, ir.Load):
        return _LinearForm(const=None, indirect=True)
    if isinstance(expr, ir.UnOp) and expr.op == "-":
        return _linearize(expr.operand, scalar_env, uniform_vars).times_const(-1.0)
    if isinstance(expr, ir.BinOp):
        lhs = _linearize(expr.lhs, scalar_env, uniform_vars)
        rhs = _linearize(expr.rhs, scalar_env, uniform_vars)
        if expr.op == "+":
            return lhs.plus(rhs)
        if expr.op == "-":
            return lhs.plus(rhs, sign=-1.0)
        if expr.op == "*":
            if lhs.is_const:
                return rhs.times_const(lhs.const)
            if rhs.is_const:
                return lhs.times_const(rhs.const)
            if not lhs.coeffs and not rhs.coeffs:
                return _LinearForm(
                    const=None,
                    indirect=lhs.indirect or rhs.indirect,
                    nonlinear=lhs.nonlinear or rhs.nonlinear,
                )
            out = lhs.plus(rhs)
            out.nonlinear = True
            return out
        if expr.op in ("/", "%", "<<", ">>", "&", "|", "^"):
            out = lhs.plus(rhs)
            # Division/modulo of gid-dependent terms scrambles locality.
            if lhs.coeffs or rhs.coeffs:
                out.nonlinear = True
            return out
        return _LinearForm(const=None, nonlinear=True)
    if isinstance(expr, ir.Select):
        a = _linearize(expr.if_true, scalar_env, uniform_vars)
        b = _linearize(expr.if_false, scalar_env, uniform_vars)
        out = a.plus(b).times_const(0.5)
        out.nonlinear = True
        return out
    if isinstance(expr, ir.Call):
        out = _LinearForm(const=None, nonlinear=True)
        for a in expr.args:
            sub = _linearize(a, scalar_env, uniform_vars)
            out.indirect |= sub.indirect
        return out
    return _LinearForm(const=None, nonlinear=True)


def classify_index(
    expr: ir.Expr,
    scalar_env: Mapping[str, float] | None = None,
    uniform_vars: frozenset[str] = frozenset(),
) -> AccessPattern:
    """Classify one buffer index expression into an AccessPattern."""
    form = _linearize(expr, scalar_env or {}, uniform_vars)
    if form.indirect:
        return AccessPattern.INDIRECT
    if form.nonlinear:
        return AccessPattern.STRIDED
    gid_coeff = form.coeffs.get(_LinearForm.GID0)
    if gid_coeff is None and _LinearForm.GID0 in form.coeffs:
        return AccessPattern.STRIDED  # symbolic stride (e.g. gid * n)
    if gid_coeff in (None, 0.0):
        # No dependence on gid0: either a pure broadcast or a loop sweep.
        loop_coeffs = [
            c
            for k, c in form.coeffs.items()
            if k not in (_LinearForm.GID0, _LinearForm.GID1)
        ]
        gid1 = form.coeffs.get(_LinearForm.GID1)
        if gid1 not in (None, 0.0) and _LinearForm.GID1 in form.coeffs:
            return (
                AccessPattern.STRIDED if abs(gid1) != 1.0 else AccessPattern.COALESCED
            )
        if loop_coeffs:
            return AccessPattern.BROADCAST
        return AccessPattern.BROADCAST
    if abs(gid_coeff) == 1.0:
        return AccessPattern.COALESCED
    return AccessPattern.STRIDED


# ---------------------------------------------------------------------------
# Expression evaluation (for loop bounds)
# ---------------------------------------------------------------------------


def _try_eval(expr: ir.Expr, scalar_env: Mapping[str, float]) -> float | None:
    """Evaluate an expression to a number if it only involves constants
    and known scalar parameters; otherwise return None."""
    if isinstance(expr, ir.Const):
        return float(expr.value)
    if isinstance(expr, ir.Var):
        v = scalar_env.get(expr.name)
        return None if v is None else float(v)
    if isinstance(expr, ir.Cast):
        inner = _try_eval(expr.expr, scalar_env)
        if inner is None:
            return None
        if isinstance(expr.type, ScalarType) and not expr.type.floating:
            return float(int(inner))
        return inner
    if isinstance(expr, ir.UnOp):
        v = _try_eval(expr.operand, scalar_env)
        if v is None:
            return None
        return -v if expr.op == "-" else float(not v)
    if isinstance(expr, ir.BinOp):
        a = _try_eval(expr.lhs, scalar_env)
        b = _try_eval(expr.rhs, scalar_env)
        if a is None or b is None:
            return None
        try:
            if expr.op == "+":
                return a + b
            if expr.op == "-":
                return a - b
            if expr.op == "*":
                return a * b
            if expr.op == "/":
                if b == 0:
                    return None
                if not is_floating(expr.type):
                    return float(int(a) // int(b))
                return a / b
            if expr.op == "%":
                return float(int(a) % int(b)) if b else None
            if expr.op == "<<":
                return float(int(a) << int(b))
            if expr.op == ">>":
                return float(int(a) >> int(b))
        except (ValueError, OverflowError):
            return None
    if isinstance(expr, ir.Call):
        args = [_try_eval(a, scalar_env) for a in expr.args]
        if any(a is None for a in args):
            return None
        fn = {
            "min": min,
            "max": max,
            "fmin": min,
            "fmax": max,
            "sqrt": math.sqrt,
            "fabs": abs,
            "abs": abs,
            "floor": math.floor,
            "ceil": math.ceil,
            "log2": math.log2,
        }.get(expr.func)
        if fn is None:
            return None
        try:
            return float(fn(*args))  # type: ignore[arg-type]
        except (ValueError, TypeError):
            return None
    return None


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


@dataclass
class KernelAnalysis:
    """Analysis results for one kernel.

    Exposes both feature classes of the paper: call :meth:`op_counts`
    with no environment for static features, or with the launch's scalar
    arguments for runtime (problem-size-dependent) features.
    """

    kernel: ir.Kernel
    loop_count: int
    max_loop_depth: int
    has_size_dependent_loops: bool
    access_patterns: dict[str, AccessPattern]
    buffers_read: tuple[str, ...]
    buffers_written: tuple[str, ...]
    has_atomics: bool
    has_barriers: bool

    def op_counts(self, scalar_env: Mapping[str, float] | None = None) -> OpCounts:
        """Per-work-item op counts; exact when ``scalar_env`` is given.

        Results are memoized per scalar environment — the runtime asks
        for the same counts once per enqueued launch, which for iterated
        multi-device sweeps is hot enough to matter.
        """
        env = dict(scalar_env or {})
        key = tuple(sorted(env.items()))
        cache = self.__dict__.setdefault("_op_counts_cache", {})
        hit = cache.get(key)
        if hit is not None:
            return hit.scaled(1.0)  # defensive copy; callers may mutate
        counts = OpCounts()
        ctx = _DivergenceContext(
            uniform=frozenset(p.name for p in self.kernel.scalar_params),
            defs=_single_assignment_map(self.kernel),
            loop_vars=_loop_var_names(self.kernel),
        )
        _count_block(
            self.kernel.body, env, weight=1.0, divergent=False, out=counts, ctx=ctx
        )
        cache[key] = counts
        return counts.scaled(1.0)

    @property
    def worst_access_pattern(self) -> AccessPattern:
        worst = AccessPattern.BROADCAST
        for p in self.access_patterns.values():
            worst = _worst(worst, p)
        return worst

    def pattern_of(self, buffer_name: str) -> AccessPattern:
        """Access pattern of one buffer (COALESCED if never accessed)."""
        return self.access_patterns.get(buffer_name, AccessPattern.COALESCED)

    def static_features(self) -> dict[str, float]:
        """The flat static feature dictionary stored in the training DB."""
        c = self.op_counts()
        pattern_counts = {p: 0.0 for p in AccessPattern}
        for p in self.access_patterns.values():
            pattern_counts[p] += 1.0
        n_buffers = max(1.0, float(len(self.access_patterns)))
        return {
            "st_int_ops": c.int_ops,
            "st_float_ops": c.float_ops,
            "st_transcendental_ops": c.transcendental_ops,
            "st_vector_ops": c.vector_ops,
            "st_loads": c.loads,
            "st_stores": c.stores,
            "st_atomics": c.atomic_ops,
            "st_load_bytes": c.load_bytes,
            "st_store_bytes": c.store_bytes,
            "st_branches": c.branches,
            "st_selects": c.selects,
            "st_barriers": c.barriers,
            "st_divergence": c.divergence_fraction,
            "st_arith_intensity": min(c.arithmetic_intensity, 1e6),
            "st_loop_count": float(self.loop_count),
            "st_loop_depth": float(self.max_loop_depth),
            "st_size_dep_loops": 1.0 if self.has_size_dependent_loops else 0.0,
            "st_frac_coalesced": pattern_counts[AccessPattern.COALESCED] / n_buffers,
            "st_frac_strided": pattern_counts[AccessPattern.STRIDED] / n_buffers,
            "st_frac_broadcast": pattern_counts[AccessPattern.BROADCAST] / n_buffers,
            "st_frac_indirect": pattern_counts[AccessPattern.INDIRECT] / n_buffers,
        }


def _is_float_op(ty: object) -> bool:
    return is_floating(ty)  # type: ignore[arg-type]


def _count_expr(expr: ir.Expr, weight: float, divergent: bool, out: OpCounts) -> None:
    if isinstance(expr, (ir.Const, ir.Var, ir.WorkItemQuery)):
        return
    if isinstance(expr, ir.Load):
        _count_expr(expr.index, weight, divergent, out)
        out.loads += weight
        out.load_bytes += weight * expr.type.sizeof()
        out._add_buffer_bytes(expr.buffer.name, weight * expr.type.sizeof())
        if divergent:
            out.divergent_ops += weight
        return
    if isinstance(expr, ir.BinOp):
        _count_expr(expr.lhs, weight, divergent, out)
        _count_expr(expr.rhs, weight, divergent, out)
        if isinstance(expr.lhs.type, VectorType) or isinstance(
            expr.rhs.type, VectorType
        ):
            out.vector_ops += weight
        elif _is_float_op(expr.lhs.type) or _is_float_op(expr.rhs.type):
            out.float_ops += weight
        else:
            out.int_ops += weight
        if divergent:
            out.divergent_ops += weight
        return
    if isinstance(expr, ir.UnOp):
        _count_expr(expr.operand, weight, divergent, out)
        if _is_float_op(expr.operand.type):
            out.float_ops += weight
        else:
            out.int_ops += weight
        if divergent:
            out.divergent_ops += weight
        return
    if isinstance(expr, ir.Call):
        for a in expr.args:
            _count_expr(a, weight, divergent, out)
        if expr.func in ir.TRANSCENDENTAL_FUNCTIONS:
            out.transcendental_ops += weight
        elif _is_float_op(expr.type):
            out.float_ops += weight
        else:
            out.int_ops += weight
        if divergent:
            out.divergent_ops += weight
        return
    if isinstance(expr, ir.Cast):
        _count_expr(expr.expr, weight, divergent, out)
        out.int_ops += 0.0  # casts are free in the model
        return
    if isinstance(expr, ir.Select):
        _count_expr(expr.cond, weight, divergent, out)
        _count_expr(expr.if_true, weight, divergent, out)
        _count_expr(expr.if_false, weight, divergent, out)
        out.selects += weight
        if divergent:
            out.divergent_ops += weight
        return
    raise TypeError(f"unknown expression {type(expr).__name__}")


def _cond_depends_on_gid(expr: ir.Expr) -> bool:
    from .visitors import walk

    return any(isinstance(n, ir.WorkItemQuery) for n in walk(expr))


def _is_affine_guard_operand(
    expr: ir.Expr,
    uniform: frozenset[str],
    defs: Mapping[str, ir.Expr],
    loop_vars: frozenset[str],
) -> bool:
    """True when the operand is affine in the global id over uniforms.

    Such operands give *range guards*: conditions that evaluate
    identically for all but one wavefront (``gid < n``, interior checks
    of stencils, in-loop bounds tests ``gid*chunk + k < n``), which SIMT
    hardware executes without divergence cost.  Loop induction variables
    are uniform across work items; unresolved multi-assigned locals are
    not (they usually carry loaded data).
    """
    form = _linearize(_substitute_locals(expr, dict(defs)), {}, uniform)
    if form.indirect or form.nonlinear:
        return False
    allowed = {_LinearForm.GID0, _LinearForm.GID1} | loop_vars
    for key in form.coeffs:
        if key not in allowed:
            return False
    return True


def branch_diverges(
    cond: ir.Expr,
    uniform: frozenset[str],
    defs: Mapping[str, ir.Expr],
    loop_vars: frozenset[str] = frozenset(),
) -> bool:
    """Whether a branch condition causes per-work-item divergence.

    Conjunctions/disjunctions of gid-affine range guards are uniform
    across a wavefront (modulo one boundary wavefront) — these are the
    ubiquitous ``if (gid < n)`` guards and stencil interior checks.
    Everything else (data-dependent loads, modulo patterns, reduction
    comparisons) is treated as divergent.
    """
    if isinstance(cond, ir.BinOp):
        if cond.op in ir.LOGICAL_OPS:
            return branch_diverges(
                cond.lhs, uniform, defs, loop_vars
            ) or branch_diverges(cond.rhs, uniform, defs, loop_vars)
        if cond.op in ir.COMPARISON_OPS:
            return not (
                _is_affine_guard_operand(cond.lhs, uniform, defs, loop_vars)
                and _is_affine_guard_operand(cond.rhs, uniform, defs, loop_vars)
            )
        return True
    if isinstance(cond, ir.UnOp) and cond.op == "!":
        return branch_diverges(cond.operand, uniform, defs, loop_vars)
    if isinstance(cond, ir.Const):
        return False
    return True


def _loop_var_names(kernel: ir.Kernel) -> frozenset[str]:
    from .visitors import walk

    return frozenset(
        n.var.name for n in walk(kernel.body) if isinstance(n, ir.For)
    )


@dataclass(frozen=True)
class _DivergenceContext:
    """Kernel-level info needed to classify branch divergence."""

    uniform: frozenset[str]
    defs: Mapping[str, ir.Expr]
    loop_vars: frozenset[str] = frozenset()


def _loop_trips(stmt: ir.For, env: Mapping[str, float]) -> float:
    start = _try_eval(stmt.start, env)
    end = _try_eval(stmt.end, env)
    step = _try_eval(stmt.step, env)
    if start is None or end is None or step in (None, 0.0):
        return DEFAULT_TRIP_COUNT
    trips = (end - start) / step  # type: ignore[operator]
    return max(0.0, math.ceil(trips))


def _count_block(
    block: ir.Block,
    env: Mapping[str, float],
    weight: float,
    divergent: bool,
    out: OpCounts,
    ctx: _DivergenceContext,
) -> None:
    for stmt in block.stmts:
        _count_stmt(stmt, env, weight, divergent, out, ctx)


def _count_stmt(
    stmt: ir.Stmt,
    env: Mapping[str, float],
    weight: float,
    divergent: bool,
    out: OpCounts,
    ctx: _DivergenceContext,
) -> None:
    if isinstance(stmt, ir.Assign):
        _count_expr(stmt.value, weight, divergent, out)
    elif isinstance(stmt, ir.Store):
        _count_expr(stmt.index, weight, divergent, out)
        _count_expr(stmt.value, weight, divergent, out)
        out.stores += weight
        out.store_bytes += weight * stmt.value.type.sizeof()
        out._add_buffer_bytes(stmt.buffer.name, weight * stmt.value.type.sizeof())
    elif isinstance(stmt, ir.AtomicUpdate):
        _count_expr(stmt.index, weight, divergent, out)
        _count_expr(stmt.value, weight, divergent, out)
        out.atomic_ops += weight
        elem = stmt.buffer.type
        size = elem.element.sizeof() if isinstance(elem, BufferType) else 4
        # An atomic RMW both reads and writes the cell.
        out.load_bytes += weight * size
        out.store_bytes += weight * size
        out._add_buffer_bytes(stmt.buffer.name, 2.0 * weight * size)
    elif isinstance(stmt, ir.Block):
        _count_block(stmt, env, weight, divergent, out, ctx)
    elif isinstance(stmt, ir.If):
        _count_expr(stmt.cond, weight, divergent, out)
        out.branches += weight
        div = divergent or branch_diverges(
            stmt.cond, ctx.uniform, ctx.defs, ctx.loop_vars
        )
        # Expected execution: both arms weighted by a 50% taken-probability
        # unless an arm is empty (the common boundary-guard shape).
        has_else = bool(stmt.else_body.stmts)
        p_then = 0.5 if has_else else 0.9
        _count_block(stmt.then_body, env, weight * p_then, div, out, ctx)
        if has_else:
            _count_block(stmt.else_body, env, weight * 0.5, div, out, ctx)
    elif isinstance(stmt, ir.For):
        _count_expr(stmt.start, weight, divergent, out)
        trips = _loop_trips(stmt, env)
        # Loop bookkeeping: one compare + one increment per iteration,
        # plus one back-edge branch (clause-breaking on VLIW devices).
        out.int_ops += weight * trips * 2.0
        out.branches += weight * trips
        inner_env = dict(env)
        inner_env.pop(stmt.var.name, None)
        _count_block(stmt.body, inner_env, weight * trips, divergent, out, ctx)
    elif isinstance(stmt, ir.While):
        # One condition evaluation + back-edge per expected iteration.
        out.branches += weight * stmt.expected_trips
        # Data-dependent trip counts diverge by nature (work items exit
        # the loop at different iterations — e.g. Mandelbrot escape).
        div = divergent or branch_diverges(
            stmt.cond, ctx.uniform, ctx.defs, ctx.loop_vars
        )
        _count_expr(stmt.cond, weight * stmt.expected_trips, div, out)
        _count_block(stmt.body, env, weight * stmt.expected_trips, div, out, ctx)
    elif isinstance(stmt, ir.Barrier):
        out.barriers += weight
    else:
        raise TypeError(f"unknown statement {type(stmt).__name__}")


def _collect_structure(
    block: ir.Block, depth: int, state: dict[str, object]
) -> None:
    for stmt in block.stmts:
        if isinstance(stmt, ir.For):
            state["loop_count"] = state["loop_count"] + 1  # type: ignore[operator]
            depth_now = depth + 1
            state["max_depth"] = max(state["max_depth"], depth_now)  # type: ignore[call-overload]
            if _try_eval(stmt.end, {}) is None:
                state["size_dep"] = True
            _collect_structure(stmt.body, depth + 1, state)
        elif isinstance(stmt, ir.While):
            state["loop_count"] = state["loop_count"] + 1  # type: ignore[operator]
            depth_now = depth + 1
            state["max_depth"] = max(state["max_depth"], depth_now)  # type: ignore[call-overload]
            state["size_dep"] = True
            _collect_structure(stmt.body, depth + 1, state)
        elif isinstance(stmt, ir.If):
            _collect_structure(stmt.then_body, depth, state)
            _collect_structure(stmt.else_body, depth, state)
        elif isinstance(stmt, ir.Block):
            _collect_structure(stmt, depth, state)


def _single_assignment_map(kernel: ir.Kernel) -> dict[str, ir.Expr]:
    """Map locals assigned exactly once to their defining expression.

    Used to see through the common OpenCL idiom of aliasing the global id
    into a named local (``int row = get_global_id(1);``) before indexing.
    """
    from .visitors import walk

    counts: dict[str, int] = {}
    defs: dict[str, ir.Expr] = {}
    for node in walk(kernel.body):
        if isinstance(node, ir.Assign):
            counts[node.var.name] = counts.get(node.var.name, 0) + 1
            defs[node.var.name] = node.value
        elif isinstance(node, ir.For):
            # Induction variables are multiply-assigned by definition.
            counts[node.var.name] = counts.get(node.var.name, 0) + 2
    return {n: e for n, e in defs.items() if counts.get(n, 0) == 1}


def _substitute_locals(
    expr: ir.Expr, defs: Mapping[str, ir.Expr], depth: int = 4
) -> ir.Expr:
    """Inline single-assignment locals into an index expression."""
    if depth <= 0:
        return expr
    from .visitors import rewrite_expr

    def sub(e: ir.Expr) -> ir.Expr | None:
        if isinstance(e, ir.Var) and e.name in defs:
            return _substitute_locals(defs[e.name], defs, depth - 1)
        return None

    return rewrite_expr(expr, sub)


def analyze_kernel(kernel: ir.Kernel) -> KernelAnalysis:
    """Run all static analyses over ``kernel``."""
    from .visitors import walk

    patterns: dict[str, AccessPattern] = {}
    reads: set[str] = set()
    writes: set[str] = set()
    has_atomics = False
    has_barriers = False
    uniform = frozenset(p.name for p in kernel.scalar_params)
    defs = _single_assignment_map(kernel)

    def classify(index: ir.Expr) -> AccessPattern:
        return classify_index(_substitute_locals(index, defs), uniform_vars=uniform)

    for node in walk(kernel.body):
        if isinstance(node, ir.Load):
            reads.add(node.buffer.name)
            p = classify(node.index)
            patterns[node.buffer.name] = _worst(
                patterns.get(node.buffer.name, AccessPattern.BROADCAST), p
            )
        elif isinstance(node, ir.Store):
            writes.add(node.buffer.name)
            p = classify(node.index)
            patterns[node.buffer.name] = _worst(
                patterns.get(node.buffer.name, AccessPattern.BROADCAST), p
            )
        elif isinstance(node, ir.AtomicUpdate):
            writes.add(node.buffer.name)
            has_atomics = True
            patterns[node.buffer.name] = AccessPattern.INDIRECT
        elif isinstance(node, ir.Barrier):
            has_barriers = True

    state: dict[str, object] = {"loop_count": 0, "max_depth": 0, "size_dep": False}
    _collect_structure(kernel.body, 0, state)

    return KernelAnalysis(
        kernel=kernel,
        loop_count=int(state["loop_count"]),  # type: ignore[arg-type]
        max_loop_depth=int(state["max_depth"]),  # type: ignore[arg-type]
        has_size_dependent_loops=bool(state["size_dep"]),
        access_patterns=patterns,
        buffers_read=tuple(sorted(reads)),
        buffers_written=tuple(sorted(writes)),
        has_atomics=has_atomics,
        has_barriers=has_barriers,
    )
