"""INSPIRE-like parallel intermediate representation.

This subpackage is the reproduction of the Insieme compiler's IR layer:
kernels are represented as typed ASTs from which static program features
are extracted (``analysis``), OpenCL C source is emitted (``printer``)
and reference semantics are defined (``interpreter``).
"""

from .analysis import (
    DEFAULT_TRIP_COUNT,
    AccessPattern,
    KernelAnalysis,
    OpCounts,
    analyze_kernel,
    classify_index,
)
from .ast import (
    Barrier,
    BinOp,
    Block,
    Call,
    Cast,
    Const,
    For,
    If,
    Kernel,
    KernelParam,
    Load,
    ParamIntent,
    Select,
    Stmt,
    Store,
    UnOp,
    Var,
    While,
    WorkItemFn,
    WorkItemQuery,
)
from .builder import E, Intent, KernelBuilder, as_expr, const
from .interpreter import InterpreterError, run_kernel, run_work_item
from .printer import print_expr, print_kernel
from .types import (
    BOOL,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    UINT,
    BufferType,
    ScalarType,
    Type,
    VectorType,
    promote,
)
from .validate import ValidationError, validate_kernel
from .visitors import count_nodes, rewrite_expr, rewrite_kernel, walk, walk_exprs

__all__ = [
    "AccessPattern",
    "KernelAnalysis",
    "OpCounts",
    "analyze_kernel",
    "classify_index",
    "DEFAULT_TRIP_COUNT",
    "Barrier",
    "BinOp",
    "Block",
    "Call",
    "Cast",
    "Const",
    "For",
    "If",
    "Kernel",
    "KernelParam",
    "Load",
    "ParamIntent",
    "Select",
    "Stmt",
    "Store",
    "UnOp",
    "Var",
    "While",
    "WorkItemFn",
    "WorkItemQuery",
    "KernelBuilder",
    "E",
    "Intent",
    "const",
    "as_expr",
    "run_kernel",
    "run_work_item",
    "InterpreterError",
    "print_kernel",
    "print_expr",
    "validate_kernel",
    "ValidationError",
    "walk",
    "walk_exprs",
    "rewrite_expr",
    "rewrite_kernel",
    "count_nodes",
    "BOOL",
    "INT",
    "UINT",
    "LONG",
    "FLOAT",
    "DOUBLE",
    "ScalarType",
    "VectorType",
    "BufferType",
    "Type",
    "promote",
]
