"""Well-formedness checking for kernels.

The frontend runs this after building a kernel; the multi-device backend
relies on these invariants (e.g. every referenced variable is a parameter
or a previously-declared local; no writes to ``IN`` buffers).
"""

from __future__ import annotations

from . import ast as ir
from .types import BOOL, BufferType, ScalarType

__all__ = ["ValidationError", "validate_kernel"]


class ValidationError(Exception):
    """Raised when a kernel violates an IR invariant."""


def validate_kernel(kernel: ir.Kernel) -> None:
    """Check a kernel's structural invariants; raises ValidationError.

    Checks performed:
      * parameter names are unique and non-empty;
      * ND-range dimensionality is 1 or 2 and intrinsics respect it;
      * every Var reference resolves to a parameter or a declared local;
      * locals are declared (``Assign(declares=True)``) before re-assignment;
      * loads/stores/atomics target buffer parameters with scalar indices;
      * no stores to ``IN`` buffers, no loads from pure ``OUT`` buffers;
      * condition expressions are boolean;
      * blocks inside control flow are well-formed recursively.
    """
    names = [p.name for p in kernel.params]
    if len(set(names)) != len(names):
        raise ValidationError(f"kernel {kernel.name}: duplicate parameter names")
    if any(not n for n in names):
        raise ValidationError(f"kernel {kernel.name}: empty parameter name")
    if kernel.dim not in (1, 2):
        raise ValidationError(f"kernel {kernel.name}: dim must be 1 or 2")

    env: dict[str, ir.KernelParam | None] = {p.name: p for p in kernel.params}
    declared: set[str] = set()
    _check_block(kernel, kernel.body, env, declared)


def _check_block(
    kernel: ir.Kernel,
    block: ir.Block,
    env: dict[str, ir.KernelParam | None],
    declared: set[str],
) -> None:
    for stmt in block.stmts:
        _check_stmt(kernel, stmt, env, declared)


def _check_stmt(
    kernel: ir.Kernel,
    stmt: ir.Stmt,
    env: dict[str, ir.KernelParam | None],
    declared: set[str],
) -> None:
    if isinstance(stmt, ir.Assign):
        _check_expr(kernel, stmt.value, env, declared)
        if stmt.var.name in env and env[stmt.var.name] is not None:
            raise ValidationError(
                f"kernel {kernel.name}: assignment to parameter {stmt.var.name!r}"
            )
        if stmt.declares:
            declared.add(stmt.var.name)
            env.setdefault(stmt.var.name, None)
        elif stmt.var.name not in declared:
            raise ValidationError(
                f"kernel {kernel.name}: assignment to undeclared local "
                f"{stmt.var.name!r}"
            )
    elif isinstance(stmt, ir.Store):
        _check_buffer_access(kernel, stmt.buffer, env, write=True)
        _check_expr(kernel, stmt.index, env, declared)
        _check_expr(kernel, stmt.value, env, declared)
    elif isinstance(stmt, ir.AtomicUpdate):
        _check_buffer_access(kernel, stmt.buffer, env, write=True)
        _check_expr(kernel, stmt.index, env, declared)
        _check_expr(kernel, stmt.value, env, declared)
        if stmt.op not in ("add", "min", "max"):
            raise ValidationError(
                f"kernel {kernel.name}: unknown atomic op {stmt.op!r}"
            )
    elif isinstance(stmt, ir.Block):
        _check_block(kernel, stmt, env, declared)
    elif isinstance(stmt, ir.If):
        _check_expr(kernel, stmt.cond, env, declared)
        if stmt.cond.type is not BOOL:
            raise ValidationError(f"kernel {kernel.name}: if-condition is not bool")
        _check_block(kernel, stmt.then_body, env, declared)
        _check_block(kernel, stmt.else_body, env, declared)
    elif isinstance(stmt, ir.For):
        for e in (stmt.start, stmt.end, stmt.step):
            _check_expr(kernel, e, env, declared)
        declared.add(stmt.var.name)
        env.setdefault(stmt.var.name, None)
        _check_block(kernel, stmt.body, env, declared)
    elif isinstance(stmt, ir.While):
        _check_expr(kernel, stmt.cond, env, declared)
        if stmt.cond.type is not BOOL:
            raise ValidationError(f"kernel {kernel.name}: while-condition is not bool")
        if stmt.expected_trips <= 0:
            raise ValidationError(
                f"kernel {kernel.name}: expected_trips must be positive"
            )
        _check_block(kernel, stmt.body, env, declared)
    elif isinstance(stmt, ir.Barrier):
        pass
    else:
        raise ValidationError(
            f"kernel {kernel.name}: unknown statement {type(stmt).__name__}"
        )


def _check_buffer_access(
    kernel: ir.Kernel,
    buf: ir.Var,
    env: dict[str, ir.KernelParam | None],
    write: bool,
) -> None:
    param = env.get(buf.name)
    if param is None:
        raise ValidationError(
            f"kernel {kernel.name}: {buf.name!r} is not a buffer parameter"
        )
    if not isinstance(param.type, BufferType):
        raise ValidationError(f"kernel {kernel.name}: {buf.name!r} is not a buffer")
    if write and param.intent is ir.ParamIntent.IN:
        raise ValidationError(
            f"kernel {kernel.name}: write to IN buffer {buf.name!r}"
        )
    if not write and param.intent is ir.ParamIntent.OUT:
        raise ValidationError(
            f"kernel {kernel.name}: read from OUT buffer {buf.name!r}"
        )


def _check_expr(
    kernel: ir.Kernel,
    expr: ir.Expr,
    env: dict[str, ir.KernelParam | None],
    declared: set[str],
) -> None:
    if isinstance(expr, ir.Const):
        return
    if isinstance(expr, ir.Var):
        if expr.name not in env and expr.name not in declared:
            raise ValidationError(
                f"kernel {kernel.name}: reference to unknown variable {expr.name!r}"
            )
        return
    if isinstance(expr, ir.WorkItemQuery):
        if not 0 <= expr.dim < kernel.dim:
            raise ValidationError(
                f"kernel {kernel.name}: {expr.fn.value}({expr.dim}) exceeds "
                f"dim {kernel.dim}"
            )
        return
    if isinstance(expr, ir.Load):
        _check_buffer_access(kernel, expr.buffer, env, write=False)
        _check_expr(kernel, expr.index, env, declared)
        if not isinstance(expr.index.type, ScalarType) or expr.index.type.floating:
            raise ValidationError(f"kernel {kernel.name}: non-integer load index")
        return
    if isinstance(expr, ir.BinOp):
        if (
            expr.op not in ir.BINARY_OPS
            and expr.op not in ir.COMPARISON_OPS
            and expr.op not in ir.LOGICAL_OPS
            and expr.op not in ir.BITWISE_OPS
        ):
            raise ValidationError(f"kernel {kernel.name}: unknown operator {expr.op!r}")
        _check_expr(kernel, expr.lhs, env, declared)
        _check_expr(kernel, expr.rhs, env, declared)
        return
    if isinstance(expr, ir.UnOp):
        _check_expr(kernel, expr.operand, env, declared)
        return
    if isinstance(expr, ir.Call):
        if expr.func not in ir.BUILTIN_FUNCTIONS:
            raise ValidationError(
                f"kernel {kernel.name}: unknown builtin {expr.func!r}"
            )
        if len(expr.args) != ir.BUILTIN_FUNCTIONS[expr.func]:
            raise ValidationError(
                f"kernel {kernel.name}: {expr.func} arity mismatch"
            )
        for a in expr.args:
            _check_expr(kernel, a, env, declared)
        return
    if isinstance(expr, (ir.Cast, ir.Select)):
        for c in expr.children():
            _check_expr(kernel, c, env, declared)  # type: ignore[arg-type]
        return
    raise ValidationError(
        f"kernel {kernel.name}: unknown expression {type(expr).__name__}"
    )
