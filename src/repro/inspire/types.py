"""Type system for the INSPIRE-like kernel intermediate representation.

The paper's compiler translates OpenCL C into the Insieme parallel IR
(INSPIRE).  This module provides the small, OpenCL-flavoured type lattice
used by our IR: scalar types with NumPy dtype mappings, short vector types
(float4 and friends) and buffer (global-pointer) types.

Types are immutable value objects; identity comparisons are by value so
they can be used freely as dict keys and in dataclass fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

__all__ = [
    "Type",
    "ScalarType",
    "VectorType",
    "BufferType",
    "BOOL",
    "INT",
    "UINT",
    "LONG",
    "FLOAT",
    "DOUBLE",
    "promote",
    "is_floating",
    "is_integer",
]


@dataclass(frozen=True)
class Type:
    """Base class for all IR types."""

    def sizeof(self) -> int:
        """Size of one value of this type in bytes."""
        raise NotImplementedError

    @property
    def cl_name(self) -> str:
        """The OpenCL C spelling of this type."""
        raise NotImplementedError


@dataclass(frozen=True)
class ScalarType(Type):
    """A scalar OpenCL type (``int``, ``float``, ...).

    Attributes:
        name: OpenCL C spelling.
        dtype_name: the NumPy dtype used to carry values of this type.
        bytes: storage size in bytes.
        floating: True for real-valued types.
        rank: promotion rank; larger rank wins in mixed arithmetic.
    """

    name: str
    dtype_name: str
    bytes: int
    floating: bool
    rank: int

    _REGISTRY: ClassVar[dict[str, "ScalarType"]] = {}

    def __post_init__(self) -> None:
        ScalarType._REGISTRY[self.name] = self

    def sizeof(self) -> int:
        return self.bytes

    @property
    def cl_name(self) -> str:
        return self.name

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.dtype_name)

    @classmethod
    def by_name(cls, name: str) -> "ScalarType":
        """Look up a scalar type by its OpenCL spelling."""
        return cls._REGISTRY[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScalarType({self.name})"


BOOL = ScalarType("bool", "bool", 1, floating=False, rank=0)
INT = ScalarType("int", "int32", 4, floating=False, rank=1)
UINT = ScalarType("uint", "uint32", 4, floating=False, rank=2)
LONG = ScalarType("long", "int64", 8, floating=False, rank=3)
FLOAT = ScalarType("float", "float32", 4, floating=True, rank=4)
DOUBLE = ScalarType("double", "float64", 8, floating=True, rank=5)


@dataclass(frozen=True)
class VectorType(Type):
    """An OpenCL short-vector type such as ``float4``.

    Vector operations are a key static feature in the paper: the ATI VLIW
    GPUs in platform mc1 only reach good efficiency on explicitly
    vectorized kernels, so the feature extractor counts vector arithmetic
    separately from scalar arithmetic.
    """

    element: ScalarType
    width: int

    def __post_init__(self) -> None:
        if self.width not in (2, 3, 4, 8, 16):
            raise ValueError(f"invalid OpenCL vector width {self.width}")

    def sizeof(self) -> int:
        return self.element.bytes * self.width

    @property
    def cl_name(self) -> str:
        return f"{self.element.name}{self.width}"

    @property
    def dtype(self) -> np.dtype:
        return self.element.dtype


@dataclass(frozen=True)
class BufferType(Type):
    """A pointer to a global-memory buffer of ``element`` values."""

    element: ScalarType | VectorType

    def sizeof(self) -> int:
        # Size of the pointer itself on a 64-bit host.
        return 8

    @property
    def cl_name(self) -> str:
        return f"__global {self.element.cl_name}*"

    @property
    def dtype(self) -> np.dtype:
        return self.element.dtype


def is_floating(ty: Type) -> bool:
    """True for float/double scalars and vectors thereof."""
    if isinstance(ty, ScalarType):
        return ty.floating
    if isinstance(ty, VectorType):
        return ty.element.floating
    return False


def is_integer(ty: Type) -> bool:
    """True for integral scalars and vectors thereof (bool excluded)."""
    if isinstance(ty, ScalarType):
        return not ty.floating and ty is not BOOL
    if isinstance(ty, VectorType):
        return not ty.element.floating
    return False


def promote(a: Type, b: Type) -> Type:
    """Usual-arithmetic-conversion result type of a binary operation.

    Mirrors OpenCL C promotion closely enough for our kernels: the higher
    promotion rank wins; a vector type absorbs a scalar operand of a
    compatible element type (component-wise broadcast).
    """
    if isinstance(a, VectorType) and isinstance(b, VectorType):
        if a.width != b.width:
            raise TypeError(f"vector width mismatch: {a.cl_name} vs {b.cl_name}")
        elem = promote(a.element, b.element)
        assert isinstance(elem, ScalarType)
        return VectorType(elem, a.width)
    if isinstance(a, VectorType):
        elem = promote(a.element, b)
        assert isinstance(elem, ScalarType)
        return VectorType(elem, a.width)
    if isinstance(b, VectorType):
        return promote(b, a)
    if not isinstance(a, ScalarType) or not isinstance(b, ScalarType):
        raise TypeError(f"cannot promote {a} and {b}")
    return a if a.rank >= b.rank else b
