"""Reference interpreter: executes a kernel one work-item at a time.

This is the semantic ground truth for the IR.  It is deliberately simple
and slow (pure Python, one work-item per call); the test suite uses it to
validate that every benchmark's vectorized NumPy device implementation
computes the same function as its IR kernel.  The simulated devices never
call into the interpreter on hot paths.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from . import ast as ir
from .types import BOOL, ScalarType, is_floating

__all__ = ["InterpreterError", "run_kernel", "run_work_item"]

#: Safety valve for data-dependent loops.
MAX_WHILE_ITERATIONS = 1_000_000


class InterpreterError(Exception):
    """Raised on out-of-bounds accesses or malformed kernels."""


_BUILTINS = {
    "sqrt": lambda x: math.sqrt(x) if x >= 0 else float("nan"),
    "rsqrt": lambda x: 1.0 / math.sqrt(x) if x > 0 else float("inf"),
    "exp": math.exp,
    "log": lambda x: (
        math.log(x) if x > 0 else float("-inf") if x == 0 else float("nan")
    ),
    "log2": lambda x: (
        math.log2(x) if x > 0 else float("-inf") if x == 0 else float("nan")
    ),
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "atan": math.atan,
    "atan2": math.atan2,
    "pow": lambda x, y: math.pow(x, y),
    "erf": math.erf,
    "fabs": abs,
    "floor": math.floor,
    "ceil": math.ceil,
    "fmin": min,
    "fmax": max,
    "min": min,
    "max": max,
    "abs": abs,
    "clamp": lambda x, lo, hi: min(max(x, lo), hi),
    "mad": lambda a, b, c: a * b + c,
    "mix": lambda a, b, t: a + (b - a) * t,
}


class _WorkItemState:
    """Evaluation environment for a single work item."""

    __slots__ = ("gid", "gsize", "lid", "lsize", "group", "locals", "buffers")

    def __init__(
        self,
        gid: tuple[int, ...],
        gsize: tuple[int, ...],
        local_size: tuple[int, ...],
        buffers: Mapping[str, np.ndarray],
        scalars: Mapping[str, float | int],
    ):
        self.gid = gid
        self.gsize = gsize
        self.lsize = local_size
        self.lid = tuple(g % l for g, l in zip(gid, local_size))
        self.group = tuple(g // l for g, l in zip(gid, local_size))
        self.locals: dict[str, float | int | bool] = dict(scalars)
        self.buffers = buffers


def _coerce(value: float | int | bool, ty: ir.Expr | ScalarType) -> float | int | bool:
    target = ty if isinstance(ty, ScalarType) else ty.type  # type: ignore[union-attr]
    if isinstance(target, ScalarType):
        if target is BOOL:
            return bool(value)
        if target.floating:
            if target.name == "float":
                return float(np.float32(value))
            return float(value)
        return int(value)
    return value


def _eval(expr: ir.Expr, st: _WorkItemState) -> float | int | bool:
    if isinstance(expr, ir.Const):
        return _coerce(expr.value, expr)
    if isinstance(expr, ir.Var):
        if expr.name not in st.locals:
            raise InterpreterError(f"undefined variable {expr.name!r}")
        return st.locals[expr.name]
    if isinstance(expr, ir.WorkItemQuery):
        table = {
            ir.WorkItemFn.GLOBAL_ID: st.gid,
            ir.WorkItemFn.GLOBAL_SIZE: st.gsize,
            ir.WorkItemFn.LOCAL_ID: st.lid,
            ir.WorkItemFn.LOCAL_SIZE: st.lsize,
            ir.WorkItemFn.GROUP_ID: st.group,
            ir.WorkItemFn.NUM_GROUPS: tuple(
                g // l for g, l in zip(st.gsize, st.lsize)
            ),
        }
        return int(table[expr.fn][expr.dim])
    if isinstance(expr, ir.Load):
        arr = st.buffers.get(expr.buffer.name)
        if arr is None:
            raise InterpreterError(f"unbound buffer {expr.buffer.name!r}")
        idx = int(_eval(expr.index, st))
        if not 0 <= idx < arr.size:
            raise InterpreterError(
                f"load out of bounds: {expr.buffer.name}[{idx}] (size {arr.size})"
            )
        return arr.flat[idx].item()
    if isinstance(expr, ir.Cast):
        return _coerce(_eval(expr.expr, st), expr)
    if isinstance(expr, ir.UnOp):
        v = _eval(expr.operand, st)
        if expr.op == "-":
            return _coerce(-v, expr)  # type: ignore[operator]
        if expr.op == "!":
            return not v
        raise InterpreterError(f"unknown unary op {expr.op!r}")
    if isinstance(expr, ir.Select):
        return _coerce(
            (
                _eval(expr.if_true, st)
                if _eval(expr.cond, st)
                else _eval(expr.if_false, st)
            ),
            expr,
        )
    if isinstance(expr, ir.Call):
        fn = _BUILTINS.get(expr.func)
        if fn is None:
            raise InterpreterError(f"unknown builtin {expr.func!r}")
        args = [_eval(a, st) for a in expr.args]
        try:
            result = fn(*args)
        except (ValueError, OverflowError):
            result = float("nan")
        return _coerce(result, expr)
    if isinstance(expr, ir.BinOp):
        a = _eval(expr.lhs, st)
        b = _eval(expr.rhs, st)
        op = expr.op
        if op == "&&":
            return bool(a) and bool(b)
        if op == "||":
            return bool(a) or bool(b)
        if op in ir.COMPARISON_OPS:
            return {
                "<": a < b,
                "<=": a <= b,
                ">": a > b,
                ">=": a >= b,
                "==": a == b,
                "!=": a != b,
            }[op]
        if op in ir.BITWISE_OPS:
            ai, bi = int(a), int(b)
            return _coerce(
                {
                    "&": ai & bi,
                    "|": ai | bi,
                    "^": ai ^ bi,
                    "<<": ai << bi,
                    ">>": ai >> bi,
                }[op],
                expr,
            )
        floating = is_floating(expr.type)
        if op == "+":
            r: float | int = a + b  # type: ignore[operator]
        elif op == "-":
            r = a - b  # type: ignore[operator]
        elif op == "*":
            r = a * b  # type: ignore[operator]
        elif op == "/":
            if floating:
                r = (  # type: ignore[arg-type]
                    float(a) / float(b)
                    if b != 0
                    else math.copysign(float("inf"), float(a))
                    if a
                    else float("nan")
                )
            else:
                if b == 0:
                    raise InterpreterError("integer division by zero")
                # C semantics: truncation toward zero.
                r = int(math.trunc(float(a) / float(b)))  # type: ignore[arg-type]
        elif op == "%":
            if b == 0:
                raise InterpreterError("integer modulo by zero")
            r = (  # type: ignore[arg-type]
                int(math.fmod(float(a), float(b)))
                if not floating
                else math.fmod(float(a), float(b))
            )
        else:
            raise InterpreterError(f"unknown operator {op!r}")
        return _coerce(r, expr)
    raise InterpreterError(f"cannot evaluate {type(expr).__name__}")


def _exec_block(block: ir.Block, st: _WorkItemState) -> None:
    for stmt in block.stmts:
        _exec_stmt(stmt, st)


def _exec_stmt(stmt: ir.Stmt, st: _WorkItemState) -> None:
    if isinstance(stmt, ir.Assign):
        value = _eval(stmt.value, st)
        st.locals[stmt.var.name] = _coerce(value, stmt.var.type)  # type: ignore[arg-type]
    elif isinstance(stmt, ir.Store):
        arr = st.buffers.get(stmt.buffer.name)
        if arr is None:
            raise InterpreterError(f"unbound buffer {stmt.buffer.name!r}")
        idx = int(_eval(stmt.index, st))
        if not 0 <= idx < arr.size:
            raise InterpreterError(
                f"store out of bounds: {stmt.buffer.name}[{idx}] (size {arr.size})"
            )
        arr.flat[idx] = _eval(stmt.value, st)
    elif isinstance(stmt, ir.AtomicUpdate):
        arr = st.buffers.get(stmt.buffer.name)
        if arr is None:
            raise InterpreterError(f"unbound buffer {stmt.buffer.name!r}")
        idx = int(_eval(stmt.index, st))
        if not 0 <= idx < arr.size:
            raise InterpreterError(f"atomic out of bounds: {stmt.buffer.name}[{idx}]")
        val = _eval(stmt.value, st)
        cur = arr.flat[idx]
        if stmt.op == "add":
            arr.flat[idx] = cur + val
        elif stmt.op == "min":
            arr.flat[idx] = min(cur, val)
        else:
            arr.flat[idx] = max(cur, val)
    elif isinstance(stmt, ir.Block):
        _exec_block(stmt, st)
    elif isinstance(stmt, ir.If):
        if _eval(stmt.cond, st):
            _exec_block(stmt.then_body, st)
        else:
            _exec_block(stmt.else_body, st)
    elif isinstance(stmt, ir.For):
        i = int(_eval(stmt.start, st))
        end = int(_eval(stmt.end, st))
        step = int(_eval(stmt.step, st))
        if step == 0:
            raise InterpreterError("for-loop step is zero")
        while (i < end) if step > 0 else (i > end):
            st.locals[stmt.var.name] = i
            _exec_block(stmt.body, st)
            i += step
    elif isinstance(stmt, ir.While):
        n = 0
        while _eval(stmt.cond, st):
            _exec_block(stmt.body, st)
            n += 1
            if n > MAX_WHILE_ITERATIONS:
                raise InterpreterError("while-loop exceeded iteration budget")
    elif isinstance(stmt, ir.Barrier):
        pass  # The sequential interpreter is trivially barrier-synchronized.
    else:
        raise InterpreterError(f"unknown statement {type(stmt).__name__}")


def run_work_item(
    kernel: ir.Kernel,
    gid: tuple[int, ...],
    global_size: tuple[int, ...],
    buffers: Mapping[str, np.ndarray],
    scalars: Mapping[str, float | int],
    local_size: tuple[int, ...] | None = None,
) -> None:
    """Execute the kernel body for a single work item (mutates buffers)."""
    if local_size is None:
        local_size = tuple(1 for _ in range(kernel.dim))
    st = _WorkItemState(gid, global_size, local_size, buffers, scalars)
    _exec_block(kernel.body, st)


def run_kernel(
    kernel: ir.Kernel,
    global_size: tuple[int, ...],
    buffers: Mapping[str, np.ndarray],
    scalars: Mapping[str, float | int],
    offset: tuple[int, ...] | None = None,
    local_size: tuple[int, ...] | None = None,
) -> None:
    """Execute the kernel over an entire (possibly offset) ND-range.

    ``global_size`` is the extent of the range actually executed and
    ``offset`` its origin in the full index space — mirroring OpenCL's
    ``clEnqueueNDRangeKernel`` offset argument, which is how the
    multi-device runtime assigns sub-ranges to devices.
    """
    if len(global_size) != kernel.dim:
        raise InterpreterError(
            f"kernel {kernel.name} is {kernel.dim}D, got range {global_size}"
        )
    if offset is None:
        offset = tuple(0 for _ in range(kernel.dim))
    for p in kernel.params:
        if p.is_buffer and p.name not in buffers:
            raise InterpreterError(f"missing buffer argument {p.name!r}")
        if not p.is_buffer and p.name not in scalars:
            raise InterpreterError(f"missing scalar argument {p.name!r}")
    if kernel.dim == 1:
        for i in range(global_size[0]):
            run_work_item(
                kernel, (offset[0] + i,), global_size, buffers, scalars, local_size
            )
    else:
        for j in range(global_size[1]):
            for i in range(global_size[0]):
                run_work_item(
                    kernel,
                    (offset[0] + i, offset[1] + j),
                    global_size,
                    buffers,
                    scalars,
                    local_size,
                )
