"""OpenCL C pretty-printer: the textual backend of the compiler.

The paper's backend emits a multi-device OpenCL program from INSPIRE.
This printer produces the per-device kernel source; the multi-device
variant (with global-id offsetting) is produced by
:mod:`repro.compiler.backend`, which rewrites the IR before printing.
"""

from __future__ import annotations

from . import ast as ir
from .types import BOOL, BufferType, ScalarType, Type

__all__ = ["print_kernel", "print_expr"]

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


def _type_name(ty: Type) -> str:
    return ty.cl_name


def print_expr(expr: ir.Expr, parent_prec: int = 0) -> str:
    """Render one expression as OpenCL C."""
    if isinstance(expr, ir.Const):
        if expr.type is BOOL:
            return "true" if expr.value else "false"
        if isinstance(expr.type, ScalarType) and expr.type.floating:
            v = float(expr.value)
            text = repr(v)
            if expr.type.name == "float":
                return f"{text}f"
            return text
        return str(int(expr.value))
    if isinstance(expr, ir.Var):
        return expr.name
    if isinstance(expr, ir.WorkItemQuery):
        return f"{expr.fn.value}({expr.dim})"
    if isinstance(expr, ir.Load):
        return f"{expr.buffer.name}[{print_expr(expr.index)}]"
    if isinstance(expr, ir.Call):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, ir.Cast):
        inner = print_expr(expr.expr, 11)
        return f"({_type_name(expr.type)})({inner})"
    if isinstance(expr, ir.UnOp):
        inner = print_expr(expr.operand, 11)
        return f"{expr.op}{inner}"
    if isinstance(expr, ir.Select):
        c = print_expr(expr.cond, 1)
        t = print_expr(expr.if_true, 1)
        f = print_expr(expr.if_false, 1)
        text = f"{c} ? {t} : {f}"
        return f"({text})" if parent_prec > 0 else text
    if isinstance(expr, ir.BinOp):
        prec = _PRECEDENCE[expr.op]
        lhs = print_expr(expr.lhs, prec)
        rhs = print_expr(expr.rhs, prec + 1)
        text = f"{lhs} {expr.op} {rhs}"
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"cannot print {type(expr).__name__}")


def _print_stmt(stmt: ir.Stmt, indent: int, lines: list[str]) -> None:
    pad = "    " * indent
    if isinstance(stmt, ir.Assign):
        prefix = f"{_type_name(stmt.var.type)} " if stmt.declares else ""
        lines.append(f"{pad}{prefix}{stmt.var.name} = {print_expr(stmt.value)};")
    elif isinstance(stmt, ir.Store):
        lines.append(
            f"{pad}{stmt.buffer.name}[{print_expr(stmt.index)}] = "
            f"{print_expr(stmt.value)};"
        )
    elif isinstance(stmt, ir.AtomicUpdate):
        fn = {"add": "atomic_add", "min": "atomic_min", "max": "atomic_max"}[stmt.op]
        lines.append(
            f"{pad}{fn}(&{stmt.buffer.name}[{print_expr(stmt.index)}], "
            f"{print_expr(stmt.value)});"
        )
    elif isinstance(stmt, ir.Block):
        for s in stmt.stmts:
            _print_stmt(s, indent, lines)
    elif isinstance(stmt, ir.If):
        lines.append(f"{pad}if ({print_expr(stmt.cond)}) {{")
        _print_stmt(stmt.then_body, indent + 1, lines)
        if stmt.else_body.stmts:
            lines.append(f"{pad}}} else {{")
            _print_stmt(stmt.else_body, indent + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, ir.For):
        v = stmt.var.name
        lines.append(
            f"{pad}for (int {v} = {print_expr(stmt.start)}; "
            f"{v} < {print_expr(stmt.end)}; {v} += {print_expr(stmt.step)}) {{"
        )
        _print_stmt(stmt.body, indent + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, ir.While):
        lines.append(f"{pad}while ({print_expr(stmt.cond)}) {{")
        _print_stmt(stmt.body, indent + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, ir.Barrier):
        lines.append(f"{pad}barrier(CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE);")
    else:
        raise TypeError(f"cannot print {type(stmt).__name__}")


def print_kernel(kernel: ir.Kernel) -> str:
    """Render a complete ``__kernel`` function as OpenCL C source."""
    params = []
    for p in kernel.params:
        if isinstance(p.type, BufferType):
            qualifier = "const " if p.intent is ir.ParamIntent.IN else ""
            params.append(f"__global {qualifier}{p.type.element.cl_name}* {p.name}")
        else:
            params.append(f"const {_type_name(p.type)} {p.name}")
    header = f"__kernel void {kernel.name}({', '.join(params)})"
    lines = [header, "{"]
    _print_stmt(kernel.body, 1, lines)
    lines.append("}")
    return "\n".join(lines)
