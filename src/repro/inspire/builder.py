"""A small embedded DSL for writing IR kernels.

This is the "frontend" of our source-to-source pipeline: where the paper
parses OpenCL C into INSPIRE, we build the equivalent IR directly through
a typed builder API.  Expressions are wrapped in :class:`E`, which
overloads Python operators and performs the OpenCL usual-arithmetic
promotions, so kernels read close to their OpenCL C originals::

    b = KernelBuilder("saxpy", dim=1)
    x = b.buffer("x", FLOAT, Intent.IN)
    y = b.buffer("y", FLOAT, Intent.INOUT)
    a = b.scalar("a", FLOAT)
    n = b.scalar("n", INT)
    gid = b.global_id(0)
    with b.if_(gid < n):
        b.store(y, gid, a * b.load(x, gid) + b.load(y, gid))
    kernel = b.finish()
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Union

from . import ast as ir
from .types import (
    BOOL,
    FLOAT,
    INT,
    BufferType,
    ScalarType,
    Type,
    VectorType,
    is_floating,
    is_integer,
    promote,
)

__all__ = ["E", "KernelBuilder", "Intent", "const", "as_expr"]

Intent = ir.ParamIntent

Operand = Union["E", int, float, bool]


def _const_for(value: int | float | bool, like: Type | None = None) -> ir.Const:
    """Wrap a Python literal in a typed Const node."""
    if isinstance(value, bool):
        return ir.Const(value, BOOL)
    if isinstance(value, int):
        if like is not None and is_floating(like):
            return ir.Const(
                float(value), like if isinstance(like, ScalarType) else FLOAT
            )
        return ir.Const(value, INT)
    if isinstance(value, float):
        if like is not None and isinstance(like, ScalarType) and like.floating:
            return ir.Const(value, like)
        return ir.Const(value, FLOAT)
    raise TypeError(f"cannot make an IR constant from {value!r}")


def const(value: int | float | bool, ty: Type | None = None) -> "E":
    """Build a typed constant expression."""
    if ty is not None:
        return E(ir.Const(value, ty))
    return E(_const_for(value))


def as_expr(x: Operand, like: Type | None = None) -> ir.Expr:
    """Coerce a Python value or wrapper into a bare Expr node."""
    if isinstance(x, E):
        return x.node
    return _const_for(x, like)


class E:
    """An expression wrapper with operator overloading and type inference."""

    __slots__ = ("node",)

    def __init__(self, node: ir.Expr):
        self.node = node

    @property
    def type(self) -> Type:
        return self.node.type

    # -- arithmetic ---------------------------------------------------------

    def _bin(self, op: str, other: Operand, reflected: bool = False) -> "E":
        lhs = self.node
        rhs = as_expr(other, like=self.type)
        if reflected:
            lhs, rhs = rhs, lhs
        ty = promote(lhs.type, rhs.type)
        if op in ir.COMPARISON_OPS:
            ty = BOOL
        if op in ir.BITWISE_OPS and not (is_integer(lhs.type) and is_integer(rhs.type)):
            raise TypeError(f"bitwise {op} requires integer operands")
        return E(ir.BinOp(op, lhs, rhs, ty))

    def __add__(self, o: Operand) -> "E":
        return self._bin("+", o)

    def __radd__(self, o: Operand) -> "E":
        return self._bin("+", o, reflected=True)

    def __sub__(self, o: Operand) -> "E":
        return self._bin("-", o)

    def __rsub__(self, o: Operand) -> "E":
        return self._bin("-", o, reflected=True)

    def __mul__(self, o: Operand) -> "E":
        return self._bin("*", o)

    def __rmul__(self, o: Operand) -> "E":
        return self._bin("*", o, reflected=True)

    def __truediv__(self, o: Operand) -> "E":
        return self._bin("/", o)

    def __rtruediv__(self, o: Operand) -> "E":
        return self._bin("/", o, reflected=True)

    def __mod__(self, o: Operand) -> "E":
        return self._bin("%", o)

    def __rmod__(self, o: Operand) -> "E":
        return self._bin("%", o, reflected=True)

    def __neg__(self) -> "E":
        return E(ir.UnOp("-", self.node, self.node.type))

    # -- comparisons --------------------------------------------------------

    def __lt__(self, o: Operand) -> "E":
        return self._bin("<", o)

    def __le__(self, o: Operand) -> "E":
        return self._bin("<=", o)

    def __gt__(self, o: Operand) -> "E":
        return self._bin(">", o)

    def __ge__(self, o: Operand) -> "E":
        return self._bin(">=", o)

    def eq(self, o: Operand) -> "E":
        """Equality comparison (named method; ``==`` is kept for identity)."""
        return self._bin("==", o)

    def ne(self, o: Operand) -> "E":
        return self._bin("!=", o)

    # -- logic / bitwise ----------------------------------------------------

    def and_(self, o: Operand) -> "E":
        lhs, rhs = self.node, as_expr(o)
        return E(ir.BinOp("&&", lhs, rhs, BOOL))

    def or_(self, o: Operand) -> "E":
        lhs, rhs = self.node, as_expr(o)
        return E(ir.BinOp("||", lhs, rhs, BOOL))

    def not_(self) -> "E":
        return E(ir.UnOp("!", self.node, BOOL))

    def __and__(self, o: Operand) -> "E":
        return self._bin("&", o)

    def __or__(self, o: Operand) -> "E":
        return self._bin("|", o)

    def __xor__(self, o: Operand) -> "E":
        return self._bin("^", o)

    def __lshift__(self, o: Operand) -> "E":
        return self._bin("<<", o)

    def __rshift__(self, o: Operand) -> "E":
        return self._bin(">>", o)

    # -- misc ---------------------------------------------------------------

    def cast(self, ty: Type) -> "E":
        """Explicit conversion to another type."""
        return E(ir.Cast(self.node, ty))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"E({self.node!r})"


def _call(func: str, *args: Operand, result: Type | None = None) -> E:
    """Build a builtin function call with promoted result type."""
    arity = ir.BUILTIN_FUNCTIONS.get(func)
    if arity is None:
        raise ValueError(f"unknown builtin {func!r}")
    if arity != len(args):
        raise TypeError(f"{func} expects {arity} args, got {len(args)}")
    nodes = tuple(as_expr(a) for a in args)
    if result is None:
        simple = {"fabs", "fmin", "fmax", "floor", "ceil", "mad", "mix", "clamp"}
        if func in ir.TRANSCENDENTAL_FUNCTIONS or func in simple:
            result = FLOAT
            for n in nodes:
                result = promote(result, n.type)
        else:
            result = nodes[0].type
            for n in nodes[1:]:
                result = promote(result, n.type)
    return E(ir.Call(func, nodes, result))


class KernelBuilder:
    """Incrementally builds a :class:`~repro.inspire.ast.Kernel`.

    Statements are appended to the innermost open block; ``if_``, ``for_``
    and ``while_`` are context managers that open nested blocks.
    """

    def __init__(self, name: str, dim: int = 1):
        if dim not in (1, 2):
            raise ValueError("only 1D and 2D ND-ranges are supported")
        self.name = name
        self.dim = dim
        self._params: list[ir.KernelParam] = []
        self._block_stack: list[list[ir.Stmt]] = [[]]
        self._declared: set[str] = set()
        self._tmp_counter = 0
        self._finished = False

    # -- signature ----------------------------------------------------------

    def buffer(
        self,
        name: str,
        element: ScalarType | VectorType,
        intent: Intent = Intent.IN,
    ) -> E:
        """Declare a global-memory buffer parameter; returns its Var."""
        self._check_param_name(name)
        p = ir.KernelParam(name, BufferType(element), intent)
        self._params.append(p)
        return E(p.var())

    def scalar(self, name: str, ty: ScalarType = INT) -> E:
        """Declare a by-value scalar parameter; returns its Var."""
        self._check_param_name(name)
        p = ir.KernelParam(name, ty, Intent.VALUE)
        self._params.append(p)
        return E(p.var())

    def _check_param_name(self, name: str) -> None:
        if self._finished:
            raise RuntimeError("builder already finished")
        if any(p.name == name for p in self._params):
            raise ValueError(f"duplicate parameter {name!r}")

    # -- work-item intrinsics -------------------------------------------------

    def global_id(self, dim: int = 0) -> E:
        """``get_global_id(dim)``."""
        self._check_dim(dim)
        return E(ir.WorkItemQuery(ir.WorkItemFn.GLOBAL_ID, dim))

    def global_size(self, dim: int = 0) -> E:
        """``get_global_size(dim)``."""
        self._check_dim(dim)
        return E(ir.WorkItemQuery(ir.WorkItemFn.GLOBAL_SIZE, dim))

    def local_id(self, dim: int = 0) -> E:
        self._check_dim(dim)
        return E(ir.WorkItemQuery(ir.WorkItemFn.LOCAL_ID, dim))

    def local_size(self, dim: int = 0) -> E:
        self._check_dim(dim)
        return E(ir.WorkItemQuery(ir.WorkItemFn.LOCAL_SIZE, dim))

    def group_id(self, dim: int = 0) -> E:
        self._check_dim(dim)
        return E(ir.WorkItemQuery(ir.WorkItemFn.GROUP_ID, dim))

    def _check_dim(self, dim: int) -> None:
        if not 0 <= dim < self.dim:
            raise ValueError(f"dim {dim} out of range for a {self.dim}D kernel")

    # -- expressions ----------------------------------------------------------

    def load(self, buf: E, index: Operand) -> E:
        """Read ``buf[index]`` from global memory."""
        node = buf.node
        if not isinstance(node, ir.Var) or not isinstance(node.type, BufferType):
            raise TypeError("load target must be a buffer parameter")
        return E(ir.Load(node, as_expr(index), node.type.element))

    def select(self, cond: E, if_true: Operand, if_false: Operand) -> E:
        """The ternary ``cond ? if_true : if_false``."""
        t = as_expr(if_true)
        f = as_expr(if_false, like=t.type)
        ty = promote(t.type, f.type)
        return E(ir.Select(cond.node, t, f, ty))

    # Builtin math, exposed as methods so kernels read like OpenCL C.
    def sqrt(self, x: Operand) -> E:
        return _call("sqrt", x)

    def rsqrt(self, x: Operand) -> E:
        return _call("rsqrt", x)

    def exp(self, x: Operand) -> E:
        return _call("exp", x)

    def log(self, x: Operand) -> E:
        return _call("log", x)

    def log2(self, x: Operand) -> E:
        return _call("log2", x)

    def sin(self, x: Operand) -> E:
        return _call("sin", x)

    def cos(self, x: Operand) -> E:
        return _call("cos", x)

    def tan(self, x: Operand) -> E:
        return _call("tan", x)

    def atan(self, x: Operand) -> E:
        return _call("atan", x)

    def atan2(self, y: Operand, x: Operand) -> E:
        return _call("atan2", y, x)

    def pow(self, x: Operand, y: Operand) -> E:
        return _call("pow", x, y)

    def erf(self, x: Operand) -> E:
        return _call("erf", x)

    def fabs(self, x: Operand) -> E:
        return _call("fabs", x)

    def floor(self, x: Operand) -> E:
        return _call("floor", x)

    def ceil(self, x: Operand) -> E:
        return _call("ceil", x)

    def fmin(self, x: Operand, y: Operand) -> E:
        return _call("fmin", x, y)

    def fmax(self, x: Operand, y: Operand) -> E:
        return _call("fmax", x, y)

    def min(self, x: Operand, y: Operand) -> E:
        return _call("min", x, y)

    def max(self, x: Operand, y: Operand) -> E:
        return _call("max", x, y)

    def clamp(self, x: Operand, lo: Operand, hi: Operand) -> E:
        return _call("clamp", x, lo, hi)

    def mad(self, a: Operand, b: Operand, c: Operand) -> E:
        """Fused multiply-add ``a*b + c``."""
        return _call("mad", a, b, c)

    # -- statements -----------------------------------------------------------

    def _emit(self, stmt: ir.Stmt) -> None:
        if self._finished:
            raise RuntimeError("builder already finished")
        self._block_stack[-1].append(stmt)

    def let(self, name: str, value: Operand, ty: ScalarType | None = None) -> E:
        """Declare-and-assign a local scalar variable; returns its Var."""
        v = as_expr(value)
        var_ty = ty if ty is not None else v.type
        declares = name not in self._declared
        var = ir.Var(name, var_ty)
        self._emit(
            ir.Assign(var, v if ty is None else ir.Cast(v, var_ty), declares=declares)
        )
        self._declared.add(name)
        return E(var)

    def assign(self, var: E, value: Operand) -> None:
        """Re-assign an existing local variable."""
        node = var.node
        if not isinstance(node, ir.Var):
            raise TypeError("assign target must be a Var")
        if node.name not in self._declared:
            raise ValueError(f"variable {node.name!r} not declared; use let()")
        self._emit(ir.Assign(node, as_expr(value, like=node.type)))

    def fresh(self, prefix: str = "t") -> str:
        """A fresh local-variable name."""
        self._tmp_counter += 1
        return f"{prefix}{self._tmp_counter}"

    def store(self, buf: E, index: Operand, value: Operand) -> None:
        """Write ``buf[index] = value`` to global memory."""
        node = buf.node
        if not isinstance(node, ir.Var) or not isinstance(node.type, BufferType):
            raise TypeError("store target must be a buffer parameter")
        self._emit(
            ir.Store(node, as_expr(index), as_expr(value, like=node.type.element))
        )

    def atomic_add(self, buf: E, index: Operand, value: Operand) -> None:
        """Atomic ``buf[index] += value``."""
        node = buf.node
        if not isinstance(node, ir.Var) or not isinstance(node.type, BufferType):
            raise TypeError("atomic target must be a buffer parameter")
        self._emit(
            ir.AtomicUpdate(
                node, as_expr(index), as_expr(value, like=node.type.element), op="add"
            )
        )

    def barrier(self) -> None:
        """Insert a work-group barrier."""
        self._emit(ir.Barrier())

    @contextlib.contextmanager
    def if_(self, cond: E) -> Iterator[None]:
        """Open an ``if (cond) { ... }`` block."""
        self._block_stack.append([])
        try:
            yield
        finally:
            body = ir.Block(tuple(self._block_stack.pop()))
            self._emit(ir.If(cond.node, body))

    @contextlib.contextmanager
    def if_else(self, cond: E) -> Iterator[tuple["_Arm", "_Arm"]]:
        """Open an if/else; yields ``(then_arm, else_arm)`` context managers."""
        then_stmts: list[ir.Stmt] = []
        else_stmts: list[ir.Stmt] = []
        yield _Arm(self, then_stmts), _Arm(self, else_stmts)
        self._emit(
            ir.If(cond.node, ir.Block(tuple(then_stmts)), ir.Block(tuple(else_stmts)))
        )

    @contextlib.contextmanager
    def for_(
        self,
        name: str,
        start: Operand,
        end: Operand,
        step: Operand = 1,
    ) -> Iterator[E]:
        """Open a counted loop; yields the induction variable."""
        var = ir.Var(name, INT)
        self._declared.add(name)
        self._block_stack.append([])
        try:
            yield E(var)
        finally:
            body = ir.Block(tuple(self._block_stack.pop()))
            self._emit(ir.For(var, as_expr(start), as_expr(end), as_expr(step), body))

    @contextlib.contextmanager
    def while_(self, cond: E, expected_trips: int = 8) -> Iterator[None]:
        """Open a condition-controlled loop with a nominal trip count."""
        self._block_stack.append([])
        try:
            yield
        finally:
            body = ir.Block(tuple(self._block_stack.pop()))
            self._emit(ir.While(cond.node, body, expected_trips=expected_trips))

    # -- finish ---------------------------------------------------------------

    def finish(self) -> ir.Kernel:
        """Seal the builder and return the completed Kernel."""
        if len(self._block_stack) != 1:
            raise RuntimeError("unbalanced blocks: a context manager is still open")
        self._finished = True
        return ir.Kernel(
            name=self.name,
            params=tuple(self._params),
            body=ir.Block(tuple(self._block_stack[0])),
            dim=self.dim,
        )


class _Arm:
    """One arm of an if/else under construction."""

    def __init__(self, builder: KernelBuilder, sink: list[ir.Stmt]):
        self._builder = builder
        self._sink = sink

    def __enter__(self) -> None:
        self._builder._block_stack.append([])

    def __exit__(self, *exc: object) -> None:
        self._sink.extend(self._builder._block_stack.pop())
