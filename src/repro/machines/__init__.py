"""Target machine configurations (the paper's mc1 and mc2, plus fleets)."""

from .configs import (
    ALL_MACHINES,
    MC1,
    MC2,
    machine_by_name,
    make_cpu_spec,
    make_gpu_spec,
)
from .fleet import FLEET_VARIANTS, cluster_platforms, fleet_platforms

__all__ = [
    "ALL_MACHINES",
    "MC1",
    "MC2",
    "machine_by_name",
    "make_cpu_spec",
    "make_gpu_spec",
    "FLEET_VARIANTS",
    "cluster_platforms",
    "fleet_platforms",
]
