"""Target machine configurations (the paper's mc1 and mc2)."""

from .configs import ALL_MACHINES, MC1, MC2, machine_by_name, make_cpu_spec, make_gpu_spec

__all__ = ["ALL_MACHINES", "MC1", "MC2", "machine_by_name", "make_cpu_spec", "make_gpu_spec"]
