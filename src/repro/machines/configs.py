"""The paper's two target platforms, mc1 and mc2.

Section 3 of the paper: *"The first platform, mc1, consists of two AMD
Opteron CPUs and two Ati Radeon HD 5870 GPUs, while the second, mc2,
holds two Intel Xeon CPUs and two NVIDIA GeForce GTX 480 GPUs.  While
both GPUs represent a separate device, the two CPUs are reported as a
single OpenCL device."*

Each machine therefore exposes **three OpenCL devices**: one fused CPU
device and two identical GPUs.  The spec numbers below are first-order
datasheet values for the 2012-era parts; the efficiency knobs encode the
paper's own observation that the HD 5870's VLIW architecture "with a
very wide instruction width and high branch miss penalty would require
specific fine-tuning of each code to perform well", which none of the
untuned benchmarks provide — making the CPU the usually-better default
on mc1, while the scalar-friendly GTX 480 makes the GPU the
usually-better default on mc2.
"""

from __future__ import annotations

from dataclasses import replace

from ..ocl.costmodel import DeviceKind, DeviceSpec
from ..ocl.platform import Platform

__all__ = [
    "MC1",
    "MC2",
    "ALL_MACHINES",
    "machine_by_name",
    "make_cpu_spec",
    "make_gpu_spec",
]


def make_cpu_spec(
    name: str,
    cores: int,
    clock_ghz: float,
    simd_lanes: int = 4,
    mem_bandwidth_gbs: float = 40.0,
    scalar_issue_efficiency: float = 0.7,
    transcendental_cost: float = 10.0,
    launch_overhead_us: float = 4.0,
) -> DeviceSpec:
    """A host-resident CPU OpenCL device (both sockets fused, as in the paper)."""
    return DeviceSpec(
        name=name,
        kind=DeviceKind.CPU,
        compute_units=cores,
        clock_ghz=clock_ghz,
        lanes_per_unit=simd_lanes,
        vliw_width=1,
        flops_per_lane_cycle=2.0,
        mem_bandwidth_gbs=mem_bandwidth_gbs,
        pcie_bandwidth_gbs=0.0,  # host-resident: zero-copy
        pcie_latency_us=0.0,
        launch_overhead_us=launch_overhead_us,
        scalar_issue_efficiency=scalar_issue_efficiency,
        branch_penalty=1.05,
        branch_cost=1.0,  # branch predictors make loops nearly free
        transcendental_cost=transcendental_cost,
        atomic_cost=20.0,
    )


def make_gpu_spec(
    name: str,
    compute_units: int,
    lanes_per_unit: int,
    clock_ghz: float,
    vliw_width: int = 1,
    mem_bandwidth_gbs: float = 150.0,
    pcie_bandwidth_gbs: float = 5.0,
    pcie_latency_us: float = 20.0,
    scalar_issue_efficiency: float = 0.75,
    branch_penalty: float = 6.0,
    branch_cost: float = 4.0,
    transcendental_cost: float = 2.0,
    launch_overhead_us: float = 10.0,
    atomic_cost: float = 25.0,
) -> DeviceSpec:
    """A discrete GPU OpenCL device reached over PCIe."""
    return DeviceSpec(
        name=name,
        kind=DeviceKind.GPU,
        compute_units=compute_units,
        clock_ghz=clock_ghz,
        lanes_per_unit=lanes_per_unit,
        vliw_width=vliw_width,
        flops_per_lane_cycle=2.0,
        mem_bandwidth_gbs=mem_bandwidth_gbs,
        pcie_bandwidth_gbs=pcie_bandwidth_gbs,
        pcie_latency_us=pcie_latency_us,
        launch_overhead_us=launch_overhead_us,
        scalar_issue_efficiency=scalar_issue_efficiency,
        branch_penalty=branch_penalty,
        branch_cost=branch_cost,
        transcendental_cost=transcendental_cost,
        atomic_cost=atomic_cost,
    )


# --------------------------------------------------------------------------
# mc1: 2× AMD Opteron 6168 (Magny-Cours, 12C @ 1.9 GHz) + 2× ATI HD 5870
# --------------------------------------------------------------------------

_MC1_CPU = make_cpu_spec(
    name="2x AMD Opteron 6168 (CPU)",
    cores=24,
    clock_ghz=1.9,
    simd_lanes=4,  # SSE, no AVX on Magny-Cours
    mem_bandwidth_gbs=26.0,  # realistic dual-socket STREAM figure
    # 2012 CPU OpenCL drivers barely vectorized scalar work items, so
    # untuned kernels see a fraction of the SSE peak; precise libm
    # transcendentals cost dozens of cycles each.
    scalar_issue_efficiency=0.24,
    transcendental_cost=16.0,
)

_MC1_GPU = make_gpu_spec(
    name="ATI Radeon HD 5870",
    compute_units=20,
    lanes_per_unit=16,
    clock_ghz=0.85,
    vliw_width=5,  # Cypress VLIW5: peak needs packed instructions
    mem_bandwidth_gbs=153.6,
    pcie_bandwidth_gbs=4.8,
    pcie_latency_us=25.0,
    # Untuned scalar code fills roughly one VLIW slot of five (and loses
    # more to clause scheduling); the paper cites exactly this (via
    # Thoman et al.) to explain mc1's weak GPUs.  Control flow breaks
    # VLIW clauses, so every branch/loop back-edge is expensive — only
    # straight-line math-dense kernels run well untuned.
    scalar_issue_efficiency=0.08,
    branch_penalty=16.0,
    branch_cost=45.0,
    transcendental_cost=2.0,  # the SFU-rich VLIW shines on pure math
    launch_overhead_us=14.0,
    atomic_cost=40.0,
)

MC1 = Platform(
    name="mc1",
    device_specs=(
        _MC1_CPU,
        replace(_MC1_GPU, name="ATI Radeon HD 5870 #0"),
        replace(_MC1_GPU, name="ATI Radeon HD 5870 #1"),
    ),
    description="2x AMD Opteron 6168 + 2x ATI Radeon HD 5870 (VLIW5)",
)


# --------------------------------------------------------------------------
# mc2: 2× Intel Xeon X5650 (Westmere, 6C @ 2.67 GHz) + 2× NVIDIA GTX 480
# --------------------------------------------------------------------------

_MC2_CPU = make_cpu_spec(
    name="2x Intel Xeon X5650 (CPU)",
    cores=12,
    clock_ghz=2.67,
    simd_lanes=4,  # SSE4.2
    mem_bandwidth_gbs=32.0,  # dual-socket Westmere STREAM figure
    scalar_issue_efficiency=0.22,  # untuned scalar work items, 2012 drivers
    transcendental_cost=14.0,
    launch_overhead_us=3.0,
)

_MC2_GPU = make_gpu_spec(
    name="NVIDIA GeForce GTX 480",
    compute_units=15,
    lanes_per_unit=32,
    clock_ghz=1.4,
    vliw_width=1,  # Fermi scalar cores: friendly to untuned code
    mem_bandwidth_gbs=177.4,
    pcie_bandwidth_gbs=5.5,
    pcie_latency_us=20.0,
    scalar_issue_efficiency=0.60,
    branch_penalty=6.0,
    branch_cost=4.0,  # Fermi: cheap uniform branches, real but small cost
    transcendental_cost=1.5,
    launch_overhead_us=10.0,
    atomic_cost=15.0,
)

MC2 = Platform(
    name="mc2",
    device_specs=(
        _MC2_CPU,
        replace(_MC2_GPU, name="NVIDIA GeForce GTX 480 #0"),
        replace(_MC2_GPU, name="NVIDIA GeForce GTX 480 #1"),
    ),
    description="2x Intel Xeon X5650 + 2x NVIDIA GeForce GTX 480 (Fermi)",
)


ALL_MACHINES: tuple[Platform, ...] = (MC1, MC2)


def machine_by_name(name: str) -> Platform:
    """Look up one of the paper's platforms by name (``mc1``/``mc2``)."""
    for m in ALL_MACHINES:
        if m.name == name:
            return m
    raise KeyError(f"unknown machine {name!r}; available: mc1, mc2")
