"""Fleet generation: many simulated machines from the paper's two.

The paper trains one model per machine; the serving north-star is a
*fleet* of heterogeneous machines answering one shared request stream.
Real fleets are never uniform — they accumulate hardware generations,
clock bins and memory configurations — so this module derives an
arbitrary-size fleet from the paper's mc1/mc2 testbeds by cycling
through deterministic spec variants: stock machines first, then
faster-binned, slower-binned and memory-starved editions.

Every platform gets a unique name (``mc2-r1``, ``mc1+-r2``, ...): the
training database, the prediction-cache keys and the model registry
all key on the machine name, so two replicas must never share one.
"""

from __future__ import annotations

from typing import Sequence

from ..ocl.platform import Platform
from .configs import ALL_MACHINES

__all__ = ["FLEET_VARIANTS", "cluster_platforms", "fleet_platforms"]

#: (tag, clock scale, memory-bandwidth scale) applied cycle by cycle:
#: the first ``len(base)`` machines are stock, the next cycle is the
#: fast bin, and so on.  Scales are deliberately modest so every
#: variant stays in the regime the paper's cost models were calibrated
#: for.
FLEET_VARIANTS: tuple[tuple[str, float, float], ...] = (
    ("", 1.0, 1.0),  # stock
    ("+", 1.25, 1.15),  # fast bin: higher clocks, faster memory
    ("-", 0.8, 0.85),  # slow bin
    ("m", 1.0, 0.7),  # memory-starved (same compute, throttled DRAM)
)


def fleet_platforms(
    count: int, base: Sequence[Platform] = ALL_MACHINES
) -> tuple[Platform, ...]:
    """``count`` deterministic machine configurations for a fleet.

    Machine ``i`` is base machine ``i % len(base)`` under variant
    ``(i // len(base)) % len(FLEET_VARIANTS)``, renamed with the
    variant tag and a unique replica suffix.  The same ``count`` always
    produces the same fleet, and a fleet of size N is a prefix of every
    larger fleet — which is what makes 1→N throughput-scaling runs
    comparable.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if not base:
        raise ValueError("base must name at least one machine")
    platforms = []
    for i in range(count):
        donor = base[i % len(base)]
        tag, clock_scale, mem_scale = FLEET_VARIANTS[
            (i // len(base)) % len(FLEET_VARIANTS)
        ]
        specs = tuple(
            s.scaled(clock_scale, mem_scale) for s in donor.device_specs
        )
        platforms.append(
            Platform(
                name=f"{donor.name}{tag}-r{i}",
                device_specs=specs,
                description=(
                    f"{donor.description} [replica {i}"
                    + (f", variant {tag!r}]" if tag else ", stock]")
                ),
            )
        )
    return tuple(platforms)


def cluster_platforms(
    pools: int, machines_per_pool: int, base: Sequence[Platform] = ALL_MACHINES
) -> tuple[tuple[Platform, ...], ...]:
    """``pools`` machine pools of ``machines_per_pool`` machines each.

    The cluster tier routes across N pools of machines (each pool one
    :class:`~repro.fleet.FleetRouter`); this derives the pools from the
    same deterministic variant cycle :func:`fleet_platforms` uses, by
    chunking a flat fleet of ``pools × machines_per_pool`` machines
    into consecutive runs.  Names stay globally unique (the flat
    replica suffix), and a cluster of P pools is a prefix of every
    larger cluster with the same pool width — which is what makes
    pool-scaling runs comparable, exactly like fleet scaling.
    """
    if pools < 1:
        raise ValueError("pools must be >= 1")
    if machines_per_pool < 1:
        raise ValueError("machines_per_pool must be >= 1")
    flat = fleet_platforms(pools * machines_per_pool, base=base)
    return tuple(
        flat[p * machines_per_pool : (p + 1) * machines_per_pool]
        for p in range(pools)
    )
