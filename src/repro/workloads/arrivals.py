"""Arrival processes: when each request of a workload shows up.

The trace generators decide *what* is requested; this module decides
*when*.  Timestamps are what turn a replay into a queueing system —
without them every request conveniently waits for the previous one and
tail latency cannot exist.

The open-loop processes (:data:`~repro.workloads.spec.ARRIVAL_PROCESSES`)
draw inter-arrival gaps around a mean of ``1 / rate_rps`` and then
modulate the instantaneous rate per family: flash-crowd bursts arrive
``burst_rate`` times faster (the popularity spike and the traffic spike
are the same event), and diurnal load breathes sinusoidally between
0.5× and 1.5× of the mean in phase with the skew ramp.  Everything is
deterministic from the spec: the poisson gaps flow through
``rng_for("workload-arrival", ...)`` so regenerating a spec regenerates
its exact timeline.
"""

from __future__ import annotations

import numpy as np

from ..util.rng import rng_for
from .spec import WorkloadSpec

__all__ = ["arrival_times", "rate_factors"]


def rate_factors(spec: WorkloadSpec, num_requests: int | None = None) -> np.ndarray:
    """Per-request multiplier on the mean arrival rate.

    ``stationary`` and ``phase-shift`` traffic is flat (1.0 — the hot
    set moves, the load does not).  ``flash-crowd`` multiplies the rate
    by ``spec.burst_rate`` inside every burst window, using the *same*
    window arithmetic as the trace generator so the fast arrivals are
    exactly the burst-key requests.  ``diurnal`` ramps ``0.5 + ramp``
    over ``[0.5, 1.5]`` in phase with the skew cycle: peak popularity
    concentration coincides with peak load.
    """
    num = spec.num_requests if num_requests is None else num_requests
    factors = np.ones(num, dtype=np.float64)
    if spec.family == "flash-crowd":
        for start in range(spec.burst_every, num, spec.burst_every):
            stop = min(start + spec.burst_length, num)
            factors[start:stop] = spec.burst_rate
    elif spec.family == "diurnal":
        indices = np.arange(num)
        ramp = 0.5 - 0.5 * np.cos(2.0 * np.pi * indices / spec.period)
        factors = 0.5 + ramp
    return factors


def arrival_times(spec: WorkloadSpec, num_requests: int | None = None) -> np.ndarray:
    """Absolute arrival timestamps (simulated seconds), non-decreasing.

    ``uniform`` places request *i* one modulated gap after request
    ``i - 1``; ``poisson`` draws exponential gaps with the same
    instantaneous mean — the memoryless process real request streams
    are usually modelled by, and the one that produces genuine queueing
    bursts even at moderate utilization.

    The ``sequential`` process has no timestamps by construction (it is
    the closed-loop replay) — asking for them is a caller bug.
    """
    num = spec.num_requests if num_requests is None else num_requests
    if spec.arrival == "sequential":
        raise ValueError(
            "the 'sequential' arrival process has no timestamps; "
            "use the closed-loop replay path"
        )
    mean_gaps = 1.0 / (spec.rate_rps * rate_factors(spec, num))
    if spec.arrival == "uniform":
        gaps = mean_gaps
    else:  # poisson
        rng = rng_for(
            "workload-arrival", spec.family, spec.rate_rps, base_seed=spec.seed
        )
        gaps = rng.exponential(1.0, size=num) * mean_gaps
    return np.cumsum(gaps)
