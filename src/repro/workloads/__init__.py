"""Workload diversity: non-stationary request streams and platform drift.

The serving layers used to drive one stationary Zipf stream at a fixed
platform — the only regime where a cached prediction never goes stale.
This package generates the streams production actually sees: rotating
hot sets, flash crowds, diurnal concentration ramps, and platform drift
events that rescale a machine's device throughput mid-serve.  One
:class:`WorkloadSpec` describes a scenario; :func:`make_workload` turns
it into the concrete trace every consumer (``serve``, ``fleet-serve``,
the benchmarks) plays back.
"""

from .arrivals import arrival_times, rate_factors
from .generators import (
    AnyServingRequest,
    Workload,
    make_workload,
    stream_requests,
    stream_timed_items,
)
from .spec import ARRIVAL_PROCESSES, WORKLOAD_FAMILIES, DriftEvent, WorkloadSpec

__all__ = [
    "ARRIVAL_PROCESSES",
    "AnyServingRequest",
    "WORKLOAD_FAMILIES",
    "DriftEvent",
    "WorkloadSpec",
    "Workload",
    "arrival_times",
    "make_workload",
    "rate_factors",
    "stream_requests",
    "stream_timed_items",
]
