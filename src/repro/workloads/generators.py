"""Trace generators: :class:`WorkloadSpec` → concrete request stream.

Every family is deterministic given the spec: identical specs always
produce identical traces, and every random choice flows through a
seed derived from (family, knobs, master seed) so families do not
share — or perturb — each other's streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..serving.trace import ServingRequest, zipf_trace
from ..util.rng import rng_for
from .spec import DriftEvent, WorkloadSpec

__all__ = ["Workload", "make_workload"]

#: Quantization of the diurnal skew ramp: weights are recomputed per
#: bucket, not per request, bounding the generator at O(buckets × keys).
_DIURNAL_BUCKETS = 16


@dataclass(frozen=True)
class Workload:
    """A generated trace: the requests plus the drift schedule.

    The request stream and the platform drift events are one timeline;
    :meth:`items` yields them interleaved in serving order, and
    :meth:`segments` groups the requests between drift points for
    consumers that serve in batches (``submit_many``).
    """

    spec: WorkloadSpec
    requests: tuple[ServingRequest, ...]
    drift_events: tuple[DriftEvent, ...]

    def __len__(self) -> int:
        return len(self.requests)

    def items(self) -> Iterator[DriftEvent | ServingRequest]:
        """Drift events and requests, interleaved in serving order.

        Every event fires *before* the request sharing its index;
        events at or past the end of the trace fire after the last
        request.
        """
        pending = list(self.drift_events)
        for i, request in enumerate(self.requests):
            while pending and pending[0].at_request <= i:
                yield pending.pop(0)
            yield request
        yield from pending

    def segments(
        self,
    ) -> Iterator[tuple[tuple[DriftEvent, ...], tuple[ServingRequest, ...]]]:
        """(events to apply, following request batch) pairs, in order.

        The batch-serving consumers apply each segment's events and
        then hand the whole batch to ``submit_many``; a trace with no
        drift is one segment.  Trailing events (at or past the end of
        the trace) arrive with an empty batch.
        """
        header: list[DriftEvent] = []
        batch: list[ServingRequest] = []
        for item in self.items():
            if isinstance(item, DriftEvent):
                if batch:
                    yield tuple(header), tuple(batch)
                    header, batch = [], []
                header.append(item)
            else:
                batch.append(item)
        if header or batch:
            yield tuple(header), tuple(batch)


def _zipf_weights(count: int, skew: float) -> np.ndarray:
    """Normalized Zipf mass over ``count`` ranks (skew 0 = uniform)."""
    weights = 1.0 / np.arange(1, count + 1, dtype=np.float64) ** skew
    return weights / weights.sum()


def _requests(
    ranked: Sequence[tuple[str, int]], draws: np.ndarray, start_id: int
) -> list[ServingRequest]:
    return [
        ServingRequest(
            request_id=start_id + i, program=ranked[j][0], size=ranked[j][1]
        )
        for i, j in enumerate(draws)
    ]


def _phase_shift_trace(
    spec: WorkloadSpec, keys: Sequence[tuple[str, int]]
) -> tuple[ServingRequest, ...]:
    """Hot set rotates: each phase reshuffles the key-to-rank mapping."""
    weights = _zipf_weights(len(keys), spec.skew)
    requests: list[ServingRequest] = []
    base, remainder = divmod(spec.num_requests, spec.phases)
    for phase in range(spec.phases):
        length = base + (1 if phase < remainder else 0)
        if length == 0:
            continue
        rng = rng_for(
            "workload-phase", phase, len(keys), spec.skew, base_seed=spec.seed
        )
        ranked = list(keys)
        rng.shuffle(ranked)
        draws = rng.choice(len(ranked), size=length, p=weights)
        requests.extend(_requests(ranked, draws, start_id=len(requests)))
    return tuple(requests)


def _flash_crowd_trace(
    spec: WorkloadSpec, keys: Sequence[tuple[str, int]]
) -> tuple[ServingRequest, ...]:
    """Stationary base stream with periodic single-key traffic spikes.

    Each burst promotes one key from the unpopular tail of the ranking
    to ``burst_share`` of the traffic for ``burst_length`` requests —
    the worst case for a prediction cache, because the spiking key has
    no warm entry and (if outside the training set) no good model
    answer either.
    """
    rng = rng_for(
        "workload-flash", len(keys), spec.skew, spec.burst_every, base_seed=spec.seed
    )
    ranked = list(keys)
    rng.shuffle(ranked)
    weights = _zipf_weights(len(ranked), spec.skew)
    base_draws = rng.choice(len(ranked), size=spec.num_requests, p=weights)
    burst_flips = rng.random(spec.num_requests)
    draws = base_draws.copy()
    tail_start = len(ranked) // 2
    for start in range(spec.burst_every, spec.num_requests, spec.burst_every):
        # One tail key per burst; int() draw is deterministic from rng.
        burst_key = int(rng.integers(tail_start, len(ranked)))
        stop = min(start + spec.burst_length, spec.num_requests)
        for i in range(start, stop):
            if burst_flips[i] < spec.burst_share:
                draws[i] = burst_key
    return tuple(_requests(ranked, draws, start_id=0))


def _diurnal_trace(
    spec: WorkloadSpec, keys: Sequence[tuple[str, int]]
) -> tuple[ServingRequest, ...]:
    """Skew ramps sinusoidally between trough and peak concentration.

    The ranking is fixed (the same keys stay popular); what cycles is
    how *concentrated* the traffic is — near-uniform at the trough
    (cache-hostile, every key luke-warm) and sharply skewed at the
    peak.  The ramp starts at the trough.
    """
    rng = rng_for(
        "workload-diurnal", len(keys), spec.period, base_seed=spec.seed
    )
    ranked = list(keys)
    rng.shuffle(ranked)
    indices = np.arange(spec.num_requests)
    # 0 at the trough, 1 at the peak, period-cyclic.
    ramp = 0.5 - 0.5 * np.cos(2.0 * np.pi * indices / spec.period)
    buckets = np.minimum(
        (ramp * _DIURNAL_BUCKETS).astype(int), _DIURNAL_BUCKETS - 1
    )
    draws = np.zeros(spec.num_requests, dtype=int)
    for bucket in range(_DIURNAL_BUCKETS):
        positions = np.nonzero(buckets == bucket)[0]
        if positions.size == 0:
            continue
        centre = (bucket + 0.5) / _DIURNAL_BUCKETS
        skew = spec.skew_min + (spec.skew_max - spec.skew_min) * centre
        weights = _zipf_weights(len(ranked), skew)
        draws[positions] = rng.choice(len(ranked), size=positions.size, p=weights)
    return tuple(_requests(ranked, draws, start_id=0))


def make_workload(
    spec: WorkloadSpec, keys: Sequence[tuple[str, int]]
) -> Workload:
    """Generate the request stream a spec describes over a key universe.

    The ``stationary`` family reproduces :func:`repro.serving.zipf_trace`
    bit for bit — existing replay/scaling baselines keep their traces.
    """
    if not keys:
        raise ValueError("empty key universe")
    if spec.family == "stationary":
        requests = zipf_trace(
            keys, spec.num_requests, skew=spec.skew, seed=spec.seed
        )
    elif spec.family == "phase-shift":
        requests = _phase_shift_trace(spec, keys)
    elif spec.family == "flash-crowd":
        requests = _flash_crowd_trace(spec, keys)
    else:
        requests = _diurnal_trace(spec, keys)
    return Workload(
        spec=spec, requests=requests, drift_events=spec.drift_events
    )
