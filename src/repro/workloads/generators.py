"""Trace generators: :class:`WorkloadSpec` → concrete request stream.

Every family is deterministic given the spec: identical specs always
produce identical traces, and every random choice flows through a
seed derived from (family, knobs, master seed) so families do not
share — or perturb — each other's streams.

Two consumption modes share one draw path.  :func:`make_workload`
materializes the whole trace as a :class:`Workload` (tests, small
replays); :func:`stream_requests` / :func:`stream_timed_items` yield
the *same* requests lazily, one object at a time, so a million-request
trace costs one integer draw array rather than a million live request
objects — the contract the event-driven serving benchmarks rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..graphs.builders import chain_universe
from ..graphs.graph import TaskGraph
from ..serving.trace import GraphServingRequest, ServingRequest, zipf_draws
from ..util.rng import rng_for
from .arrivals import arrival_times
from .spec import DriftEvent, WorkloadSpec

#: A trace position resolves to either a kernel key or a whole graph.
AnyServingRequest = ServingRequest | GraphServingRequest

__all__ = [
    "AnyServingRequest",
    "Workload",
    "make_workload",
    "stream_requests",
    "stream_timed_items",
]

#: Quantization of the diurnal skew ramp: weights are recomputed per
#: bucket, not per request, bounding the generator at O(buckets × keys).
_DIURNAL_BUCKETS = 16


@dataclass(frozen=True)
class Workload:
    """A generated trace: the requests plus the drift schedule.

    The request stream and the platform drift events are one timeline;
    :meth:`items` yields them interleaved in serving order, and
    :meth:`segments` groups the requests between drift points for
    consumers that serve in batches (``submit_many``).
    """

    spec: WorkloadSpec
    requests: tuple[AnyServingRequest, ...]
    drift_events: tuple[DriftEvent, ...]

    def __len__(self) -> int:
        return len(self.requests)

    def items(self) -> Iterator[DriftEvent | AnyServingRequest]:
        """Drift events and requests, interleaved in serving order.

        Every event fires *before* the request sharing its index;
        events at or past the end of the trace fire after the last
        request.
        """
        pending = list(self.drift_events)
        for i, request in enumerate(self.requests):
            while pending and pending[0].at_request <= i:
                yield pending.pop(0)
            yield request
        yield from pending

    def segments(
        self,
    ) -> Iterator[tuple[tuple[DriftEvent, ...], tuple[AnyServingRequest, ...]]]:
        """(events to apply, following request batch) pairs, in order.

        The batch-serving consumers apply each segment's events and
        then hand the whole batch to ``submit_many``; a trace with no
        drift is one segment.  Trailing events (at or past the end of
        the trace) arrive with an empty batch.
        """
        header: list[DriftEvent] = []
        batch: list[AnyServingRequest] = []
        for item in self.items():
            if isinstance(item, DriftEvent):
                if batch:
                    yield tuple(header), tuple(batch)
                    header, batch = [], []
                header.append(item)
            else:
                batch.append(item)
        if header or batch:
            yield tuple(header), tuple(batch)

    def timed_items(
        self,
    ) -> Iterator[tuple[float, DriftEvent | AnyServingRequest]]:
        """The :meth:`items` timeline with arrival timestamps attached.

        This is the event-loop feed: a drift event carries the
        timestamp of the request whose index it fires before, so the
        merged stream stays non-decreasing in time.
        """
        times = arrival_times(self.spec, len(self.requests))
        yield from _attach_times(self.items(), times)


def _attach_times(
    items: Iterator[DriftEvent | AnyServingRequest], times: np.ndarray
) -> Iterator[tuple[float, DriftEvent | AnyServingRequest]]:
    """Zip arrival timestamps onto an interleaved request/drift stream."""
    i = 0
    last = 0.0
    for item in items:
        if isinstance(item, DriftEvent):
            # Fires before request i (or after the trace): its place on
            # the clock is that request's arrival instant.
            at = float(times[i]) if i < len(times) else last
            yield at, item
        else:
            last = float(times[i])
            i += 1
            yield last, item


def _zipf_weights(count: int, skew: float) -> np.ndarray:
    """Normalized Zipf mass over ``count`` ranks (skew 0 = uniform)."""
    weights = 1.0 / np.arange(1, count + 1, dtype=np.float64) ** skew
    return weights / weights.sum()


def _build_request(
    item: tuple[str, int] | TaskGraph, request_id: int
) -> AnyServingRequest:
    """One trace position → a request of the matching kind."""
    if isinstance(item, TaskGraph):
        return GraphServingRequest(request_id=request_id, graph=item)
    return ServingRequest(request_id=request_id, program=item[0], size=item[1])


def _requests(
    ranked: Sequence[tuple[str, int] | TaskGraph],
    draws: np.ndarray,
    start_id: int,
) -> list[AnyServingRequest]:
    return [_build_request(ranked[j], start_id + i) for i, j in enumerate(draws)]


def _phase_shift_segments(
    spec: WorkloadSpec, keys: Sequence[tuple[str, int]]
) -> Iterator[tuple[list[tuple[str, int]], np.ndarray]]:
    """Hot set rotates: each phase reshuffles the key-to-rank mapping."""
    weights = _zipf_weights(len(keys), spec.skew)
    base, remainder = divmod(spec.num_requests, spec.phases)
    for phase in range(spec.phases):
        length = base + (1 if phase < remainder else 0)
        if length == 0:
            continue
        rng = rng_for(
            "workload-phase", phase, len(keys), spec.skew, base_seed=spec.seed
        )
        ranked = list(keys)
        rng.shuffle(ranked)
        draws = rng.choice(len(ranked), size=length, p=weights)
        yield ranked, draws


def _flash_crowd_segments(
    spec: WorkloadSpec, keys: Sequence[tuple[str, int]]
) -> Iterator[tuple[list[tuple[str, int]], np.ndarray]]:
    """Stationary base stream with periodic single-key traffic spikes.

    Each burst promotes one key from the unpopular tail of the ranking
    to ``burst_share`` of the traffic for ``burst_length`` requests —
    the worst case for a prediction cache, because the spiking key has
    no warm entry and (if outside the training set) no good model
    answer either.
    """
    rng = rng_for(
        "workload-flash", len(keys), spec.skew, spec.burst_every, base_seed=spec.seed
    )
    ranked = list(keys)
    rng.shuffle(ranked)
    weights = _zipf_weights(len(ranked), spec.skew)
    base_draws = rng.choice(len(ranked), size=spec.num_requests, p=weights)
    burst_flips = rng.random(spec.num_requests)
    draws = base_draws.copy()
    tail_start = len(ranked) // 2
    for start in range(spec.burst_every, spec.num_requests, spec.burst_every):
        # One tail key per burst; int() draw is deterministic from rng.
        burst_key = int(rng.integers(tail_start, len(ranked)))
        stop = min(start + spec.burst_length, spec.num_requests)
        for i in range(start, stop):
            if burst_flips[i] < spec.burst_share:
                draws[i] = burst_key
    yield ranked, draws


def _diurnal_segments(
    spec: WorkloadSpec, keys: Sequence[tuple[str, int]]
) -> Iterator[tuple[list[tuple[str, int]], np.ndarray]]:
    """Skew ramps sinusoidally between trough and peak concentration.

    The ranking is fixed (the same keys stay popular); what cycles is
    how *concentrated* the traffic is — near-uniform at the trough
    (cache-hostile, every key luke-warm) and sharply skewed at the
    peak.  The ramp starts at the trough.
    """
    rng = rng_for(
        "workload-diurnal", len(keys), spec.period, base_seed=spec.seed
    )
    ranked = list(keys)
    rng.shuffle(ranked)
    indices = np.arange(spec.num_requests)
    # 0 at the trough, 1 at the peak, period-cyclic.
    ramp = 0.5 - 0.5 * np.cos(2.0 * np.pi * indices / spec.period)
    buckets = np.minimum(
        (ramp * _DIURNAL_BUCKETS).astype(int), _DIURNAL_BUCKETS - 1
    )
    draws = np.zeros(spec.num_requests, dtype=int)
    for bucket in range(_DIURNAL_BUCKETS):
        positions = np.nonzero(buckets == bucket)[0]
        if positions.size == 0:
            continue
        centre = (bucket + 0.5) / _DIURNAL_BUCKETS
        skew = spec.skew_min + (spec.skew_max - spec.skew_min) * centre
        weights = _zipf_weights(len(ranked), skew)
        draws[positions] = rng.choice(len(ranked), size=positions.size, p=weights)
    yield ranked, draws


def _pipeline_segments(
    spec: WorkloadSpec, keys: Sequence[tuple[str, int]]
) -> Iterator[tuple[list[TaskGraph], np.ndarray]]:
    """Zipf-skewed task-graph stream over a role-based chain universe.

    The key universe is bucketed into pipeline roles (stencil → reduce
    → gemm) and composed into chains; the stream then draws whole
    graphs with the same popularity skew the kernel families use, so a
    hot pipeline warms the graph-level plan cache exactly as a hot
    kernel warms the kernel one.
    """
    graphs = chain_universe(keys)
    rng = rng_for("workload-pipeline", len(keys), spec.skew, base_seed=spec.seed)
    ranked = list(graphs)
    rng.shuffle(ranked)
    weights = _zipf_weights(len(ranked), spec.skew)
    draws = rng.choice(len(ranked), size=spec.num_requests, p=weights)
    yield ranked, draws


def _draw_segments(
    spec: WorkloadSpec, keys: Sequence[tuple[str, int]]
) -> Iterator[tuple[list[tuple[str, int]] | list[TaskGraph], np.ndarray]]:
    """(ranked keys, rank draws) runs, in request order.

    The single draw path both consumption modes share: each segment is
    one integer array plus one key ranking — O(num_requests) integers
    total, never O(num_requests) request objects.
    """
    if not keys:
        raise ValueError("empty key universe")
    if spec.family == "stationary":
        yield zipf_draws(keys, spec.num_requests, skew=spec.skew, seed=spec.seed)
    elif spec.family == "phase-shift":
        yield from _phase_shift_segments(spec, keys)
    elif spec.family == "flash-crowd":
        yield from _flash_crowd_segments(spec, keys)
    elif spec.family == "pipeline":
        yield from _pipeline_segments(spec, keys)
    else:
        yield from _diurnal_segments(spec, keys)


def stream_requests(
    spec: WorkloadSpec, keys: Sequence[tuple[str, int]]
) -> Iterator[AnyServingRequest]:
    """The spec's request stream, one lazily-built object at a time.

    Bit-identical to ``make_workload(spec, keys).requests`` — same rng
    calls, same ids — without ever materializing the tuple.
    """
    request_id = 0
    for ranked, draws in _draw_segments(spec, keys):
        for j in draws:
            yield _build_request(ranked[j], request_id)
            request_id += 1


def stream_timed_items(
    spec: WorkloadSpec, keys: Sequence[tuple[str, int]]
) -> Iterator[tuple[float, DriftEvent | ServingRequest]]:
    """The full event-loop feed, streamed: (timestamp, request | drift).

    Drift events are interleaved at their trace positions exactly as
    :meth:`Workload.items` does, each stamped with the arrival instant
    of the request it precedes.
    """
    times = arrival_times(spec)
    pending = list(spec.drift_events)

    def interleaved() -> Iterator[DriftEvent | AnyServingRequest]:
        i = 0
        for request in stream_requests(spec, keys):
            while pending and pending[0].at_request <= i:
                yield pending.pop(0)
            yield request
            i += 1
        yield from pending

    yield from _attach_times(interleaved(), times)


def make_workload(
    spec: WorkloadSpec, keys: Sequence[tuple[str, int]]
) -> Workload:
    """Generate the request stream a spec describes over a key universe.

    The ``stationary`` family reproduces :func:`repro.serving.zipf_trace`
    bit for bit — existing replay/scaling baselines keep their traces.
    """
    requests: list[ServingRequest] = []
    for ranked, draws in _draw_segments(spec, keys):
        requests.extend(_requests(ranked, draws, start_id=len(requests)))
    return Workload(
        spec=spec, requests=tuple(requests), drift_events=spec.drift_events
    )
