"""Workload specifications: one description, every consumer.

A :class:`WorkloadSpec` names a trace *family* and its knobs; the
generators in :mod:`repro.workloads.generators` turn a spec plus a key
universe into the concrete request stream.  The spec is the unit the
CLI, the benchmarks and the tests all share, so a serving scenario is
reproducible from a handful of numbers.

Families:

* ``stationary`` — the classic fixed-skew Zipf stream (bit-identical
  to :func:`repro.serving.zipf_trace`), the regime where a cached
  prediction never goes stale.
* ``phase-shift`` — the key-to-rank assignment is reshuffled every
  phase: the hot set rotates mid-trace, so yesterday's warm keys go
  cold and a fresh head of traffic arrives unannounced.
* ``flash-crowd`` — a stationary base stream punctuated by bursts in
  which one previously-unpopular key suddenly receives most of the
  traffic (launch-day spikes, viral content).
* ``diurnal`` — the Zipf skew itself ramps sinusoidally between a
  cache-hostile trough (near-uniform traffic) and a concentrated peak,
  modelling day/night popularity cycles.
* ``pipeline`` — the unit of work is a task *graph*, not a kernel: a
  Zipf-skewed stream of stencil→reduce→gemm chains built from the key
  universe (:func:`repro.graphs.chain_universe`), exercising the
  graph-level plan cache and the scheduling–partitioning co-search.

Any family can carry :class:`DriftEvent`\\ s: points in the trace where
a machine's device throughput factors are rescaled mid-serve (thermal
throttling, co-tenant contention, a frequency-bin change), which is the
platform-side non-stationarity HeMT and HeSP argue must be re-estimated
at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults import FaultSpec

__all__ = ["ARRIVAL_PROCESSES", "WORKLOAD_FAMILIES", "DriftEvent", "WorkloadSpec"]

#: The supported trace families.
WORKLOAD_FAMILIES = ("stationary", "phase-shift", "flash-crowd", "diurnal", "pipeline")

#: How request timestamps are drawn along the trace.
#:
#: * ``sequential`` — no timestamps: the closed-loop replay where each
#:   request is submitted the instant the previous one finishes (the
#:   legacy synchronous path; queueing never happens).
#: * ``uniform`` — a deterministic open-loop clock: one request every
#:   ``1 / rate_rps`` seconds.
#: * ``poisson`` — memoryless open-loop arrivals: exponential gaps with
#:   mean ``1 / rate_rps``, the standard telecom/cloud traffic model.
#:
#: Under ``flash-crowd`` the instantaneous rate multiplies by
#: ``burst_rate`` inside each burst window, and under ``diurnal`` it
#: ramps sinusoidally between 0.5× and 1.5× — load and popularity move
#: together, which is what makes those families tail-latency-hostile.
ARRIVAL_PROCESSES = ("sequential", "uniform", "poisson")


@dataclass(frozen=True)
class DriftEvent:
    """One mid-trace platform drift: a device throughput rescale.

    Attributes:
        at_request: trace position the drift fires at (applied before
            the request with this index is served).
        scale: multiplier on the affected devices' effective throughput
            (< 1 slows them down, > 1 speeds them up).
        machine: platform name the drift targets; ``None`` hits every
            machine consuming the trace (fleet-wide contention).
        device_index: device within the machine; ``None`` drifts all of
            its devices.  Single-device drift is the interesting case —
            it shifts the *optimal* partitioning, not just the clock.
    """

    at_request: int
    scale: float
    machine: str | None = None
    device_index: int | None = None

    def __post_init__(self) -> None:
        if self.at_request < 0:
            raise ValueError("at_request must be non-negative")
        if not self.scale > 0:
            raise ValueError("drift scale must be positive")


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything needed to regenerate one request stream.

    Attributes:
        family: one of :data:`WORKLOAD_FAMILIES`.
        num_requests: trace length.
        skew: Zipf exponent of the (base) popularity distribution.
        seed: master seed; every random choice derives from it.
        phases: hot-set rotations for ``phase-shift`` (each phase
            reshuffles which keys hold the popular ranks).
        burst_every: requests between consecutive flash-crowd bursts.
        burst_length: requests each burst lasts.
        burst_share: probability a burst-window request hits the burst
            key instead of the base stream.
        period: requests per diurnal cycle.
        skew_min: diurnal trough exponent (0 = uniform traffic).
        skew_max: diurnal peak exponent.
        drift_events: platform drift schedule riding along the trace.
        faults: serving-side fault schedule for the scenario — replica
            crashes, straggler windows, transient error windows
            (:class:`repro.faults.FaultSpec`).  Carried on the spec so
            a chaos scenario is reproducible from the same handful of
            numbers as the trace itself; the event loop consumes it via
            :class:`repro.faults.FaultSchedule`.
        arrival: one of :data:`ARRIVAL_PROCESSES`; how timestamps are
            assigned to requests on the event-driven serving path.
        rate_rps: mean arrival rate (requests per simulated second)
            for the open-loop processes; ignored by ``sequential``.
        burst_rate: rate multiplier inside flash-crowd burst windows
            (the popularity spike arrives *with* a traffic spike).
    """

    family: str = "stationary"
    num_requests: int = 200
    skew: float = 1.5
    seed: int = 0
    phases: int = 3
    burst_every: int = 50
    burst_length: int = 12
    burst_share: float = 0.8
    period: int = 100
    skew_min: float = 0.3
    skew_max: float = 2.2
    drift_events: tuple[DriftEvent, ...] = field(default=())
    faults: tuple[FaultSpec, ...] = field(default=())
    arrival: str = "poisson"
    rate_rps: float = 200.0
    burst_rate: float = 4.0

    def __post_init__(self) -> None:
        if self.family not in WORKLOAD_FAMILIES:
            raise ValueError(
                f"unknown workload family {self.family!r}; "
                f"choose from {WORKLOAD_FAMILIES}"
            )
        if self.num_requests < 0:
            raise ValueError("num_requests must be non-negative")
        if self.skew <= 0:
            raise ValueError("skew must be positive")
        if self.phases < 1:
            raise ValueError("phases must be >= 1")
        if self.burst_every < 1:
            raise ValueError("burst_every must be >= 1")
        if self.burst_length < 1:
            raise ValueError("burst_length must be >= 1")
        if not 0.0 <= self.burst_share <= 1.0:
            raise ValueError("burst_share must be in [0, 1]")
        if self.period < 2:
            raise ValueError("period must be >= 2")
        if self.skew_min < 0:
            raise ValueError("skew_min must be non-negative")
        if self.skew_max < self.skew_min:
            raise ValueError("skew_max must be >= skew_min")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; "
                f"choose from {ARRIVAL_PROCESSES}"
            )
        if not self.rate_rps > 0:
            raise ValueError("rate_rps must be positive")
        if not self.burst_rate > 0:
            raise ValueError("burst_rate must be positive")
        # Events are carried sorted so consumers can stream the trace.
        object.__setattr__(
            self,
            "drift_events",
            tuple(sorted(self.drift_events, key=lambda e: e.at_request)),
        )
        object.__setattr__(
            self,
            "faults",
            tuple(sorted(self.faults, key=lambda f: (f.at_s, f.end_s))),
        )
