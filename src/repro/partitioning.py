"""Task partitionings: how an ND-range is split across devices.

Section 2.1 of the paper: *"p is selected from a discretized
partitioning space with a stepsize of 10%."*  A partitioning assigns
each device of the machine an integer percentage of the total workload;
percentages sum to 100.  For the paper's three-device machines with a
10% step the space has C(12,2) = 66 points, including the pure
single-device corners that double as the CPU-only / GPU-only baselines.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache

__all__ = [
    "Partitioning",
    "partition_space",
    "split_items",
    "neighborhood",
    "DEFAULT_STEP_PERCENT",
]

#: The paper's discretization step.
DEFAULT_STEP_PERCENT = 10


@dataclass(frozen=True, order=True)
class Partitioning:
    """An assignment of workload percentages to devices.

    ``shares[i]`` is the integer percentage of work items executed by
    device ``i`` (device order is the machine's device order: CPU first,
    then the GPUs).
    """

    shares: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shares:
            raise ValueError("a partitioning needs at least one device share")
        if any(s < 0 or s > 100 for s in self.shares):
            raise ValueError(f"shares must be percentages in [0, 100]: {self.shares}")
        if sum(self.shares) != 100:
            raise ValueError(f"shares must sum to 100: {self.shares}")

    @classmethod
    def single_device(cls, device_index: int, num_devices: int) -> "Partitioning":
        """All work on one device (the paper's default strategies)."""
        if not 0 <= device_index < num_devices:
            raise ValueError("device_index out of range")
        shares = [0] * num_devices
        shares[device_index] = 100
        return cls(tuple(shares))

    @classmethod
    def even(cls, num_devices: int, step: int = DEFAULT_STEP_PERCENT) -> "Partitioning":
        """The closest-to-even split representable on the step grid."""
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if step < 1 or 100 % step != 0:
            raise ValueError(f"step must be a divisor of 100, got {step}")
        base = (100 // num_devices) // step * step
        shares = [base] * num_devices
        # The deficit is a multiple of step (both 100 and base*num_devices
        # are), so round-robin top-ups land exactly on a 100% sum.
        deficit = 100 - base * num_devices
        for i in range(deficit // step):
            shares[i % num_devices] += step
        return cls(tuple(shares))

    @property
    def num_devices(self) -> int:
        return len(self.shares)

    @property
    def active_devices(self) -> tuple[int, ...]:
        """Indices of devices with a non-zero share."""
        return tuple(i for i, s in enumerate(self.shares) if s > 0)

    @property
    def is_single_device(self) -> bool:
        return len(self.active_devices) == 1

    def fraction(self, device_index: int) -> float:
        """Share of device ``device_index`` as a fraction in [0, 1]."""
        return self.shares[device_index] / 100.0

    @property
    def label(self) -> str:
        """Compact display form, e.g. ``"50/30/20"``."""
        return "/".join(str(s) for s in self.shares)

    @classmethod
    def from_label(cls, label: str) -> "Partitioning":
        """Parse the :attr:`label` form back into a Partitioning."""
        return cls(tuple(int(p) for p in label.split("/")))

    def __str__(self) -> str:
        return self.label


@lru_cache(maxsize=None)
def partition_space(
    num_devices: int, step_percent: int = DEFAULT_STEP_PERCENT
) -> tuple[Partitioning, ...]:
    """All partitionings of 100% over ``num_devices`` in ``step_percent`` steps.

    The result is ordered deterministically (lexicographic in shares) so
    that class indices are stable across runs — the ML layer uses the
    position in this tuple as the class label.
    """
    if num_devices < 1:
        raise ValueError("num_devices must be >= 1")
    if step_percent < 1 or 100 % step_percent != 0:
        raise ValueError("step_percent must divide 100")
    steps = 100 // step_percent
    out: list[Partitioning] = []
    for combo in itertools.combinations_with_replacement(range(num_devices), steps):
        shares = [0] * num_devices
        for dev in combo:
            shares[dev] += step_percent
        out.append(Partitioning(tuple(shares)))
    return tuple(sorted(set(out)))


def neighborhood(
    partitioning: Partitioning, step_percent: int = DEFAULT_STEP_PERCENT
) -> tuple[Partitioning, ...]:
    """All grid points one ``step_percent`` move away from a partitioning.

    A neighbour shifts one step of workload from one device to another;
    the result is the local search frontier used by the online
    adaptation path to refine a mispredicted partitioning without
    paying for the full 66-point sweep.

    A degenerate grid — a single device, or a step too coarse to move —
    has no distinct neighbours; the frontier is then the input point
    itself, never empty, so consumers can always evaluate *something*.
    """
    if step_percent < 1 or step_percent > 100:
        raise ValueError("step_percent must be in [1, 100]")
    out: list[Partitioning] = []
    shares = partitioning.shares
    for src in range(len(shares)):
        if shares[src] < step_percent:
            continue
        for dst in range(len(shares)):
            if dst == src or shares[dst] + step_percent > 100:
                continue
            moved = list(shares)
            moved[src] -= step_percent
            moved[dst] += step_percent
            out.append(Partitioning(tuple(moved)))
    if not out:
        return (partitioning,)
    return tuple(sorted(set(out)))


@lru_cache(maxsize=65536)
def split_items(
    total_items: int,
    partitioning: Partitioning,
    granularity: int = 1,
) -> tuple[tuple[int, int], ...]:
    """Split ``total_items`` into per-device (offset, count) chunks.

    Chunks are contiguous, disjoint, cover the range exactly, and are
    aligned to ``granularity`` (the work-group size) except that the last
    active device absorbs the remainder.  Uses the largest-remainder
    method so a 33/33/34-style request cannot lose or duplicate items.

    The result is memoized: the split is a pure function of its three
    (hashable) arguments, and both the sweep engine and the runtime
    scheduler ask for the same grid splits over and over.
    """
    if total_items < 0:
        raise ValueError("total_items must be non-negative")
    if granularity < 1:
        raise ValueError("granularity must be >= 1")
    n = partitioning.num_devices
    ideal = [total_items * s / 100.0 for s in partitioning.shares]
    counts = [int(x // granularity) * granularity for x in ideal]
    leftover = total_items - sum(counts)
    # Hand out whole granules one at a time in largest-remainder order,
    # cycling over the active devices: every active device gets a fair
    # shot at a granule before any device receives a second one.  (Each
    # active device's fractional remainder is < granularity, so in fact
    # the cycle never wraps.)
    remainders = [(ideal[i] - counts[i], -i) for i in range(n)]
    active_order = [
        i
        for i in sorted(range(n), key=lambda i: remainders[i], reverse=True)
        if partitioning.shares[i] > 0
    ]
    for pos in itertools.count():
        if leftover < granularity or not active_order:
            break
        counts[active_order[pos % len(active_order)]] += granularity
        leftover -= granularity
    # Final sub-granule remainder goes to the last active device.
    if leftover > 0:
        last_active = partitioning.active_devices[-1]
        counts[last_active] += leftover
    offsets = []
    cursor = 0
    for c in counts:
        offsets.append(cursor)
        cursor += c
    assert cursor == total_items, (cursor, total_items, counts)
    return tuple((offsets[i], counts[i]) for i in range(n))
