"""The task-partitioning prediction model (§2.1 of the paper).

Wraps a from-scratch classifier behind the partitioning vocabulary:
training consumes a :class:`TrainingDatabase`, deployment consumes the
combined feature vector of a *new* program + problem size and returns
the predicted :class:`Partitioning`.

Two model shapes are provided:

* **classifier** (the paper's formulation) — predict the oracle label
  directly; limited to labels observed during training;
* **scorer** (extension) — predict the *relative cost* of every
  candidate partitioning and take the argmin, which generalizes to
  partitionings never optimal for any training program.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..benchsuite.base import Benchmark, ProblemInstance
from ..energy.objectives import MODEL_OBJECTIVES, Objective, coerce_objective
from ..ml.base import Classifier, MajorityClassifier
from ..ml.forest import RandomForestClassifier
from ..ml.knn import KNeighborsClassifier
from ..ml.neural import MLPClassifier, MLPRegressor
from ..ml.scaling import StandardScaler
from ..ml.tree import DecisionTreeClassifier
from ..partitioning import Partitioning
from .database import TrainingDatabase
from .features import combined_features, feature_vector

__all__ = [
    "make_classifier",
    "save_model",
    "load_model",
    "MODEL_KINDS",
    "PERSISTABLE_MODEL_KINDS",
    "PartitioningModel",
    "PartitioningScorerModel",
    "make_partitioning_model",
    "PartitioningPredictor",
]

#: Classifier families (``mlp`` is the paper-lineage default) plus the
#: scorer extensions.
MODEL_KINDS = ("mlp", "tree", "forest", "knn", "majority", "knn-scorer", "mlp-scorer")


def make_classifier(kind: str, seed: int = 0) -> Classifier:
    """Instantiate one of the supported model families."""
    if kind == "mlp":
        return MLPClassifier(hidden_layers=(48, 24), epochs=500, seed=seed)
    if kind == "tree":
        return DecisionTreeClassifier(max_depth=12, min_samples_leaf=1, seed=seed)
    if kind == "forest":
        return RandomForestClassifier(n_estimators=40, max_depth=14, seed=seed)
    if kind == "knn":
        return KNeighborsClassifier(k=5, weights="distance")
    if kind == "majority":
        return MajorityClassifier()
    raise ValueError(f"unknown model kind {kind!r}; choose from {MODEL_KINDS}")


class PartitioningModel:
    """Scaler + classifier over partitioning labels.

    Labels are the partition-space label strings (``"70/20/10"``), so a
    model can only ever predict partitionings it has seen as oracle
    labels — matching the paper's classification formulation.
    """

    def __init__(
        self,
        kind: str = "mlp",
        seed: int = 0,
        objective: "Objective | str" = Objective.MAKESPAN,
    ):
        self.kind = kind
        self.seed = seed
        self.objective = coerce_objective(objective)
        if self.objective not in MODEL_OBJECTIVES:
            raise ValueError(
                f"models train on {[o.value for o in MODEL_OBJECTIVES]}; "
                f"{self.objective.value!r} is a serve-time constraint"
            )
        self.scaler = StandardScaler()
        self.classifier = make_classifier(kind, seed)
        self.feature_names_: tuple[str, ...] | None = None
        self._fitted = False

    def fit(self, db: TrainingDatabase) -> "PartitioningModel":
        """Train on a database (typically one machine's records).

        The oracle label of each record is derived under this model's
        objective — the same sweep trains a makespan, energy or EDP
        predictor, only the labelling differs.
        """
        names = db.feature_names()
        X, y, _groups = db.matrices(names, objective=self.objective)
        Xs = self.scaler.fit_transform(X)
        self.classifier.fit(Xs, y)
        self.feature_names_ = names
        self._fitted = True
        return self

    #: Warm-start epochs per incremental MLP refit (a nudge, not a
    #: from-scratch schedule).
    INCREMENTAL_EPOCHS = 80

    def refit(
        self, db: TrainingDatabase, incremental: bool = True
    ) -> "PartitioningModel":
        """Re-train after the database changed (online adaptation path).

        ``incremental=True`` keeps the fitted feature statistics (the
        scaler) so the feature space stays stable under a handful of new
        records; an MLP warm-starts from its current weights for a
        shortened schedule (a new oracle label forces a full fit — the
        output layer changes shape).  Other classifier kinds re-fit
        from scratch, which for them is cheap and exact.  ``False`` is
        a full :meth:`fit`.
        """
        if not incremental or not self._fitted or self.feature_names_ is None:
            return self.fit(db)
        X, y, _groups = db.matrices(self.feature_names_, objective=self.objective)
        Xs = self.scaler.transform(X)
        if isinstance(self.classifier, MLPClassifier):
            try:
                self.classifier.continue_fit(Xs, y, epochs=self.INCREMENTAL_EPOCHS)
                return self
            except ValueError:
                pass  # unseen label: fall through to a full re-fit
        classifier = make_classifier(self.kind, self.seed)
        classifier.fit(Xs, y)
        self.classifier = classifier
        return self

    def predict_features(self, features: Mapping[str, float]) -> Partitioning:
        """Predict the partitioning for one combined feature dict."""
        return self.predict_features_many([features])[0]

    def predict_features_many(
        self, features: Sequence[Mapping[str, float]]
    ) -> list[Partitioning]:
        """Batched prediction: one classifier pass over many launches.

        The serving layer's ``submit_many`` funnels every cold key of a
        trace through here, so a whole batch costs one scaler transform
        and one classifier forward pass instead of per-row model calls.
        """
        if not self._fitted or self.feature_names_ is None:
            raise RuntimeError("model is not fitted")
        if not features:
            return []
        X = np.stack([feature_vector(f, self.feature_names_) for f in features])
        labels = self.classifier.predict(self.scaler.transform(X))
        return [Partitioning.from_label(str(l)) for l in labels]

    def predict_many(self, db: TrainingDatabase) -> list[Partitioning]:
        """Predict for every record of a database (evaluation helper)."""
        if not self._fitted or self.feature_names_ is None:
            raise RuntimeError("model is not fitted")
        X, _y, _groups = db.matrices(self.feature_names_)
        labels = self.classifier.predict(self.scaler.transform(X))
        return [Partitioning.from_label(str(l)) for l in labels]

    def accuracy_on(self, db: TrainingDatabase) -> float:
        """Exact-label accuracy against this objective's oracle labels."""
        predictions = self.predict_many(db)
        hits = sum(
            1
            for p, r in zip(predictions, db.records)
            if p.label == r.best_label_for(self.objective)
        )
        return hits / len(db.records)


class PartitioningScorerModel:
    """Argmin-over-candidates model (the unseen-label extension).

    ``knn-scorer``: the k nearest training records (in feature space)
    vote with their full measured sweeps — each candidate partitioning
    is scored by the mean of the neighbours' *relative* times (each
    normalized by that record's oracle time), and the argmin wins.

    ``mlp-scorer``: a regression network maps (features, shares) to the
    log relative time of the candidate; prediction scans all 66 points.
    """

    def __init__(
        self,
        kind: str = "knn-scorer",
        seed: int = 0,
        k: int = 5,
        objective: "Objective | str" = Objective.MAKESPAN,
    ):
        if kind not in ("knn-scorer", "mlp-scorer"):
            raise ValueError(f"unknown scorer kind {kind!r}")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.kind = kind
        self.seed = seed
        self.k = k
        self.objective = coerce_objective(objective)
        if self.objective not in MODEL_OBJECTIVES:
            raise ValueError(
                f"scorers train on {[o.value for o in MODEL_OBJECTIVES]}; "
                f"{self.objective.value!r} is a serve-time constraint"
            )
        self.scaler = StandardScaler()
        self.feature_names_: tuple[str, ...] | None = None
        self._labels: tuple[str, ...] = ()
        self._X: np.ndarray | None = None
        self._rel_times: np.ndarray | None = None
        self._log_rel: np.ndarray | None = None
        self._shares: np.ndarray | None = None
        self._regressor: MLPRegressor | None = None
        self._fitted = False

    def _candidate_shares(self) -> np.ndarray:
        """Candidate-share matrix, parsed once at fit time and cached."""
        if self._shares is None:
            self._shares = (
                np.array(
                    [Partitioning.from_label(l).shares for l in self._labels],
                    dtype=np.float64,
                )
                / 100.0
            )
        return self._shares

    def _objective_costs(self, record) -> dict[str, float]:
        """Per-label scalar cost of one record under this objective."""
        from ..energy.objectives import objective_cost

        if self.objective is Objective.MAKESPAN:
            return dict(record.timings)
        missing = set(record.timings) - set(record.energies)
        if missing:
            raise ValueError(
                f"objective {self.objective.value!r} needs energy sweeps; "
                f"record {record.program}@{record.size} has none for "
                f"{sorted(missing)[:3]}..."
            )
        return {
            label: objective_cost(
                self.objective, record.timings[label], record.energies[label]
            )
            for label in record.timings
        }

    def fit(self, db: TrainingDatabase) -> "PartitioningScorerModel":
        names = db.feature_names()
        X, _y, _groups = db.matrices(names)
        Xs = self.scaler.fit_transform(X)
        labels = tuple(sorted(db.records[0].timings))
        rel = np.empty((len(db.records), len(labels)))
        for i, r in enumerate(db.records):
            if tuple(sorted(r.timings)) != labels:
                raise ValueError("inconsistent partitioning sweeps across records")
            costs = self._objective_costs(r)
            best = min(costs.values())
            rel[i] = [costs[l] / best for l in labels]
        if labels != self._labels:
            self._shares = None  # candidate set changed: re-derive lazily
        self.feature_names_ = names
        self._labels = labels
        self._X = Xs
        self._rel_times = rel
        self._log_rel = np.log(rel)
        if self.kind == "mlp-scorer":
            shares = self._candidate_shares()
            n, d = Xs.shape
            m = len(labels)
            rows = np.empty((n * m, d + shares.shape[1]))
            rows[:, :d] = np.repeat(Xs, m, axis=0)
            rows[:, d:] = np.tile(shares, (n, 1))
            targets = self._log_rel.reshape(n * m)
            self._regressor = MLPRegressor(
                hidden_layers=(48, 24), epochs=60, seed=self.seed
            ).fit(rows, targets)
        self._fitted = True
        return self

    def refit(
        self, db: TrainingDatabase, incremental: bool = True
    ) -> "PartitioningScorerModel":
        """Re-train on the consistent-sweep subset of an updated database.

        Online records carry partial sweeps; scorers need uniform
        candidate sets, so the refit selects the dominant sweep shape
        (``incremental`` is accepted for interface parity — scorer fits
        are cheap enough to redo in full).
        """
        del incremental
        return self.fit(db.consistent_sweeps())

    def _scores_for(self, x_scaled: np.ndarray) -> np.ndarray:
        """Relative-cost score per candidate label for one launch."""
        return self._scores_matrix(x_scaled[None, :])[0]

    def _scores_matrix(self, X_scaled: np.ndarray) -> np.ndarray:
        """Relative-cost scores, all rows in one pass: (n, candidates).

        ``knn-scorer`` finds every row's neighbourhood from one pairwise
        distance matrix and gathers the (pre-logged) relative sweeps in
        a single fancy-indexing step; ``mlp-scorer`` evaluates all
        (row, candidate) pairs through one regressor forward pass.
        """
        assert self._X is not None and self._log_rel is not None
        if self.kind == "knn-scorer":
            k = min(self.k, self._X.shape[0])
            out = np.empty((len(X_scaled), self._log_rel.shape[1]))
            # Broadcast-difference distances, row-blocked to bound the
            # (block, train, features) intermediate.  Deliberately NOT
            # the x²-2xy+y² expansion: the difference form keeps every
            # d2 entry bit-identical to the historical per-row loop, so
            # vectorization cannot flip near-tied neighbour selections.
            block = 256
            for start in range(0, len(X_scaled), block):
                chunk = X_scaled[start : start + block]
                d2 = ((self._X[None, :, :] - chunk[:, None, :]) ** 2).sum(axis=2)
                nn = np.argpartition(d2, k - 1, axis=1)[:, :k]
                # Geometric mean over neighbours: robust to outlier sweeps.
                out[start : start + len(chunk)] = np.exp(
                    self._log_rel[nn].mean(axis=1)
                )
            return out
        assert self._regressor is not None
        shares = self._candidate_shares()
        n, d = X_scaled.shape
        m = len(shares)
        rows = np.empty((n * m, d + shares.shape[1]))
        rows[:, :d] = np.repeat(X_scaled, m, axis=0)
        rows[:, d:] = np.tile(shares, (n, 1))
        return self._regressor.predict(rows).reshape(n, m)

    def _argmin_partitionings(self, scores: np.ndarray) -> list[Partitioning]:
        return [
            Partitioning.from_label(self._labels[int(i)])
            for i in np.argmin(scores, axis=1)
        ]

    def predict_features(self, features: Mapping[str, float]) -> Partitioning:
        return self.predict_features_many([features])[0]

    def predict_features_many(
        self, features: Sequence[Mapping[str, float]]
    ) -> list[Partitioning]:
        """Batched prediction from assembled feature dicts (serving path)."""
        if not self._fitted or self.feature_names_ is None:
            raise RuntimeError("model is not fitted")
        if not features:
            return []
        X = np.stack([feature_vector(f, self.feature_names_) for f in features])
        return self._argmin_partitionings(self._scores_matrix(self.scaler.transform(X)))

    def predict_many(self, db: TrainingDatabase) -> list[Partitioning]:
        if not self._fitted or self.feature_names_ is None:
            raise RuntimeError("model is not fitted")
        X, _y, _groups = db.matrices(self.feature_names_)
        return self._argmin_partitionings(self._scores_matrix(self.scaler.transform(X)))

    def accuracy_on(self, db: TrainingDatabase) -> float:
        predictions = self.predict_many(db)
        hits = sum(
            1
            for p, r in zip(predictions, db.records)
            if p.label == r.best_label_for(self.objective)
        )
        return hits / len(db.records)


def make_partitioning_model(
    kind: str, seed: int = 0, objective: "Objective | str" = Objective.MAKESPAN
):
    """Factory over both model shapes (classifiers and scorers).

    ``objective`` selects what the model optimizes: the oracle labels
    (classifiers) or the relative-cost targets (scorers) are derived
    from the sweeps under that objective at fit time.
    """
    if kind in ("knn-scorer", "mlp-scorer"):
        return PartitioningScorerModel(kind, seed=seed, objective=objective)
    return PartitioningModel(kind, seed=seed, objective=objective)


class PartitioningPredictor:
    """Deployment-phase façade: program + problem size → partitioning.

    This is what the paper's runtime system consults before every
    launch: static features come from the compiled kernel, runtime
    features from the concrete launch, and the offline-trained model
    maps them to the partitioning the scheduler should use.
    """

    def __init__(self, model: PartitioningModel, machine_name: str):
        self.model = model
        self.machine_name = machine_name

    @property
    def objective(self) -> Objective:
        """What the underlying model optimizes (set at construction)."""
        return self.model.objective

    def features_for(
        self, bench: Benchmark, instance: ProblemInstance
    ) -> dict[str, float]:
        """Assemble the combined feature vector for a launch."""
        return combined_features(bench.compiled(instance), instance)

    def predict(self, bench: Benchmark, instance: ProblemInstance) -> Partitioning:
        """The partitioning to use for this launch."""
        return self.model.predict_features(self.features_for(bench, instance))

    def predict_features(self, features: Mapping[str, float]) -> Partitioning:
        """Predict from an already-assembled feature dict (serving path)."""
        return self.model.predict_features(features)

    def predict_features_many(
        self, features: Sequence[Mapping[str, float]]
    ) -> list[Partitioning]:
        """Batched prediction for many launches in one model pass."""
        return self.model.predict_features_many(features)

    def refit(
        self, db: TrainingDatabase, incremental: bool = True
    ) -> "PartitioningPredictor":
        """Incrementally refit the underlying model on an updated database.

        The serving layer calls this after online measurements land in
        the database, closing the paper's one-shot train→deploy loop.
        """
        self.model.refit(db.for_machine(self.machine_name), incremental=incremental)
        return self


# ---------------------------------------------------------------------------
# Model persistence
# ---------------------------------------------------------------------------
#
# The paper's deployment story requires an *offline-generated* model the
# runtime can load later; these helpers serialize the trained classifier
# models to JSON (no pickle, versioned) for exactly that workflow.

_MODEL_SCHEMA_VERSION = 1

#: Model kinds :func:`save_model` can serialize.  Tree ensembles are
#: cheap to refit from a saved :class:`TrainingDatabase` and scorers
#: carry their training set anyway, so neither is persisted.
PERSISTABLE_MODEL_KINDS = ("mlp", "knn", "majority")


def save_model(model: "PartitioningModel", path) -> None:
    """Serialize a trained classifier model to JSON.

    Supported kinds: ``mlp`` (weights), ``knn`` (training set),
    ``majority`` (label).  Tree ensembles are cheap to refit from a
    saved :class:`TrainingDatabase` and are intentionally not supported.
    """
    import json
    from pathlib import Path

    if not model._fitted or model.feature_names_ is None:
        raise RuntimeError("cannot save an unfitted model")
    clf = model.classifier
    doc: dict = {
        "schema_version": _MODEL_SCHEMA_VERSION,
        "kind": model.kind,
        "seed": model.seed,
        "objective": model.objective.value,
        "feature_names": list(model.feature_names_),
        "scaler": {
            "mean": model.scaler.mean_.tolist(),
            "scale": model.scaler.scale_.tolist(),
        },
    }
    if isinstance(clf, MLPClassifier):
        doc["classifier"] = {
            "classes": [str(c) for c in clf.classes_],
            "hidden_layers": list(clf.hidden_layers),
            "activation": clf.activation,
            "weights": [w.tolist() for w in clf._weights],
            "biases": [b.tolist() for b in clf._biases],
        }
    elif isinstance(clf, KNeighborsClassifier):
        doc["classifier"] = {
            "k": clf.k,
            "weights": clf.weights,
            "X": clf._X.tolist(),
            "y": [str(v) for v in clf._y],
        }
    elif isinstance(clf, MajorityClassifier):
        doc["classifier"] = {"label": str(clf._label)}
    else:
        raise NotImplementedError(
            f"persistence is not supported for model kind {model.kind!r}"
        )
    Path(path).write_text(json.dumps(doc))


def load_model(path) -> "PartitioningModel":
    """Load a model written by :func:`save_model`."""
    import json
    from pathlib import Path

    doc = json.loads(Path(path).read_text())
    version = doc.get("schema_version")
    if version != _MODEL_SCHEMA_VERSION:
        raise ValueError(f"model schema {version} != supported {_MODEL_SCHEMA_VERSION}")
    model = PartitioningModel(
        doc["kind"],
        seed=doc["seed"],
        # Models saved before the energy subsystem optimized makespan.
        objective=doc.get("objective", Objective.MAKESPAN.value),
    )
    model.feature_names_ = tuple(doc["feature_names"])
    model.scaler.mean_ = np.asarray(doc["scaler"]["mean"], dtype=np.float64)
    model.scaler.scale_ = np.asarray(doc["scaler"]["scale"], dtype=np.float64)
    state = doc["classifier"]
    clf = model.classifier
    if isinstance(clf, MLPClassifier):
        clf.classes_ = np.asarray(state["classes"])
        clf._weights = [np.asarray(w, dtype=np.float64) for w in state["weights"]]
        clf._biases = [np.asarray(b, dtype=np.float64) for b in state["biases"]]
    elif isinstance(clf, KNeighborsClassifier):
        clf._X = np.asarray(state["X"], dtype=np.float64)
        clf._y = np.asarray(state["y"])
        clf.classes_ = np.unique(clf._y)
    elif isinstance(clf, MajorityClassifier):
        clf._label = state["label"]
        clf._fitted = True
    else:  # pragma: no cover - guarded by save_model
        raise NotImplementedError(doc["kind"])
    model._fitted = True
    return model
