"""Leave-one-program-out evaluation (the paper's Figure 1 protocol).

For every benchmark, a model is trained on the other 22 programs'
records and asked to predict partitionings for the held-out program at
every problem size.  Because the training sweep already measured *all*
partitionings, the predicted/baseline/oracle times are simple lookups —
exactly how the paper's offline evaluation works.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ocl.costmodel import geometric_mean
from ..ocl.platform import Platform
from ..partitioning import Partitioning
from ..runtime.strategies import cpu_only, gpu_only
from .database import TrainingDatabase, TrainingRecord
from .predictor import make_partitioning_model

__all__ = ["SizeResult", "ProgramResult", "MachineEvaluation", "evaluate_lopo"]


@dataclass(frozen=True)
class SizeResult:
    """Timings for one (program, size) under every strategy."""

    size: int
    predicted: Partitioning
    oracle: Partitioning
    t_predicted_s: float
    t_oracle_s: float
    t_cpu_s: float
    t_gpu_s: float

    @property
    def speedup_vs_cpu(self) -> float:
        return self.t_cpu_s / self.t_predicted_s

    @property
    def speedup_vs_gpu(self) -> float:
        return self.t_gpu_s / self.t_predicted_s

    @property
    def oracle_efficiency(self) -> float:
        """Fraction of oracle performance achieved (1.0 = optimal)."""
        return self.t_oracle_s / self.t_predicted_s

    @property
    def exact_hit(self) -> bool:
        return self.predicted == self.oracle


@dataclass(frozen=True)
class ProgramResult:
    """Per-program aggregation over the problem-size ladder."""

    machine: str
    program: str
    sizes: tuple[SizeResult, ...]

    @property
    def speedup_vs_cpu(self) -> float:
        """Geometric-mean speedup over the CPU-only default."""
        return geometric_mean([s.speedup_vs_cpu for s in self.sizes])

    @property
    def speedup_vs_gpu(self) -> float:
        """Geometric-mean speedup over the GPU-only default."""
        return geometric_mean([s.speedup_vs_gpu for s in self.sizes])

    @property
    def oracle_efficiency(self) -> float:
        return geometric_mean([s.oracle_efficiency for s in self.sizes])

    @property
    def accuracy(self) -> float:
        """Fraction of sizes where the exact oracle label was predicted."""
        return sum(1 for s in self.sizes if s.exact_hit) / len(self.sizes)


@dataclass(frozen=True)
class MachineEvaluation:
    """Figure-1 data for one machine."""

    machine: str
    model_kind: str
    programs: tuple[ProgramResult, ...]

    @property
    def geomean_speedup_vs_cpu(self) -> float:
        return geometric_mean([p.speedup_vs_cpu for p in self.programs])

    @property
    def geomean_speedup_vs_gpu(self) -> float:
        return geometric_mean([p.speedup_vs_gpu for p in self.programs])

    @property
    def max_speedup_vs_cpu(self) -> float:
        return max(s.speedup_vs_cpu for p in self.programs for s in p.sizes)

    @property
    def max_speedup_vs_gpu(self) -> float:
        return max(s.speedup_vs_gpu for p in self.programs for s in p.sizes)

    @property
    def geomean_oracle_efficiency(self) -> float:
        return geometric_mean([p.oracle_efficiency for p in self.programs])

    @property
    def mean_accuracy(self) -> float:
        return sum(p.accuracy for p in self.programs) / len(self.programs)

    @property
    def wins_vs_both_defaults(self) -> int:
        """Programs where the prediction beats both single-device defaults."""
        return sum(
            1
            for p in self.programs
            if p.speedup_vs_cpu > 1.0 and p.speedup_vs_gpu > 1.0
        )


def _size_result(
    record: TrainingRecord,
    predicted: Partitioning,
    cpu_label: str,
    gpu_label: str,
) -> SizeResult:
    t_pred = record.timings.get(predicted.label)
    if t_pred is None:
        raise KeyError(
            f"partitioning {predicted.label} was not measured for "
            f"{record.program}@{record.size}"
        )
    return SizeResult(
        size=record.size,
        predicted=predicted,
        oracle=record.best_partitioning,
        t_predicted_s=t_pred,
        t_oracle_s=record.best_time,
        t_cpu_s=record.timings[cpu_label],
        t_gpu_s=record.timings[gpu_label],
    )


def evaluate_lopo(
    platform: Platform,
    db: TrainingDatabase,
    model_kind: str = "mlp",
    seed: int = 0,
) -> MachineEvaluation:
    """Leave-one-program-out evaluation of one machine's database."""
    machine_db = db.for_machine(platform.name)
    if len(machine_db) == 0:
        raise ValueError(f"no records for machine {platform.name!r}")
    cpu_label = cpu_only(platform).label
    gpu_label = gpu_only(platform).label
    results: list[ProgramResult] = []
    for program in machine_db.programs():
        train_db = machine_db.excluding_program(program)
        test_db = machine_db.for_program(program)
        model = make_partitioning_model(model_kind, seed=seed).fit(train_db)
        predictions = model.predict_many(test_db)
        sizes = tuple(
            _size_result(rec, pred, cpu_label, gpu_label)
            for rec, pred in zip(test_db.records, predictions)
        )
        results.append(ProgramResult(platform.name, program, sizes))
    return MachineEvaluation(platform.name, model_kind, tuple(results))
