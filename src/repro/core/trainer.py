"""The training phase: exhaustive measurement → training database.

Mirrors §2 of the paper: every training program is compiled, its
features extracted, and the generated multi-device program executed with
various problem sizes under *all* candidate task partitionings; the
measurements land in the database from which the model is trained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..benchsuite.base import Benchmark, ProblemInstance
from ..ocl.platform import Platform
from ..partitioning import Partitioning, partition_space
from ..runtime.measurement import Runner
from .database import TrainingDatabase, TrainingRecord
from .features import combined_features

__all__ = ["TrainingConfig", "sweep_partitionings", "build_record", "generate_training_data"]


@dataclass(frozen=True)
class TrainingConfig:
    """Knobs of a training campaign.

    Attributes:
        step_percent: partition-space discretization (paper: 10%).
        repetitions: measurements per partitioning (median taken).
        noise_sigma: lognormal measurement noise (0 = deterministic).
        seed: base seed for inputs and noise streams.
        max_sizes: cap on ladder sizes per benchmark (None = all).
        functional_check: execute + verify the first partitioning of
            each sweep functionally (catches semantic regressions during
            long campaigns at modest cost).
    """

    step_percent: int = 10
    repetitions: int = 3
    noise_sigma: float = 0.0
    seed: int = 0
    max_sizes: int | None = None
    functional_check: bool = False


def sweep_partitionings(
    runner: Runner,
    bench: Benchmark,
    instance: ProblemInstance,
    space: Sequence[Partitioning],
    repetitions: int = 1,
) -> dict[str, float]:
    """Measure every partitioning; returns label → median seconds."""
    request = bench.request(instance)
    out: dict[str, float] = {}
    for p in space:
        out[p.label] = runner.time_of(request, p, repetitions=repetitions)
    return out


def build_record(
    runner: Runner,
    bench: Benchmark,
    instance: ProblemInstance,
    space: Sequence[Partitioning],
    config: TrainingConfig,
) -> TrainingRecord:
    """One training pattern: features + full partitioning sweep."""
    compiled = bench.compiled(instance)
    features = combined_features(compiled, instance)
    if config.functional_check:
        check = instance.fresh_copy()
        expected = bench.reference(check)
        runner.run(bench.request(check), space[0], functional=True)
        bench.verify(check, atol=1e-2, rtol=1e-2, expected=expected)
    timings = sweep_partitionings(
        runner, bench, instance, space, repetitions=config.repetitions
    )
    return TrainingRecord.from_timings(
        machine=runner.platform.name,
        program=bench.name,
        size=instance.size,
        features=features,
        timings=timings,
    )


def generate_training_data(
    platform: Platform,
    benchmarks: Iterable[Benchmark],
    config: TrainingConfig = TrainingConfig(),
    progress: Callable[[str], None] | None = None,
) -> TrainingDatabase:
    """Run the full training campaign for one machine.

    For each benchmark and each problem size on its ladder, measures all
    partitionings of the configured space and stores one record.
    """
    runner = Runner(platform, noise_sigma=config.noise_sigma, seed=config.seed)
    space = partition_space(platform.num_devices, config.step_percent)
    db = TrainingDatabase()
    for bench in benchmarks:
        sizes = bench.problem_sizes()
        if config.max_sizes is not None:
            sizes = sizes[: config.max_sizes]
        for size in sizes:
            instance = bench.make_instance(size, seed=config.seed)
            record = build_record(runner, bench, instance, space, config)
            db.add(record)
            if progress is not None:
                progress(
                    f"[{platform.name}] {bench.name}@{size}: "
                    f"best={record.best_label} ({record.best_time * 1e3:.3f} ms)"
                )
    return db
