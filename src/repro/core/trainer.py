"""The training phase: exhaustive measurement → training database.

Mirrors §2 of the paper: every training program is compiled, its
features extracted, and the generated multi-device program executed with
various problem sizes under *all* candidate task partitionings; the
measurements land in the database from which the model is trained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..benchsuite.base import Benchmark, ProblemInstance
from ..engine import SweepEngine
from ..ocl.platform import Platform
from ..partitioning import Partitioning, partition_space
from ..runtime.measurement import Runner
from .database import TrainingDatabase, TrainingRecord
from .features import combined_features

__all__ = [
    "TrainingConfig",
    "sweep_partitionings",
    "sweep_measurements",
    "build_record",
    "generate_training_data",
]


@dataclass(frozen=True)
class TrainingConfig:
    """Knobs of a training campaign.

    Attributes:
        step_percent: partition-space discretization (paper: 10%).
        repetitions: measurements per partitioning (median taken).
        noise_sigma: lognormal measurement noise (0 = deterministic).
        seed: base seed for inputs and noise streams.
        max_sizes: cap on ladder sizes per benchmark (None = all).
        functional_check: execute + verify the first partitioning of
            each sweep functionally (catches semantic regressions during
            long campaigns at modest cost).
    """

    step_percent: int = 10
    repetitions: int = 3
    noise_sigma: float = 0.0
    seed: int = 0
    max_sizes: int | None = None
    functional_check: bool = False


def sweep_partitionings(
    runner: Runner,
    bench: Benchmark,
    instance: ProblemInstance,
    space: Sequence[Partitioning],
    repetitions: int = 1,
    engine: SweepEngine | None = None,
) -> dict[str, float]:
    """Measure every partitioning; returns label → median seconds.

    Sweeps run through a memoizing :class:`SweepEngine`: across the
    grid the per-device chunks repeat heavily, so each unique chunk is
    simulated once and every further point is composed from cached
    timelines.  The engine's caches are keyed per request object, so
    reuse happens *within* one sweep (and across repeated measurements
    of the same request, as in serving) — a fresh ``bench.request``
    per record shares nothing, which is why the campaign loop resets
    its engine between records instead of accumulating pinned arrays.
    """
    timings, _energies = sweep_measurements(
        runner, bench, instance, space, repetitions=repetitions, engine=engine
    )
    return timings


def sweep_measurements(
    runner: Runner,
    bench: Benchmark,
    instance: ProblemInstance,
    space: Sequence[Partitioning],
    repetitions: int = 1,
    engine: SweepEngine | None = None,
) -> tuple[dict[str, float], dict[str, float]]:
    """Measure every partitioning; returns (label → seconds, label → joules).

    The energy-aware sibling of :func:`sweep_partitionings` — one
    composed measurement prices both axes, so recording energy costs
    the campaign nothing extra.
    """
    if engine is None:
        engine = SweepEngine(runner)
    request = bench.request(instance)
    return engine.sweep_with_energy(request, space, repetitions=repetitions)


def build_record(
    runner: Runner,
    bench: Benchmark,
    instance: ProblemInstance,
    space: Sequence[Partitioning],
    config: TrainingConfig,
    engine: SweepEngine | None = None,
) -> TrainingRecord:
    """One training pattern: features + full partitioning sweep."""
    compiled = bench.compiled(instance)
    features = combined_features(compiled, instance)
    if config.functional_check:
        check = instance.fresh_copy()
        expected = bench.reference(check)
        runner.run(bench.request(check), space[0], functional=True)
        bench.verify(check, atol=1e-2, rtol=1e-2, expected=expected)
    timings, energies = sweep_measurements(
        runner, bench, instance, space, repetitions=config.repetitions, engine=engine
    )
    return TrainingRecord.from_timings(
        machine=runner.platform.name,
        program=bench.name,
        size=instance.size,
        features=features,
        timings=timings,
        energies=energies,
    )


def generate_training_data(
    platform: Platform,
    benchmarks: Iterable[Benchmark],
    config: TrainingConfig = TrainingConfig(),
    progress: Callable[[str], None] | None = None,
) -> TrainingDatabase:
    """Run the full training campaign for one machine.

    For each benchmark and each problem size on its ladder, measures all
    partitionings of the configured space and stores one record.
    """
    runner = Runner(platform, noise_sigma=config.noise_sigma, seed=config.seed)
    engine = SweepEngine(runner)
    space = partition_space(platform.num_devices, config.step_percent)
    db = TrainingDatabase()
    for bench in benchmarks:
        sizes = bench.problem_sizes()
        if config.max_sizes is not None:
            sizes = sizes[: config.max_sizes]
        for size in sizes:
            instance = bench.make_instance(size, seed=config.seed)
            record = build_record(runner, bench, instance, space, config, engine=engine)
            # Tapes are request-scoped; dropping them between records
            # keeps campaign memory flat without losing any cache hits.
            engine.reset()
            db.add(record)
            if progress is not None:
                progress(
                    f"[{platform.name}] {bench.name}@{size}: "
                    f"best={record.best_label} ({record.best_time * 1e3:.3f} ms)"
                )
    return db
