"""Feature extraction: the two feature classes of the paper.

Section 4: *"we use two classes of features: static program features,
whose values can be extracted from the source code at compile time, and
problem size dependent runtime features, whose values are collected
during program execution."*

* Static features come from :meth:`KernelAnalysis.static_features` —
  per-work-item op counts with nominal loop trips, control-flow and
  access-pattern statistics.
* Runtime features re-evaluate the same counts against the launch's
  actual scalar arguments and combine them with the launch geometry:
  total work items, total flops, global traffic and — critically for
  the CPU/GPU decision — the host↔device transfer volume implied by the
  buffer distributions.

The combined vector is what the partitioning model consumes.  Feature
order is fixed and versioned so persisted databases stay compatible.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..benchsuite.base import ProblemInstance
from ..compiler.frontend import CompiledKernel
from ..compiler.splitter import DistributionKind
from ..inspire.ast import ParamIntent

__all__ = [
    "FEATURE_SCHEMA_VERSION",
    "static_feature_dict",
    "runtime_feature_dict",
    "combined_features",
    "feature_names",
    "feature_vector",
]

FEATURE_SCHEMA_VERSION = 1

#: Features measured in counts/bytes: compressed with log1p before scaling.
MAGNITUDE_FEATURES = frozenset(
    {
        "st_int_ops",
        "st_float_ops",
        "st_transcendental_ops",
        "st_vector_ops",
        "st_loads",
        "st_stores",
        "st_atomics",
        "st_load_bytes",
        "st_store_bytes",
        "st_branches",
        "st_selects",
        "st_barriers",
        "st_arith_intensity",
        "st_loop_count",
        "st_loop_depth",
        "rt_items",
        "rt_iterations",
        "rt_ops_per_item",
        "rt_mem_bytes_per_item",
        "rt_total_flops",
        "rt_total_mem_bytes",
        "rt_transfer_in_bytes",
        "rt_transfer_out_bytes",
        "rt_split_transfer_in_bytes",
        "rt_flops_per_transfer_byte",
        "rt_arith_intensity",
    }
)


def static_feature_dict(compiled: CompiledKernel) -> dict[str, float]:
    """Static program features (compile-time only)."""
    return compiled.analysis.static_features()


def _transfer_volumes(
    compiled: CompiledKernel, instance: ProblemInstance
) -> tuple[float, float, float]:
    """(h2d bytes, d2h bytes, h2d bytes that scale with the split).

    ``FULL``/``REDUCED`` input buffers must reach *every* device that
    participates, so their cost grows with the number of active devices;
    split/halo buffers are shipped once in total.  The third component
    isolates the splittable share — a strong signal for whether
    multi-GPU partitionings pay off.
    """
    h2d = 0.0
    d2h = 0.0
    h2d_split = 0.0
    for p in compiled.kernel.buffer_params:
        arr = instance.arrays[p.name]
        nbytes = float(np.asarray(arr).nbytes)
        dist = compiled.distribution.of(p.name)
        if p.intent in (ParamIntent.IN, ParamIntent.INOUT):
            h2d += nbytes
            if dist.kind in (DistributionKind.SPLIT, DistributionKind.HALO):
                h2d_split += nbytes
        if p.intent in (ParamIntent.OUT, ParamIntent.INOUT):
            d2h += nbytes
    return h2d, d2h, h2d_split


def runtime_feature_dict(
    compiled: CompiledKernel, instance: ProblemInstance
) -> dict[str, float]:
    """Problem-size-dependent runtime features for one launch."""
    scalar_env = {k: float(v) for k, v in instance.scalars.items()}
    counts = compiled.analysis.op_counts(scalar_env)
    items = float(instance.total_items)
    iters = float(instance.iterations)
    flops_per_item = counts.float_ops + counts.transcendental_ops + counts.vector_ops
    ops_per_item = counts.compute_ops + counts.transcendental_ops
    mem_per_item = counts.mem_bytes
    h2d, d2h, h2d_split = _transfer_volumes(compiled, instance)
    transfer_total = h2d + d2h
    total_flops = items * flops_per_item * iters
    return {
        "rt_items": items,
        "rt_iterations": iters,
        "rt_ops_per_item": ops_per_item,
        "rt_mem_bytes_per_item": mem_per_item,
        "rt_total_flops": total_flops,
        "rt_total_mem_bytes": items * mem_per_item * iters,
        "rt_transfer_in_bytes": h2d,
        "rt_transfer_out_bytes": d2h,
        "rt_split_transfer_in_bytes": h2d_split,
        "rt_flops_per_transfer_byte": total_flops / max(transfer_total, 1.0),
        "rt_arith_intensity": min(counts.arithmetic_intensity, 1e6),
        "rt_divergence": counts.divergence_fraction,
        "rt_branches_per_item": counts.branches,
        "rt_atomics_per_item": counts.atomic_ops,
    }


def combined_features(
    compiled: CompiledKernel, instance: ProblemInstance
) -> dict[str, float]:
    """Static + runtime features for one (program, problem size) pair."""
    out = static_feature_dict(compiled)
    out.update(runtime_feature_dict(compiled, instance))
    return out


def feature_names(features: Mapping[str, float] | None = None) -> tuple[str, ...]:
    """Canonical (sorted) feature-name order for vectorization."""
    if features is None:
        raise ValueError("pass a feature dict to derive the name order")
    return tuple(sorted(features.keys()))


def feature_vector(
    features: Mapping[str, float],
    names: tuple[str, ...],
    log_magnitudes: bool = True,
) -> np.ndarray:
    """Vectorize a feature dict in the given name order.

    Magnitude-type features are ``log1p``-compressed (they span many
    orders of magnitude between a 4K vec-add and a 1024³ GEMM).
    """
    out = np.empty(len(names), dtype=np.float64)
    for i, name in enumerate(names):
        if name not in features:
            raise KeyError(f"feature {name!r} missing from the feature dict")
        v = float(features[name])
        if log_magnitudes and name in MAGNITUDE_FEATURES:
            v = float(np.log1p(max(v, 0.0)))
        out[i] = v
    return out
