"""End-to-end convenience pipeline: train on a machine, deploy.

Binds the training phase (§2), the prediction model (§2.1) and the
runtime together into the two calls a user of the framework needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..benchsuite.base import Benchmark, ProblemInstance
from ..benchsuite.registry import all_benchmarks
from ..energy.objectives import Objective
from ..ocl.platform import Platform
from ..runtime.measurement import MeasuredRun, Runner
from ..partitioning import Partitioning
from .database import TrainingDatabase
from .predictor import PartitioningPredictor, make_partitioning_model
from .trainer import TrainingConfig, generate_training_data

__all__ = ["TrainedSystem", "train_system", "deploy_and_run"]


@dataclass
class TrainedSystem:
    """A deployed instance of the framework on one machine."""

    platform: Platform
    predictor: PartitioningPredictor
    database: TrainingDatabase
    runner: Runner

    def predict(self, bench: Benchmark, instance: ProblemInstance) -> Partitioning:
        """Predicted best partitioning for a (program, size) launch."""
        return self.predictor.predict(bench, instance)

    def run(
        self,
        bench: Benchmark,
        instance: ProblemInstance,
        repetitions: int = 1,
    ) -> tuple[Partitioning, MeasuredRun]:
        """Predict, then execute with the predicted partitioning."""
        p = self.predict(bench, instance)
        run = self.runner.run(bench.request(instance), p, repetitions=repetitions)
        return p, run


def train_system(
    platform: Platform,
    benchmarks: tuple[Benchmark, ...] | None = None,
    model_kind: str = "mlp",
    config: TrainingConfig = TrainingConfig(),
    exclude_program: str | None = None,
    objective: "Objective | str" = Objective.MAKESPAN,
) -> TrainedSystem:
    """Run the full offline phase and return a deployable system.

    ``exclude_program`` supports the paper's evaluation protocol: train
    on every benchmark except the one you intend to deploy on.
    ``objective`` selects what the model optimizes (makespan, energy or
    EDP) — the campaign measures both axes either way, so switching
    objectives relabels the same sweeps rather than re-measuring.
    """
    if benchmarks is None:
        benchmarks = all_benchmarks()
    if exclude_program is not None:
        benchmarks = tuple(b for b in benchmarks if b.name != exclude_program)
        if not benchmarks:
            raise ValueError("excluding the only benchmark leaves nothing to train on")
    db = generate_training_data(platform, benchmarks, config)
    model = make_partitioning_model(
        model_kind, seed=config.seed, objective=objective
    ).fit(db)
    predictor = PartitioningPredictor(model, platform.name)
    runner = Runner(platform, noise_sigma=config.noise_sigma, seed=config.seed + 1)
    return TrainedSystem(platform, predictor, db, runner)


def deploy_and_run(
    system: TrainedSystem,
    bench: Benchmark,
    size: int,
    seed: int = 0,
    verify: bool = True,
) -> tuple[Partitioning, float]:
    """Deployment phase for one launch; returns (partitioning, seconds)."""
    instance = bench.make_instance(size, seed=seed)
    expected = bench.reference(instance) if verify else None
    p, run = system.run(bench, instance)
    if verify:
        bench.verify(instance, atol=1e-2, rtol=1e-2, expected=expected)
    return p, run.median_s
