"""The training database.

The paper's training phase stores, for every (program, problem size)
pair: the static features, the runtime features and the measured
execution time of *every* candidate partitioning.  This module provides
that store with JSON persistence and matrix extraction for the ML layer.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..energy.objectives import (
    Objective,
    best_label as objective_best_label,
    objective_cost,
    pareto_front,
)
from ..partitioning import Partitioning
from .features import FEATURE_SCHEMA_VERSION, feature_vector

__all__ = ["TrainingRecord", "TrainingDatabase"]


@dataclass(frozen=True)
class TrainingRecord:
    """All measurements for one (machine, program, problem size) triple.

    Attributes:
        machine: platform name (``mc1``/``mc2``).
        program: benchmark name.
        size: problem-size parameter.
        features: combined static + runtime feature dict.
        timings: partitioning label → measured seconds (the full sweep).
        best_label: label of the fastest partitioning (the oracle).
        energies: partitioning label → measured joules (idle power
            included).  Empty on legacy databases recorded before the
            energy subsystem; energy-aware objectives require it.
    """

    machine: str
    program: str
    size: int
    features: dict[str, float]
    timings: dict[str, float]
    best_label: str
    energies: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.best_label not in self.timings:
            raise ValueError(f"best label {self.best_label!r} not among timings")
        stray = set(self.energies) - set(self.timings)
        if stray:
            raise ValueError(f"energies name unswept partitionings: {sorted(stray)}")

    @property
    def best_time(self) -> float:
        return self.timings[self.best_label]

    @property
    def best_partitioning(self) -> Partitioning:
        return Partitioning.from_label(self.best_label)

    def time_of(self, partitioning: Partitioning) -> float:
        """Measured time of one partitioning from the sweep."""
        return self.timings[partitioning.label]

    def energy_of(self, partitioning: Partitioning) -> float:
        """Measured joules of one partitioning from the sweep."""
        return self.energies[partitioning.label]

    def best_label_for(
        self, objective: Objective, power_cap_w: float | None = None
    ) -> str:
        """The sweep's oracle label under an objective.

        ``MAKESPAN`` without a power cap is exactly :attr:`best_label`;
        every other combination argmins the objective's scalar cost
        over the sweep (see :func:`repro.energy.objectives.best_label`).
        """
        if objective is Objective.MAKESPAN and power_cap_w is None:
            return self.best_label
        return objective_best_label(
            self.timings, self.energies, objective, power_cap_w=power_cap_w
        )

    def best_cost_for(
        self, objective: Objective, power_cap_w: float | None = None
    ) -> float:
        """Scalar cost of the objective-best label in the sweep."""
        label = self.best_label_for(objective, power_cap_w=power_cap_w)
        return objective_cost(
            objective,
            self.timings[label],
            self.energies.get(label, 0.0),
            power_cap_w=power_cap_w,
        )

    def pareto_labels(self) -> tuple[str, ...]:
        """The (makespan, energy) Pareto front of this sweep."""
        return pareto_front(self.timings, self.energies)

    @classmethod
    def from_timings(
        cls,
        machine: str,
        program: str,
        size: int,
        features: dict[str, float],
        timings: dict[str, float],
        energies: dict[str, float] | None = None,
    ) -> "TrainingRecord":
        """Build a record, deriving the oracle label from the sweep."""
        if not timings:
            raise ValueError("empty timing sweep")
        best = min(timings, key=lambda k: timings[k])
        return cls(
            machine,
            program,
            size,
            dict(features),
            dict(timings),
            best,
            dict(energies) if energies else {},
        )


class TrainingDatabase:
    """A collection of training records with matrix extraction."""

    def __init__(self, records: Iterable[TrainingRecord] = ()):
        self.records: list[TrainingRecord] = list(records)
        self._index: dict[tuple[str, str, int], int] = {}
        self._indexed_count = -1

    def _key_index(self) -> dict[tuple[str, str, int], int]:
        """Key → first record position, rebuilt lazily after appends.

        The serving loop looks up and upserts keys on every request;
        a linear scan per lookup would make a replay O(requests ×
        records).  Direct appends to :attr:`records` are detected by
        the length check on the next lookup.
        """
        if self._indexed_count != len(self.records):
            self._index = {}
            for i, r in enumerate(self.records):
                self._index.setdefault((r.machine, r.program, r.size), i)
            self._indexed_count = len(self.records)
        return self._index

    def add(self, record: TrainingRecord) -> None:
        self.records.append(record)

    def record_for(
        self, machine: str, program: str, size: int
    ) -> TrainingRecord | None:
        """The record for one (machine, program, size) key, if present."""
        i = self._key_index().get((machine, program, size))
        return self.records[i] if i is not None else None

    def upsert(self, record: TrainingRecord) -> bool:
        """Insert a record, replacing any existing record with its key.

        Returns ``True`` when an existing record was replaced.  This is
        the serving layer's append path: online measurements refresh the
        key they observed instead of accumulating duplicates.
        """
        index = self._key_index()
        key = (record.machine, record.program, record.size)
        i = index.get(key)
        if i is not None:
            self.records[i] = record
            return True
        self.records.append(record)
        index[key] = len(self.records) - 1
        self._indexed_count = len(self.records)
        return False

    def merge_timings(
        self,
        machine: str,
        program: str,
        size: int,
        features: dict[str, float],
        timings: dict[str, float],
        energies: dict[str, float] | None = None,
    ) -> TrainingRecord:
        """Merge online measurements into the key's sweep (creating it).

        Unlike the offline trainer, an online run measures only a few
        partitionings per launch; merging grows the key's partial sweep
        over time and re-derives the oracle label from everything seen
        so far.  Energy measurements merge alongside the timings when
        provided.  Returns the updated record.
        """
        if not timings:
            raise ValueError("empty timing sweep")
        existing = self.record_for(machine, program, size)
        merged = dict(existing.timings) if existing is not None else {}
        merged.update(timings)
        merged_energy = dict(existing.energies) if existing is not None else {}
        if energies:
            merged_energy.update(energies)
        record = TrainingRecord.from_timings(
            machine, program, size, features, merged, energies=merged_energy
        )
        self.upsert(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TrainingRecord]:
        return iter(self.records)

    # -- queries ---------------------------------------------------------

    def machines(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(r.machine for r in self.records))

    def programs(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(r.program for r in self.records))

    def for_machine(self, machine: str) -> "TrainingDatabase":
        return TrainingDatabase(r for r in self.records if r.machine == machine)

    def excluding_program(self, program: str) -> "TrainingDatabase":
        """Leave-one-program-out training view."""
        return TrainingDatabase(r for r in self.records if r.program != program)

    def for_program(self, program: str) -> "TrainingDatabase":
        return TrainingDatabase(r for r in self.records if r.program == program)

    def consistent_sweeps(self) -> "TrainingDatabase":
        """The subset of records sharing the *widest* sweep label set.

        Online adaptation appends records with *partial* sweeps (only
        the locally searched partitionings); scorer-style models need
        every record to cover the same candidate set, so they refit on
        this view.  Width wins over count: the full training sweeps
        must keep the candidate space intact even once partial online
        records outnumber them (ties broken by record count).
        """
        by_sweep: dict[tuple[str, ...], list[TrainingRecord]] = {}
        for r in self.records:
            by_sweep.setdefault(tuple(sorted(r.timings)), []).append(r)
        if not by_sweep:
            return TrainingDatabase()
        _, best = max(by_sweep.items(), key=lambda kv: (len(kv[0]), len(kv[1])))
        return TrainingDatabase(best)

    def feature_names(self) -> tuple[str, ...]:
        """Canonical feature order (validated to be uniform)."""
        if not self.records:
            raise ValueError("empty database")
        names = tuple(sorted(self.records[0].features))
        for r in self.records:
            if tuple(sorted(r.features)) != names:
                raise ValueError(
                    f"inconsistent feature keys in record {r.program}@{r.size}"
                )
        return names

    def matrices(
        self,
        names: tuple[str, ...] | None = None,
        objective: Objective = Objective.MAKESPAN,
    ) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """(X, y_labels, groups): features, oracle labels, program names.

        ``y_labels`` are partitioning *labels* (strings) — the encoder in
        the predictor maps them to class indices.  ``objective`` picks
        which oracle each record contributes: the makespan-fastest label
        (the paper's formulation) or the energy/EDP argmin of the same
        sweep — training a per-objective model costs no new
        measurements, only a different labelling.
        """
        if not self.records:
            raise ValueError("empty database")
        if names is None:
            names = self.feature_names()
        X = np.stack([feature_vector(r.features, names) for r in self.records])
        y = np.array([r.best_label_for(objective) for r in self.records])
        groups = [r.program for r in self.records]
        return X, y, groups

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the database as versioned JSON."""
        doc = {
            "schema_version": FEATURE_SCHEMA_VERSION,
            "records": [asdict(r) for r in self.records],
        }
        Path(path).write_text(json.dumps(doc, indent=1, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "TrainingDatabase":
        """Load a database saved by :meth:`save`."""
        doc = json.loads(Path(path).read_text())
        version = doc.get("schema_version")
        if version != FEATURE_SCHEMA_VERSION:
            raise ValueError(
                f"database schema {version} != supported {FEATURE_SCHEMA_VERSION}"
            )
        records = [
            TrainingRecord(
                machine=r["machine"],
                program=r["program"],
                size=int(r["size"]),
                features={k: float(v) for k, v in r["features"].items()},
                timings={k: float(v) for k, v in r["timings"].items()},
                best_label=r["best_label"],
                # Absent on databases saved before the energy subsystem.
                energies={k: float(v) for k, v in r.get("energies", {}).items()},
            )
            for r in doc["records"]
        ]
        return cls(records)
