"""The paper's primary contribution: problem-size-sensitive task
partitioning via machine learning over static + runtime features."""

from .database import TrainingDatabase, TrainingRecord
from .evaluation import MachineEvaluation, ProgramResult, SizeResult, evaluate_lopo
from .features import (
    FEATURE_SCHEMA_VERSION,
    combined_features,
    feature_vector,
    runtime_feature_dict,
    static_feature_dict,
)
from .pipeline import TrainedSystem, deploy_and_run, train_system
from .predictor import (
    MODEL_KINDS,
    PERSISTABLE_MODEL_KINDS,
    load_model,
    save_model,
    PartitioningModel,
    PartitioningPredictor,
    PartitioningScorerModel,
    make_classifier,
    make_partitioning_model,
)
from .trainer import (
    TrainingConfig,
    build_record,
    generate_training_data,
    sweep_partitionings,
)

__all__ = [
    "TrainingDatabase",
    "TrainingRecord",
    "MachineEvaluation",
    "ProgramResult",
    "SizeResult",
    "evaluate_lopo",
    "FEATURE_SCHEMA_VERSION",
    "combined_features",
    "feature_vector",
    "runtime_feature_dict",
    "static_feature_dict",
    "TrainedSystem",
    "deploy_and_run",
    "train_system",
    "MODEL_KINDS",
    "PERSISTABLE_MODEL_KINDS",
    "PartitioningModel",
    "PartitioningScorerModel",
    "PartitioningPredictor",
    "make_classifier",
    "make_partitioning_model",
    "save_model",
    "load_model",
    "TrainingConfig",
    "build_record",
    "generate_training_data",
    "sweep_partitionings",
]
