"""Deterministic fault injection for the serving path.

Declarative, seeded schedules of replica crashes, straggler slowdown
windows and transient error windows (:mod:`repro.faults.spec`),
compiled into per-replica point queries the event loop consults
(:mod:`repro.faults.injector`).  See ``docs/FAULTS.md``.
"""

from .injector import FaultInjector
from .spec import FAULT_KINDS, FaultSchedule, FaultSpec

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultSchedule", "FaultInjector"]
