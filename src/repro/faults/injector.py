"""Compile a fault schedule into per-replica point queries.

The event loop needs four answers, all deterministic:

* when is each replica down (merged, non-overlapping crash windows),
* how slow is a replica right now (product of active straggler
  factors),
* does this service attempt hit a transient execution error,
* does this attempt's prediction path error out.

Error outcomes are *hash draws*, not stateful RNG streams: the draw
for attempt ``k`` of request ``r`` is a pure function of
``(schedule seed, kind, r, k)`` via the same sha256 derivation the
rest of the codebase uses (:func:`repro.util.rng.derive_seed`).  That
makes outcomes independent of event interleaving — a retry on another
replica, a hedge racing ahead, or a reordered heap never shifts which
requests fail — which is what keeps faulted runs bit-identical across
refactors of the loop itself.
"""

from __future__ import annotations

from ..util.rng import derive_seed
from .spec import FaultSchedule, FaultSpec

__all__ = ["FaultInjector"]

#: Denominator turning a 63-bit derived seed into a uniform in [0, 1).
_DRAW_SCALE = float(2**63)


def _merge_windows(windows: list[tuple[float, float]]) -> tuple[tuple[float, float], ...]:
    """Merge overlapping/touching [start, end) windows into disjoint spans."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return tuple(merged)


class FaultInjector:
    """Point-query view of one :class:`FaultSchedule` over a fleet.

    Crash windows are merged per replica at construction, so the loop
    schedules exactly one crash/recover event pair per downtime span
    and never sees a crash land on an already-crashed replica.
    """

    def __init__(self, schedule: FaultSchedule, num_replicas: int):
        if num_replicas < 1:
            raise ValueError("num_replicas must be at least 1")
        for spec in schedule.specs:
            if spec.replica is not None and spec.replica >= num_replicas:
                raise ValueError(
                    f"fault targets replica {spec.replica} but the fleet "
                    f"has only {num_replicas} replica(s)"
                )
        self.schedule = schedule
        self.num_replicas = num_replicas
        crashes: list[list[tuple[float, float]]] = [[] for _ in range(num_replicas)]
        self._stragglers: list[list[FaultSpec]] = [[] for _ in range(num_replicas)]
        self._errors: list[list[FaultSpec]] = [[] for _ in range(num_replicas)]
        self._predict_errors: list[list[FaultSpec]] = [
            [] for _ in range(num_replicas)
        ]
        by_kind = {
            "straggler": self._stragglers,
            "error": self._errors,
            "predict-error": self._predict_errors,
        }
        for spec in schedule.specs:
            targets = (
                range(num_replicas) if spec.replica is None else (spec.replica,)
            )
            for index in targets:
                if spec.kind == "crash":
                    crashes[index].append((spec.at_s, spec.end_s))
                else:
                    by_kind[spec.kind][index].append(spec)
        self._crash_windows = tuple(_merge_windows(w) for w in crashes)

    def __bool__(self) -> bool:
        return bool(self.schedule)

    # -- windows -----------------------------------------------------------

    def crash_windows(self, replica: int) -> tuple[tuple[float, float], ...]:
        """Disjoint [down, recover) spans for one replica, in order."""
        return self._crash_windows[replica]

    def crashed(self, replica: int, t: float) -> bool:
        return any(start <= t < end for start, end in self._crash_windows[replica])

    def slowdown(self, replica: int, t: float) -> float:
        """Service-time multiplier at instant ``t`` (1.0 when healthy).

        Overlapping straggler windows compound multiplicatively — two
        co-resident noisy neighbours hurt more than one.
        """
        factor = 1.0
        for spec in self._stragglers[replica]:
            if spec.active(t):
                factor *= spec.magnitude
        return factor

    # -- probabilistic outcomes --------------------------------------------

    def exec_error(self, replica: int, request_id: int, attempt: int, t: float) -> bool:
        """Whether this service attempt fails after executing."""
        return self._draw("fault-exec", self._errors[replica], request_id, attempt, t)

    def predict_error(
        self, replica: int, request_id: int, attempt: int, t: float
    ) -> bool:
        """Whether this attempt's prediction path errors out pre-execution."""
        return self._draw(
            "fault-predict", self._predict_errors[replica], request_id, attempt, t
        )

    def _draw(
        self,
        label: str,
        specs: list[FaultSpec],
        request_id: int,
        attempt: int,
        t: float,
    ) -> bool:
        # Independent windows compose: surviving all of them happens
        # with probability prod(1 - p_i) over the active set.
        survive = 1.0
        for spec in specs:
            if spec.active(t):
                survive *= 1.0 - spec.magnitude
        if survive >= 1.0:
            return False
        draw = (
            derive_seed(label, request_id, attempt, base_seed=self.schedule.seed)
            / _DRAW_SCALE
        )
        return draw < 1.0 - survive
