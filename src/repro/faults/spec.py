"""Declarative fault schedules: what breaks, when, and for how long.

A fault schedule is data, not behaviour — the same stance the workload
layer takes with :class:`~repro.workloads.DriftEvent`.  A
:class:`FaultSpec` names one injected condition (a replica crash, a
straggler slowdown window, a transient execution-error window, or a
prediction-path error window) pinned to the *simulated* clock, and a
:class:`FaultSchedule` is an ordered, seeded bundle of them.  Because
everything is declared up front and all randomness is derived from the
schedule seed, a faulted run is exactly as reproducible as a clean one:
two replays of the same schedule are bit-identical.

The event loop consumes schedules through
:class:`~repro.faults.injector.FaultInjector`, which compiles the specs
into per-replica windows and answers point queries ("is replica 2
crashed at t=1.25?", "does attempt 1 of request 517 hit a transient
error?") in O(active windows).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultSchedule"]

#: Every condition the injector can impose on the serving path.
FAULT_KINDS = ("crash", "straggler", "error", "predict-error")


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault, pinned to the simulated clock.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.

            * ``crash`` — the replica is down for ``duration_s``; its
              in-flight request is lost and recovery happens at the
              window's end.
            * ``straggler`` — service times on the replica are
              multiplied by ``magnitude`` while the window is active
              (the shared-machine interference HeMT measures).
            * ``error`` — each service *attempt* started in the window
              fails after executing, with probability ``magnitude``.
            * ``predict-error`` — the prediction path errors out before
              any execution, with probability ``magnitude``; the
              attempt costs one cache-miss span and produces nothing.
        at_s: window start on the simulated clock.
        duration_s: window length (for ``crash``: downtime before the
            replica recovers).
        magnitude: slowdown factor (``straggler``, must be positive) or
            failure probability (error kinds, in [0, 1]); unused for
            ``crash``.
        replica: index of the targeted replica, or ``None`` to hit
            every replica (a correlated fault).
    """

    kind: str
    at_s: float
    duration_s: float
    magnitude: float = 1.0
    replica: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")
        if not self.duration_s > 0:
            raise ValueError("duration_s must be positive")
        if self.kind == "straggler" and not self.magnitude > 0:
            raise ValueError("straggler magnitude must be a positive factor")
        if self.kind in ("error", "predict-error") and not (
            0.0 <= self.magnitude <= 1.0
        ):
            raise ValueError("error magnitude is a probability in [0, 1]")
        if self.replica is not None and self.replica < 0:
            raise ValueError("replica index must be non-negative")

    @property
    def end_s(self) -> float:
        """Instant the window closes (for ``crash``: the recovery time)."""
        return self.at_s + self.duration_s

    def active(self, t: float) -> bool:
        """Whether the window covers simulated instant ``t``.

        Windows are half-open ``[at_s, end_s)`` so back-to-back windows
        never double-cover an instant.
        """
        return self.at_s <= t < self.end_s


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, seeded bundle of faults for one run.

    The seed drives every probabilistic draw the schedule implies
    (transient error outcomes); window placement is fully declarative.
    Specs are kept sorted by start time so schedules compare and
    serialize canonically.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.specs,
                key=lambda s: (s.at_s, s.end_s, FAULT_KINDS.index(s.kind)),
            )
        )
        object.__setattr__(self, "specs", ordered)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def for_kind(self, kind: str) -> tuple[FaultSpec, ...]:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        return tuple(s for s in self.specs if s.kind == kind)

    @property
    def horizon_s(self) -> float:
        """Instant the last window closes (0.0 for an empty schedule)."""
        return max((s.end_s for s in self.specs), default=0.0)
