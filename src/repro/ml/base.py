"""Estimator interface and metrics for the from-scratch ML layer.

No scikit-learn is available offline, so the model family the paper's
framework relies on is implemented here directly on NumPy.  The API
deliberately mirrors the fit/predict convention so the training pipeline
stays readable.
"""

from __future__ import annotations

import abc
import numpy as np

__all__ = [
    "Classifier",
    "accuracy",
    "confusion_matrix",
    "check_Xy",
    "majority_class",
    "MajorityClassifier",
]


def check_Xy(
    X: np.ndarray, y: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray | None]:
    """Validate and canonicalize a feature matrix (and labels)."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if not np.isfinite(X).all():
        raise ValueError("X contains NaN or infinite values")
    if y is None:
        return X, None
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if len(y) != len(X):
        raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
    if len(y) == 0:
        raise ValueError("empty training set")
    return X, y


class Classifier(abc.ABC):
    """Minimal classifier interface."""

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        """Train on features X (n_samples × n_features) and labels y."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a label for each row of X."""

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on (X, y)."""
        return accuracy(np.asarray(y), self.predict(X))


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch between y_true and y_pred")
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: int | None = None
) -> np.ndarray:
    """Counts[i, j] = samples with true class i predicted as class j."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if num_classes is None:
        num_classes = int(max(y_true.max(), y_pred.max())) + 1
    m = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(m, (y_true, y_pred), 1)
    return m


def majority_class(y: np.ndarray):
    """Most frequent label (ties broken toward the smaller label).

    Works for integer and string labels alike (partitioning labels are
    strings such as ``"70/20/10"``).
    """
    values, counts = np.unique(np.asarray(y), return_counts=True)
    return values[np.argmax(counts)]


class MajorityClassifier(Classifier):
    """Predicts the most frequent training label — the sanity baseline.

    Any learned partitioning model must clearly beat this to demonstrate
    that the features carry signal.
    """

    def __init__(self) -> None:
        self._label = None
        self._fitted = False

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MajorityClassifier":
        _, y = check_Xy(X, y)
        assert y is not None
        self._label = majority_class(y)
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("classifier is not fitted")
        X, _ = check_Xy(X)
        return np.full(len(X), self._label)
