"""Feed-forward neural networks (the paper-family model).

The Insieme task-partitioning line of work trains artificial neural
networks over static + runtime features; this is a small but complete
NumPy implementation: dense layers, tanh/ReLU hidden activations,
softmax cross-entropy (classifier) or MSE (regressor) losses, Adam
optimizer, mini-batching and early stopping — everything needed to
train reliably on a few hundred feature vectors with ~66 classes, or
on ~10k (features, partitioning) → time samples for the scorer model.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_Xy

__all__ = ["MLPClassifier", "MLPRegressor"]

_ACTIVATIONS = {
    "tanh": (np.tanh, lambda a: 1.0 - a * a),
    "relu": (lambda z: np.maximum(z, 0.0), lambda a: (a > 0.0).astype(a.dtype)),
}


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class MLPClassifier(Classifier):
    """Multi-layer perceptron with softmax output.

    Args:
        hidden_layers: sizes of the hidden layers.
        activation: ``"tanh"`` (paper-era default) or ``"relu"``.
        learning_rate: Adam step size.
        epochs: maximum training epochs.
        batch_size: mini-batch size (clamped to the dataset).
        l2: weight-decay coefficient.
        seed: RNG seed for init and shuffling.
        tol: early-stopping tolerance on the epoch loss.
        patience: epochs without ``tol`` improvement before stopping.
    """

    def __init__(
        self,
        hidden_layers: tuple[int, ...] = (32, 16),
        activation: str = "tanh",
        learning_rate: float = 0.01,
        epochs: int = 400,
        batch_size: int = 32,
        l2: float = 1e-4,
        seed: int = 0,
        tol: float = 1e-5,
        patience: int = 30,
    ):
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        if any(h < 1 for h in hidden_layers):
            raise ValueError("hidden layer sizes must be positive")
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")
        self.hidden_layers = tuple(hidden_layers)
        self.activation = activation
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self.tol = tol
        self.patience = patience
        self.classes_: np.ndarray | None = None
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        self.loss_curve_: list[float] = []

    # -- forward/backward ----------------------------------------------------

    def _forward(self, X: np.ndarray) -> list[np.ndarray]:
        """Return activations per layer; last entry is softmax output."""
        act, _ = _ACTIVATIONS[self.activation]
        a = X
        activations = [a]
        last = len(self._weights) - 1
        for i, (W, b) in enumerate(zip(self._weights, self._biases)):
            z = a @ W + b
            a = _softmax(z) if i == last else act(z)
            activations.append(a)
        return activations

    def _backward(
        self, activations: list[np.ndarray], y_onehot: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        _, dact = _ACTIVATIONS[self.activation]
        n = len(y_onehot)
        grads_W: list[np.ndarray] = [np.empty(0)] * len(self._weights)
        grads_b: list[np.ndarray] = [np.empty(0)] * len(self._biases)
        # Softmax + cross-entropy gradient.
        delta = (activations[-1] - y_onehot) / n
        for i in range(len(self._weights) - 1, -1, -1):
            grads_W[i] = activations[i].T @ delta + self.l2 * self._weights[i]
            grads_b[i] = delta.sum(axis=0)
            if i > 0:
                delta = (delta @ self._weights[i].T) * dact(activations[i])
        return grads_W, grads_b

    # -- training ------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X, y = check_Xy(X, y)
        assert y is not None
        self.classes_, y_idx = np.unique(y, return_inverse=True)
        n_classes = len(self.classes_)
        n, d = X.shape
        rng = np.random.default_rng(self.seed)

        sizes = [d, *self.hidden_layers, n_classes]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            # Xavier/Glorot initialization.
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self._weights.append(rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

        if n_classes == 1:
            # Degenerate single-class training set.
            self.loss_curve_ = [0.0]
            return self

        self._train_loop(X, y_idx, self.epochs, rng)
        return self

    def continue_fit(
        self, X: np.ndarray, y: np.ndarray, epochs: int | None = None
    ) -> "MLPClassifier":
        """Warm start: keep the current weights, run more Adam epochs.

        The online refit path: a handful of new training records should
        nudge the converged network, not re-learn it from random
        initialization.  The labels must all be covered by the fitted
        ``classes_`` — a genuinely new label changes the output layer
        shape, which requires a full :meth:`fit` (raises ValueError).
        """
        if self.classes_ is None or not self._weights:
            raise RuntimeError("classifier is not fitted")
        X, y = check_Xy(X, y)
        assert y is not None
        if len(self.classes_) == 1:
            return self
        class_index = {c: i for i, c in enumerate(self.classes_)}
        unseen = sorted(set(map(str, y)) - set(map(str, self.classes_)))
        if unseen:
            raise ValueError(f"labels absent from the fitted classes: {unseen}")
        y_idx = np.array([class_index[v] for v in y])
        rng = np.random.default_rng(self.seed + 1)
        self._train_loop(X, y_idx, epochs if epochs is not None else self.epochs, rng)
        return self

    def _train_loop(
        self,
        X: np.ndarray,
        y_idx: np.ndarray,
        epochs: int,
        rng: np.random.Generator,
    ) -> None:
        """Mini-batched Adam with early stopping over the current weights."""
        n = len(X)
        n_classes = len(self.classes_)
        onehot = np.zeros((n, n_classes))
        onehot[np.arange(n), y_idx] = 1.0

        # Adam state.
        mW = [np.zeros_like(W) for W in self._weights]
        vW = [np.zeros_like(W) for W in self._weights]
        mb = [np.zeros_like(b) for b in self._biases]
        vb = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        batch = min(self.batch_size, n)
        best_loss = np.inf
        stale = 0
        self.loss_curve_ = []
        for _epoch in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                acts = self._forward(X[idx])
                probs = acts[-1]
                epoch_loss += -float(
                    np.sum(np.log(probs[np.arange(len(idx)), y_idx[idx]] + 1e-12))
                )
                gW, gb = self._backward(acts, onehot[idx])
                step += 1
                corr1 = 1.0 - beta1**step
                corr2 = 1.0 - beta2**step
                for i in range(len(self._weights)):
                    mW[i] = beta1 * mW[i] + (1 - beta1) * gW[i]
                    vW[i] = beta2 * vW[i] + (1 - beta2) * gW[i] ** 2
                    mb[i] = beta1 * mb[i] + (1 - beta1) * gb[i]
                    vb[i] = beta2 * vb[i] + (1 - beta2) * gb[i] ** 2
                    self._weights[i] -= (
                        self.learning_rate
                        * (mW[i] / corr1)
                        / (np.sqrt(vW[i] / corr2) + eps)
                    )
                    self._biases[i] -= (
                        self.learning_rate
                        * (mb[i] / corr1)
                        / (np.sqrt(vb[i] / corr2) + eps)
                    )
            epoch_loss /= n
            self.loss_curve_.append(epoch_loss)
            if epoch_loss < best_loss - self.tol:
                best_loss = epoch_loss
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break

    # -- inference -------------------------------------------------------------

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities (columns ordered like ``classes_``)."""
        if self.classes_ is None:
            raise RuntimeError("classifier is not fitted")
        X, _ = check_Xy(X)
        if len(self.classes_) == 1:
            return np.ones((len(X), 1))
        return self._forward(X)[-1]

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("classifier is not fitted")
        if len(self.classes_) == 1:
            X, _ = check_Xy(X)
            return np.full(len(X), self.classes_[0])
        probs = self.predict_proba(X)
        return self.classes_[np.argmax(probs, axis=1)]


class MLPRegressor:
    """Multi-layer perceptron for scalar regression (MSE loss).

    Used by the scorer-style partitioning model, which regresses the
    (log) execution time of a candidate partitioning from the combined
    program features plus the candidate's shares, then picks the argmin
    over the whole partition space — sidestepping the classifier's
    inability to predict labels absent from the training set.
    """

    def __init__(
        self,
        hidden_layers: tuple[int, ...] = (64, 32),
        activation: str = "tanh",
        learning_rate: float = 0.005,
        epochs: int = 150,
        batch_size: int = 256,
        l2: float = 1e-5,
        seed: int = 0,
        tol: float = 1e-6,
        patience: int = 20,
    ):
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        if any(h < 1 for h in hidden_layers):
            raise ValueError("hidden layer sizes must be positive")
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")
        self.hidden_layers = tuple(hidden_layers)
        self.activation = activation
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.seed = seed
        self.tol = tol
        self.patience = patience
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        self._y_mean = 0.0
        self._y_scale = 1.0
        self._fitted = False
        self.loss_curve_: list[float] = []

    def _forward(self, X: np.ndarray) -> list[np.ndarray]:
        act, _ = _ACTIVATIONS[self.activation]
        a = X
        activations = [a]
        last = len(self._weights) - 1
        for i, (W, b) in enumerate(zip(self._weights, self._biases)):
            z = a @ W + b
            a = z if i == last else act(z)  # identity output layer
            activations.append(a)
        return activations

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or len(X) != len(y):
            raise ValueError("X must be (n, d) and y must be (n,)")
        if not (np.isfinite(X).all() and np.isfinite(y).all()):
            raise ValueError("non-finite training data")
        n, d = X.shape
        # Standardize the target for stable optimization.
        self._y_mean = float(y.mean())
        self._y_scale = float(y.std()) or 1.0
        yz = (y - self._y_mean) / self._y_scale

        rng = np.random.default_rng(self.seed)
        sizes = [d, *self.hidden_layers, 1]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self._weights.append(rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

        act, dact = _ACTIVATIONS[self.activation]
        mW = [np.zeros_like(W) for W in self._weights]
        vW = [np.zeros_like(W) for W in self._weights]
        mb = [np.zeros_like(b) for b in self._biases]
        vb = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        batch = min(self.batch_size, n)
        best_loss = np.inf
        stale = 0
        self.loss_curve_ = []
        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                acts = self._forward(X[idx])
                pred = acts[-1][:, 0]
                err = pred - yz[idx]
                epoch_loss += float(err @ err)
                delta = (err / len(idx))[:, None]
                step += 1
                corr1 = 1.0 - beta1**step
                corr2 = 1.0 - beta2**step
                for i in range(len(self._weights) - 1, -1, -1):
                    gW = acts[i].T @ delta + self.l2 * self._weights[i]
                    gb = delta.sum(axis=0)
                    if i > 0:
                        delta = (delta @ self._weights[i].T) * dact(acts[i])
                    mW[i] = beta1 * mW[i] + (1 - beta1) * gW
                    vW[i] = beta2 * vW[i] + (1 - beta2) * gW**2
                    mb[i] = beta1 * mb[i] + (1 - beta1) * gb
                    vb[i] = beta2 * vb[i] + (1 - beta2) * gb**2
                    self._weights[i] -= (
                        self.learning_rate
                        * (mW[i] / corr1)
                        / (np.sqrt(vW[i] / corr2) + eps)
                    )
                    self._biases[i] -= (
                        self.learning_rate
                        * (mb[i] / corr1)
                        / (np.sqrt(vb[i] / corr2) + eps)
                    )
            epoch_loss /= n
            self.loss_curve_.append(epoch_loss)
            if epoch_loss < best_loss - self.tol:
                best_loss = epoch_loss
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("regressor is not fitted")
        X = np.asarray(X, dtype=np.float64)
        z = self._forward(X)[-1][:, 0]
        return z * self._y_scale + self._y_mean
