"""Random-forest classifier: bagged CART trees with feature subsampling."""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_Xy
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(Classifier):
    """Bootstrap-aggregated decision trees with majority voting.

    Args:
        n_estimators: number of trees.
        max_depth: per-tree depth cap.
        min_samples_leaf: per-tree leaf size floor.
        max_features: features per split; ``None`` → ``sqrt(d)``.
        seed: RNG seed controlling bootstraps and per-tree subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 40,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_: list[DecisionTreeClassifier] = []
        self.classes_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X, y = check_Xy(X, y)
        assert y is not None
        self.classes_ = np.unique(y)
        n, d = X.shape
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, int(np.sqrt(d)))
        rng = np.random.default_rng(self.seed)
        self.trees_ = []
        for t in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)  # bootstrap sample
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_ or self.classes_ is None:
            raise RuntimeError("classifier is not fitted")
        X, _ = check_Xy(X)
        # Vote over the global label space.
        label_to_pos = {c: i for i, c in enumerate(self.classes_)}
        votes = np.zeros((len(X), len(self.classes_)), dtype=np.int64)
        for tree in self.trees_:
            pred = tree.predict(X)
            for row, label in enumerate(pred):
                votes[row, label_to_pos[label]] += 1
        return self.classes_[np.argmax(votes, axis=1)]
