"""CART decision-tree classifier (gini impurity, axis-aligned splits).

Serves both as an interpretable ablation model for the partitioning
predictor and as the base learner of :mod:`repro.ml.forest`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Classifier, check_Xy

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    """A tree node: either a leaf (prediction) or an internal split."""

    prediction: int
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini_from_counts(counts: np.ndarray, total: float) -> float:
    if total <= 0:
        return 0.0
    p = counts / total
    return 1.0 - float((p * p).sum())


def _best_split(
    X: np.ndarray,
    y_idx: np.ndarray,
    n_classes: int,
    feature_indices: np.ndarray,
    min_leaf: int,
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, impurity-decrease) over the candidates.

    For every feature the samples are sorted once; class-count prefix
    sums then give the gini of every candidate threshold in O(n)
    (vectorized over thresholds).
    """
    n = len(y_idx)
    parent_counts = np.bincount(y_idx, minlength=n_classes).astype(np.float64)
    parent_gini = _gini_from_counts(parent_counts, n)
    best: tuple[int, float, float] | None = None
    # Zero-gain splits are permitted on impure nodes (XOR-like data has
    # no informative single split at the root, yet the children become
    # separable); recursion still terminates because both children are
    # strictly smaller.
    best_gain = -1e-12
    onehot = np.zeros((n, n_classes))
    onehot[np.arange(n), y_idx] = 1.0
    for f in feature_indices:
        order = np.argsort(X[:, f], kind="stable")
        xs = X[order, f]
        # Cumulative class counts for the left side of each cut.
        left_counts = np.cumsum(onehot[order], axis=0)
        # Valid cut positions: between distinct adjacent values, with at
        # least min_leaf samples on each side.
        cuts = np.nonzero(xs[1:] > xs[:-1])[0]  # cut after index i
        cuts = cuts[(cuts + 1 >= min_leaf) & (n - cuts - 1 >= min_leaf)]
        if len(cuts) == 0:
            continue
        nl = (cuts + 1).astype(np.float64)
        nr = n - nl
        lc = left_counts[cuts]
        rc = parent_counts[None, :] - lc
        gini_l = 1.0 - ((lc / nl[:, None]) ** 2).sum(axis=1)
        gini_r = 1.0 - ((rc / nr[:, None]) ** 2).sum(axis=1)
        weighted = (nl * gini_l + nr * gini_r) / n
        gains = parent_gini - weighted
        k = int(np.argmax(gains))
        if gains[k] > best_gain:
            best_gain = float(gains[k])
            threshold = float((xs[cuts[k]] + xs[cuts[k] + 1]) / 2.0)
            best = (int(f), threshold, best_gain)
    return best


class DecisionTreeClassifier(Classifier):
    """A CART classifier.

    Args:
        max_depth: maximum tree depth (None = unbounded).
        min_samples_split: minimum samples to attempt a split.
        min_samples_leaf: minimum samples in each child.
        max_features: number of features considered per split (None =
            all; forests pass ``sqrt``-sized subsets through ``rng``).
        seed: RNG seed used only when ``max_features`` subsampling is on.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        seed: int = 0,
    ):
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.classes_: np.ndarray | None = None
        self._root: _Node | None = None
        self.node_count_ = 0
        self.depth_ = 0

    def _build(
        self,
        X: np.ndarray,
        y_idx: np.ndarray,
        depth: int,
        n_classes: int,
        rng: np.random.Generator,
    ) -> _Node:
        self.node_count_ += 1
        self.depth_ = max(self.depth_, depth)
        counts = np.bincount(y_idx, minlength=n_classes)
        prediction = int(np.argmax(counts))
        node = _Node(prediction=prediction)
        if (
            len(y_idx) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or counts.max() == len(y_idx)
        ):
            return node
        d = X.shape[1]
        if self.max_features is not None and self.max_features < d:
            features = rng.choice(d, size=self.max_features, replace=False)
        else:
            features = np.arange(d)
        split = _best_split(X, y_idx, n_classes, features, self.min_samples_leaf)
        if split is None:
            return node
        f, threshold, _gain = split
        mask = X[:, f] <= threshold
        node.feature = f
        node.threshold = threshold
        node.left = self._build(X[mask], y_idx[mask], depth + 1, n_classes, rng)
        node.right = self._build(X[~mask], y_idx[~mask], depth + 1, n_classes, rng)
        return node

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X, y = check_Xy(X, y)
        assert y is not None
        self.classes_, y_idx = np.unique(y, return_inverse=True)
        self.node_count_ = 0
        self.depth_ = 0
        rng = np.random.default_rng(self.seed)
        self._root = self._build(X, y_idx, 0, len(self.classes_), rng)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None or self.classes_ is None:
            raise RuntimeError("classifier is not fitted")
        X, _ = check_Xy(X)
        out = np.empty(len(X), dtype=np.int64)
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right  # type: ignore[assignment]
            out[i] = node.prediction
        return self.classes_[out]
