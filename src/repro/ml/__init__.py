"""From-scratch NumPy machine learning for the partitioning predictor."""

from .base import (
    Classifier,
    MajorityClassifier,
    accuracy,
    confusion_matrix,
    majority_class,
)
from .crossval import KFold, LeaveOneGroupOut, cross_val_score
from .forest import RandomForestClassifier
from .knn import KNeighborsClassifier
from .neural import MLPClassifier
from .scaling import MinMaxScaler, StandardScaler, log1p_counts
from .tree import DecisionTreeClassifier

__all__ = [
    "Classifier",
    "MajorityClassifier",
    "accuracy",
    "confusion_matrix",
    "majority_class",
    "KFold",
    "LeaveOneGroupOut",
    "cross_val_score",
    "RandomForestClassifier",
    "KNeighborsClassifier",
    "MLPClassifier",
    "MinMaxScaler",
    "StandardScaler",
    "log1p_counts",
    "DecisionTreeClassifier",
]
