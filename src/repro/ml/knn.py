"""k-nearest-neighbours classifier (Euclidean, majority vote)."""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_Xy

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(Classifier):
    """Plain kNN over standardized features.

    Args:
        k: neighbourhood size (clamped to the training-set size).
        weights: ``"uniform"`` or ``"distance"`` (inverse-distance votes).
    """

    def __init__(self, k: int = 5, weights: str = "uniform"):
        if k < 1:
            raise ValueError("k must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.k = k
        self.weights = weights
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        X, y = check_Xy(X, y)
        assert y is not None
        self._X = X
        self._y = y
        self.classes_ = np.unique(y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None or self._y is None or self.classes_ is None:
            raise RuntimeError("classifier is not fitted")
        X, _ = check_Xy(X)
        if X.shape[1] != self._X.shape[1]:
            raise ValueError("feature-count mismatch with the training data")
        k = min(self.k, len(self._X))
        n_classes = len(self.classes_)
        # Pairwise squared distances, blocked to bound memory.
        out = np.empty(len(X), dtype=self._y.dtype)
        block = 256
        for start in range(0, len(X), block):
            chunk = X[start : start + block]
            d2 = (
                (chunk**2).sum(axis=1)[:, None]
                - 2.0 * chunk @ self._X.T
                + (self._X**2).sum(axis=1)[None, :]
            )
            np.maximum(d2, 0.0, out=d2)
            nn = np.argpartition(d2, k - 1, axis=1)[:, :k]
            # Weighted votes for the whole block at once: flatten each
            # row's neighbour labels to class positions (classes_ is the
            # sorted np.unique output) and bincount the vote weights.
            pos = np.searchsorted(self.classes_, self._y[nn])
            if self.weights == "distance":
                w = 1.0 / (np.sqrt(np.take_along_axis(d2, nn, axis=1)) + 1e-12)
            else:
                w = np.ones_like(pos, dtype=np.float64)
            rows = np.arange(len(chunk))[:, None]
            votes = np.bincount(
                (rows * n_classes + pos).ravel(),
                weights=w.ravel(),
                minlength=len(chunk) * n_classes,
            ).reshape(len(chunk), n_classes)
            out[start : start + len(chunk)] = self.classes_[
                np.argmax(votes, axis=1)
            ]
        return out
