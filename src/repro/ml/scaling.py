"""Feature scaling.

Program features span many orders of magnitude (2 branches vs 2²⁴ work
items), so both the MLP and kNN require normalization.  The trainer
applies a log transform to count-like features *before* scaling; these
classes handle the affine part.
"""

from __future__ import annotations

import numpy as np

from .base import check_Xy

__all__ = ["StandardScaler", "MinMaxScaler", "log1p_counts"]


def log1p_counts(X: np.ndarray) -> np.ndarray:
    """``log(1 + x)`` for non-negative magnitude features (stabilizer)."""
    X = np.asarray(X, dtype=np.float64)
    if (X < 0).any():
        raise ValueError("log1p_counts expects non-negative features")
    return np.log1p(X)


class StandardScaler:
    """Zero-mean, unit-variance scaling with degenerate-column guards."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X, _ = check_Xy(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0  # constant columns pass through unchanged
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        X, _ = check_Xy(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        return np.asarray(X, dtype=np.float64) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scales features to [0, 1] over the training range."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X, _ = check_Xy(X)
        self.min_ = X.min(axis=0)
        rng = X.max(axis=0) - self.min_
        rng[rng == 0.0] = 1.0
        self.range_ = rng
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("scaler is not fitted")
        X, _ = check_Xy(X)
        if X.shape[1] != self.min_.shape[0]:
            raise ValueError(
                f"expected {self.min_.shape[0]} features, got {X.shape[1]}"
            )
        return (X - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
