"""Cross-validation splitters and helpers.

The paper's evaluation protocol is leave-one-*program*-out: the model
predicting partitionings for a benchmark must never have seen training
patterns from that benchmark (only from the other 22).
:class:`LeaveOneGroupOut` implements exactly that, with programs as
groups.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from .base import Classifier, accuracy

__all__ = ["KFold", "LeaveOneGroupOut", "cross_val_score"]


class KFold:
    """Deterministic (optionally shuffled) k-fold splitter."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False, seed: int = 0):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_idx, test_idx) pairs."""
        if n_samples < self.n_splits:
            raise ValueError("more folds than samples")
        idx = np.arange(n_samples)
        if self.shuffle:
            np.random.default_rng(self.seed).shuffle(idx)
        folds = np.array_split(idx, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


class LeaveOneGroupOut:
    """One fold per distinct group label (the paper's LOPO protocol)."""

    def split(
        self, groups: Sequence[object]
    ) -> Iterator[tuple[np.ndarray, np.ndarray, object]]:
        """Yield (train_idx, test_idx, held_out_group)."""
        groups_arr = np.asarray(groups)
        unique = list(dict.fromkeys(groups))  # preserve first-seen order
        if len(unique) < 2:
            raise ValueError("need at least two groups")
        idx = np.arange(len(groups_arr))
        for g in unique:
            test = idx[groups_arr == g]
            train = idx[groups_arr != g]
            yield train, test, g


def cross_val_score(
    make_model: Callable[[], Classifier],
    X: np.ndarray,
    y: np.ndarray,
    groups: Sequence[object] | None = None,
    n_splits: int = 5,
) -> list[float]:
    """Accuracy per fold; grouped folds when ``groups`` is given."""
    X = np.asarray(X)
    y = np.asarray(y)
    scores: list[float] = []
    if groups is not None:
        for train, test, _g in LeaveOneGroupOut().split(groups):
            model = make_model().fit(X[train], y[train])
            scores.append(accuracy(y[test], model.predict(X[test])))
    else:
        for train, test in KFold(n_splits=n_splits, shuffle=True).split(len(X)):
            model = make_model().fit(X[train], y[train])
            scores.append(accuracy(y[test], model.predict(X[test])))
    return scores
