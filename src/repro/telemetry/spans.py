"""Request-scoped tracing over the simulated-time serving loop.

Every admitted request carries one trace.  The event loop feeds the
:class:`Tracer` raw markers as they happen — enqueue, service start
(with the predict/execute/network split), attempt failure, cancel,
steal — and at resolution the tracer folds the markers into a span
tree:

* one ``request`` root span covering ``[arrival, finish]``;
* one ``placement`` container span per service attempt (named
  ``attempt`` / ``retry`` / ``hedge`` / ``speculation``), carrying the
  replica it was placed on — a cluster request's cross-pool hop nests
  under the placement that caused it;
* leaf spans under each placement: ``queue`` (wait in the replica's
  queue), ``predict`` (cache hit or model inference), ``execute``
  (measured kernel time), ``network`` (the interconnect handoff a
  cluster charges for serving outside the tenant's home pool);
* ``backoff`` spans directly under the root for retry-backoff limbo,
  where no attempt exists at all.

Criticality: the leaves that *explain the latency* — the winning
attempt's spans plus everything the request sequentially waited
through before the winner was enqueued (failed attempts, backoff) —
are flagged ``critical`` and tile ``[arrival, finish]`` exactly, so
their durations sum to the loop's reported latency.  Losing hedge /
speculative copies and work cancelled mid-flight run in parallel with
the critical path and are emitted with ``critical=False``.

Everything is stamped in simulated seconds and ordered by the loop's
own deterministic event order, so a faulted run exports a
byte-identical JSONL trace on every replay (see :meth:`Tracer.export`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["SPAN_KINDS", "Span", "Tracer"]

#: Every span kind the tracer emits.
SPAN_KINDS = (
    "request",
    "placement",
    "queue",
    "predict",
    "execute",
    "network",
    "backoff",
)

#: Leaf kinds whose critical instances tile ``[arrival, finish]``.
LEAF_KINDS = ("queue", "predict", "execute", "network", "backoff")


@dataclass(frozen=True)
class Span:
    """One node of a request's span tree, in simulated seconds."""

    trace_id: int
    span_id: int
    parent_id: int | None
    name: str
    kind: str
    start_s: float
    end_s: float
    #: On the winning chain that tiles ``[arrival, finish]``.
    critical: bool = False
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_record(self) -> dict:
        """The JSONL line payload for this span."""
        record = {
            "type": "span",
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "critical": self.critical,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


@dataclass
class _AttemptRecord:
    """Raw markers of one service attempt, folded into spans at resolution."""

    tid: int
    trace_id: int
    index: int
    replica: int
    is_hedge: bool
    is_spec: bool
    enqueue_s: float
    start_s: float | None = None
    predict_end_s: float | None = None
    net_start_s: float | None = None
    end_s: float | None = None
    outcome: str = "queued"
    stolen_by: int | None = None

    @property
    def name(self) -> str:
        if self.is_spec:
            return "speculation"
        if self.is_hedge:
            return "hedge"
        return "retry" if self.index > 0 else "attempt"

    @property
    def primary(self) -> bool:
        """On the sequential first-attempt/retry chain (not a racer)."""
        return not self.is_hedge and not self.is_spec

    def segments(self) -> list[tuple[float, float, str]]:
        """The attempt's timeline tiled into leaf segments.

        Cancellation can cut an attempt anywhere, so every boundary is
        clamped to the actual end; zero-length segments are dropped by
        the caller (their shared endpoints keep the tiling continuous).
        """
        end = self.end_s
        if self.start_s is None:
            return [(self.enqueue_s, end, "queue")]
        segs = [(self.enqueue_s, self.start_s, "queue")]
        segs.append((self.start_s, min(self.predict_end_s, end), "predict"))
        if end > self.predict_end_s:
            segs.append((self.predict_end_s, min(self.net_start_s, end), "execute"))
            if end > self.net_start_s:
                segs.append((self.net_start_s, end, "network"))
        return segs


@dataclass
class _OpenTrace:
    """One admitted request's trace while the request is unresolved."""

    trace_id: int
    arrival_s: float
    attrs: dict
    records: list[_AttemptRecord] = field(default_factory=list)


def _request_attrs(request) -> dict:
    graph = getattr(request, "graph", None)
    attrs = {
        "request_id": request.request_id,
        "tenant": request.tenant,
    }
    if graph is not None:
        attrs["graph"] = len(graph.nodes) if hasattr(graph, "nodes") else True
    else:
        attrs["program"] = request.program
        attrs["size"] = request.size
    return attrs


class Tracer:
    """Collects spans and structured events from one event-loop run."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        #: Structured event log entries, in emission order.
        self.events: list[dict] = []
        self.traces_completed = 0
        self.traces_failed = 0
        self._open: dict[int, _OpenTrace] = {}
        self._records: dict[int, _AttemptRecord] = {}
        self._next_tid = 0
        self._next_span_id = 0
        self._next_event_seq = 0

    # -- structured event log ----------------------------------------------

    def event(self, at_s: float, name: str, trace_id: int | None = None, **attrs):
        """Append one structured event at simulated instant ``at_s``."""
        self._next_event_seq += 1
        entry = {
            "type": "event",
            "seq": self._next_event_seq,
            "at_s": at_s,
            "name": name,
        }
        if trace_id is not None:
            entry["trace"] = trace_id
        if attrs:
            entry["attrs"] = attrs
        self.events.append(entry)

    # -- markers fed by the event loop -------------------------------------

    def begin(self, trace_id: int, at_s: float, request) -> None:
        """An admitted request starts its trace at arrival."""
        self._open[trace_id] = _OpenTrace(
            trace_id=trace_id, arrival_s=at_s, attrs=_request_attrs(request)
        )

    def enqueue(
        self,
        trace_id: int,
        at_s: float,
        replica: int,
        is_hedge: bool = False,
        is_spec: bool = False,
    ) -> int:
        """One attempt enters a replica queue; returns its marker id."""
        trace = self._open[trace_id]
        self._next_tid += 1
        record = _AttemptRecord(
            tid=self._next_tid,
            trace_id=trace_id,
            index=len(trace.records),
            replica=replica,
            is_hedge=is_hedge,
            is_spec=is_spec,
            enqueue_s=at_s,
        )
        trace.records.append(record)
        self._records[record.tid] = record
        return record.tid

    def start(
        self,
        tid: int,
        at_s: float,
        predict_end_s: float,
        net_start_s: float,
        finish_s: float,
        outcome: str,
    ) -> None:
        """The attempt starts service with a known predict/execute/network
        split; ``outcome`` is what the already-determined service draw
        will report (``ok`` / ``error`` / ``predict-error``)."""
        record = self._records[tid]
        record.start_s = at_s
        record.predict_end_s = predict_end_s
        record.net_start_s = max(net_start_s, predict_end_s)
        record.end_s = finish_s
        record.outcome = outcome

    def fail_attempt(self, tid: int, at_s: float) -> None:
        record = self._records[tid]
        record.end_s = at_s

    def cancel_attempt(self, tid: int, at_s: float) -> None:
        record = self._records[tid]
        record.end_s = at_s
        record.outcome = "cancelled"

    def steal(self, tid: int, at_s: float, thief: int) -> None:
        """A queued attempt is pulled to an idle replica."""
        record = self._records[tid]
        record.stolen_by = thief
        self.event(
            at_s, "steal", trace_id=record.trace_id,
            victim=record.replica, thief=thief,
        )

    # -- resolution --------------------------------------------------------

    def complete(self, trace_id: int, at_s: float, winner_tid: int) -> None:
        """The request completed; fold its markers into the span tree."""
        trace = self._open.pop(trace_id)
        winner = self._records[winner_tid]
        winner.end_s = at_s
        winner.outcome = "ok"
        self.traces_completed += 1
        self.event(
            at_s, "complete", trace_id=trace_id,
            latency_s=at_s - trace.arrival_s,
        )
        self._emit(trace, finish_s=at_s, winner=winner, outcome="completed")
        self._drop(trace)

    def fail(self, trace_id: int, at_s: float, reason: str) -> None:
        """The request was lost (timeout, retries exhausted, stranded)."""
        trace = self._open.pop(trace_id)
        self.traces_failed += 1
        self.event(at_s, "failed", trace_id=trace_id, reason=reason)
        for record in trace.records:
            if record.end_s is None:
                record.end_s = at_s
        self._emit(trace, finish_s=at_s, winner=None, outcome=reason)
        self._drop(trace)

    def _drop(self, trace: _OpenTrace) -> None:
        for record in trace.records:
            del self._records[record.tid]

    # -- span construction -------------------------------------------------

    def _span(self, trace_id, parent, name, kind, start, end, critical, attrs):
        self._next_span_id += 1
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span_id,
            parent_id=parent,
            name=name,
            kind=kind,
            start_s=start,
            end_s=end,
            critical=critical,
            attrs=attrs,
        )
        self.spans.append(span)
        return span

    def _emit(self, trace, finish_s, winner, outcome) -> None:
        """Emit the resolved trace's span tree.

        Critical leaves are the winner's own segments plus the clipped
        primary-chain segments before the winner was enqueued; the gaps
        in between (retry backoff limbo, when no attempt exists) become
        ``backoff`` spans, so critical leaves tile ``[arrival, finish]``
        with shared endpoints and their durations sum to the latency.
        """
        root_attrs = dict(trace.attrs)
        root_attrs["outcome"] = outcome
        root = self._span(
            trace.trace_id, None, "request", "request",
            trace.arrival_s, finish_s, False, root_attrs,
        )
        w_enq = winner.enqueue_s if winner is not None else None
        critical_leaves: list[tuple[float, float]] = []
        for record in trace.records:
            attrs = {"replica": record.replica, "outcome": record.outcome}
            if record.stolen_by is not None:
                attrs["stolen_by"] = record.stolen_by
            container = self._span(
                trace.trace_id, root.span_id, record.name, "placement",
                record.enqueue_s, record.end_s, False, attrs,
            )
            for seg_start, seg_end, seg_kind in record.segments():
                if seg_end <= seg_start:
                    continue
                for lo, hi, crit in self._criticality(
                    record, winner, w_enq, seg_start, seg_end
                ):
                    if hi <= lo:
                        continue
                    self._span(
                        trace.trace_id, container.span_id, seg_kind,
                        seg_kind, lo, hi, crit, {},
                    )
                    if crit:
                        critical_leaves.append((lo, hi))
        if winner is not None:
            self._fill_gaps(trace, root, finish_s, critical_leaves)

    @staticmethod
    def _criticality(record, winner, w_enq, start, end):
        """Split one segment into (lo, hi, critical) parts.

        The winner is critical end to end.  A primary-chain record is
        critical up to the instant the winner was enqueued — the
        request was sequentially waiting through it — and off-path
        after that (it raced the winner and lost).  Hedge/speculative
        losers are never critical.
        """
        if winner is None:
            return ((start, end, False),)
        if record is winner:
            return ((start, end, True),)
        if not record.primary or start >= w_enq:
            return ((start, end, False),)
        if end <= w_enq:
            return ((start, end, True),)
        return ((start, w_enq, True), (w_enq, end, False))

    def _fill_gaps(self, trace, root, finish_s, critical_leaves) -> None:
        """Backoff spans over the critical-tiling gaps under the root."""
        cursor = trace.arrival_s
        gaps: list[tuple[float, float]] = []
        for lo, hi in sorted(critical_leaves):
            if lo > cursor:
                gaps.append((cursor, lo))
            cursor = max(cursor, hi)
        if cursor < finish_s:
            gaps.append((cursor, finish_s))
        for lo, hi in gaps:
            self._span(
                trace.trace_id, root.span_id, "backoff", "backoff",
                lo, hi, True, {},
            )

    # -- export ------------------------------------------------------------

    def records(self) -> list[dict]:
        """Every JSONL record, in deterministic emission order."""
        head = {
            "type": "header",
            "version": 1,
            "events": len(self.events),
            "spans": len(self.spans),
            "completed": self.traces_completed,
            "failed": self.traces_failed,
        }
        out = [head]
        out.extend(self.events)
        out.extend(span.to_record() for span in self.spans)
        return out

    def export_lines(self) -> list[str]:
        """Canonical JSONL lines — byte-identical across seeded replays."""
        return [
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in self.records()
        ]

    def export(self, path) -> int:
        """Write the JSONL trace to ``path``; returns the line count."""
        lines = self.export_lines()
        with open(path, "w") as fh:
            fh.write("\n".join(lines))
            fh.write("\n")
        return len(lines)
