"""The unified metrics registry: counters, gauges, histograms, one namespace.

Every serving layer used to keep its own aggregate struct
(``EventLoopStats``, ``FleetStats``, ``ClusterStats``, per-tenant
isolation meters) and every report had to know which struct held which
number.  The registry replaces that with one flat namespace of stable
dotted names — ``loop.completed``, ``cluster.cross_pool``,
``slo.tenant.gold.violations`` — holding exactly three metric shapes:

* :class:`Counter` — a monotone scalar (int or float), incremented in
  place on the hot path.  Integer counters stay integers, so JSON
  round-trips and determinism baselines compare bit for bit.
* :class:`Gauge` — a last-value scalar (the loop clock, a health score).
* log-bucketed histograms — the serving layer's existing
  :class:`~repro.serving.histogram.LatencyHistogram`, registered under
  a name instead of living loose in a struct.

Registration is idempotent per (name, shape): asking for an existing
name returns the same cell, asking for it under a different shape is a
loud error.  :meth:`MetricsRegistry.snapshot` renders everything
JSON-ready in sorted-name order, so two deterministic runs produce
byte-identical reports.
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "MetricsRegistry"]


class Counter:
    """A monotone scalar cell; ``value`` is mutated in place."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount=1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-value scalar cell (not assumed monotone)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class MetricsRegistry:
    """One namespace of named metric cells, shared across serving layers."""

    def __init__(self) -> None:
        self._cells: dict[str, object] = {}

    def _register(self, name: str, kind: type, factory):
        if not name:
            raise ValueError("metric names must be non-empty")
        cell = self._cells.get(name)
        if cell is None:
            cell = factory()
            self._cells[name] = cell
            return cell
        if not isinstance(cell, kind):
            raise ValueError(
                f"metric {name!r} is already registered as "
                f"{type(cell).__name__}, not {kind.__name__}"
            )
        return cell

    def counter(self, name: str) -> Counter:
        return self._register(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._register(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str):
        # Imported lazily: repro.serving imports this module at load
        # time, so a module-level import back into repro.serving would
        # be circular.
        from ..serving.histogram import LatencyHistogram

        return self._register(name, LatencyHistogram, LatencyHistogram)

    # -- reading -----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def names(self) -> tuple[str, ...]:
        """Every registered name, sorted (the report order)."""
        return tuple(sorted(self._cells))

    def get(self, name: str):
        """The raw cell under ``name`` (KeyError when absent)."""
        return self._cells[name]

    def value(self, name: str):
        """The scalar value of a counter/gauge, or a histogram's count."""
        cell = self._cells[name]
        if isinstance(cell, (Counter, Gauge)):
            return cell.value
        return cell.count

    def snapshot(self) -> dict:
        """JSON-ready dump: scalars verbatim, histograms summarized.

        Keys come out in sorted-name order, so a deterministic run
        serializes to a byte-identical report.
        """
        out: dict = {}
        for name in sorted(self._cells):
            cell = self._cells[name]
            if isinstance(cell, (Counter, Gauge)):
                out[name] = cell.value
            else:
                out[name] = cell.to_dict()
        return out
