"""Observability for the serving stack: tracing, metrics, attribution.

``repro.telemetry`` is the one place the serving layers report into:

* :class:`~repro.telemetry.registry.MetricsRegistry` — counters,
  gauges, and log-bucketed histograms under stable dotted names.  The
  event loop's :class:`~repro.serving.EventLoopStats` is a thin view
  over it, and the service / fleet router / cluster router / drift
  detector / SLO tracker all publish into the same namespace via their
  ``publish_metrics`` hooks.
* :class:`~repro.telemetry.spans.Tracer` — request-scoped span trees
  over the simulated clock, with a deterministic JSONL export.
* :class:`~repro.telemetry.analyzer.CriticalPathAnalyzer` — per-trace
  latency attribution and flamegraph-style rollups over those spans.

The :class:`Telemetry` facade ties the three together behind
``ServeOptions(telemetry="off" | "metrics" | "trace")``:

* ``off`` — no tracer, no shared registry; the loop's stats still work
  (they always sit on a private registry) and the marginal cost is a
  handful of ``is None`` checks.
* ``metrics`` — the loop's registry is shared, and after the run every
  backend layer publishes its counters into it (``metrics-report``).
* ``trace`` — metrics plus the span tracer and JSONL event log
  (``trace-export`` / ``--trace-out``).
"""

from __future__ import annotations

from .analyzer import CriticalPathAnalyzer
from .registry import Counter, Gauge, MetricsRegistry
from .spans import SPAN_KINDS, Span, Tracer

__all__ = [
    "TELEMETRY_MODES",
    "Telemetry",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Span",
    "SPAN_KINDS",
    "Tracer",
    "CriticalPathAnalyzer",
]

#: Accepted values of ``ServeOptions.telemetry``.
TELEMETRY_MODES = ("off", "metrics", "trace")


class Telemetry:
    """One run's telemetry context: a shared registry, optionally a tracer."""

    def __init__(self, mode: str = "metrics"):
        if mode not in TELEMETRY_MODES or mode == "off":
            raise ValueError(
                f"telemetry mode must be one of {TELEMETRY_MODES[1:]} "
                f"(got {mode!r}); 'off' means no Telemetry object at all"
            )
        self.mode = mode
        self.registry = MetricsRegistry()
        self.tracer = Tracer() if mode == "trace" else None

    @classmethod
    def from_mode(cls, mode: str) -> "Telemetry | None":
        """Build a context for ``mode``, or ``None`` when it is ``off``."""
        if mode == "off":
            return None
        return cls(mode)

    @property
    def tracing(self) -> bool:
        return self.tracer is not None

    def analyzer(self) -> CriticalPathAnalyzer:
        """A critical-path analyzer over the spans traced so far."""
        if self.tracer is None:
            raise ValueError("telemetry mode 'trace' is required for spans")
        return CriticalPathAnalyzer.from_tracer(self.tracer)

    def collect(self, backend=None, stats=None) -> MetricsRegistry:
        """Publish every layer's counters into the shared registry.

        ``backend`` is any ``publish_metrics``-capable serving layer
        (service, fleet router, cluster router); ``stats`` is the event
        loop's :class:`~repro.serving.EventLoopStats`, whose scalar
        counters already live in the registry — collecting adds its
        per-replica gauges and the SLO tracker's per-tenant counters.
        """
        if stats is not None:
            for index, completed in enumerate(stats.replica_completed):
                self.registry.gauge(f"loop.replica.{index}.completed").set(
                    completed
                )
            for index, busy_s in enumerate(stats.replica_busy_s):
                self.registry.gauge(f"loop.replica.{index}.busy_s").set(busy_s)
            stats.slo.publish_metrics(self.registry)
        if backend is not None:
            backend.publish_metrics(self.registry)
        return self.registry
