"""Critical-path analysis over exported spans: where did the latency go?

The tracer guarantees that each completed trace's *critical* leaf spans
tile ``[arrival, finish]`` with shared endpoints.  The analyzer builds
on that invariant:

* :meth:`CriticalPathAnalyzer.breakdown` — one trace's latency split by
  span kind (queue / predict / execute / network / backoff);
* :meth:`CriticalPathAnalyzer.attribution` — the same split aggregated
  over any set of traces (e.g. the slowest decile), as a table of
  total seconds, share of latency, and per-request mean;
* :meth:`CriticalPathAnalyzer.folded` — a flamegraph-style rollup:
  semicolon-joined span paths (``request;hedge;execute``) mapped to
  total seconds, the "folded stacks" format flamegraph tooling eats;
* :meth:`CriticalPathAnalyzer.check` — the conservation audit: critical
  spans must tile the root exactly and sum to the reported latency.
"""

from __future__ import annotations

import math

from ..util.tables import format_table
from .spans import LEAF_KINDS, Span

__all__ = ["CriticalPathAnalyzer"]


class CriticalPathAnalyzer:
    """Aggregates one run's spans into latency-attribution views."""

    def __init__(self, spans) -> None:
        self._by_trace: dict[int, list[Span]] = {}
        self._by_id: dict[int, dict[int, Span]] = {}
        for span in spans:
            self._by_trace.setdefault(span.trace_id, []).append(span)
            self._by_id.setdefault(span.trace_id, {})[span.span_id] = span

    @classmethod
    def from_tracer(cls, tracer) -> "CriticalPathAnalyzer":
        return cls(tracer.spans)

    # -- per-trace views ---------------------------------------------------

    def trace_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._by_trace))

    def root(self, trace_id: int) -> Span:
        for span in self._by_trace[trace_id]:
            if span.kind == "request":
                return span
        raise KeyError(f"trace {trace_id} has no request root span")

    def completed_ids(self) -> tuple[int, ...]:
        """Traces that resolved as completed (the tiling guarantee holds)."""
        return tuple(
            tid
            for tid in self.trace_ids()
            if self.root(tid).attrs.get("outcome") == "completed"
        )

    def latency_s(self, trace_id: int) -> float:
        return self.root(trace_id).duration_s

    def critical_spans(self, trace_id: int) -> list[Span]:
        return sorted(
            (s for s in self._by_trace[trace_id] if s.critical),
            key=lambda s: (s.start_s, s.span_id),
        )

    def critical_sum(self, trace_id: int) -> float:
        return sum(s.duration_s for s in self.critical_spans(trace_id))

    def breakdown(self, trace_id: int) -> dict[str, float]:
        """Critical seconds by span kind for one trace."""
        out = {kind: 0.0 for kind in LEAF_KINDS}
        for span in self.critical_spans(trace_id):
            out[span.kind] += span.duration_s
        return out

    def check(self, trace_id: int) -> None:
        """Audit one completed trace's conservation; raises on violation.

        The critical leaves must tile ``[arrival, finish]`` with shared
        endpoints (exact float equality — the tracer reuses boundary
        values, it never re-derives them) and therefore sum to the
        loop's reported latency.
        """
        root = self.root(trace_id)
        cursor = root.start_s
        for span in self.critical_spans(trace_id):
            if span.start_s != cursor:
                raise ValueError(
                    f"trace {trace_id}: critical span {span.span_id} starts at "
                    f"{span.start_s!r}, expected {cursor!r}"
                )
            cursor = span.end_s
        if cursor != root.end_s:
            raise ValueError(
                f"trace {trace_id}: critical tiling ends at {cursor!r}, "
                f"root ends at {root.end_s!r}"
            )
        total = self.critical_sum(trace_id)
        if not math.isclose(
            total, root.duration_s, rel_tol=1e-9, abs_tol=1e-15
        ):
            raise ValueError(
                f"trace {trace_id}: critical spans sum to {total!r} but the "
                f"reported latency is {root.duration_s!r}"
            )

    # -- aggregation -------------------------------------------------------

    def slowest(self, fraction: float = 0.1) -> tuple[int, ...]:
        """The slowest ``fraction`` of completed traces, worst first."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        ranked = sorted(
            self.completed_ids(),
            key=lambda tid: (-self.latency_s(tid), tid),
        )
        keep = max(1, math.ceil(len(ranked) * fraction)) if ranked else 0
        return tuple(ranked[:keep])

    def attribution(self, trace_ids=None) -> dict:
        """Aggregate critical attribution over ``trace_ids``.

        Returns ``{"requests", "latency_s", "kinds": {kind: {"total_s",
        "share", "mean_s"}}}``; shares are of the summed latency.
        """
        ids = self.completed_ids() if trace_ids is None else tuple(trace_ids)
        totals = {kind: 0.0 for kind in LEAF_KINDS}
        latency = 0.0
        for tid in ids:
            latency += self.latency_s(tid)
            for kind, seconds in self.breakdown(tid).items():
                totals[kind] += seconds
        kinds = {
            kind: {
                "total_s": seconds,
                "share": seconds / latency if latency > 0 else 0.0,
                "mean_s": seconds / len(ids) if ids else 0.0,
            }
            for kind, seconds in totals.items()
        }
        return {"requests": len(ids), "latency_s": latency, "kinds": kinds}

    def table(self, trace_ids=None, title: str | None = None) -> str:
        """The attribution rendered as a fixed-width ASCII table."""
        report = self.attribution(trace_ids)
        rows = [
            [
                kind,
                f"{row['total_s'] * 1e3:.3f}",
                f"{row['share'] * 100.0:.1f}%",
                f"{row['mean_s'] * 1e3:.3f}",
            ]
            for kind, row in report["kinds"].items()
        ]
        rows.append(
            [
                "total",
                f"{report['latency_s'] * 1e3:.3f}",
                "100.0%" if report["latency_s"] > 0 else "0.0%",
                (
                    f"{report['latency_s'] / report['requests'] * 1e3:.3f}"
                    if report["requests"]
                    else "0.000"
                ),
            ]
        )
        heading = title or f"Latency attribution ({report['requests']} requests)"
        return format_table(
            ["span", "total_ms", "share", "mean_ms"], rows, title=heading
        )

    def folded(self, trace_ids=None) -> dict[str, float]:
        """Flamegraph folded stacks: ``path;to;span -> total seconds``.

        Every leaf span contributes its duration under the
        semicolon-joined names of its ancestor chain, critical or not —
        off-path hedge/speculation work shows up as its own frames.
        """
        ids = set(self.trace_ids() if trace_ids is None else trace_ids)
        out: dict[str, float] = {}
        for tid in sorted(ids):
            index = self._by_id[tid]
            for span in self._by_trace[tid]:
                if span.kind not in LEAF_KINDS:
                    continue
                parts = [span.name]
                parent = span.parent_id
                while parent is not None:
                    node = index[parent]
                    parts.append(node.name)
                    parent = node.parent_id
                path = ";".join(reversed(parts))
                out[path] = out.get(path, 0.0) + span.duration_s
        return dict(sorted(out.items()))
