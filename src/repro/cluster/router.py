"""The cluster router: many machine pools, many tenants, one stream.

One :class:`ClusterRouter` owns P pools — each a full
:class:`~repro.fleet.FleetRouter` with its own replicas, policies and
health tracking — behind a :class:`~repro.cluster.NetworkSpec` that
prices every cross-pool handoff in seconds and joules, exactly as PCIe
transfers are priced inside one machine by
:func:`repro.graphs.compose.edge_transfer`.

Tenancy is the organizing principle: every tenant hashes to a stable
*home pool* where its data is resident, so serving a request in its
home pool ships zero bytes (free, like a resident PCIe buffer) while
serving it anywhere else pays the interconnect for the request's input
arrays.  Placement weighs that price against load: a lightly-loaded
remote pool wins only when its head start exceeds the network toll —
the same finish-time greedy the fleet's ``predicted`` policy runs, one
level up.

The router also feeds the event loop's cluster-scope fault handling:
:meth:`speculative_index` places a speculative re-execution in a pool
*not* already running a copy (a straggler window hits one pool; the
duplicate must not land inside it), and :meth:`steal_candidates`
names the replicas an idle machine may steal queued work from —
cross-pool only, since intra-pool balance is the FleetRouter's job.

Per-tenant isolation is reported, not enforced by fiat:
:meth:`observe_completion` folds every finished request into bounded
per-tenant histograms and busy-second meters, and :meth:`stats`
reports each tenant's p99, share of cluster capacity, and the fairness
gap — how far the realized shares sit from the priority-weighted ideal
the weighted-fair queue aims at.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping, Sequence

from ..benchsuite.registry import get_benchmark
from ..core.trainer import TrainingConfig
from ..fleet.router import FleetRouter, HealthConfig
from ..machines.fleet import cluster_platforms
from ..serving.histogram import LatencyHistogram
from ..serving.service import ServiceConfig
from ..serving.slo import SLOConfig
from ..serving.trace import GraphServingRequest, ServingRequest
from .network import NetworkSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fleet.registry import ModelRegistry
    from ..fleet.router import FleetResponse, FleetStats
    from ..serving.eventloop import CompletedRequest
    from ..workloads.spec import DriftEvent

__all__ = [
    "ClusterResponse",
    "ClusterRouter",
    "ClusterStats",
    "TenantStats",
    "tenant_weight",
    "with_tenants",
]


def tenant_weight(slo: SLOConfig, tenant: str) -> float:
    """A tenant's capacity weight: 1 plus its non-negative priority.

    The same mapping the weighted-fair queue discipline uses, so the
    fairness gap reported by :meth:`ClusterRouter.stats` measures the
    realized shares against exactly the target the scheduler aims at.
    """
    return 1.0 + max(0, slo.priority_for(tenant))


def with_tenants(
    trace: Sequence[ServingRequest], tenants: Sequence[str]
) -> tuple[ServingRequest, ...]:
    """Assign tenants round-robin over a single-tenant trace.

    Deterministic by request id, so the same trace always produces the
    same multi-tenant stream regardless of iteration order.
    """
    if not tenants:
        raise ValueError("tenants must name at least one tenant")
    return tuple(
        replace(r, tenant=tenants[r.request_id % len(tenants)]) for r in trace
    )


@dataclass(frozen=True)
class ClusterResponse:
    """A served request plus where the cluster placed it and what the
    network charged.

    ``measured_s`` is the end-to-end execution span *including* the
    interconnect handoff when the request was served away from its
    tenant's home pool — the event loop accrues it into latency exactly
    like the PCIe-priced spans inside one machine.
    """

    pool_index: int
    home_pool: int
    replica_index: int
    replica_name: str
    network_s: float
    network_j: float
    response: "FleetResponse"

    @property
    def cross_pool(self) -> bool:
        return self.pool_index != self.home_pool

    @property
    def cache_hit(self) -> bool:
        return self.response.response.cache_hit

    @property
    def measured_s(self) -> float:
        return self.response.response.measured_s + self.network_s


@dataclass(frozen=True)
class _GraphClusterResponse:
    """Graph flavour of :class:`ClusterResponse` (same loop-facing duck
    type: ``cache_hit`` + ``measured_s``)."""

    pool_index: int
    home_pool: int
    replica_index: int
    network_s: float
    network_j: float
    response: object  # GraphServedResponse

    @property
    def cross_pool(self) -> bool:
        return self.pool_index != self.home_pool

    @property
    def cache_hit(self) -> bool:
        return self.response.cache_hit

    @property
    def measured_s(self) -> float:
        return self.response.measured_s + self.network_s


@dataclass(frozen=True)
class TenantStats:
    """One tenant's isolation slice of the cluster telemetry."""

    tenant: str
    completed: int
    busy_s: float
    #: Realized fraction of total cluster busy seconds.
    share: float
    #: Priority-derived weight the fair-share target is computed from.
    weight: float
    #: Weight over the sum of observed tenants' weights.
    fair_share: float
    p50_s: float
    p99_s: float

    @property
    def share_gap(self) -> float:
        """How far the realized share sits from the fair target."""
        return abs(self.share - self.fair_share)


@dataclass(frozen=True)
class ClusterStats:
    """Cross-cluster telemetry: pool stats, network toll, isolation."""

    pools: tuple["FleetStats", ...]
    served: int
    local: int
    cross_pool: int
    network_s: float
    network_j: float
    tenants: tuple[TenantStats, ...]

    @property
    def num_pools(self) -> int:
        return len(self.pools)

    @property
    def fairness_gap(self) -> float:
        """Largest per-tenant deviation from the weighted fair share.

        0 means every tenant got exactly its priority-weighted slice of
        cluster busy time; 1 is maximal capture by one tenant.  Single-
        tenant (or idle) runs report 0 by construction.
        """
        return max((t.share_gap for t in self.tenants), default=0.0)

    def to_dict(self) -> dict:
        return {
            "pools": self.num_pools,
            "served": self.served,
            "local": self.local,
            "cross_pool": self.cross_pool,
            "network_s": self.network_s,
            "network_j": self.network_j,
            "fairness_gap": self.fairness_gap,
            "tenants": {
                t.tenant: {
                    "completed": t.completed,
                    "busy_s": t.busy_s,
                    "share": t.share,
                    "fair_share": t.fair_share,
                    "weight": t.weight,
                    "p50_s": t.p50_s,
                    "p99_s": t.p99_s,
                }
                for t in self.tenants
            },
        }


@dataclass
class _TenantMeter:
    """Streaming per-tenant isolation state (bounded memory)."""

    completed: int = 0
    busy_s: float = 0.0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)


class ClusterRouter:
    """Routes a multi-tenant stream across P machine pools."""

    def __init__(
        self,
        pools: Sequence[FleetRouter],
        network: NetworkSpec = NetworkSpec(),
        slo: SLOConfig = SLOConfig(),
    ):
        if not pools:
            raise ValueError("a cluster needs at least one pool")
        names = [r.name for pool in pools for r in pool.replicas]
        if len(set(names)) != len(names):
            raise ValueError(
                f"replica machine names must be unique cluster-wide, got {names}"
            )
        self.pools = tuple(pools)
        self.network = network
        self.slo = slo
        #: Flat replica index of each pool's first replica.
        self._offsets: list[int] = []
        offset = 0
        for pool in self.pools:
            self._offsets.append(offset)
            offset += len(pool.replicas)
        self._num_replicas = offset
        #: Memoized request payload bytes per (program, size) — building
        #: the problem arrays is the expensive part, so one instantiation
        #: prices every future handoff of that key.
        self._bytes: dict[tuple[str, int], int] = {}
        self._meters: dict[str, _TenantMeter] = {}
        self.served = 0
        self.cross_pool = 0
        self.network_s = 0.0
        self.network_j = 0.0

    @classmethod
    def build(
        cls,
        pools: int,
        machines_per_pool: int,
        benchmarks=None,
        model_kind: str = "knn",
        training: TrainingConfig = TrainingConfig(repetitions=1),
        serving: ServiceConfig = ServiceConfig(),
        policy: str = "least-loaded",
        registry: "ModelRegistry | None" = None,
        health: HealthConfig = HealthConfig(),
        network: NetworkSpec = NetworkSpec(),
        slo: SLOConfig = SLOConfig(),
    ) -> "ClusterRouter":
        """Train ``pools × machines_per_pool`` systems and wrap them.

        Pool p gets the p-th chunk of the deterministic
        :func:`~repro.machines.cluster_platforms` derivation, so the
        same shape always trains the same cluster and a P-pool cluster
        is a prefix of every wider one.
        """
        platform_pools = cluster_platforms(pools, machines_per_pool)
        routers = [
            FleetRouter.build(
                chunk,
                benchmarks,
                model_kind=model_kind,
                training=training,
                serving=serving,
                policy=policy,
                registry=registry,
                health=health,
            )
            for chunk in platform_pools
        ]
        return cls(routers, network=network, slo=slo)

    # -- flat <-> (pool, local) indexing -------------------------------------

    @property
    def num_replicas(self) -> int:
        return self._num_replicas

    @property
    def services(self):
        """Flat replica services across pools (event-loop backend order)."""
        return [r.service for pool in self.pools for r in pool.replicas]

    def pool_of(self, flat_index: int) -> int:
        if not 0 <= flat_index < self._num_replicas:
            raise IndexError(f"flat replica index {flat_index} out of range")
        pool = 0
        for p, base in enumerate(self._offsets):
            if flat_index >= base:
                pool = p
        return pool

    def _split(self, flat_index: int) -> tuple[int, int]:
        pool = self.pool_of(flat_index)
        return pool, flat_index - self._offsets[pool]

    # -- tenancy and pricing -------------------------------------------------

    def home_pool(self, tenant: str) -> int:
        """The pool a tenant's data lives in: a stable, process-
        independent hash (same construction as the fleet's affinity
        policy), so the same tenant always resolves to the same home."""
        digest = hashlib.sha256(tenant.encode()).digest()
        return int.from_bytes(digest[:8], "big") % len(self.pools)

    def request_bytes(self, request: "ServingRequest | GraphServingRequest") -> int:
        """Input payload bytes a cross-pool handoff of ``request`` ships.

        Kernel requests ship their problem arrays (the exact buffers
        the PCIe model prices inside the machine); a graph ships every
        node's arrays — the whole pipeline migrates or none of it does.
        """
        if isinstance(request, GraphServingRequest):
            return sum(
                self._key_bytes(node.program, node.size)
                for node in request.graph.nodes
            )
        return self._key_bytes(request.program, request.size)

    def _key_bytes(self, program: str, size: int) -> int:
        key = (program, size)
        nbytes = self._bytes.get(key)
        if nbytes is None:
            bench = get_benchmark(program)
            seed = self.pools[0].replicas[0].service.config.instance_seed
            exec_request = bench.request(bench.make_instance(size, seed=seed))
            nbytes = sum(int(a.nbytes) for a in exec_request.arrays.values())
            self._bytes[key] = nbytes
        return nbytes

    def handoff_cost(
        self, request: "ServingRequest | GraphServingRequest", pool_index: int
    ) -> tuple[float, float]:
        """(seconds, joules) the network charges for serving ``request``
        in ``pool_index``; zero in the tenant's home pool."""
        if pool_index == self.home_pool(request.tenant):
            return 0.0, 0.0
        return self.network.handoff(self.request_bytes(request))

    def _pool_load_s(self, pool_index: int) -> float:
        """Mean multiplexed backlog across the pool's replicas."""
        pool = self.pools[pool_index]
        return sum(r.scheduler.makespan_s for r in pool.replicas) / len(pool.replicas)

    # -- placement -----------------------------------------------------------

    def place(self, request: "ServingRequest | GraphServingRequest") -> int:
        """Pick (and commit to) a flat replica index for one request.

        Pool choice is finish-time greedy with the network priced in:
        ``load(pool) + handoff_seconds(request, pool)``, so a remote
        pool wins only when its head start beats the interconnect toll
        — the cluster-level analogue of PCIe-aware partitioning.  Ties
        break toward the home pool, then by pool index.  Within the
        chosen pool, kernel requests go through the pool's own policy
        (:meth:`FleetRouter.place`); graph requests spread
        deterministically as on the fleet path.
        """
        home = self.home_pool(request.tenant)
        best_pool, best_score = home, (math.inf, 1, home)
        for p in range(len(self.pools)):
            net_s, _ = self.handoff_cost(request, p)
            score = (self._pool_load_s(p) + net_s, 0 if p == home else 1, p)
            if score < best_score:
                best_pool, best_score = p, score
        pool = self.pools[best_pool]
        if isinstance(request, GraphServingRequest):
            local = request.request_id % len(pool.replicas)
            pool.replicas[local].routed += 1
        else:
            local = pool.place(request)
        return self._offsets[best_pool] + local

    def speculative_index(
        self,
        request: "ServingRequest | GraphServingRequest",
        exclude: set[int],
    ) -> int | None:
        """Where a speculative re-execution of ``request`` should land.

        Pools already running a copy (any flat index in ``exclude``)
        are avoided — a straggler window is a *pool-local* condition,
        so the duplicate must escape the pool, not just the replica.
        Falls back to any non-excluded replica when every pool is
        tainted, and to ``None`` when ``exclude`` covers the cluster.
        """
        excluded_pools = {self.pool_of(i) for i in exclude}
        candidates = [
            p for p in range(len(self.pools)) if p not in excluded_pools
        ]
        if candidates:
            net = {p: self.handoff_cost(request, p)[0] for p in candidates}
            best = min(
                candidates, key=lambda p: (self._pool_load_s(p) + net[p], p)
            )
            pool = self.pools[best]
            local = min(
                range(len(pool.replicas)),
                key=lambda i: (pool.replicas[i].scheduler.makespan_s, i),
            )
            return self._offsets[best] + local
        flat = [i for i in range(self._num_replicas) if i not in exclude]
        return flat[0] if flat else None

    def steal_candidates(self, thief_flat: int) -> tuple[int, ...]:
        """Flat indices an idle replica may steal queued work from.

        Cross-pool only: intra-pool balance is the pool router's
        business, and the point of cluster-level stealing is draining a
        backlogged pool (straggler or crash fallout) onto idle capacity
        elsewhere.
        """
        thief_pool = self.pool_of(thief_flat)
        return tuple(
            i for i in range(self._num_replicas) if self.pool_of(i) != thief_pool
        )

    # -- serving --------------------------------------------------------------

    def tick(self, now_s: float) -> None:
        for pool in self.pools:
            pool.tick(now_s)

    def serve_on(
        self, flat_index: int, request: "ServingRequest | GraphServingRequest"
    ) -> "ClusterResponse | _GraphClusterResponse":
        """Serve one placed request; the network bill rides the response.

        A request served outside its tenant's home pool pays the
        interconnect for its input arrays — the handoff seconds join
        ``measured_s`` (the event loop accrues them into latency) and
        the joules join the cluster's network meter.
        """
        pool_index, local = self._split(flat_index)
        pool = self.pools[pool_index]
        home = self.home_pool(request.tenant)
        net_s, net_j = self.handoff_cost(request, pool_index)
        self.served += 1
        if pool_index != home:
            self.cross_pool += 1
            self.network_s += net_s
            self.network_j += net_j
        if isinstance(request, GraphServingRequest):
            response = pool.replicas[local].service.submit_graph(request)
            return _GraphClusterResponse(
                pool_index=pool_index,
                home_pool=home,
                replica_index=flat_index,
                network_s=net_s,
                network_j=net_j,
                response=response,
            )
        fleet_response = pool.serve_on(local, request)
        return ClusterResponse(
            pool_index=pool_index,
            home_pool=home,
            replica_index=flat_index,
            replica_name=fleet_response.replica_name,
            network_s=net_s,
            network_j=net_j,
            response=fleet_response,
        )

    def submit(
        self, request: "ServingRequest | GraphServingRequest"
    ) -> "ClusterResponse | _GraphClusterResponse":
        """Place and serve one request (closed-loop path)."""
        return self.serve_on(self.place(request), request)

    def apply_drift(self, event: "DriftEvent") -> tuple[str, ...]:
        """Apply one drift event across pools; returns machines hit.

        ``event.machine is None`` drifts the whole cluster; a named
        machine lives in exactly one pool (names are cluster-unique).
        """
        hit: list[str] = []
        for pool in self.pools:
            if event.machine is not None and not any(
                r.name == event.machine for r in pool.replicas
            ):
                continue
            hit.extend(pool.apply_drift(event))
        if not hit:
            raise ValueError(
                f"drift event names unknown machine {event.machine!r}"
            )
        return tuple(hit)

    # -- isolation telemetry ---------------------------------------------------

    def observe_completion(self, completed: "CompletedRequest") -> None:
        """Fold one finished request into the per-tenant isolation meters.

        Designed to chain as (or inside) the event loop's
        ``on_complete`` callback; memory stays bounded per tenant
        (one histogram + two scalars), never per request.
        """
        meter = self._meters.get(completed.request.tenant)
        if meter is None:
            meter = self._meters[completed.request.tenant] = _TenantMeter()
        meter.completed += 1
        meter.busy_s += completed.service_s
        meter.latency.record(completed.latency_s)

    def stats(self) -> ClusterStats:
        """Pool stats, network toll and per-tenant isolation, right now."""
        total_busy = sum(m.busy_s for m in self._meters.values())
        observed = sorted(self._meters)
        weights = {t: tenant_weight(self.slo, t) for t in observed}
        weight_sum = sum(weights.values())
        tenants = tuple(
            TenantStats(
                tenant=t,
                completed=self._meters[t].completed,
                busy_s=self._meters[t].busy_s,
                share=(
                    self._meters[t].busy_s / total_busy if total_busy > 0 else 0.0
                ),
                weight=weights[t],
                fair_share=weights[t] / weight_sum if weight_sum > 0 else 0.0,
                p50_s=self._meters[t].latency.quantile(0.50),
                p99_s=self._meters[t].latency.quantile(0.99),
            )
            for t in observed
        )
        return ClusterStats(
            pools=tuple(pool.stats() for pool in self.pools),
            served=self.served,
            local=self.served - self.cross_pool,
            cross_pool=self.cross_pool,
            network_s=self.network_s,
            network_j=self.network_j,
            tenants=tenants,
        )

    def tenant_meters(self) -> Mapping[str, int]:
        """Completed counts per tenant (cheap debugging/test hook)."""
        return {t: m.completed for t, m in sorted(self._meters.items())}

    def publish_metrics(self, registry, prefix: str = "cluster") -> None:
        """Publish cluster aggregates, per-tenant isolation, and pools.

        ``cluster.*`` carries the routing/network toll,
        ``cluster.tenant.<t>.*`` the isolation meters, and each pool
        republishes its whole fleet view under ``cluster.pool.<i>.*``.
        """
        stats = self.stats()
        registry.gauge(f"{prefix}.served").set(stats.served)
        registry.gauge(f"{prefix}.local").set(stats.local)
        registry.gauge(f"{prefix}.cross_pool").set(stats.cross_pool)
        registry.gauge(f"{prefix}.network_s").set(stats.network_s)
        registry.gauge(f"{prefix}.network_j").set(stats.network_j)
        registry.gauge(f"{prefix}.fairness_gap").set(stats.fairness_gap)
        for tenant in stats.tenants:
            base = f"{prefix}.tenant.{tenant.tenant}"
            registry.gauge(f"{base}.completed").set(tenant.completed)
            registry.gauge(f"{base}.busy_s").set(tenant.busy_s)
            registry.gauge(f"{base}.share").set(tenant.share)
            registry.gauge(f"{base}.fair_share").set(tenant.fair_share)
            registry.gauge(f"{base}.p50_s").set(tenant.p50_s)
            registry.gauge(f"{base}.p99_s").set(tenant.p99_s)
        for index, pool in enumerate(self.pools):
            pool.publish_metrics(registry, prefix=f"{prefix}.pool.{index}")
