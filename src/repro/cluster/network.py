"""The interconnect cost model: cross-machine handoffs, priced.

A cluster routes requests between machine *pools* over a real network,
and a request served away from its tenant's home pool must ship its
input arrays over and its results back.  This module prices that
handoff with the same stance :func:`repro.graphs.compose.edge_transfer`
takes for PCIe copies inside one machine: bytes over bandwidth plus a
per-message latency, the two directions serializing through the link
(the request cannot start remotely before its inputs land, and the
answer cannot return before the remote run finishes), and a zero-byte
handoff costing nothing — data already resident where it is needed is
free, exactly like a resident PCIe buffer.

Energy follows the PCIe model too: the link draws ``link_watts`` while
a transfer is in flight, so cross-pool joules are watts × seconds just
as PCIe dynamic joules are ``transfer_power_w() ×`` copy seconds.

The spec is deliberately tiny and declarative — like
:class:`~repro.faults.FaultSpec`, it is data the cluster scenario is
reproducible from, not behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkSpec"]


@dataclass(frozen=True)
class NetworkSpec:
    """One cluster interconnect: bandwidth, latency, link power.

    Attributes:
        bandwidth_gbs: sustained link bandwidth in GB/s per direction
            (10 is a 100 GbE-class fabric after protocol overhead).
        latency_s: per-message latency one transfer pays regardless of
            size (switch hops + protocol round-trip).
        link_watts: draw attributed to the link while a transfer is in
            flight; joules = watts × transfer seconds, mirroring the
            PCIe ``transfer_power_w`` accounting.
    """

    bandwidth_gbs: float = 10.0
    latency_s: float = 50e-6
    link_watts: float = 8.0

    def __post_init__(self) -> None:
        if not self.bandwidth_gbs > 0:
            raise ValueError("bandwidth_gbs must be positive")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if self.link_watts < 0:
            raise ValueError("link_watts must be non-negative")

    def transfer_time_s(self, nbytes: int) -> float:
        """Seconds one directed transfer of ``nbytes`` occupies the link.

        Zero bytes cost zero — resident data never pays, exactly like a
        host-resident device in the PCIe model.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return nbytes / (self.bandwidth_gbs * 1e9) + self.latency_s

    def handoff(self, nbytes_in: int, nbytes_out: int = 0) -> tuple[float, float]:
        """Price one cross-pool round trip; returns (seconds, joules).

        The ingress (request inputs to the remote pool) and the egress
        (results back) serialize — the remote run sits between them —
        so the seconds add, exactly as the D2H and H2D phases of a PCIe
        edge transfer serialize through host memory.
        """
        seconds = self.transfer_time_s(nbytes_in) + self.transfer_time_s(nbytes_out)
        return seconds, seconds * self.link_watts
