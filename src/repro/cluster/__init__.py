"""The cluster tier: machine pools, tenants, and a priced interconnect.

One :class:`ClusterRouter` places a multi-tenant request stream onto P
machine pools (each pool a :class:`~repro.fleet.FleetRouter`) behind a
:class:`NetworkSpec` that prices every cross-pool handoff — bandwidth,
latency and link watts — exactly like PCIe transfers are priced inside
one machine.  Tenants hash to stable home pools; placement weighs the
interconnect toll against pool load; speculation and work-stealing
hooks feed the event loop's cluster-scope straggler handling; and
per-tenant isolation (p99, capacity share, fairness gap) is reported
from bounded-memory meters.
"""

from .network import NetworkSpec
from .router import (
    ClusterResponse,
    ClusterRouter,
    ClusterStats,
    TenantStats,
    tenant_weight,
    with_tenants,
)

__all__ = [
    "NetworkSpec",
    "ClusterResponse",
    "ClusterRouter",
    "ClusterStats",
    "TenantStats",
    "tenant_weight",
    "with_tenants",
]
