"""Vendor-sample-style benchmarks (8 programs).

These mirror the classic OpenCL SDK examples the paper draws on:
streaming kernels (vecadd/saxpy), reductions (dot product, histogram),
dense linear algebra (sgemm), financial math (Black-Scholes), fractals
(Mandelbrot) and all-pairs physics (n-body).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..compiler.splitter import BufferDistribution
from ..inspire import FLOAT, INT, Intent, KernelBuilder, const
from ..inspire import ast as ir
from .base import Benchmark, ProblemInstance, Suite

__all__ = [
    "VecAdd",
    "Saxpy",
    "DotProduct",
    "MatMul",
    "BlackScholes",
    "Mandelbrot",
    "NBody",
    "Histogram",
]


class VecAdd(Benchmark):
    """``c[i] = a[i] + b[i]`` — the canonical streaming kernel."""

    name = "vec_add"
    suite = Suite.VENDOR
    description = "element-wise vector addition (streaming, 1:1 flops:bytes)"

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        a = b.buffer("a", FLOAT, Intent.IN)
        bb = b.buffer("b", FLOAT, Intent.IN)
        c = b.buffer("c", FLOAT, Intent.OUT)
        n = b.scalar("n", INT)
        gid = b.global_id(0)
        with b.if_(gid < n):
            b.store(c, gid, b.load(a, gid) + b.load(bb, gid))
        return b.finish()

    def problem_sizes(self) -> tuple[int, ...]:
        return (1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        a = rng.standard_normal(size, dtype=np.float32)
        b = rng.standard_normal(size, dtype=np.float32)
        return ProblemInstance(
            size=size,
            arrays={"a": a, "b": b, "c": np.zeros(size, dtype=np.float32)},
            scalars={"n": size},
            total_items=size,
            granularity=64,
            output_names=("c",),
        )

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        return {"c": instance.arrays["a"] + instance.arrays["b"]}

    def execute(self, arrays, scalars, offset, count):
        n = int(scalars["n"])
        hi = min(offset + count, n)
        if hi > offset:
            arrays["c"][offset:hi] = arrays["a"][offset:hi] + arrays["b"][offset:hi]


class Saxpy(Benchmark):
    """``y[i] = alpha * x[i] + y[i]`` — BLAS level-1 with an INOUT buffer."""

    name = "saxpy"
    suite = Suite.VENDOR
    description = "scaled vector addition with in-place update"

    ALPHA = 2.5

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        x = b.buffer("x", FLOAT, Intent.IN)
        y = b.buffer("y", FLOAT, Intent.INOUT)
        alpha = b.scalar("alpha", FLOAT)
        n = b.scalar("n", INT)
        gid = b.global_id(0)
        with b.if_(gid < n):
            b.store(y, gid, alpha * b.load(x, gid) + b.load(y, gid))
        return b.finish()

    def problem_sizes(self) -> tuple[int, ...]:
        return (1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        return ProblemInstance(
            size=size,
            arrays={
                "x": rng.standard_normal(size, dtype=np.float32),
                "y": rng.standard_normal(size, dtype=np.float32),
            },
            scalars={"alpha": self.ALPHA, "n": size},
            total_items=size,
            granularity=64,
            output_names=("y",),
        )

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        return {
            "y": np.float32(self.ALPHA) * instance.arrays["x"] + instance.arrays["y"]
        }

    def execute(self, arrays, scalars, offset, count):
        n = int(scalars["n"])
        alpha = np.float32(scalars["alpha"])
        hi = min(offset + count, n)
        if hi > offset:
            arrays["y"][offset:hi] = (
                alpha * arrays["x"][offset:hi] + arrays["y"][offset:hi]
            )


class DotProduct(Benchmark):
    """Strided dot product with an atomic global accumulation.

    Each work item reduces ``CHUNK`` consecutive element pairs and adds
    its partial sum to ``out[0]`` — the naive vendor-sample shape whose
    output must be reduction-merged when partitioned.
    """

    name = "dot_product"
    suite = Suite.VENDOR
    description = "vector dot product with per-item partial sums + atomic add"

    CHUNK = 64

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        x = b.buffer("x", FLOAT, Intent.IN)
        y = b.buffer("y", FLOAT, Intent.IN)
        out = b.buffer("out", FLOAT, Intent.INOUT)
        n = b.scalar("n", INT)
        chunk = b.scalar("chunk", INT)
        gid = b.global_id(0)
        acc = b.let("acc", const(0.0, FLOAT))
        base = b.let("base", gid * chunk)
        with b.for_("k", 0, chunk) as k:
            idx = base + k
            with b.if_(idx < n):
                b.assign(acc, acc + b.load(x, idx) * b.load(y, idx))
        b.atomic_add(out, 0, acc)
        return b.finish()

    def distribution_overrides(self, instance=None):
        return {
            "x": BufferDistribution.split(elements_per_item=self.CHUNK),
            "y": BufferDistribution.split(elements_per_item=self.CHUNK),
            "out": BufferDistribution.reduced("sum"),
        }

    def problem_sizes(self) -> tuple[int, ...]:
        return (1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        items = size // self.CHUNK
        return ProblemInstance(
            size=size,
            arrays={
                "x": rng.standard_normal(size).astype(np.float32),
                "y": rng.standard_normal(size).astype(np.float32),
                "out": np.zeros(1, dtype=np.float64),
            },
            scalars={"n": size, "chunk": self.CHUNK},
            total_items=items,
            granularity=16,
            output_names=("out",),
        )

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        x = instance.arrays["x"].astype(np.float64)
        y = instance.arrays["y"].astype(np.float64)
        return {"out": np.array([np.dot(x, y)])}

    def execute(self, arrays, scalars, offset, count):
        n = int(scalars["n"])
        chunk = int(scalars["chunk"])
        lo = offset * chunk
        hi = min((offset + count) * chunk, n)
        if hi > lo:
            x = arrays["x"][lo:hi].astype(np.float64)
            y = arrays["y"][lo:hi].astype(np.float64)
            arrays["out"][0] += float(np.dot(x, y))


class MatMul(Benchmark):
    """Dense single-precision GEMM, one output element per work item."""

    name = "mat_mul"
    suite = Suite.VENDOR
    description = "dense matrix multiply C = A x B (compute-bound O(N^3))"

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=2)
        A = b.buffer("A", FLOAT, Intent.IN)
        B = b.buffer("B", FLOAT, Intent.IN)
        C = b.buffer("C", FLOAT, Intent.OUT)
        kdim = b.scalar("K", INT)
        ndim = b.scalar("N", INT)
        col = b.global_id(0)
        row = b.global_id(1)
        acc = b.let("acc", const(0.0, FLOAT))
        with b.for_("k", 0, kdim) as k:
            b.assign(acc, acc + b.load(A, row * kdim + k) * b.load(B, k * ndim + col))
        b.store(C, row * ndim + col, acc)
        return b.finish()

    def distribution_overrides(self, instance=None):
        # One work item = one C element; a row of C consumes a row of A.
        # With row-aligned chunks (granularity = N) the proportional A
        # slice (K/N elements per item) is exact.
        if instance is None:
            return {"B": BufferDistribution.full()}
        n = int(instance.scalars["N"])
        k = int(instance.scalars["K"])
        return {
            "A": BufferDistribution.split(elements_per_item=k / n),
            "B": BufferDistribution.full(),
            "C": BufferDistribution.split(),
        }

    def problem_sizes(self) -> tuple[int, ...]:
        return (64, 128, 256, 384, 512, 768, 1024)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        m = n = k = size
        return ProblemInstance(
            size=size,
            arrays={
                "A": rng.standard_normal((m, k)).astype(np.float32),
                "B": rng.standard_normal((k, n)).astype(np.float32),
                "C": np.zeros((m, n), dtype=np.float32),
            },
            scalars={"K": k, "N": n},
            total_items=m * n,
            granularity=n,  # whole C rows per chunk
            output_names=("C",),
        )

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        return {"C": instance.arrays["A"] @ instance.arrays["B"]}

    def execute(self, arrays, scalars, offset, count):
        n = int(scalars["N"])
        r0, r1 = offset // n, (offset + count) // n
        if r1 > r0:
            arrays["C"][r0:r1] = arrays["A"][r0:r1] @ arrays["B"]


class BlackScholes(Benchmark):
    """European option pricing — transcendental-heavy streaming."""

    name = "black_scholes"
    suite = Suite.VENDOR
    description = "Black-Scholes call/put pricing (exp/log/sqrt/erf heavy)"

    RISKFREE = 0.02
    VOLATILITY = 0.30
    SQRT1_2 = 0.7071067811865476
    #: The vendor samples time many pricing passes per upload (NVIDIA's
    #: sample uses 512); data stays device-resident in between.
    ITERATIONS = 50

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        price = b.buffer("price", FLOAT, Intent.IN)
        strike = b.buffer("strike", FLOAT, Intent.IN)
        years = b.buffer("years", FLOAT, Intent.IN)
        call = b.buffer("call", FLOAT, Intent.OUT)
        put = b.buffer("put", FLOAT, Intent.OUT)
        n = b.scalar("n", INT)
        r = b.scalar("riskfree", FLOAT)
        v = b.scalar("volatility", FLOAT)
        gid = b.global_id(0)
        with b.if_(gid < n):
            s = b.let("s", b.load(price, gid))
            k = b.let("k", b.load(strike, gid))
            t = b.let("t", b.load(years, gid))
            sqrt_t = b.let("sqrt_t", b.sqrt(t))
            d1 = b.let(
                "d1",
                (b.log(s / k) + (r + const(0.5, FLOAT) * v * v) * t) / (v * sqrt_t),
            )
            d2 = b.let("d2", d1 - v * sqrt_t)
            # CND(x) = 0.5 * (1 + erf(x / sqrt(2)))
            nd1 = b.let(
                "nd1",
                const(0.5, FLOAT)
                * (const(1.0, FLOAT) + b.erf(d1 * const(self.SQRT1_2, FLOAT))),
            )
            nd2 = b.let(
                "nd2",
                const(0.5, FLOAT)
                * (const(1.0, FLOAT) + b.erf(d2 * const(self.SQRT1_2, FLOAT))),
            )
            expr_t = b.let("expr_t", k * b.exp(-r * t))
            c = b.let("c", s * nd1 - expr_t * nd2)
            b.store(call, gid, c)
            b.store(put, gid, c + expr_t - s)
        return b.finish()

    def problem_sizes(self) -> tuple[int, ...]:
        return (1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        return ProblemInstance(
            size=size,
            arrays={
                "price": rng.uniform(5.0, 30.0, size).astype(np.float32),
                "strike": rng.uniform(1.0, 100.0, size).astype(np.float32),
                "years": rng.uniform(0.25, 10.0, size).astype(np.float32),
                "call": np.zeros(size, dtype=np.float32),
                "put": np.zeros(size, dtype=np.float32),
            },
            scalars={
                "n": size,
                "riskfree": self.RISKFREE,
                "volatility": self.VOLATILITY,
            },
            total_items=size,
            granularity=64,
            output_names=("call", "put"),
            iterations=self.ITERATIONS,
        )

    def _price(self, s, k, t, r, v):
        from scipy.special import erf  # local import: scipy only for reference

        sqrt_t = np.sqrt(t)
        d1 = (np.log(s / k) + (r + 0.5 * v * v) * t) / (v * sqrt_t)
        d2 = d1 - v * sqrt_t
        nd1 = 0.5 * (1.0 + erf(d1 * self.SQRT1_2))
        nd2 = 0.5 * (1.0 + erf(d2 * self.SQRT1_2))
        expr_t = k * np.exp(-r * t)
        call = s * nd1 - expr_t * nd2
        put = call + expr_t - s
        return call.astype(np.float32), put.astype(np.float32)

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        a = instance.arrays
        r = float(instance.scalars["riskfree"])
        v = float(instance.scalars["volatility"])
        call, put = self._price(
            a["price"].astype(np.float64),
            a["strike"].astype(np.float64),
            a["years"].astype(np.float64),
            r,
            v,
        )
        return {"call": call, "put": put}

    def execute(self, arrays, scalars, offset, count):
        n = int(scalars["n"])
        hi = min(offset + count, n)
        if hi <= offset:
            return
        call, put = self._price(
            arrays["price"][offset:hi].astype(np.float64),
            arrays["strike"][offset:hi].astype(np.float64),
            arrays["years"][offset:hi].astype(np.float64),
            float(scalars["riskfree"]),
            float(scalars["volatility"]),
        )
        arrays["call"][offset:hi] = call
        arrays["put"][offset:hi] = put


class Mandelbrot(Benchmark):
    """Escape-time fractal — divergent, compute-only, zero input transfer."""

    name = "mandelbrot"
    suite = Suite.VENDOR
    description = "Mandelbrot escape iteration (branch-divergent, no inputs)"

    MAX_ITER = 64

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        img = b.buffer("img", INT, Intent.OUT)
        w = b.scalar("w", INT)
        h = b.scalar("h", INT)
        x0 = b.scalar("x0", FLOAT)
        y0 = b.scalar("y0", FLOAT)
        dx = b.scalar("dx", FLOAT)
        dy = b.scalar("dy", FLOAT)
        max_iter = b.scalar("max_iter", INT)
        gid = b.global_id(0)
        with b.if_(gid < w * h):
            px = b.let("px", gid % w)
            py = b.let("py", gid / w)
            cx = b.let("cx", x0 + px.cast(FLOAT) * dx)
            cy = b.let("cy", y0 + py.cast(FLOAT) * dy)
            zx = b.let("zx", const(0.0, FLOAT))
            zy = b.let("zy", const(0.0, FLOAT))
            it = b.let("it", const(0, INT))
            cond = (zx * zx + zy * zy < 4.0).and_(it < max_iter)
            with b.while_(cond, expected_trips=24):
                tmp = b.let("tmp", zx * zx - zy * zy + cx)
                b.assign(zy, const(2.0, FLOAT) * zx * zy + cy)
                b.assign(zx, tmp)
                b.assign(it, it + 1)
            b.store(img, gid, it)
        return b.finish()

    def problem_sizes(self) -> tuple[int, ...]:
        # Square images: size = width = height.
        return (64, 128, 256, 512, 1024, 2048)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        w = h = size
        return ProblemInstance(
            size=size,
            arrays={"img": np.zeros(w * h, dtype=np.int32)},
            scalars={
                "w": w,
                "h": h,
                "x0": -2.0,
                "y0": -1.25,
                "dx": 2.5 / w,
                "dy": 2.5 / h,
                "max_iter": self.MAX_ITER,
            },
            total_items=w * h,
            granularity=64,
            output_names=("img",),
        )

    def _iterations(
        self, idx: np.ndarray, scalars: Mapping[str, float | int]
    ) -> np.ndarray:
        w = int(scalars["w"])
        max_iter = int(scalars["max_iter"])
        px = (idx % w).astype(np.float32)
        py = (idx // w).astype(np.float32)
        cx = np.float32(scalars["x0"]) + px * np.float32(scalars["dx"])
        cy = np.float32(scalars["y0"]) + py * np.float32(scalars["dy"])
        zx = np.zeros_like(cx)
        zy = np.zeros_like(cy)
        it = np.zeros(len(idx), dtype=np.int32)
        active = np.ones(len(idx), dtype=bool)
        for _ in range(max_iter):
            zx2 = zx * zx
            zy2 = zy * zy
            active &= zx2 + zy2 < 4.0
            if not active.any():
                break
            tmp = zx2 - zy2 + cx
            zy = np.where(active, np.float32(2.0) * zx * zy + cy, zy)
            zx = np.where(active, tmp, zx)
            it[active] += 1
        return it

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        idx = np.arange(instance.total_items, dtype=np.int64)
        return {"img": self._iterations(idx, instance.scalars)}

    def execute(self, arrays, scalars, offset, count):
        total = int(scalars["w"]) * int(scalars["h"])
        hi = min(offset + count, total)
        if hi <= offset:
            return
        idx = np.arange(offset, hi, dtype=np.int64)
        arrays["img"][offset:hi] = self._iterations(idx, scalars)


class NBody(Benchmark):
    """All-pairs gravitational acceleration — O(N²) compute-bound."""

    name = "nbody"
    suite = Suite.VENDOR
    description = "n-body all-pairs acceleration with softening (O(N^2))"

    SOFTENING = 1e-3
    #: Simulation steps per upload; partitioned runs must re-broadcast
    #: the updated positions every step.
    ITERATIONS = 10

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        px = b.buffer("px", FLOAT, Intent.IN)
        py = b.buffer("py", FLOAT, Intent.IN)
        pz = b.buffer("pz", FLOAT, Intent.IN)
        mass = b.buffer("mass", FLOAT, Intent.IN)
        ax = b.buffer("ax", FLOAT, Intent.OUT)
        ay = b.buffer("ay", FLOAT, Intent.OUT)
        az = b.buffer("az", FLOAT, Intent.OUT)
        n = b.scalar("n", INT)
        eps = b.scalar("eps", FLOAT)
        gid = b.global_id(0)
        with b.if_(gid < n):
            xi = b.let("xi", b.load(px, gid))
            yi = b.let("yi", b.load(py, gid))
            zi = b.let("zi", b.load(pz, gid))
            fx = b.let("fx", const(0.0, FLOAT))
            fy = b.let("fy", const(0.0, FLOAT))
            fz = b.let("fz", const(0.0, FLOAT))
            with b.for_("j", 0, n) as j:
                dx = b.let("dx", b.load(px, j) - xi)
                dy = b.let("dy", b.load(py, j) - yi)
                dz = b.let("dz", b.load(pz, j) - zi)
                r2 = b.let("r2", dx * dx + dy * dy + dz * dz + eps)
                inv_r = b.let("inv_r", b.rsqrt(r2))
                f = b.let("f", b.load(mass, j) * inv_r * inv_r * inv_r)
                b.assign(fx, fx + f * dx)
                b.assign(fy, fy + f * dy)
                b.assign(fz, fz + f * dz)
            b.store(ax, gid, fx)
            b.store(ay, gid, fy)
            b.store(az, gid, fz)
        return b.finish()

    def distribution_overrides(self, instance=None):
        full = BufferDistribution.full()
        return {"px": full, "py": full, "pz": full, "mass": full}

    def problem_sizes(self) -> tuple[int, ...]:
        return (256, 512, 1024, 2048, 4096, 8192, 16384)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        return ProblemInstance(
            size=size,
            arrays={
                "px": rng.standard_normal(size).astype(np.float32),
                "py": rng.standard_normal(size).astype(np.float32),
                "pz": rng.standard_normal(size).astype(np.float32),
                "mass": rng.uniform(0.1, 1.0, size).astype(np.float32),
                "ax": np.zeros(size, dtype=np.float32),
                "ay": np.zeros(size, dtype=np.float32),
                "az": np.zeros(size, dtype=np.float32),
            },
            scalars={"n": size, "eps": self.SOFTENING},
            total_items=size,
            granularity=32,
            output_names=("ax", "ay", "az"),
            iterations=self.ITERATIONS,
        )

    def iteration_refresh_buffers(self) -> tuple[str, ...]:
        return ("px", "py", "pz")

    def _accel(self, arrays, lo: int, hi: int, eps: float):
        px = arrays["px"].astype(np.float64)
        py = arrays["py"].astype(np.float64)
        pz = arrays["pz"].astype(np.float64)
        mass = arrays["mass"].astype(np.float64)
        # Blocked all-pairs to bound the broadcast matrix size.
        n = len(px)
        out = np.zeros((hi - lo, 3))
        block = max(1, min(hi - lo, 4 * 1024 * 1024 // max(n, 1) + 1))
        for s in range(lo, hi, block):
            e = min(s + block, hi)
            dx = px[None, :] - px[s:e, None]
            dy = py[None, :] - py[s:e, None]
            dz = pz[None, :] - pz[s:e, None]
            r2 = dx * dx + dy * dy + dz * dz + eps
            f = mass[None, :] * r2 ** (-1.5)
            out[s - lo : e - lo, 0] = (f * dx).sum(axis=1)
            out[s - lo : e - lo, 1] = (f * dy).sum(axis=1)
            out[s - lo : e - lo, 2] = (f * dz).sum(axis=1)
        return out

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        n = int(instance.scalars["n"])
        eps = float(instance.scalars["eps"])
        acc = self._accel(instance.arrays, 0, n, eps)
        return {
            "ax": acc[:, 0].astype(np.float32),
            "ay": acc[:, 1].astype(np.float32),
            "az": acc[:, 2].astype(np.float32),
        }

    def execute(self, arrays, scalars, offset, count):
        n = int(scalars["n"])
        hi = min(offset + count, n)
        if hi <= offset:
            return
        acc = self._accel(arrays, offset, hi, float(scalars["eps"]))
        arrays["ax"][offset:hi] = acc[:, 0].astype(np.float32)
        arrays["ay"][offset:hi] = acc[:, 1].astype(np.float32)
        arrays["az"][offset:hi] = acc[:, 2].astype(np.float32)


class Histogram(Benchmark):
    """256-bin histogram via global atomics — scatter with reduce-merge."""

    name = "histogram"
    suite = Suite.VENDOR
    description = "byte histogram with atomic bin increments"

    BINS = 256

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        data = b.buffer("data", INT, Intent.IN)
        hist = b.buffer("hist", INT, Intent.INOUT)
        n = b.scalar("n", INT)
        gid = b.global_id(0)
        with b.if_(gid < n):
            b.atomic_add(hist, b.load(data, gid), const(1, INT))
        return b.finish()

    def distribution_overrides(self, instance=None):
        return {
            "data": BufferDistribution.split(),
            "hist": BufferDistribution.reduced("sum"),
        }

    def problem_sizes(self) -> tuple[int, ...]:
        return (1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        return ProblemInstance(
            size=size,
            arrays={
                "data": rng.integers(0, self.BINS, size, dtype=np.int32),
                "hist": np.zeros(self.BINS, dtype=np.int32),
            },
            scalars={"n": size},
            total_items=size,
            granularity=64,
            output_names=("hist",),
        )

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        counts = np.bincount(instance.arrays["data"], minlength=self.BINS)
        return {"hist": counts.astype(np.int32)}

    def execute(self, arrays, scalars, offset, count):
        n = int(scalars["n"])
        hi = min(offset + count, n)
        if hi > offset:
            arrays["hist"] += np.bincount(
                arrays["data"][offset:hi], minlength=self.BINS
            ).astype(np.int32)
