"""SHOC-style benchmarks (5 programs).

Modeled on the Scalable Heterogeneous Computing suite (Danalis et al.,
GPGPU'10 — reference [3] of the paper): reduction, triad (bandwidth),
sparse matrix-vector product, molecular dynamics (Lennard-Jones with
neighbour lists) and a 9-point 2-D stencil.
"""

from __future__ import annotations

import numpy as np

from ..compiler.splitter import BufferDistribution
from ..inspire import FLOAT, INT, Intent, KernelBuilder, const
from ..inspire import ast as ir
from .base import Benchmark, ProblemInstance, Suite

__all__ = ["Reduction", "Triad", "SpMV", "MD", "Stencil2D"]


class Reduction(Benchmark):
    """Sum reduction: per-item sequential partial sums + one atomic."""

    name = "reduction"
    suite = Suite.SHOC
    description = "global sum reduction with per-item partials (SHOC Reduction)"

    CHUNK = 128

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        data = b.buffer("data", FLOAT, Intent.IN)
        out = b.buffer("out", FLOAT, Intent.INOUT)
        n = b.scalar("n", INT)
        chunk = b.scalar("chunk", INT)
        gid = b.global_id(0)
        acc = b.let("acc", const(0.0, FLOAT))
        base = b.let("base", gid * chunk)
        with b.for_("k", 0, chunk) as k:
            idx = base + k
            with b.if_(idx < n):
                b.assign(acc, acc + b.load(data, idx))
        b.atomic_add(out, 0, acc)
        return b.finish()

    def distribution_overrides(self, instance=None):
        return {
            "data": BufferDistribution.split(elements_per_item=self.CHUNK),
            "out": BufferDistribution.reduced("sum"),
        }

    def problem_sizes(self) -> tuple[int, ...]:
        return (1 << 13, 1 << 15, 1 << 17, 1 << 19, 1 << 21, 1 << 23, 1 << 25)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        items = max(1, size // self.CHUNK)
        return ProblemInstance(
            size=size,
            arrays={
                "data": rng.uniform(0.0, 1.0, size).astype(np.float32),
                "out": np.zeros(1, dtype=np.float64),
            },
            scalars={"n": size, "chunk": self.CHUNK},
            total_items=items,
            granularity=16,
            output_names=("out",),
        )

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        return {"out": np.array([instance.arrays["data"].astype(np.float64).sum()])}

    def execute(self, arrays, scalars, offset, count):
        n = int(scalars["n"])
        chunk = int(scalars["chunk"])
        lo = offset * chunk
        hi = min((offset + count) * chunk, n)
        if hi > lo:
            arrays["out"][0] += float(arrays["data"][lo:hi].astype(np.float64).sum())


class Triad(Benchmark):
    """STREAM triad ``c = a + s*b`` — the pure bandwidth probe."""

    name = "triad"
    suite = Suite.SHOC
    description = "STREAM triad (bandwidth-bound, 2 loads + 1 store per item)"

    SCALE = 1.75

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        a = b.buffer("a", FLOAT, Intent.IN)
        bb = b.buffer("b", FLOAT, Intent.IN)
        c = b.buffer("c", FLOAT, Intent.OUT)
        s = b.scalar("s", FLOAT)
        n = b.scalar("n", INT)
        gid = b.global_id(0)
        with b.if_(gid < n):
            b.store(c, gid, b.load(a, gid) + s * b.load(bb, gid))
        return b.finish()

    def problem_sizes(self) -> tuple[int, ...]:
        return (1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        return ProblemInstance(
            size=size,
            arrays={
                "a": rng.standard_normal(size).astype(np.float32),
                "b": rng.standard_normal(size).astype(np.float32),
                "c": np.zeros(size, dtype=np.float32),
            },
            scalars={"s": self.SCALE, "n": size},
            total_items=size,
            granularity=64,
            output_names=("c",),
        )

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        return {
            "c": instance.arrays["a"] + np.float32(self.SCALE) * instance.arrays["b"]
        }

    def execute(self, arrays, scalars, offset, count):
        n = int(scalars["n"])
        hi = min(offset + count, n)
        if hi > offset:
            s = np.float32(scalars["s"])
            arrays["c"][offset:hi] = arrays["a"][offset:hi] + s * arrays["b"][offset:hi]


class SpMV(Benchmark):
    """CSR sparse matrix-vector product — indirect, irregular accesses."""

    name = "spmv"
    suite = Suite.SHOC
    description = "CSR SpMV, one row per work item (indirect gather)"

    NNZ_PER_ROW = 16
    #: Iterative solvers apply the same matrix repeatedly; the input
    #: vector changes every iteration and must be re-broadcast.
    ITERATIONS = 50

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        vals = b.buffer("vals", FLOAT, Intent.IN)
        cols = b.buffer("cols", INT, Intent.IN)
        rowptr = b.buffer("rowptr", INT, Intent.IN)
        x = b.buffer("x", FLOAT, Intent.IN)
        y = b.buffer("y", FLOAT, Intent.OUT)
        nrows = b.scalar("nrows", INT)
        gid = b.global_id(0)
        with b.if_(gid < nrows):
            acc = b.let("acc", const(0.0, FLOAT))
            start = b.let("start", b.load(rowptr, gid))
            end = b.let("end", b.load(rowptr, gid + 1))
            with b.for_("j", start, end) as j:
                b.assign(acc, acc + b.load(vals, j) * b.load(x, b.load(cols, j)))
            b.store(y, gid, acc)
        return b.finish()

    def distribution_overrides(self, instance=None):
        # vals/cols slices are data-dependent (rowptr), so a naive
        # multi-device runtime ships them whole; x is gathered → full.
        overrides = {
            "vals": BufferDistribution.full(),
            "cols": BufferDistribution.full(),
            "x": BufferDistribution.full(),
            "rowptr": BufferDistribution.with_halo(halo=1),
            "y": BufferDistribution.split(),
        }
        return overrides

    def problem_sizes(self) -> tuple[int, ...]:
        return (1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        nrows = size
        nnz = nrows * self.NNZ_PER_ROW
        rowptr = np.arange(0, nnz + 1, self.NNZ_PER_ROW, dtype=np.int32)
        cols = rng.integers(0, nrows, nnz, dtype=np.int32)
        vals = rng.standard_normal(nnz).astype(np.float32)
        x = rng.standard_normal(nrows).astype(np.float32)
        return ProblemInstance(
            size=size,
            arrays={
                "vals": vals,
                "cols": cols,
                "rowptr": rowptr,
                "x": x,
                "y": np.zeros(nrows, dtype=np.float32),
            },
            scalars={"nrows": nrows},
            total_items=nrows,
            granularity=32,
            output_names=("y",),
            iterations=self.ITERATIONS,
        )

    def iteration_refresh_buffers(self) -> tuple[str, ...]:
        return ("x",)

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        a = instance.arrays
        prods = a["vals"].astype(np.float64) * a["x"].astype(np.float64)[a["cols"]]
        y = np.add.reduceat(prods, a["rowptr"][:-1].astype(np.int64))
        # reduceat misbehaves on empty rows; our generator has fixed nnz/row.
        return {"y": y.astype(np.float32)}

    def execute(self, arrays, scalars, offset, count):
        nrows = int(scalars["nrows"])
        hi = min(offset + count, nrows)
        if hi <= offset:
            return
        rowptr = arrays["rowptr"]
        lo_nz, hi_nz = int(rowptr[offset]), int(rowptr[hi])
        prods = (
            arrays["vals"][lo_nz:hi_nz].astype(np.float64)
            * arrays["x"].astype(np.float64)[arrays["cols"][lo_nz:hi_nz]]
        )
        starts = rowptr[offset:hi].astype(np.int64) - lo_nz
        arrays["y"][offset:hi] = np.add.reduceat(prods, starts).astype(np.float32)


class MD(Benchmark):
    """Lennard-Jones force kernel with fixed-degree neighbour lists."""

    name = "md"
    suite = Suite.SHOC
    description = "LJ force computation over K-neighbour lists (SHOC MD)"

    NEIGHBORS = 12
    CUTOFF2 = 16.0
    #: MD time steps per upload; positions move every step.
    ITERATIONS = 10

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        px = b.buffer("px", FLOAT, Intent.IN)
        py = b.buffer("py", FLOAT, Intent.IN)
        pz = b.buffer("pz", FLOAT, Intent.IN)
        neigh = b.buffer("neigh", INT, Intent.IN)
        fx = b.buffer("fx", FLOAT, Intent.OUT)
        fy = b.buffer("fy", FLOAT, Intent.OUT)
        fz = b.buffer("fz", FLOAT, Intent.OUT)
        n = b.scalar("n", INT)
        kneigh = b.scalar("kneigh", INT)
        cutoff2 = b.scalar("cutoff2", FLOAT)
        gid = b.global_id(0)
        with b.if_(gid < n):
            xi = b.let("xi", b.load(px, gid))
            yi = b.let("yi", b.load(py, gid))
            zi = b.let("zi", b.load(pz, gid))
            ax = b.let("ax", const(0.0, FLOAT))
            ay = b.let("ay", const(0.0, FLOAT))
            az = b.let("az", const(0.0, FLOAT))
            with b.for_("k", 0, kneigh) as k:
                j = b.let("j", b.load(neigh, gid * kneigh + k))
                dx = b.let("dx", b.load(px, j) - xi)
                dy = b.let("dy", b.load(py, j) - yi)
                dz = b.let("dz", b.load(pz, j) - zi)
                r2 = b.let("r2", dx * dx + dy * dy + dz * dz)
                with b.if_((r2 < cutoff2).and_(r2 > 1e-6)):
                    inv_r2 = b.let("inv_r2", const(1.0, FLOAT) / r2)
                    inv_r6 = b.let("inv_r6", inv_r2 * inv_r2 * inv_r2)
                    force = b.let(
                        "force",
                        const(24.0, FLOAT)
                        * inv_r2
                        * inv_r6
                        * (const(2.0, FLOAT) * inv_r6 - const(1.0, FLOAT)),
                    )
                    b.assign(ax, ax + force * dx)
                    b.assign(ay, ay + force * dy)
                    b.assign(az, az + force * dz)
            b.store(fx, gid, ax)
            b.store(fy, gid, ay)
            b.store(fz, gid, az)
        return b.finish()

    def distribution_overrides(self, instance=None):
        full = BufferDistribution.full()
        return {
            "px": full,
            "py": full,
            "pz": full,
            "neigh": BufferDistribution.split(elements_per_item=self.NEIGHBORS),
        }

    def problem_sizes(self) -> tuple[int, ...]:
        return (1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        side = max(1.0, (size / 4.0) ** (1.0 / 3.0))
        pos = rng.uniform(0.0, side, size=(size, 3)).astype(np.float32)
        neigh = rng.integers(0, size, size=(size, self.NEIGHBORS), dtype=np.int32)
        return ProblemInstance(
            size=size,
            arrays={
                "px": pos[:, 0].copy(),
                "py": pos[:, 1].copy(),
                "pz": pos[:, 2].copy(),
                "neigh": neigh,
                "fx": np.zeros(size, dtype=np.float32),
                "fy": np.zeros(size, dtype=np.float32),
                "fz": np.zeros(size, dtype=np.float32),
            },
            scalars={"n": size, "kneigh": self.NEIGHBORS, "cutoff2": self.CUTOFF2},
            total_items=size,
            granularity=32,
            output_names=("fx", "fy", "fz"),
            iterations=self.ITERATIONS,
        )

    def iteration_refresh_buffers(self) -> tuple[str, ...]:
        return ("px", "py", "pz")

    def _forces(self, arrays, lo: int, hi: int, cutoff2: float):
        px = arrays["px"].astype(np.float64)
        py = arrays["py"].astype(np.float64)
        pz = arrays["pz"].astype(np.float64)
        neigh = arrays["neigh"].reshape(len(px), -1)[lo:hi]
        dx = px[neigh] - px[lo:hi, None]
        dy = py[neigh] - py[lo:hi, None]
        dz = pz[neigh] - pz[lo:hi, None]
        r2 = dx * dx + dy * dy + dz * dz
        mask = (r2 < cutoff2) & (r2 > 1e-6)
        with np.errstate(divide="ignore", invalid="ignore"):
            inv_r2 = np.where(mask, 1.0 / r2, 0.0)
        inv_r6 = inv_r2**3
        force = np.where(mask, 24.0 * inv_r2 * inv_r6 * (2.0 * inv_r6 - 1.0), 0.0)
        return (
            (force * dx).sum(axis=1),
            (force * dy).sum(axis=1),
            (force * dz).sum(axis=1),
        )

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        n = int(instance.scalars["n"])
        fx, fy, fz = self._forces(
            instance.arrays, 0, n, float(instance.scalars["cutoff2"])
        )
        return {
            "fx": fx.astype(np.float32),
            "fy": fy.astype(np.float32),
            "fz": fz.astype(np.float32),
        }

    def execute(self, arrays, scalars, offset, count):
        n = int(scalars["n"])
        hi = min(offset + count, n)
        if hi <= offset:
            return
        fx, fy, fz = self._forces(arrays, offset, hi, float(scalars["cutoff2"]))
        arrays["fx"][offset:hi] = fx.astype(np.float32)
        arrays["fy"][offset:hi] = fy.astype(np.float32)
        arrays["fz"][offset:hi] = fz.astype(np.float32)


class Stencil2D(Benchmark):
    """9-point weighted stencil over a W×H grid (full-range 2-D kernel)."""

    name = "stencil2d"
    suite = Suite.SHOC
    description = "9-point 2D stencil, one element per work item"

    W_CENTER = 0.25
    W_CARDINAL = 0.15
    W_DIAGONAL = 0.0375
    #: SHOC iterates the stencil; partitioned runs exchange halo rows
    #: every step.
    ITERATIONS = 50

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=2)
        inp = b.buffer("inp", FLOAT, Intent.IN)
        out = b.buffer("out", FLOAT, Intent.OUT)
        w = b.scalar("w", INT)
        h = b.scalar("h", INT)
        col = b.global_id(0)
        row = b.global_id(1)
        idx = b.let("idx", row * w + col)
        interior = (
            (col > 0).and_(col < w - 1).and_(row > 0).and_(row < h - 1)
        )
        with b.if_else(interior) as (then, otherwise):
            with then:
                center = b.let("center", b.load(inp, idx))
                cardinal = b.let(
                    "cardinal",
                    b.load(inp, idx - 1)
                    + b.load(inp, idx + 1)
                    + b.load(inp, idx - w)
                    + b.load(inp, idx + w),
                )
                diagonal = b.let(
                    "diagonal",
                    b.load(inp, idx - w - 1)
                    + b.load(inp, idx - w + 1)
                    + b.load(inp, idx + w - 1)
                    + b.load(inp, idx + w + 1),
                )
                b.store(
                    out,
                    idx,
                    const(self.W_CENTER, FLOAT) * center
                    + const(self.W_CARDINAL, FLOAT) * cardinal
                    + const(self.W_DIAGONAL, FLOAT) * diagonal,
                )
            with otherwise:
                b.store(out, idx, b.load(inp, idx))
        return b.finish()

    def distribution_overrides(self, instance=None):
        if instance is None:
            return None
        w = int(instance.scalars["w"])
        return {
            "inp": BufferDistribution.with_halo(halo=w),  # one row per side
            "out": BufferDistribution.split(),
        }

    def problem_sizes(self) -> tuple[int, ...]:
        # Square grids: size = W = H.
        return (64, 128, 256, 512, 1024, 2048, 4096)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        w = h = size
        return ProblemInstance(
            size=size,
            arrays={
                "inp": rng.standard_normal(w * h).astype(np.float32),
                "out": np.zeros(w * h, dtype=np.float32),
            },
            scalars={"w": w, "h": h},
            total_items=w * h,
            granularity=w,  # whole rows per chunk
            output_names=("out",),
            iterations=self.ITERATIONS,
        )

    def _apply(self, grid: np.ndarray) -> np.ndarray:
        out = grid.copy()
        c, k, d = (
            np.float32(self.W_CENTER),
            np.float32(self.W_CARDINAL),
            np.float32(self.W_DIAGONAL),
        )
        # Match the kernel's summation order: center, cardinals, diagonals.
        cardinal = (
            grid[1:-1, :-2] + grid[1:-1, 2:] + grid[:-2, 1:-1] + grid[2:, 1:-1]
        )
        diagonal = (
            grid[:-2, :-2] + grid[:-2, 2:] + grid[2:, :-2] + grid[2:, 2:]
        )
        out[1:-1, 1:-1] = c * grid[1:-1, 1:-1] + k * cardinal + d * diagonal
        return out

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        w = int(instance.scalars["w"])
        h = int(instance.scalars["h"])
        grid = instance.arrays["inp"].reshape(h, w)
        return {"out": self._apply(grid).reshape(-1)}

    def execute(self, arrays, scalars, offset, count):
        w = int(scalars["w"])
        h = int(scalars["h"])
        r0, r1 = offset // w, min((offset + count) // w, h)
        if r1 <= r0:
            return
        grid = arrays["inp"].reshape(h, w)
        lo = max(0, r0 - 1)
        hi = min(h, r1 + 1)
        block = self._apply(grid[lo:hi])
        arrays["out"].reshape(h, w)[r0:r1] = block[r0 - lo : r0 - lo + (r1 - r0)]
