"""Rodinia-style benchmarks (7 programs).

Modeled on the Rodinia heterogeneous suite (Che et al., IISWC'09 —
reference [2] of the paper): hotspot (thermal stencil), k-means
assignment, nearest-neighbour search, SRAD (image regularization),
pathfinder (dynamic programming), one level-synchronous BFS step and a
back-propagation layer forward pass.
"""

from __future__ import annotations

import numpy as np

from ..compiler.splitter import BufferDistribution
from ..inspire import FLOAT, INT, Intent, KernelBuilder, const
from ..inspire import ast as ir
from .base import Benchmark, ProblemInstance, Suite

__all__ = [
    "Hotspot",
    "KMeans",
    "NearestNeighbor",
    "SRAD",
    "Pathfinder",
    "BFS",
    "Backprop",
]


class Hotspot(Benchmark):
    """One step of the hotspot thermal simulation (5-point stencil + power)."""

    name = "hotspot"
    suite = Suite.RODINIA
    description = "thermal simulation step: temperature diffusion + power input"

    CAP = 0.5
    RX = 0.1
    RY = 0.1
    RZ = 3.0
    #: Rodinia's hotspot runs many time steps per upload.
    ITERATIONS = 100

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=2)
        temp = b.buffer("temp", FLOAT, Intent.IN)
        power = b.buffer("power", FLOAT, Intent.IN)
        out = b.buffer("out", FLOAT, Intent.OUT)
        w = b.scalar("w", INT)
        h = b.scalar("h", INT)
        cap = b.scalar("cap", FLOAT)
        rx = b.scalar("rx", FLOAT)
        ry = b.scalar("ry", FLOAT)
        rz = b.scalar("rz", FLOAT)
        col = b.global_id(0)
        row = b.global_id(1)
        idx = b.let("idx", row * w + col)
        interior = (col > 0).and_(col < w - 1).and_(row > 0).and_(row < h - 1)
        with b.if_else(interior) as (then, otherwise):
            with then:
                t = b.let("t", b.load(temp, idx))
                dx = b.let(
                    "dx", (b.load(temp, idx - 1) + b.load(temp, idx + 1) - t - t) / rx
                )
                dy = b.let(
                    "dy", (b.load(temp, idx - w) + b.load(temp, idx + w) - t - t) / ry
                )
                dz = b.let("dz", (const(80.0, FLOAT) - t) / rz)
                delta = b.let("delta", cap * (b.load(power, idx) + dx + dy + dz))
                b.store(out, idx, t + delta)
            with otherwise:
                b.store(out, idx, b.load(temp, idx))
        return b.finish()

    def distribution_overrides(self, instance=None):
        if instance is None:
            return None
        w = int(instance.scalars["w"])
        return {
            "temp": BufferDistribution.with_halo(halo=w),
            "power": BufferDistribution.split(),
            "out": BufferDistribution.split(),
        }

    def problem_sizes(self) -> tuple[int, ...]:
        return (64, 128, 256, 512, 1024, 2048)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        w = h = size
        return ProblemInstance(
            size=size,
            arrays={
                "temp": rng.uniform(40.0, 90.0, w * h).astype(np.float32),
                "power": rng.uniform(0.0, 2.0, w * h).astype(np.float32),
                "out": np.zeros(w * h, dtype=np.float32),
            },
            scalars={
                "w": w,
                "h": h,
                "cap": self.CAP,
                "rx": self.RX,
                "ry": self.RY,
                "rz": self.RZ,
            },
            total_items=w * h,
            granularity=w,
            output_names=("out",),
            iterations=self.ITERATIONS,
        )

    def _step(self, temp, power, w, h):
        t = temp.reshape(h, w).astype(np.float32)
        p = power.reshape(h, w).astype(np.float32)
        out = t.copy()
        tc = t[1:-1, 1:-1]
        dx = (t[1:-1, :-2] + t[1:-1, 2:] - tc - tc) / np.float32(self.RX)
        dy = (t[:-2, 1:-1] + t[2:, 1:-1] - tc - tc) / np.float32(self.RY)
        dz = (np.float32(80.0) - tc) / np.float32(self.RZ)
        out[1:-1, 1:-1] = tc + np.float32(self.CAP) * (p[1:-1, 1:-1] + dx + dy + dz)
        return out.reshape(-1)

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        w = int(instance.scalars["w"])
        h = int(instance.scalars["h"])
        return {
            "out": self._step(instance.arrays["temp"], instance.arrays["power"], w, h)
        }

    def execute(self, arrays, scalars, offset, count):
        w = int(scalars["w"])
        h = int(scalars["h"])
        r0, r1 = offset // w, min((offset + count) // w, h)
        if r1 <= r0:
            return
        full = self._step(arrays["temp"], arrays["power"], w, h)
        arrays["out"].reshape(h, w)[r0:r1] = full.reshape(h, w)[r0:r1]


class KMeans(Benchmark):
    """K-means assignment step: nearest centroid per point."""

    name = "kmeans"
    suite = Suite.RODINIA
    description = "k-means cluster assignment (distance loops over centroids)"

    K = 8
    DIMS = 4
    #: Refinement rounds: points stay resident, centroids are re-sent.
    ITERATIONS = 20

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        points = b.buffer("points", FLOAT, Intent.IN)
        centroids = b.buffer("centroids", FLOAT, Intent.IN)
        assign = b.buffer("assign", INT, Intent.OUT)
        n = b.scalar("n", INT)
        kclusters = b.scalar("kclusters", INT)
        dims = b.scalar("dims", INT)
        gid = b.global_id(0)
        with b.if_(gid < n):
            best = b.let("best", const(0, INT))
            best_d = b.let("best_d", const(1e30, FLOAT))
            with b.for_("c", 0, kclusters) as c:
                d = b.let("d", const(0.0, FLOAT))
                with b.for_("f", 0, dims) as f:
                    diff = b.let(
                        "diff",
                        b.load(points, gid * dims + f)
                        - b.load(centroids, c * dims + f),
                    )
                    b.assign(d, d + diff * diff)
                with b.if_(d < best_d):
                    b.assign(best_d, d)
                    b.assign(best, c)
            b.store(assign, gid, best)
        return b.finish()

    def distribution_overrides(self, instance=None):
        return {
            "points": BufferDistribution.split(elements_per_item=self.DIMS),
            "centroids": BufferDistribution.full(),
            "assign": BufferDistribution.split(),
        }

    def problem_sizes(self) -> tuple[int, ...]:
        return (1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        pts = rng.standard_normal((size, self.DIMS)).astype(np.float32)
        cen = rng.standard_normal((self.K, self.DIMS)).astype(np.float32)
        return ProblemInstance(
            size=size,
            arrays={
                "points": pts,
                "centroids": cen,
                "assign": np.zeros(size, dtype=np.int32),
            },
            scalars={"n": size, "kclusters": self.K, "dims": self.DIMS},
            total_items=size,
            granularity=64,
            output_names=("assign",),
            iterations=self.ITERATIONS,
        )

    def iteration_refresh_buffers(self) -> tuple[str, ...]:
        return ("centroids",)

    def _assign(self, pts: np.ndarray, cen: np.ndarray) -> np.ndarray:
        d = ((pts[:, None, :] - cen[None, :, :]) ** 2).sum(axis=2)
        return np.argmin(d, axis=1).astype(np.int32)

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        pts = instance.arrays["points"].reshape(-1, self.DIMS)
        cen = instance.arrays["centroids"].reshape(-1, self.DIMS)
        return {"assign": self._assign(pts, cen)}

    def execute(self, arrays, scalars, offset, count):
        n = int(scalars["n"])
        dims = int(scalars["dims"])
        hi = min(offset + count, n)
        if hi <= offset:
            return
        pts = arrays["points"].reshape(-1, dims)[offset:hi]
        cen = arrays["centroids"].reshape(-1, dims)
        arrays["assign"][offset:hi] = self._assign(pts, cen)


class NearestNeighbor(Benchmark):
    """Rodinia NN: Euclidean distance from every record to a query point."""

    name = "nn"
    suite = Suite.RODINIA
    description = "hurricane-record distance computation (streaming + sqrt)"

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        lat = b.buffer("lat", FLOAT, Intent.IN)
        lng = b.buffer("lng", FLOAT, Intent.IN)
        dist = b.buffer("dist", FLOAT, Intent.OUT)
        n = b.scalar("n", INT)
        qlat = b.scalar("qlat", FLOAT)
        qlng = b.scalar("qlng", FLOAT)
        gid = b.global_id(0)
        with b.if_(gid < n):
            dlat = b.let("dlat", b.load(lat, gid) - qlat)
            dlng = b.let("dlng", b.load(lng, gid) - qlng)
            b.store(dist, gid, b.sqrt(dlat * dlat + dlng * dlng))
        return b.finish()

    def problem_sizes(self) -> tuple[int, ...]:
        return (1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        return ProblemInstance(
            size=size,
            arrays={
                "lat": rng.uniform(0.0, 90.0, size).astype(np.float32),
                "lng": rng.uniform(0.0, 180.0, size).astype(np.float32),
                "dist": np.zeros(size, dtype=np.float32),
            },
            scalars={"n": size, "qlat": 30.0, "qlng": 90.0},
            total_items=size,
            granularity=64,
            output_names=("dist",),
        )

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        a = instance.arrays
        dlat = a["lat"] - np.float32(instance.scalars["qlat"])
        dlng = a["lng"] - np.float32(instance.scalars["qlng"])
        return {"dist": np.sqrt(dlat * dlat + dlng * dlng)}

    def execute(self, arrays, scalars, offset, count):
        n = int(scalars["n"])
        hi = min(offset + count, n)
        if hi <= offset:
            return
        dlat = arrays["lat"][offset:hi] - np.float32(scalars["qlat"])
        dlng = arrays["lng"][offset:hi] - np.float32(scalars["qlng"])
        arrays["dist"][offset:hi] = np.sqrt(dlat * dlat + dlng * dlng)


class SRAD(Benchmark):
    """SRAD diffusion-coefficient pass (division-heavy 4-point stencil)."""

    name = "srad"
    suite = Suite.RODINIA
    description = "speckle-reducing anisotropic diffusion coefficient pass"

    Q0_SQR = 0.05
    #: SRAD iterates until convergence; halo rows cross per step.
    ITERATIONS = 50

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=2)
        img = b.buffer("img", FLOAT, Intent.IN)
        coef = b.buffer("coef", FLOAT, Intent.OUT)
        w = b.scalar("w", INT)
        h = b.scalar("h", INT)
        q0 = b.scalar("q0", FLOAT)
        col = b.global_id(0)
        row = b.global_id(1)
        idx = b.let("idx", row * w + col)
        interior = (col > 0).and_(col < w - 1).and_(row > 0).and_(row < h - 1)
        with b.if_else(interior) as (then, otherwise):
            with then:
                jc = b.let("jc", b.load(img, idx))
                dn = b.let("dn", b.load(img, idx - w) - jc)
                ds = b.let("ds", b.load(img, idx + w) - jc)
                dw = b.let("dw", b.load(img, idx - 1) - jc)
                de = b.let("de", b.load(img, idx + 1) - jc)
                g2 = b.let("g2", (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc))
                l = b.let("l", (dn + ds + dw + de) / jc)
                num = b.let(
                    "num",
                    const(0.5, FLOAT) * g2
                    - (const(1.0, FLOAT) / const(16.0, FLOAT)) * l * l,
                )
                den = b.let(
                    "den", const(1.0, FLOAT) + const(0.25, FLOAT) * l
                )
                qsqr = b.let("qsqr", num / (den * den))
                cval = b.let(
                    "cval",
                    const(1.0, FLOAT)
                    / (
                        const(1.0, FLOAT)
                        + (qsqr - q0) / (q0 * (const(1.0, FLOAT) + q0))
                    ),
                )
                b.store(coef, idx, b.clamp(cval, 0.0, 1.0))
            with otherwise:
                b.store(coef, idx, const(1.0, FLOAT))
        return b.finish()

    def distribution_overrides(self, instance=None):
        if instance is None:
            return None
        w = int(instance.scalars["w"])
        return {
            "img": BufferDistribution.with_halo(halo=w),
            "coef": BufferDistribution.split(),
        }

    def problem_sizes(self) -> tuple[int, ...]:
        return (64, 128, 256, 512, 1024, 2048)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        w = h = size
        return ProblemInstance(
            size=size,
            arrays={
                "img": rng.uniform(0.5, 2.0, w * h).astype(np.float32),
                "coef": np.zeros(w * h, dtype=np.float32),
            },
            scalars={"w": w, "h": h, "q0": self.Q0_SQR},
            total_items=w * h,
            granularity=w,
            output_names=("coef",),
            iterations=self.ITERATIONS,
        )

    def _coef(self, img, w, h, q0):
        j = img.reshape(h, w).astype(np.float32)
        out = np.ones((h, w), dtype=np.float32)
        jc = j[1:-1, 1:-1]
        dn = j[:-2, 1:-1] - jc
        ds = j[2:, 1:-1] - jc
        dw = j[1:-1, :-2] - jc
        de = j[1:-1, 2:] - jc
        g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc)
        l = (dn + ds + dw + de) / jc
        num = np.float32(0.5) * g2 - np.float32(1.0 / 16.0) * l * l
        den = np.float32(1.0) + np.float32(0.25) * l
        qsqr = num / (den * den)
        c = np.float32(1.0) / (
            np.float32(1.0) + (qsqr - np.float32(q0)) / np.float32(q0 * (1.0 + q0))
        )
        out[1:-1, 1:-1] = np.clip(c, 0.0, 1.0)
        return out.reshape(-1)

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        s = instance.scalars
        return {
            "coef": self._coef(
                instance.arrays["img"], int(s["w"]), int(s["h"]), float(s["q0"])
            )
        }

    def execute(self, arrays, scalars, offset, count):
        w = int(scalars["w"])
        h = int(scalars["h"])
        r0, r1 = offset // w, min((offset + count) // w, h)
        if r1 <= r0:
            return
        full = self._coef(arrays["img"], w, h, float(scalars["q0"]))
        arrays["coef"].reshape(h, w)[r0:r1] = full.reshape(h, w)[r0:r1]


class Pathfinder(Benchmark):
    """One dynamic-programming relaxation row of Rodinia's pathfinder."""

    name = "pathfinder"
    suite = Suite.RODINIA
    description = (
        "DP row relaxation: dst[i] = wall[i] + min(src[i-1], src[i], src[i+1])"
    )

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        src = b.buffer("src", FLOAT, Intent.IN)
        wall = b.buffer("wall", FLOAT, Intent.IN)
        dst = b.buffer("dst", FLOAT, Intent.OUT)
        n = b.scalar("n", INT)
        gid = b.global_id(0)
        with b.if_(gid < n):
            best = b.let("best", b.load(src, gid))
            with b.if_(gid > 0):
                b.assign(best, b.fmin(best, b.load(src, gid - 1)))
            with b.if_(gid < n - 1):
                b.assign(best, b.fmin(best, b.load(src, gid + 1)))
            b.store(dst, gid, b.load(wall, gid) + best)
        return b.finish()

    def distribution_overrides(self, instance=None):
        return {
            "src": BufferDistribution.with_halo(halo=1),
            "wall": BufferDistribution.split(),
            "dst": BufferDistribution.split(),
        }

    def problem_sizes(self) -> tuple[int, ...]:
        return (1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        return ProblemInstance(
            size=size,
            arrays={
                "src": rng.uniform(0.0, 10.0, size).astype(np.float32),
                "wall": rng.uniform(0.0, 10.0, size).astype(np.float32),
                "dst": np.zeros(size, dtype=np.float32),
            },
            scalars={"n": size},
            total_items=size,
            granularity=64,
            output_names=("dst",),
        )

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        src = instance.arrays["src"]
        left = np.empty_like(src)
        right = np.empty_like(src)
        left[0] = src[0]
        left[1:] = src[:-1]
        right[-1] = src[-1]
        right[:-1] = src[1:]
        best = np.minimum(src, np.minimum(left, right))
        return {"dst": instance.arrays["wall"] + best}

    def execute(self, arrays, scalars, offset, count):
        n = int(scalars["n"])
        hi = min(offset + count, n)
        if hi <= offset:
            return
        src = arrays["src"]
        seg = src[offset:hi]
        left = src[max(0, offset - 1) : hi - 1]
        if offset == 0:
            left = np.concatenate(([src[0]], left))
        right = src[offset + 1 : min(n, hi + 1)]
        if hi == n:
            right = np.concatenate((right, [src[-1]]))
        best = np.minimum(seg, np.minimum(left, right))
        arrays["dst"][offset:hi] = arrays["wall"][offset:hi] + best


class BFS(Benchmark):
    """One level-synchronous BFS expansion step (irregular scatter)."""

    name = "bfs"
    suite = Suite.RODINIA
    description = "BFS frontier expansion over a CSR graph (scatter writes)"

    DEGREE = 8

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        frontier = b.buffer("frontier", INT, Intent.IN)
        rowptr = b.buffer("rowptr", INT, Intent.IN)
        cols = b.buffer("cols", INT, Intent.IN)
        visited = b.buffer("visited", INT, Intent.IN)
        next_frontier = b.buffer("next_frontier", INT, Intent.INOUT)
        n = b.scalar("n", INT)
        gid = b.global_id(0)
        with b.if_((gid < n).and_(b.load(frontier, gid).ne(0))):
            start = b.let("start", b.load(rowptr, gid))
            end = b.let("end", b.load(rowptr, gid + 1))
            with b.for_("e", start, end) as e:
                j = b.let("j", b.load(cols, e))
                with b.if_(b.load(visited, j).eq(0)):
                    b.store(next_frontier, j, const(1, INT))
        return b.finish()

    def distribution_overrides(self, instance=None):
        return {
            "frontier": BufferDistribution.split(),
            "rowptr": BufferDistribution.with_halo(halo=1),
            "cols": BufferDistribution.full(),
            "visited": BufferDistribution.full(),
            "next_frontier": BufferDistribution.reduced("max"),
        }

    def problem_sizes(self) -> tuple[int, ...]:
        return (1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        n = size
        nnz = n * self.DEGREE
        rowptr = np.arange(0, nnz + 1, self.DEGREE, dtype=np.int32)
        cols = rng.integers(0, n, nnz, dtype=np.int32)
        frontier = (rng.random(n) < 0.05).astype(np.int32)
        visited = (rng.random(n) < 0.30).astype(np.int32)
        return ProblemInstance(
            size=size,
            arrays={
                "frontier": frontier,
                "rowptr": rowptr,
                "cols": cols,
                "visited": visited,
                "next_frontier": np.zeros(n, dtype=np.int32),
            },
            scalars={"n": n},
            total_items=n,
            granularity=32,
            output_names=("next_frontier",),
        )

    def _expand(self, arrays, lo: int, hi: int) -> np.ndarray:
        frontier = arrays["frontier"][lo:hi]
        active = np.nonzero(frontier)[0] + lo
        rowptr = arrays["rowptr"]
        cols = arrays["cols"]
        visited = arrays["visited"]
        touched = np.zeros(len(arrays["next_frontier"]), dtype=np.int32)
        if len(active) == 0:
            return touched
        # Fixed degree: neighbour slices are rows of a dense view.
        deg = self.DEGREE
        neigh = cols.reshape(-1, deg)[active].reshape(-1)
        fresh = neigh[visited[neigh] == 0]
        touched[fresh] = 1
        return touched

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        n = int(instance.scalars["n"])
        return {"next_frontier": self._expand(instance.arrays, 0, n)}

    def execute(self, arrays, scalars, offset, count):
        n = int(scalars["n"])
        hi = min(offset + count, n)
        if hi <= offset:
            return
        touched = self._expand(arrays, offset, hi)
        np.maximum(arrays["next_frontier"], touched, out=arrays["next_frontier"])


class Backprop(Benchmark):
    """Neural-net layer forward pass: weighted sums + sigmoid."""

    name = "backprop"
    suite = Suite.RODINIA
    description = "backprop layer forward: out[j] = sigmoid(sum_i w[j,i] * in[i])"

    INPUTS = 64
    #: Training epochs: weights stay resident, activations are re-sent.
    ITERATIONS = 20

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        weights = b.buffer("weights", FLOAT, Intent.IN)
        inputs = b.buffer("inputs", FLOAT, Intent.IN)
        out = b.buffer("out", FLOAT, Intent.OUT)
        nout = b.scalar("nout", INT)
        nin = b.scalar("nin", INT)
        gid = b.global_id(0)
        with b.if_(gid < nout):
            acc = b.let("acc", const(0.0, FLOAT))
            with b.for_("i", 0, nin) as i:
                b.assign(acc, acc + b.load(weights, gid * nin + i) * b.load(inputs, i))
            b.store(out, gid, const(1.0, FLOAT) / (const(1.0, FLOAT) + b.exp(-acc)))
        return b.finish()

    def distribution_overrides(self, instance=None):
        return {
            "weights": BufferDistribution.split(elements_per_item=self.INPUTS),
            "inputs": BufferDistribution.full(),
            "out": BufferDistribution.split(),
        }

    def problem_sizes(self) -> tuple[int, ...]:
        return (1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        nout, nin = size, self.INPUTS
        return ProblemInstance(
            size=size,
            arrays={
                "weights": rng.standard_normal((nout, nin)).astype(np.float32),
                "inputs": rng.standard_normal(nin).astype(np.float32),
                "out": np.zeros(nout, dtype=np.float32),
            },
            scalars={"nout": nout, "nin": nin},
            total_items=nout,
            granularity=32,
            output_names=("out",),
            iterations=self.ITERATIONS,
        )

    def iteration_refresh_buffers(self) -> tuple[str, ...]:
        return ("inputs",)

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        w = instance.arrays["weights"].reshape(-1, self.INPUTS).astype(np.float64)
        x = instance.arrays["inputs"].astype(np.float64)
        acc = w @ x
        return {"out": (1.0 / (1.0 + np.exp(-acc))).astype(np.float32)}

    def execute(self, arrays, scalars, offset, count):
        nout = int(scalars["nout"])
        nin = int(scalars["nin"])
        hi = min(offset + count, nout)
        if hi <= offset:
            return
        w = arrays["weights"].reshape(-1, nin)[offset:hi].astype(np.float64)
        x = arrays["inputs"].astype(np.float64)
        acc = w @ x
        arrays["out"][offset:hi] = (1.0 / (1.0 + np.exp(-acc))).astype(np.float32)
