"""The 23-program benchmark suite (vendor / SHOC / Rodinia / PolyBench)."""

from .base import Benchmark, ProblemInstance, Suite
from .registry import (
    BENCHMARK_CLASSES,
    all_benchmarks,
    benchmark_names,
    get_benchmark,
    suite_of,
)

__all__ = [
    "Benchmark",
    "ProblemInstance",
    "Suite",
    "BENCHMARK_CLASSES",
    "all_benchmarks",
    "benchmark_names",
    "get_benchmark",
    "suite_of",
]
