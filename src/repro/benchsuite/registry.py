"""The benchmark registry: the paper's 23-program evaluation suite."""

from __future__ import annotations

from .base import Benchmark, Suite
from .polybench import Atax, Conv2D, Mvt
from .rodinia import BFS, Backprop, Hotspot, KMeans, NearestNeighbor, Pathfinder, SRAD
from .shoc import MD, Reduction, SpMV, Stencil2D, Triad
from .vendor import (
    BlackScholes,
    DotProduct,
    Histogram,
    Mandelbrot,
    MatMul,
    NBody,
    Saxpy,
    VecAdd,
)

__all__ = [
    "BENCHMARK_CLASSES",
    "all_benchmarks",
    "get_benchmark",
    "benchmark_names",
    "suite_of",
]

#: All 23 programs, grouped by origin suite as in the paper's §3.
BENCHMARK_CLASSES: tuple[type[Benchmark], ...] = (
    # vendor example codes (8)
    VecAdd,
    Saxpy,
    DotProduct,
    MatMul,
    BlackScholes,
    Mandelbrot,
    NBody,
    Histogram,
    # SHOC (5)
    Reduction,
    Triad,
    SpMV,
    MD,
    Stencil2D,
    # Rodinia (7)
    Hotspot,
    KMeans,
    NearestNeighbor,
    SRAD,
    Pathfinder,
    BFS,
    Backprop,
    # PolyBench (3)
    Conv2D,
    Atax,
    Mvt,
)

_INSTANCES: dict[str, Benchmark] = {}


def all_benchmarks() -> tuple[Benchmark, ...]:
    """Singleton instances of all 23 benchmarks, in registry order."""
    return tuple(get_benchmark(cls.name) for cls in BENCHMARK_CLASSES)


def benchmark_names() -> tuple[str, ...]:
    """Names of all benchmarks in registry order."""
    return tuple(cls.name for cls in BENCHMARK_CLASSES)


def get_benchmark(name: str) -> Benchmark:
    """Look up a benchmark by name (instances are cached singletons)."""
    if name not in _INSTANCES:
        for cls in BENCHMARK_CLASSES:
            if cls.name == name:
                _INSTANCES[name] = cls()
                break
        else:
            raise KeyError(
                f"unknown benchmark {name!r}; known: {', '.join(benchmark_names())}"
            )
    return _INSTANCES[name]


def suite_of(name: str) -> Suite:
    """Origin suite of a benchmark."""
    return get_benchmark(name).suite
