"""Benchmark abstraction for the 23-program evaluation suite.

Each benchmark bundles everything the paper's pipeline needs from one
OpenCL program:

* the kernel (built in the IR DSL → static features, codegen),
* per-buffer distribution overrides where the automatic analysis is
  too conservative (Insieme's annotation escape hatch),
* a problem-size ladder and input generator,
* a NumPy *reference* (ground truth for the whole range), and
* a *device executor* — the vectorized implementation the simulated
  devices run over arbitrary sub-ranges ``[offset, offset + count)``.

Conventions:
  * 1-D kernels partition their single axis directly.
  * 2-D kernels always execute the full W×H rectangle, one work item
    per element; the scheduler's chunk granularity equals the row width
    so every device receives whole rows, which keeps proportional
    buffer slices exact.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..compiler.frontend import CompiledKernel, compile_kernel
from ..compiler.splitter import BufferDistribution
from ..inspire import ast as ir
from ..runtime.scheduler import ExecutionRequest
from ..util.rng import rng_for

__all__ = ["Suite", "ProblemInstance", "Benchmark"]


class Suite(enum.Enum):
    """Origin suite, mirroring the paper's benchmark sources."""

    VENDOR = "vendor"
    SHOC = "shoc"
    RODINIA = "rodinia"
    POLYBENCH = "polybench"


@dataclass(frozen=True)
class ProblemInstance:
    """One concrete problem: arrays + scalars + range geometry.

    Attributes:
        size: the nominal problem-size parameter from the ladder.
        arrays: host arrays keyed by buffer parameter name.
        scalars: scalar kernel arguments.
        total_items: ND-range extent (work items along the partition axis).
        granularity: chunk alignment (work-group size / row width).
        output_names: buffer names carrying results (for verification).
        iterations: how many times the application launches this kernel
            per upload/download cycle (e.g. hotspot time steps, k-means
            refinement rounds).  Transfers happen once; iterating with
            more than one active device additionally pays per-iteration
            synchronization transfers (halos, refreshed broadcasts).
    """

    size: int
    arrays: Mapping[str, np.ndarray]
    scalars: Mapping[str, float | int]
    total_items: int
    granularity: int
    output_names: tuple[str, ...]
    iterations: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")

    def fresh_copy(self) -> "ProblemInstance":
        """Deep-copy the arrays (for independent runs of the same input)."""
        return ProblemInstance(
            size=self.size,
            arrays={k: v.copy() for k, v in self.arrays.items()},
            scalars=dict(self.scalars),
            total_items=self.total_items,
            granularity=self.granularity,
            output_names=self.output_names,
            iterations=self.iterations,
        )


class Benchmark(abc.ABC):
    """Base class of the 23 suite programs."""

    #: unique benchmark name (registry key)
    name: str = ""
    #: origin suite
    suite: Suite = Suite.VENDOR
    #: one-line description
    description: str = ""

    # -- kernel -----------------------------------------------------------

    @abc.abstractmethod
    def build_kernel(self) -> ir.Kernel:
        """Construct the single-device kernel IR."""

    def distribution_overrides(
        self, instance: ProblemInstance | None = None
    ) -> dict[str, BufferDistribution] | None:
        """Buffer distributions the automatic analysis cannot derive.

        May depend on the instance (stencil halos scale with the row
        width).  ``None`` means fully automatic.
        """
        return None

    def compiled(self, instance: ProblemInstance | None = None) -> CompiledKernel:
        """Compile the kernel (cached per distribution signature)."""
        overrides = self.distribution_overrides(instance)
        key = None
        if overrides is not None:
            key = tuple(sorted((k, v) for k, v in overrides.items()))
        return self._compile_cached(key, overrides)

    def _compile_cached(
        self,
        key: object,
        overrides: dict[str, BufferDistribution] | None,
    ) -> CompiledKernel:
        cache = getattr(self, "_compile_cache", None)
        if cache is None:
            cache = {}
            setattr(self, "_compile_cache", cache)
        if key not in cache:
            cache[key] = compile_kernel(self.build_kernel(), overrides)
        return cache[key]

    # -- problems -----------------------------------------------------------

    @abc.abstractmethod
    def problem_sizes(self) -> tuple[int, ...]:
        """The size ladder used for training and evaluation (ascending)."""

    @abc.abstractmethod
    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        """Generate inputs for one problem size (deterministic in seed)."""

    def default_instance(self, seed: int = 0) -> ProblemInstance:
        """A mid-ladder instance (for examples and quick tests)."""
        sizes = self.problem_sizes()
        return self.make_instance(sizes[len(sizes) // 2], seed)

    def rng(self, size: int, seed: int) -> np.random.Generator:
        """Derived RNG, unique per (benchmark, size, seed)."""
        return rng_for("bench", self.name, size, base_seed=seed)

    # -- semantics -----------------------------------------------------------

    @abc.abstractmethod
    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        """Ground-truth outputs for the full range (fresh arrays)."""

    @abc.abstractmethod
    def execute(
        self,
        arrays: dict[str, np.ndarray],
        scalars: Mapping[str, float | int],
        offset: int,
        count: int,
    ) -> None:
        """Vectorized device implementation for one sub-range.

        Must only write outputs attributable to work items in
        ``[offset, offset + count)`` (REDUCED buffers accumulate into
        the private array found in ``arrays``).
        """

    def iteration_refresh_buffers(self) -> tuple[str, ...]:
        """FULL-distributed inputs that must be re-broadcast per iteration.

        Iterative applications whose gathered inputs change every step
        (n-body positions, k-means centroids) pay this re-broadcast on
        every device each iteration when the work is partitioned.
        """
        return ()

    # -- glue -----------------------------------------------------------------

    def request(self, instance: ProblemInstance) -> ExecutionRequest:
        """Wrap an instance into a scheduler request."""
        return ExecutionRequest(
            compiled=self.compiled(instance),
            arrays=instance.arrays,
            scalars=instance.scalars,
            total_items=instance.total_items,
            executor=self.execute,
            granularity=instance.granularity,
            iterations=instance.iterations,
            refresh_buffers=self.iteration_refresh_buffers(),
        )

    def verify(
        self,
        instance: ProblemInstance,
        atol: float = 1e-4,
        rtol: float = 1e-4,
        expected: dict[str, np.ndarray] | None = None,
    ) -> None:
        """Assert the instance's outputs match the reference.

        For benchmarks with INOUT buffers the caller must pass
        ``expected`` computed via :meth:`reference` *before* execution
        (execution overwrites the inputs the reference needs).
        """
        if expected is None:
            expected = self.reference(instance)
        for name in instance.output_names:
            got = instance.arrays[name]
            want = expected[name]
            if not np.allclose(got, want, atol=atol, rtol=rtol, equal_nan=True):
                bad = np.argwhere(
                    ~np.isclose(got, want, atol=atol, rtol=rtol, equal_nan=True)
                )
                raise AssertionError(
                    f"{self.name}: output {name!r} mismatches reference at "
                    f"{len(bad)} positions (first: {bad[:3].tolist()})"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Benchmark {self.name} ({self.suite.value})>"
