"""PolyBench/GPU-style benchmarks (3 programs).

Modeled on the auto-tuned PolyBench GPU codes (Grauer-Gray et al.,
InPar'12 — reference [4] of the paper): 2-D convolution and the ATAX /
MVT matrix-vector families.
"""

from __future__ import annotations

import numpy as np

from ..compiler.splitter import BufferDistribution
from ..inspire import FLOAT, INT, Intent, KernelBuilder, const
from ..inspire import ast as ir
from .base import Benchmark, ProblemInstance, Suite

__all__ = ["Conv2D", "Atax", "Mvt"]


class Conv2D(Benchmark):
    """PolyBench 2DCONV: fixed 3×3 convolution over a W×H image."""

    name = "conv2d"
    suite = Suite.POLYBENCH
    description = "3x3 convolution with asymmetric fixed coefficients"

    # PolyBench's 2DCONV coefficient set.
    C = ((0.2, 0.5, -0.8), (-0.3, 0.6, -0.9), (0.4, 0.7, 0.10))
    #: The PolyBench/GPU harness times repeated kernel applications with
    #: the image device-resident.
    ITERATIONS = 10

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=2)
        img = b.buffer("img", FLOAT, Intent.IN)
        out = b.buffer("out", FLOAT, Intent.OUT)
        w = b.scalar("w", INT)
        h = b.scalar("h", INT)
        col = b.global_id(0)
        row = b.global_id(1)
        idx = b.let("idx", row * w + col)
        interior = (col > 0).and_(col < w - 1).and_(row > 0).and_(row < h - 1)
        with b.if_else(interior) as (then, otherwise):
            with then:
                acc = b.let("acc", const(0.0, FLOAT))
                for dr in (-1, 0, 1):
                    for dc in (-1, 0, 1):
                        coeff = self.C[dr + 1][dc + 1]
                        b.assign(
                            acc,
                            acc
                            + const(coeff, FLOAT) * b.load(img, idx + dr * w + dc),
                        )
                b.store(out, idx, acc)
            with otherwise:
                b.store(out, idx, const(0.0, FLOAT))
        return b.finish()

    def distribution_overrides(self, instance=None):
        if instance is None:
            return None
        w = int(instance.scalars["w"])
        return {
            "img": BufferDistribution.with_halo(halo=w),
            "out": BufferDistribution.split(),
        }

    def problem_sizes(self) -> tuple[int, ...]:
        return (64, 128, 256, 512, 1024, 2048, 4096)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        w = h = size
        return ProblemInstance(
            size=size,
            arrays={
                "img": rng.standard_normal(w * h).astype(np.float32),
                "out": np.zeros(w * h, dtype=np.float32),
            },
            scalars={"w": w, "h": h},
            total_items=w * h,
            granularity=w,
            output_names=("out",),
            iterations=self.ITERATIONS,
        )

    def _conv(self, img, w, h):
        g = img.reshape(h, w).astype(np.float32)
        out = np.zeros((h, w), dtype=np.float32)
        acc = np.zeros((h - 2, w - 2), dtype=np.float32)
        # Match the kernel's accumulation order exactly (row-major taps).
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                coeff = np.float32(self.C[dr + 1][dc + 1])
                acc = acc + coeff * g[1 + dr : h - 1 + dr, 1 + dc : w - 1 + dc]
        out[1:-1, 1:-1] = acc
        return out.reshape(-1)

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        s = instance.scalars
        return {"out": self._conv(instance.arrays["img"], int(s["w"]), int(s["h"]))}

    def execute(self, arrays, scalars, offset, count):
        w = int(scalars["w"])
        h = int(scalars["h"])
        r0, r1 = offset // w, min((offset + count) // w, h)
        if r1 <= r0:
            return
        full = self._conv(arrays["img"], w, h)
        arrays["out"].reshape(h, w)[r0:r1] = full.reshape(h, w)[r0:r1]


class Atax(Benchmark):
    """ATAX second phase: ``y[j] = Σ_i A[i,j] * tmp[i]`` (column sweep).

    Every work item walks a full matrix *column*, so each device needs
    the entire matrix — the transfer-heavy opposite of MVT's row sweep.
    """

    name = "atax"
    suite = Suite.POLYBENCH
    description = "A^T * tmp column-sweep matvec (full-matrix per device)"

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        A = b.buffer("A", FLOAT, Intent.IN)
        tmp = b.buffer("tmp", FLOAT, Intent.IN)
        y = b.buffer("y", FLOAT, Intent.OUT)
        nrows = b.scalar("nrows", INT)
        ncols = b.scalar("ncols", INT)
        gid = b.global_id(0)
        with b.if_(gid < ncols):
            acc = b.let("acc", const(0.0, FLOAT))
            with b.for_("i", 0, nrows) as i:
                b.assign(acc, acc + b.load(A, i * ncols + gid) * b.load(tmp, i))
            b.store(y, gid, acc)
        return b.finish()

    def distribution_overrides(self, instance=None):
        return {
            "A": BufferDistribution.full(),
            "tmp": BufferDistribution.full(),
            "y": BufferDistribution.split(),
        }

    def problem_sizes(self) -> tuple[int, ...]:
        return (128, 256, 512, 1024, 2048, 4096)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        nrows = ncols = size
        return ProblemInstance(
            size=size,
            arrays={
                "A": rng.standard_normal((nrows, ncols)).astype(np.float32),
                "tmp": rng.standard_normal(nrows).astype(np.float32),
                "y": np.zeros(ncols, dtype=np.float32),
            },
            scalars={"nrows": nrows, "ncols": ncols},
            total_items=ncols,
            granularity=32,
            output_names=("y",),
        )

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        A = instance.arrays["A"].reshape(-1, int(instance.scalars["ncols"]))
        tmp = instance.arrays["tmp"]
        return {
            "y": (A.astype(np.float64).T @ tmp.astype(np.float64)).astype(np.float32)
        }

    def execute(self, arrays, scalars, offset, count):
        ncols = int(scalars["ncols"])
        hi = min(offset + count, ncols)
        if hi <= offset:
            return
        A = arrays["A"].reshape(-1, ncols)[:, offset:hi].astype(np.float64)
        tmp = arrays["tmp"].astype(np.float64)
        arrays["y"][offset:hi] = (A.T @ tmp).astype(np.float32)


class Mvt(Benchmark):
    """MVT row sweep: ``x1[i] += Σ_j A[i,j] * y1[j]`` (split-matrix)."""

    name = "mvt"
    suite = Suite.POLYBENCH
    description = "matrix-vector product with in-place row update"

    def build_kernel(self) -> ir.Kernel:
        b = KernelBuilder(self.name, dim=1)
        A = b.buffer("A", FLOAT, Intent.IN)
        y1 = b.buffer("y1", FLOAT, Intent.IN)
        x1 = b.buffer("x1", FLOAT, Intent.INOUT)
        n = b.scalar("n", INT)
        gid = b.global_id(0)
        with b.if_(gid < n):
            acc = b.let("acc", b.load(x1, gid))
            with b.for_("j", 0, n) as j:
                b.assign(acc, acc + b.load(A, gid * n + j) * b.load(y1, j))
            b.store(x1, gid, acc)
        return b.finish()

    def distribution_overrides(self, instance=None):
        if instance is None:
            return {"y1": BufferDistribution.full()}
        n = int(instance.scalars["n"])
        return {
            "A": BufferDistribution.split(elements_per_item=n),
            "y1": BufferDistribution.full(),
            "x1": BufferDistribution.split(),
        }

    def problem_sizes(self) -> tuple[int, ...]:
        return (128, 256, 512, 1024, 2048, 4096)

    def make_instance(self, size: int, seed: int = 0) -> ProblemInstance:
        rng = self.rng(size, seed)
        n = size
        return ProblemInstance(
            size=size,
            arrays={
                "A": rng.standard_normal((n, n)).astype(np.float32),
                "y1": rng.standard_normal(n).astype(np.float32),
                "x1": rng.standard_normal(n).astype(np.float32),
            },
            scalars={"n": n},
            total_items=n,
            granularity=32,
            output_names=("x1",),
        )

    def reference(self, instance: ProblemInstance) -> dict[str, np.ndarray]:
        n = int(instance.scalars["n"])
        A = instance.arrays["A"].reshape(n, n).astype(np.float64)
        y1 = instance.arrays["y1"].astype(np.float64)
        x1 = instance.arrays["x1"].astype(np.float64)
        return {"x1": (x1 + A @ y1).astype(np.float32)}

    def execute(self, arrays, scalars, offset, count):
        n = int(scalars["n"])
        hi = min(offset + count, n)
        if hi <= offset:
            return
        A = arrays["A"].reshape(n, n)[offset:hi].astype(np.float64)
        y1 = arrays["y1"].astype(np.float64)
        x1 = arrays["x1"][offset:hi].astype(np.float64)
        arrays["x1"][offset:hi] = (x1 + A @ y1).astype(np.float32)
