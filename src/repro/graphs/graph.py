"""The task-graph model: DAGs of benchsuite kernels with tensor handoffs.

HeSP (PAPERS.md) frames heterogeneous execution as a *task
scheduling-partitioning* problem: the unit of work is not one kernel
launch but a DAG of dependent kernels, and the interesting decisions —
where each task runs, how it is split, which producer/consumer pairs
co-locate to dodge PCIe traffic — are only visible at the graph level.

A :class:`TaskGraph` is a validated DAG whose nodes name benchsuite
kernels (``(program, size)`` exactly as the serving layer keys them)
and whose edges carry the tensor-handoff byte count of the dependency.
Edges are *priced* with the same analytic PCIe model single-kernel
transfers use today (:meth:`repro.ocl.costmodel.DeviceCostModel.transfer_time_s`);
the pricing itself lives in :mod:`repro.graphs.compose`.

Validation happens at construction: a graph is non-empty, edge
endpoints exist, and the edge set is acyclic — :meth:`topological_order`
is computed once (Kahn's algorithm, declaration order breaking ties so
schedules are deterministic) and cached on the instance.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["TaskNode", "TaskEdge", "TaskGraph"]


@dataclass(frozen=True)
class TaskNode:
    """One task: a benchsuite kernel at a problem size.

    ``name`` is the node's identity inside the graph (edges reference
    it); several nodes may share the same ``(program, size)`` — a
    pipeline can invoke the same kernel twice.
    """

    name: str
    program: str
    size: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a task node needs a non-empty name")
        if not self.program:
            raise ValueError(f"task {self.name!r} needs a benchmark program")
        if self.size <= 0:
            raise ValueError(f"task {self.name!r} needs a positive size")

    @property
    def key(self) -> tuple[str, int]:
        """The serving-layer cache key this node's kernel lives under."""
        return (self.program, self.size)


@dataclass(frozen=True)
class TaskEdge:
    """One dependency: ``dst`` consumes ``nbytes`` produced by ``src``.

    ``nbytes`` is the tensor-handoff size; it prices the inter-task
    transfer exactly as a PCIe buffer copy of that many bytes would be
    priced today, split across devices by the producer's and consumer's
    partitionings (see :func:`repro.graphs.compose.edge_transfer`).
    """

    src: str
    dst: str
    nbytes: int

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-edge on task {self.src!r}")
        if self.nbytes < 0:
            raise ValueError(
                f"edge {self.src!r}->{self.dst!r} carries negative bytes"
            )


@dataclass(frozen=True)
class TaskGraph:
    """A validated DAG of tasks; the unit of work above the kernel.

    Construction validates the whole structure — non-empty node set,
    unique node names, known edge endpoints, no duplicate edges, no
    cycles — so every consumer downstream (composition, planning,
    serving) can assume a well-formed DAG.
    """

    nodes: tuple[TaskNode, ...]
    edges: tuple[TaskEdge, ...] = ()
    name: str = "graph"
    _topo: tuple[str, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a task graph needs at least one node")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate task names: {dupes}")
        known = set(names)
        seen: set[tuple[str, str]] = set()
        for edge in self.edges:
            for endpoint in (edge.src, edge.dst):
                if endpoint not in known:
                    raise ValueError(
                        f"edge {edge.src!r}->{edge.dst!r} references "
                        f"unknown task {endpoint!r}"
                    )
            if (edge.src, edge.dst) in seen:
                raise ValueError(f"duplicate edge {edge.src!r}->{edge.dst!r}")
            seen.add((edge.src, edge.dst))
        object.__setattr__(self, "_topo", self._kahn_order())

    # -- construction helpers ----------------------------------------------

    @classmethod
    def single(cls, program: str, size: int, name: str | None = None) -> "TaskGraph":
        """The degenerate one-node graph: exactly one kernel launch."""
        return cls(
            nodes=(TaskNode(name="t0", program=program, size=size),),
            name=name or f"{program}@{size}",
        )

    @classmethod
    def chain(
        cls,
        stages: "list[tuple[str, int]] | tuple[tuple[str, int], ...]",
        handoff_nbytes: "int | list[int] | tuple[int, ...]",
        name: str | None = None,
    ) -> "TaskGraph":
        """A linear pipeline: stage i feeds stage i+1.

        ``handoff_nbytes`` is either one byte count for every edge or a
        per-edge sequence of ``len(stages) - 1`` counts.
        """
        if not stages:
            raise ValueError("a chain needs at least one stage")
        if isinstance(handoff_nbytes, int):
            per_edge: list[int] = [handoff_nbytes] * (len(stages) - 1)
        else:
            per_edge = list(handoff_nbytes)
            if len(per_edge) != len(stages) - 1:
                raise ValueError(
                    f"chain of {len(stages)} stages needs {len(stages) - 1} "
                    f"handoff byte counts, got {len(per_edge)}"
                )
        nodes = tuple(
            TaskNode(name=f"t{i}", program=program, size=size)
            for i, (program, size) in enumerate(stages)
        )
        edges = tuple(
            TaskEdge(src=f"t{i}", dst=f"t{i + 1}", nbytes=per_edge[i])
            for i in range(len(stages) - 1)
        )
        return cls(
            nodes=nodes,
            edges=edges,
            name=name or ">".join(p for p, _ in stages),
        )

    def _kahn_order(self) -> tuple[str, ...]:
        """Topological order, or raise on a cycle.

        Kahn's algorithm with the ready set kept in node declaration
        order: the order is a pure function of the graph, so composed
        schedules and cache signatures are deterministic.
        """
        indegree = {n.name: 0 for n in self.nodes}
        for edge in self.edges:
            indegree[edge.dst] += 1
        order: list[str] = []
        ready = [n.name for n in self.nodes if indegree[n.name] == 0]
        position = {n.name: i for i, n in enumerate(self.nodes)}
        while ready:
            ready.sort(key=position.__getitem__)
            current = ready.pop(0)
            order.append(current)
            for edge in self.edges:
                if edge.src != current:
                    continue
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
        if len(order) != len(self.nodes):
            stuck = sorted(n for n, d in indegree.items() if d > 0)
            raise ValueError(f"task graph has a cycle through {stuck}")
        return tuple(order)

    # -- structure queries --------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, name: str) -> TaskNode:
        for n in self.nodes:
            if n.name == name:
                return n
        raise KeyError(f"no task named {name!r}")

    def topological_order(self) -> tuple[str, ...]:
        """Node names in a deterministic dependency-respecting order."""
        return self._topo

    def in_edges(self, name: str) -> tuple[TaskEdge, ...]:
        return tuple(e for e in self.edges if e.dst == name)

    def out_edges(self, name: str) -> tuple[TaskEdge, ...]:
        return tuple(e for e in self.edges if e.src == name)

    def predecessors(self, name: str) -> tuple[str, ...]:
        return tuple(e.src for e in self.in_edges(name))

    def successors(self, name: str) -> tuple[str, ...]:
        return tuple(e.dst for e in self.out_edges(name))

    # -- identity -----------------------------------------------------------

    @property
    def signature(self) -> tuple:
        """Structural identity: everything the composed timing depends on.

        Two graphs with equal signatures produce identical composed
        measurements under identical plans — node names are included
        because plans address nodes by name.
        """
        return (
            tuple((n.name, n.program, n.size) for n in self.nodes),
            tuple((e.src, e.dst, e.nbytes) for e in self.edges),
        )

    @property
    def signature_label(self) -> str:
        """Compact string form of :attr:`signature` for cache keys.

        The serving layer keys its prediction cache by
        ``(machine, program, size)``; graph requests reuse the same
        key shape with this label in the ``program`` slot (and the
        node count in the ``size`` slot), so one LRU holds both kinds
        of entries without collisions.
        """
        digest = hashlib.sha1(repr(self.signature).encode()).hexdigest()[:12]
        stages = ">".join(f"{n.program}@{n.size}" for n in self.nodes[:4])
        if len(self.nodes) > 4:
            stages += f">+{len(self.nodes) - 4}"
        return f"graph:{stages}#{digest}"

    @property
    def total_size(self) -> int:
        """Sum of node problem sizes (the ``size`` slot of cache keys)."""
        return sum(n.size for n in self.nodes)

    def __str__(self) -> str:
        return f"{self.name}({self.num_nodes} tasks, {len(self.edges)} edges)"
