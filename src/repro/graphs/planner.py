"""Co-searching placement × per-task partitioning over one task graph.

The greedy baseline partitions each task as if it ran alone — the best
standalone grid point per ``(program, size)``, which is exactly what
chaining today's single-kernel predictions would do.  It is transfer-
blind: two adjacent tasks individually fastest on different devices pay
the full tensor handoff between them, and independent tasks that could
overlap on disjoint devices instead pile onto the same ones.

:class:`GraphPlanner` co-searches both decisions at once, HeSP-style:
starting *from* the greedy plan it runs coordinate descent over the
composed makespan — re-deciding one task's partitioning at a time
against the full-graph composition, walking the current critical path
first (off-path tasks have slack; improving them cannot move the
makespan).  A dominance bound prunes candidates before paying for a
composition: changing only task *n* can shave at most *n*'s own span
plus the transfer seconds currently entering and leaving it, so a
candidate whose standalone time already exceeds

    current standalone time + adjacent transfer seconds

cannot beat the incumbent and is skipped.  Because the search starts
at greedy and keeps only strict improvements, the co-searched plan is
never worse than the baseline — the refactor's safety property — and
it strictly wins whenever transfers or overlap matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from ..partitioning import DEFAULT_STEP_PERCENT, Partitioning, partition_space
from .compose import GraphRun, MeasureFn, compose_graph, edge_transfer
from .graph import TaskGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ocl.device import Device
    from ..runtime.scheduler import ExecutionRequest

__all__ = ["GraphPlan", "PlannerStats", "GraphPlanner", "greedy_plan"]


@dataclass(frozen=True)
class GraphPlan:
    """One full assignment: task name → partitioning.

    Stored as a sorted tuple so plans are hashable and comparable —
    the serving layer caches them in the same LRU as single-kernel
    predictions.
    """

    assignments: tuple[tuple[str, Partitioning], ...]

    @classmethod
    def from_dict(cls, assignments: Mapping[str, Partitioning]) -> "GraphPlan":
        return cls(tuple(sorted(assignments.items())))

    def as_dict(self) -> dict[str, Partitioning]:
        return dict(self.assignments)

    def partitioning_for(self, node: str) -> Partitioning:
        for name, p in self.assignments:
            if name == node:
                return p
        raise KeyError(f"no plan entry for task {node!r}")

    def labels(self) -> dict[str, str]:
        """Display form: task name → share label."""
        return {name: p.label for name, p in self.assignments}


@dataclass
class PlannerStats:
    """Search-effort counters of one co-search."""

    #: Full-graph compositions paid for (greedy seed included).
    evaluated: int = 0
    #: Candidates skipped by the critical-path dominance bound.
    pruned: int = 0
    #: Coordinate-descent passes over the critical path.
    passes: int = 0
    #: Makespan improvements accepted.
    improvements: int = 0
    #: Standalone per-task sweep measurements behind the greedy seed.
    standalone_points: int = 0


def greedy_plan(
    graph: TaskGraph,
    requests: "Mapping[str, ExecutionRequest]",
    measure: MeasureFn,
    space: Sequence[Partitioning],
    repetitions: int = 1,
    stats: PlannerStats | None = None,
) -> tuple[GraphPlan, dict[str, dict[Partitioning, float]]]:
    """Partition each task as if it ran alone (the transfer-blind baseline).

    Returns the plan plus the standalone sweep table (task name →
    partitioning → median seconds) the co-search prunes with.  Tasks
    sharing a ``(program, size)`` share one sweep — the measure function
    is called once per distinct key and grid point.
    """
    by_key: dict[tuple[str, int], dict[Partitioning, float]] = {}
    standalone: dict[str, dict[Partitioning, float]] = {}
    assignments: dict[str, Partitioning] = {}
    for node in graph.nodes:
        table = by_key.get(node.key)
        if table is None:
            table = {
                p: measure(requests[node.name], p, repetitions=repetitions).median_s
                for p in space
            }
            by_key[node.key] = table
            if stats is not None:
                stats.standalone_points += len(table)
        standalone[node.name] = table
        assignments[node.name] = min(table, key=lambda p: (table[p], p.label))
    return GraphPlan.from_dict(assignments), standalone


class GraphPlanner:
    """Coordinate-descent co-search over one machine's device set."""

    def __init__(
        self,
        measure: MeasureFn,
        devices: "Sequence[Device]",
        platform_idle_w: float,
        step_percent: int = DEFAULT_STEP_PERCENT,
        max_passes: int = 4,
    ):
        if max_passes < 1:
            raise ValueError("max_passes must be >= 1")
        self.measure = measure
        self.devices = devices
        self.platform_idle_w = platform_idle_w
        self.space = partition_space(len(devices), step_percent)
        self.max_passes = max_passes
        self.stats = PlannerStats()

    def _compose(
        self,
        graph: TaskGraph,
        plan: Mapping[str, Partitioning],
        requests: "Mapping[str, ExecutionRequest]",
        repetitions: int,
    ) -> GraphRun:
        self.stats.evaluated += 1
        return compose_graph(
            graph,
            plan,
            requests,
            self.measure,
            self.devices,
            self.platform_idle_w,
            repetitions=repetitions,
        )

    def _adjacent_transfer_s(
        self, graph: TaskGraph, plan: Mapping[str, Partitioning], name: str
    ) -> float:
        """Transfer seconds currently entering and leaving one task."""
        total = 0.0
        for edge in graph.in_edges(name):
            seconds, _ = edge_transfer(
                self.devices, edge.nbytes, plan[edge.src], plan[name]
            )
            total += seconds
        for edge in graph.out_edges(name):
            seconds, _ = edge_transfer(
                self.devices, edge.nbytes, plan[name], plan[edge.dst]
            )
            total += seconds
        return total

    def search(
        self,
        graph: TaskGraph,
        requests: "Mapping[str, ExecutionRequest]",
        repetitions: int = 1,
    ) -> tuple[GraphPlan, GraphRun]:
        """Co-search the graph; returns the plan and its composed run.

        Never returns a plan worse than greedy: the descent starts
        there and accepts only strict makespan improvements (ties keep
        the incumbent, so the result is deterministic).
        """
        plan_obj, standalone = greedy_plan(
            graph,
            requests,
            self.measure,
            self.space,
            repetitions=repetitions,
            stats=self.stats,
        )
        plan = plan_obj.as_dict()
        run = self._compose(graph, plan, requests, repetitions)

        for _ in range(self.max_passes):
            self.stats.passes += 1
            improved = False
            # Critical-path tasks first: only they can move the makespan.
            # Off-path tasks follow (overlap changes can re-route the
            # path through them), still under the dominance bound.
            order = list(run.critical_path) + [
                n for n in graph.topological_order() if n not in run.critical_path
            ]
            for name in order:
                current = plan[name]
                bound = (
                    standalone[name][current]
                    + self._adjacent_transfer_s(graph, plan, name)
                )
                best_run = run
                best_p = current
                for candidate in self.space:
                    if candidate == current:
                        continue
                    if standalone[name][candidate] >= bound:
                        self.stats.pruned += 1
                        continue
                    trial = dict(plan)
                    trial[name] = candidate
                    trial_run = self._compose(graph, trial, requests, repetitions)
                    if trial_run.median_s < best_run.median_s:
                        best_run = trial_run
                        best_p = candidate
                if best_p != current:
                    plan[name] = best_p
                    run = best_run
                    improved = True
                    self.stats.improvements += 1
            if not improved:
                break

        return GraphPlan.from_dict(plan), run
