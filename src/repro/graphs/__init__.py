"""Task graphs: DAGs of kernels as the unit of work.

The single-kernel layers answer "how should *this launch* be split";
this package lifts the question to HeSP's level — "how should a *DAG
of dependent launches* be scheduled and split, together".  It holds:

* the validated graph model (:mod:`repro.graphs.graph`),
* the composition that turns per-task measurements plus priced tensor
  handoffs into one graph-level run (:mod:`repro.graphs.compose`),
* the scheduling × partitioning co-search and its greedy
  partition-each-task baseline (:mod:`repro.graphs.planner`), and
* pipeline builders deriving realistic chains (and their handoff byte
  counts) from the benchsuite (:mod:`repro.graphs.builders`).

The engine and runner gained graph-shaped entry points
(:meth:`~repro.engine.SweepEngine.measure_graph`,
:meth:`~repro.runtime.measurement.Runner.run_graph`) that route through
:func:`~repro.graphs.compose.compose_graph`, so a single-node graph is
bit-identical — time and energy, memoized and not — to the
single-kernel path it refactors.
"""

from .builders import (
    STAGE_ROLES,
    chain_universe,
    diamond_graph,
    handoff_nbytes,
    pipeline_chain,
)
from .compose import EdgeTransfer, GraphRun, TaskSchedule, compose_graph, edge_transfer
from .graph import TaskEdge, TaskGraph, TaskNode
from .planner import GraphPlan, GraphPlanner, PlannerStats, greedy_plan

__all__ = [
    "TaskNode",
    "TaskEdge",
    "TaskGraph",
    "EdgeTransfer",
    "TaskSchedule",
    "GraphRun",
    "compose_graph",
    "edge_transfer",
    "GraphPlan",
    "GraphPlanner",
    "PlannerStats",
    "greedy_plan",
    "STAGE_ROLES",
    "chain_universe",
    "diamond_graph",
    "handoff_nbytes",
    "pipeline_chain",
]
