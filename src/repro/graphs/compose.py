"""Graph composition: per-task measurements + edge transfers → one run.

One composed execution of a :class:`~repro.graphs.graph.TaskGraph` is a
deterministic list schedule over the machine's devices:

* each task is measured with its planned partitioning through the
  *caller-supplied* measure function — the memoizing
  :meth:`~repro.engine.SweepEngine.measure` or the unmemoized
  :meth:`~repro.runtime.measurement.Runner.run` — so the composed
  timeline is bit-identical on both paths whenever the per-task
  measurements are (which is the engine's own guarantee);
* each edge pays an inter-task transfer priced with the *same* PCIe
  cost model single-kernel buffer copies use today
  (:meth:`~repro.ocl.costmodel.DeviceCostModel.transfer_time_s`):
  bytes resident on a device under both the producer's and the
  consumer's partitioning stay put for free, surplus producer bytes
  pay a device-to-host copy, missing consumer bytes pay a
  host-to-device copy, and host-resident devices never pay at all —
  co-locating a producer/consumer pair is exactly as profitable as
  skipping the equivalent PCIe copy;
* a task starts when its predecessors have finished *and* their
  handoffs have landed *and* every device its partitioning activates
  is free — independent tasks whose partitionings touch disjoint
  device sets overlap, which is the scheduling dimension the planner
  co-searches with the per-task partitionings.

Energy follows the same composition: each task's measured joules
already price race-to-idle over its own span; edge transfers add their
dynamic joules (transfer watts × copy seconds per participating
device); and stretches of the composed timeline where *no* task is
running add platform idle joules, so a graph serialized by transfers
is charged for the silicon it keeps waiting.  Tasks that overlap in
time each keep their full race-to-idle charge — a deliberately
conservative double-count documented in docs/PIPELINES.md.  A
single-node graph has no edges and no stalls: its makespan *and*
energy are bit-identical to the single-kernel measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from ..ocl.costmodel import TransferDirection
from ..partitioning import Partitioning
from .graph import TaskGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ocl.device import Device
    from ..runtime.measurement import MeasuredRun
    from ..runtime.scheduler import ExecutionRequest

__all__ = [
    "EdgeTransfer",
    "TaskSchedule",
    "GraphRun",
    "compose_graph",
    "edge_transfer",
    "node_requests",
]

#: A per-task measure function: (request, partitioning, repetitions) →
#: MeasuredRun.  Both `SweepEngine.measure` and a `functional=False`
#: `Runner.run` satisfy it.
MeasureFn = Callable[..., "MeasuredRun"]


@dataclass(frozen=True)
class EdgeTransfer:
    """One priced tensor handoff: seconds on the link, dynamic joules."""

    src: str
    dst: str
    nbytes: int
    seconds: float
    joules: float


@dataclass(frozen=True)
class TaskSchedule:
    """Where one task landed on the composed timeline."""

    node: str
    partitioning: Partitioning
    #: Instant every input handoff has landed (transfers included).
    ready_s: float
    start_s: float
    finish_s: float

    @property
    def queue_s(self) -> float:
        """Device contention: time spent ready but waiting for devices."""
        return self.start_s - self.ready_s


@dataclass(frozen=True)
class GraphRun:
    """One composed graph execution — the graph-level `MeasuredRun`.

    ``median_s`` / ``energy_j`` mirror the single-kernel
    :class:`~repro.runtime.measurement.MeasuredRun` fields so graph and
    kernel measurements flow through the same serving plumbing; for a
    single-node graph they are bit-identical to it.
    """

    graph: TaskGraph
    plan: tuple[tuple[str, Partitioning], ...]
    median_s: float
    energy_j: float
    schedule: tuple[TaskSchedule, ...]
    transfers: tuple[EdgeTransfer, ...]
    critical_path: tuple[str, ...]
    node_runs: "Mapping[str, MeasuredRun]"
    #: Joules the composed timeline adds on top of the per-task runs:
    #: transfer dynamics plus platform idle over stalled stretches.
    transfer_j: float = 0.0
    stall_j: float = 0.0

    @property
    def makespan_s(self) -> float:
        return self.median_s

    @property
    def transfer_s(self) -> float:
        return sum(t.seconds for t in self.transfers)

    def partitioning_for(self, node: str) -> Partitioning:
        for name, p in self.plan:
            if name == node:
                return p
        raise KeyError(f"no plan entry for task {node!r}")


def node_requests(
    graph: TaskGraph,
    seed: int = 0,
    shared: "dict[tuple[str, int, int], ExecutionRequest] | None" = None,
) -> "dict[str, ExecutionRequest]":
    """One execution request per task, shared across same-key tasks.

    Nodes with the same ``(program, size)`` receive the *same* request
    object — the sweep engine memoizes tapes by request identity, so
    sharing turns repeated pipeline stages into cache hits.  Passing a
    ``shared`` memo (the engine does) extends that identity across
    graphs and calls.
    """
    from ..benchsuite.registry import get_benchmark

    memo = shared if shared is not None else {}
    out: "dict[str, ExecutionRequest]" = {}
    for node in graph.nodes:
        key = (node.program, node.size, seed)
        request = memo.get(key)
        if request is None:
            bench = get_benchmark(node.program)
            request = bench.request(bench.make_instance(node.size, seed=seed))
            memo[key] = request
        out[node.name] = request
    return out


def edge_transfer(
    devices: "Sequence[Device]",
    nbytes: int,
    producer: Partitioning,
    consumer: Partitioning,
) -> tuple[float, float]:
    """Price one tensor handoff; returns (seconds, dynamic joules).

    Bytes are apportioned to devices by integer share (``nbytes × share
    // 100``, deterministic), and ``min(producer, consumer)`` bytes per
    device are resident — already where the consumer needs them.  The
    producer's surplus streams device-to-host first, then the
    consumer's deficit streams host-to-device; each phase is as slow as
    its slowest device (copies within a phase overlap across devices,
    the two phases serialize through host memory).  Host-resident
    devices price every copy at zero, exactly like today's single-kernel
    transfers.
    """
    if producer.num_devices != consumer.num_devices:
        raise ValueError(
            f"producer has {producer.num_devices} device shares, "
            f"consumer has {consumer.num_devices}"
        )
    if len(devices) != producer.num_devices:
        raise ValueError(
            f"partitionings cover {producer.num_devices} devices, "
            f"machine has {len(devices)}"
        )
    d2h = 0.0
    h2d = 0.0
    joules = 0.0
    for index, device in enumerate(devices):
        produced = nbytes * producer.shares[index] // 100
        consumed = nbytes * consumer.shares[index] // 100
        resident = min(produced, consumed)
        up_s = device.cost_model.transfer_time_s(
            produced - resident, TransferDirection.DEVICE_TO_HOST
        )
        down_s = device.cost_model.transfer_time_s(
            consumed - resident, TransferDirection.HOST_TO_DEVICE
        )
        d2h = max(d2h, up_s)
        h2d = max(h2d, down_s)
        joules += device.power_model.transfer_power_w() * (up_s + down_s)
    return d2h + h2d, joules


def _stall_seconds(spans: list[tuple[float, float]], makespan: float) -> float:
    """Seconds of the composed timeline covered by no task execution."""
    if makespan <= 0.0:
        return 0.0
    covered = 0.0
    cursor = 0.0
    for start, finish in sorted(spans):
        start = max(start, cursor)
        if finish > start:
            covered += finish - start
            cursor = finish
    return makespan - covered


def compose_graph(
    graph: TaskGraph,
    plan: Mapping[str, Partitioning],
    requests: "Mapping[str, ExecutionRequest]",
    measure: MeasureFn,
    devices: "Sequence[Device]",
    platform_idle_w: float,
    repetitions: int = 1,
) -> GraphRun:
    """Compose one graph execution from per-task measurements.

    ``measure`` is called once per node in topological order — the
    deterministic order noise streams are sampled in, shared by the
    memoized and unmemoized paths.  ``plan`` and ``requests`` must
    cover every node.
    """
    for node in graph.nodes:
        if node.name not in plan:
            raise ValueError(f"plan misses task {node.name!r}")
        if node.name not in requests:
            raise ValueError(f"no execution request for task {node.name!r}")

    node_runs: dict[str, "MeasuredRun"] = {}
    finish: dict[str, float] = {}
    schedule: list[TaskSchedule] = []
    transfers: list[EdgeTransfer] = []
    transfer_j = 0.0
    device_free = [0.0] * len(devices)
    spans: list[tuple[float, float]] = []
    #: Predecessor that gated each task's start (critical-path walkback);
    #: None means the task started unconstrained (or device-gated).
    gate: dict[str, str | None] = {}

    for name in graph.topological_order():
        partitioning = plan[name]
        run = measure(requests[name], partitioning, repetitions=repetitions)
        node_runs[name] = run
        ready = 0.0
        gating: str | None = None
        for edge in graph.in_edges(name):
            seconds, joules = edge_transfer(
                devices, edge.nbytes, plan[edge.src], partitioning
            )
            transfers.append(
                EdgeTransfer(
                    src=edge.src,
                    dst=edge.dst,
                    nbytes=edge.nbytes,
                    seconds=seconds,
                    joules=joules,
                )
            )
            transfer_j += joules
            landed = finish[edge.src] + seconds
            if landed > ready:
                ready = landed
                gating = edge.src
        active = partitioning.active_devices
        start = ready
        for index in active:
            if device_free[index] > start:
                start = device_free[index]
        end = start + run.median_s
        for index in active:
            device_free[index] = end
        finish[name] = end
        spans.append((start, end))
        gate[name] = gating
        schedule.append(
            TaskSchedule(
                node=name,
                partitioning=partitioning,
                ready_s=ready,
                start_s=start,
                finish_s=end,
            )
        )

    makespan = max(finish.values())
    # Walk the gating predecessors back from the task that set the
    # makespan: the critical path the planner prunes against.
    tail = max(finish, key=lambda n: (finish[n], n))
    path = [tail]
    while gate[path[-1]] is not None:
        path.append(gate[path[-1]])
    path.reverse()

    stall_s = _stall_seconds(spans, makespan)
    stall_j = platform_idle_w * stall_s
    energy = sum(node_runs[n].energy_j for n in graph.topological_order())
    energy += transfer_j + stall_j

    return GraphRun(
        graph=graph,
        plan=tuple((name, plan[name]) for name in graph.topological_order()),
        median_s=makespan,
        energy_j=energy,
        schedule=tuple(schedule),
        transfers=tuple(transfers),
        critical_path=tuple(path),
        node_runs=node_runs,
        transfer_j=transfer_j,
        stall_j=stall_j,
    )
