"""Pipeline builders: stencil→reduce→gemm chains from benchsuite kernels.

The ``pipeline`` workload family and the graph CLI/benchmarks need
realistic chains without hand-writing byte counts: the handoff size of
an edge is derived from what its producer actually *outputs* — the
summed bytes of the producer benchmark's output arrays at its problem
size, the tensor a real pipeline would ship to the next stage.

Stage roles mirror the classic HPC pipeline shape the ISSUE names:
a stencil-ish producer (structured grid), a reduce-ish middle
(bandwidth-bound contraction) and a gemm-ish consumer (compute-bound
dense kernel).  Chains are built from whatever subset of those roles
the caller's key universe actually contains, falling back to plain
consecutive keys so any universe yields *some* pipeline.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from .graph import TaskGraph

__all__ = [
    "STAGE_ROLES",
    "handoff_nbytes",
    "pipeline_chain",
    "diamond_graph",
    "chain_universe",
]

#: Programs eligible for each pipeline stage role, in preference order.
STAGE_ROLES: dict[str, tuple[str, ...]] = {
    "stencil": ("stencil2d", "hotspot", "srad", "conv2d", "pathfinder"),
    "reduce": ("reduction", "dot_product", "histogram", "spmv"),
    "gemm": ("mat_mul", "atax", "mvt", "black_scholes"),
}


@lru_cache(maxsize=512)
def handoff_nbytes(program: str, size: int) -> int:
    """Bytes one task hands to its consumer: its output arrays' size.

    Builds one problem instance (memoized per key — universes are
    small) and sums the bytes of every output buffer; a zero-output
    kernel still hands over at least one element so edges never price
    to exactly nothing by accident.
    """
    from ..benchsuite.registry import get_benchmark

    bench = get_benchmark(program)
    instance = bench.make_instance(size, seed=0)
    total = sum(
        int(instance.arrays[name].nbytes) for name in instance.output_names
    )
    return max(total, 4)


def pipeline_chain(
    stages: Sequence[tuple[str, int]],
    name: str | None = None,
    scale_bytes: float = 1.0,
) -> TaskGraph:
    """A linear pipeline whose edges carry the producers' output bytes.

    ``scale_bytes`` inflates (or deflates) every handoff — pipelines
    shipping batched tensors between stages move more than one
    kernel-output's worth of data per dependency.
    """
    if scale_bytes <= 0:
        raise ValueError("scale_bytes must be positive")
    per_edge = [
        int(handoff_nbytes(program, size) * scale_bytes)
        for program, size in stages[:-1]
    ]
    return TaskGraph.chain(list(stages), per_edge, name=name)


def diamond_graph(
    source: tuple[str, int],
    branches: Sequence[tuple[str, int]],
    sink: tuple[str, int],
    name: str | None = None,
    scale_bytes: float = 1.0,
) -> TaskGraph:
    """A fork/join: source feeds every branch, every branch feeds the sink.

    The shape that exercises the *scheduling* half of the co-search —
    branches with disjoint device placements overlap, branches piled
    onto the same devices serialize.
    """
    if scale_bytes <= 0:
        raise ValueError("scale_bytes must be positive")
    if not branches:
        raise ValueError("a diamond needs at least one branch")
    from .graph import TaskEdge, TaskNode

    nodes = [TaskNode(name="src", program=source[0], size=source[1])]
    edges = []
    src_bytes = int(handoff_nbytes(*source) * scale_bytes)
    for i, (program, size) in enumerate(branches):
        branch_name = f"b{i}"
        nodes.append(TaskNode(name=branch_name, program=program, size=size))
        edges.append(TaskEdge(src="src", dst=branch_name, nbytes=src_bytes))
        edges.append(
            TaskEdge(
                src=branch_name,
                dst="sink",
                nbytes=int(handoff_nbytes(program, size) * scale_bytes),
            )
        )
    nodes.append(TaskNode(name="sink", program=sink[0], size=sink[1]))
    return TaskGraph(
        nodes=tuple(nodes),
        edges=tuple(edges),
        name=name or f"{source[0]}<>{sink[0]}",
    )


def chain_universe(
    keys: Sequence[tuple[str, int]],
    max_chains: int = 8,
    scale_bytes: float = 1.0,
) -> tuple[TaskGraph, ...]:
    """The pipeline-family key universe: chains drawn from serving keys.

    Each chain picks one key per stage role present in ``keys``
    (smallest size per program, preference order of
    :data:`STAGE_ROLES`); successive chains rotate through the
    per-role candidates so the universe holds distinct pipelines.
    When fewer than two roles are represented, consecutive key triples
    form the chains instead — any universe pipelines *somehow*.
    """
    if max_chains < 1:
        raise ValueError("max_chains must be >= 1")
    if not keys:
        raise ValueError("empty key universe")
    by_program: dict[str, list[int]] = {}
    for program, size in keys:
        by_program.setdefault(program, []).append(size)
    role_candidates: list[list[tuple[str, int]]] = []
    for role_programs in STAGE_ROLES.values():
        candidates = [
            (program, min(by_program[program]))
            for program in role_programs
            if program in by_program
        ]
        if candidates:
            role_candidates.append(candidates)
    chains: list[TaskGraph] = []
    if len(role_candidates) >= 2:
        for i in range(max_chains):
            stages = [
                candidates[i % len(candidates)] for candidates in role_candidates
            ]
            graph = pipeline_chain(
                stages,
                name="|".join(p for p, _ in stages),
                scale_bytes=scale_bytes,
            )
            if not any(g.signature == graph.signature for g in chains):
                chains.append(graph)
    else:
        ordered = sorted(set(keys))
        width = min(3, len(ordered))
        for i in range(min(max_chains, len(ordered))):
            stages = [ordered[(i + j) % len(ordered)] for j in range(width)]
            graph = pipeline_chain(
                stages,
                name="|".join(p for p, _ in stages),
                scale_bytes=scale_bytes,
            )
            if not any(g.signature == graph.signature for g in chains):
                chains.append(graph)
    return tuple(chains)
