"""Deterministic random-number helpers.

All randomness in the repository (input generation, measurement noise,
ML initialization) flows through named, derived seeds so that every
experiment is exactly reproducible run-to-run.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "rng_for"]


def derive_seed(*parts: object, base_seed: int = 0) -> int:
    """Derive a stable 63-bit seed from a base seed and a label tuple."""
    h = hashlib.sha256()
    h.update(str(base_seed).encode())
    for p in parts:
        h.update(b"\x1f")
        h.update(repr(p).encode())
    return int.from_bytes(h.digest()[:8], "little") & (2**63 - 1)


def rng_for(*parts: object, base_seed: int = 0) -> np.random.Generator:
    """A NumPy Generator seeded from :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(*parts, base_seed=base_seed))
