"""ASCII table / series rendering for experiment reports.

The experiment harnesses print the same rows and series the paper's
tables and figures report; these helpers keep that output aligned and
diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def _fmt_cell(value: object, ndigits: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{ndigits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    ndigits: int = 3,
) -> str:
    """Render rows as a fixed-width ASCII table."""
    str_rows = [[_fmt_cell(c, ndigits) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out: list[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(sep)
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    ndigits: int = 3,
) -> str:
    """Render one figure series as ``name: (x, y) ...`` pairs."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    pairs = ", ".join(
        f"({_fmt_cell(x, ndigits)}, {y:.{ndigits}f})" for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"
