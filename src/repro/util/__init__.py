"""Shared utilities: ASCII tables, seeded RNG helpers."""

from .rng import derive_seed, rng_for
from .tables import format_series, format_table

__all__ = ["format_table", "format_series", "rng_for", "derive_seed"]
