"""Tests for the IR normalization passes."""

import pytest

from repro.compiler import (
    constant_fold,
    dead_store_elimination,
    run_default_passes,
    simplify_algebra,
)
from repro.inspire import FLOAT, INT, Intent, KernelBuilder, analyze_kernel, const
from repro.inspire import ast as ir
from repro.inspire.visitors import walk


def _consts_in(kernel):
    return [n for n in walk(kernel.body) if isinstance(n, ir.Const)]


class TestConstantFold:
    def test_folds_arithmetic(self):
        b = KernelBuilder("k")
        out = b.buffer("out", FLOAT, Intent.OUT)
        b.store(out, 0, const(2.0, FLOAT) * 3.0 + 4.0)
        folded = constant_fold(b.finish())
        stores = [s for s in walk(folded.body) if isinstance(s, ir.Store)]
        assert isinstance(stores[0].value, ir.Const)
        assert stores[0].value.value == pytest.approx(10.0)

    def test_folds_comparisons(self):
        b = KernelBuilder("k")
        out = b.buffer("out", FLOAT, Intent.OUT)
        with b.if_(const(3) > 2):
            b.store(out, 0, 1.0)
        folded = constant_fold(b.finish())
        cond = [s for s in walk(folded.body) if isinstance(s, ir.If)][0].cond
        assert isinstance(cond, ir.Const) and cond.value is True

    def test_preserves_variables(self):
        b = KernelBuilder("k")
        out = b.buffer("out", FLOAT, Intent.OUT)
        x = b.scalar("x", FLOAT)
        b.store(out, 0, x + 1.0)
        folded = constant_fold(b.finish())
        stores = [s for s in walk(folded.body) if isinstance(s, ir.Store)]
        assert isinstance(stores[0].value, ir.BinOp)

    def test_integer_division_semantics(self):
        b = KernelBuilder("k")
        out = b.buffer("out", INT, Intent.OUT)
        b.store(out, 0, const(7, INT) / 2)
        folded = constant_fold(b.finish())
        stores = [s for s in walk(folded.body) if isinstance(s, ir.Store)]
        assert stores[0].value.value == 3

    def test_division_by_zero_not_folded(self):
        b = KernelBuilder("k")
        out = b.buffer("out", INT, Intent.OUT)
        b.store(out, 0, const(7, INT) / 0)
        folded = constant_fold(b.finish())
        stores = [s for s in walk(folded.body) if isinstance(s, ir.Store)]
        assert isinstance(stores[0].value, ir.BinOp)

    def test_select_on_constant_condition(self):
        b = KernelBuilder("k")
        out = b.buffer("out", FLOAT, Intent.OUT)
        x = b.scalar("x", FLOAT)
        b.store(out, 0, b.select(const(1) > 0, x, x * 2.0))
        folded = constant_fold(b.finish())
        stores = [s for s in walk(folded.body) if isinstance(s, ir.Store)]
        assert isinstance(stores[0].value, ir.Var)


class TestSimplifyAlgebra:
    def test_mul_by_one(self):
        b = KernelBuilder("k")
        out = b.buffer("out", FLOAT, Intent.OUT)
        x = b.scalar("x", FLOAT)
        b.store(out, 0, x * 1.0)
        simp = simplify_algebra(b.finish())
        stores = [s for s in walk(simp.body) if isinstance(s, ir.Store)]
        assert isinstance(stores[0].value, (ir.Var, ir.Cast))

    def test_add_zero(self):
        b = KernelBuilder("k")
        out = b.buffer("out", FLOAT, Intent.OUT)
        x = b.scalar("x", FLOAT)
        b.store(out, 0, x + 0.0)
        simp = simplify_algebra(b.finish())
        stores = [s for s in walk(simp.body) if isinstance(s, ir.Store)]
        assert not isinstance(stores[0].value, ir.BinOp)

    def test_mul_by_zero(self):
        b = KernelBuilder("k")
        out = b.buffer("out", FLOAT, Intent.OUT)
        x = b.scalar("x", FLOAT)
        b.store(out, 0, x * 0.0)
        simp = simplify_algebra(b.finish())
        stores = [s for s in walk(simp.body) if isinstance(s, ir.Store)]
        assert isinstance(stores[0].value, ir.Const)
        assert stores[0].value.value == 0.0

    def test_identity_ops_do_not_inflate_features(self):
        b1 = KernelBuilder("raw")
        out = b1.buffer("out", FLOAT, Intent.OUT)
        x = b1.scalar("x", FLOAT)
        b1.store(out, 0, (x * 1.0 + 0.0) * 1.0)
        normalized = run_default_passes(b1.finish())
        counts = analyze_kernel(normalized).op_counts()
        assert counts.float_ops == 0.0


class TestDeadStoreElimination:
    def test_removes_unused_local(self):
        b = KernelBuilder("k")
        out = b.buffer("out", FLOAT, Intent.OUT)
        x = b.scalar("x", FLOAT)
        b.let("unused", x * 2.0)
        b.store(out, 0, x)
        pruned = dead_store_elimination(b.finish())
        assigns = [s for s in walk(pruned.body) if isinstance(s, ir.Assign)]
        assert not assigns

    def test_keeps_used_local(self):
        b = KernelBuilder("k")
        out = b.buffer("out", FLOAT, Intent.OUT)
        x = b.scalar("x", FLOAT)
        v = b.let("v", x * 2.0)
        b.store(out, 0, v)
        pruned = dead_store_elimination(b.finish())
        assigns = [s for s in walk(pruned.body) if isinstance(s, ir.Assign)]
        assert len(assigns) == 1

    def test_keeps_local_used_in_condition(self):
        b = KernelBuilder("k")
        out = b.buffer("out", FLOAT, Intent.OUT)
        x = b.scalar("x", FLOAT)
        v = b.let("v", x * 2.0)
        with b.if_(v > 0.0):
            b.store(out, 0, 1.0)
        pruned = dead_store_elimination(b.finish())
        assigns = [s for s in walk(pruned.body) if isinstance(s, ir.Assign)]
        assert len(assigns) == 1


class TestPipeline:
    def test_default_passes_preserve_semantics(self, saxpy_kernel):
        import numpy as np

        from repro.inspire import run_kernel

        normalized = run_default_passes(saxpy_kernel)
        x = np.arange(8, dtype=np.float32)
        y1 = np.ones(8, dtype=np.float32)
        y2 = np.ones(8, dtype=np.float32)
        run_kernel(saxpy_kernel, (8,), {"x": x, "y": y1}, {"a": 2.0, "n": 8})
        run_kernel(normalized, (8,), {"x": x, "y": y2}, {"a": 2.0, "n": 8})
        assert np.array_equal(y1, y2)

    def test_passes_idempotent(self, saxpy_kernel):
        once = run_default_passes(saxpy_kernel)
        twice = run_default_passes(once)
        assert once == twice
