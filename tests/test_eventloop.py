"""The event-driven serving core: queueing invariants, SLOs, histograms.

The property tests here are the harness the tentpole is gated on: for
every workload family the simulated-time loop must conserve requests
(arrivals == completions + shed + in-flight at drain), never serve a
request faster than its service time, preserve FIFO order within a
replica queue, and keep the simulated clock monotone.  The determinism
golden test extends the repo's memoized-vs-unmemoized bit-identity
guarantee from energy totals to the full latency histograms and SLO
counters.
"""

import math

import numpy as np
import pytest

from repro.benchsuite import get_benchmark
from repro.core import TrainingConfig, train_system
from repro.fleet import FleetRouter
from repro.machines import MC1, fleet_platforms
from repro.runtime.measurement import SessionStats
from repro.serving import (
    DEFAULT_TENANT,
    EventLoop,
    EventLoopConfig,
    LatencyHistogram,
    PartitioningService,
    QUANTILE_RELATIVE_ERROR,
    SHED_POLICIES,
    ServiceConfig,
    ServingRequest,
    SLOConfig,
    key_universe,
)
from repro.workloads import (
    WORKLOAD_FAMILIES,
    WorkloadSpec,
    arrival_times,
    make_workload,
    rate_factors,
    stream_requests,
    stream_timed_items,
)

BENCHMARKS = tuple(get_benchmark(n) for n in ("vec_add", "mat_mul"))
TRAIN = TrainingConfig(repetitions=1, max_sizes=2)
KEYS = key_universe(BENCHMARKS, max_sizes=2)


@pytest.fixture(scope="module")
def system():
    """One noise-free trained system shared by every loop in the module.

    With zero measurement noise an execution's timing depends only on
    (request, partitioning, drift state), so services built over the
    shared system behave identically to services over private ones —
    and the module avoids retraining per test.
    """
    return train_system(MC1, BENCHMARKS, model_kind="knn", config=TRAIN)


def _loop(system, memoize=True, **config_kwargs):
    service = PartitioningService(system, ServiceConfig(memoize=memoize))
    return EventLoop.for_service(service, EventLoopConfig(**config_kwargs))


def _spec(family, seed, num_requests=80, **kwargs):
    return WorkloadSpec(
        family=family,
        num_requests=num_requests,
        skew=1.2,
        seed=seed,
        rate_rps=kwargs.pop("rate_rps", 2000.0),
        **kwargs,
    )


def _check_invariants(stats, records):
    """The four queueing invariants, over one drained run."""
    # Conservation: at drain nothing is in flight and every arrival is
    # accounted for as a completion or a shed.
    assert stats.in_flight == 0
    assert stats.arrivals == stats.completed + stats.shed
    assert stats.completed == len(records)
    # Per-request causality and the latency >= service-time bound.
    last_finish = 0.0
    for r in records:
        assert r.arrival_s <= r.start_s <= r.finish_s
        assert r.queue_s >= 0.0
        assert r.latency_s >= r.service_s or math.isclose(
            r.latency_s, r.service_s, rel_tol=1e-12
        )
        # Monotone simulated clock: completions are observed in
        # non-decreasing finish order.
        assert r.finish_s >= last_finish
        last_finish = r.finish_s
    assert stats.clock_s >= last_finish
    # FIFO within each replica: a single-server queue starts requests
    # in arrival order, so per replica both start times and arrival
    # times are non-decreasing along the completion sequence.
    by_replica = {}
    for r in records:
        by_replica.setdefault(r.replica_index, []).append(r)
    for rs in by_replica.values():
        starts = [r.start_s for r in rs]
        arrivals = [r.arrival_s for r in rs]
        assert starts == sorted(starts)
        assert arrivals == sorted(arrivals)


@pytest.mark.slow
@pytest.mark.parametrize("family", WORKLOAD_FAMILIES)
@pytest.mark.parametrize("seed", [3, 11])
class TestQueueingInvariants:
    def test_invariants_hold(self, system, family, seed):
        spec = _spec(family, seed)
        loop = _loop(system)
        records = []
        stats = loop.run(stream_timed_items(spec, KEYS), on_complete=records.append)
        assert stats.arrivals == spec.num_requests
        assert stats.shed == 0  # no shedding configured
        _check_invariants(stats, records)

    def test_invariants_hold_under_shedding(self, system, family, seed):
        # Arrivals far above capacity force the deadline policy to
        # shed; conservation must account for every refused request.
        spec = _spec(family, seed, rate_rps=50_000.0)
        loop = _loop(
            system, shed_policy="deadline", slo=SLOConfig(target_s=0.002)
        )
        records = []
        stats = loop.run(stream_timed_items(spec, KEYS), on_complete=records.append)
        assert stats.arrivals == spec.num_requests
        assert stats.shed > 0
        assert stats.slo.shed == stats.shed
        _check_invariants(stats, records)


@pytest.mark.slow
def test_fleet_invariants_and_per_replica_fifo(system):
    # Two replicas, least-loaded placement: the invariants must hold
    # per replica queue, not just for the single-service loop.
    services = [
        PartitioningService(
            train_system(p, BENCHMARKS, model_kind="knn", config=TRAIN),
            ServiceConfig(),
        )
        for p in fleet_platforms(2)
    ]
    router = FleetRouter(services, policy="least-loaded")
    loop = EventLoop.for_fleet(router, EventLoopConfig())
    spec = _spec("flash-crowd", seed=7, rate_rps=20_000.0)
    records = []
    stats = loop.run(stream_timed_items(spec, KEYS), on_complete=records.append)
    _check_invariants(stats, records)
    assert len({r.replica_index for r in records}) == 2
    assert sum(stats.replica_completed) == stats.completed
    assert router.stats().requests == spec.num_requests


class TestDeterminismGolden:
    """Same trace + seed ⇒ bit-identical accounting, memoized or not."""

    @pytest.mark.slow
    def test_memoized_matches_unmemoized(self, system):
        spec = _spec("phase-shift", seed=5)
        slo = SLOConfig(target_s=0.001)
        results = []
        for memoize in (True, False):
            loop = _loop(system, memoize=memoize, slo=slo)
            results.append(loop.run(stream_timed_items(spec, KEYS)))
        a, b = results
        # Histograms are integer counters over identical latencies:
        # equality must be exact, not approximate.
        for hist_a, hist_b in (
            (a.latency, b.latency),
            (a.queue_wait, b.queue_wait),
            (a.service, b.service),
        ):
            assert hist_a.counts == hist_b.counts
            assert hist_a.zeros == hist_b.zeros
            assert hist_a.count == hist_b.count
            assert hist_a.sum_s == hist_b.sum_s
            assert hist_a.min_s == hist_b.min_s
            assert hist_a.max_s == hist_b.max_s
        assert a.slo.snapshot() == b.slo.snapshot()
        assert a.clock_s == b.clock_s
        assert a.idle_energy_j == b.idle_energy_j

    @pytest.mark.slow
    def test_same_seed_reproduces_run(self, system):
        spec = _spec("diurnal", seed=9)
        runs = [
            _loop(system).run(stream_timed_items(spec, KEYS)) for _ in range(2)
        ]
        assert runs[0].latency.counts == runs[1].latency.counts
        assert runs[0].latency.sum_s == runs[1].latency.sum_s
        assert runs[0].clock_s == runs[1].clock_s


class TestStreamingQuantileAccuracy:
    def test_quantiles_within_documented_bound(self):
        rng = np.random.default_rng(42)
        values = rng.lognormal(mean=-6.0, sigma=1.5, size=2000)
        hist = LatencyHistogram()
        for v in values:
            hist.record(float(v))
        ordered = np.sort(values)
        for q in (0.50, 0.95, 0.99):
            exact = float(ordered[math.ceil(q * len(values)) - 1])
            estimate = hist.quantile(q)
            assert abs(estimate - exact) <= QUANTILE_RELATIVE_ERROR * exact

    def test_exact_zeros_and_extrema(self):
        hist = LatencyHistogram()
        for v in (0.0, 0.0, 0.0, 1e-3):
            hist.record(v)
        assert hist.zeros == 3
        assert hist.quantile(0.5) == 0.0
        assert hist.min_s == 0.0
        assert hist.max_s == 1e-3
        assert hist.quantile(1.0) == pytest.approx(1e-3, rel=QUANTILE_RELATIVE_ERROR)

    def test_merge_matches_single_stream(self):
        rng = np.random.default_rng(7)
        values = rng.exponential(1e-3, size=400)
        whole = LatencyHistogram()
        left, right = LatencyHistogram(), LatencyHistogram()
        for i, v in enumerate(values):
            whole.record(float(v))
            (left if i % 2 == 0 else right).record(float(v))
        left.merge(right)
        assert left.counts == whole.counts
        assert left.count == whole.count
        assert left.min_s == whole.min_s
        assert left.max_s == whole.max_s

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1e-9)

    def test_quantile_edges_are_exact(self):
        hist = LatencyHistogram()
        for v in (3e-4, 1e-3, 7e-3):
            hist.record(v)
        # q=0 is the exact observed minimum, q=1 clamps to the exact
        # observed maximum — neither smears into a bucket midpoint.
        assert hist.quantile(0.0) == 3e-4
        assert hist.quantile(1.0) == 7e-3

    def test_empty_histogram_reports_zero_everywhere(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) == 0.0
        assert hist.mean_s == 0.0
        d = hist.to_dict()
        assert d["count"] == 0 and d["min_s"] == 0.0 and d["max_s"] == 0.0

    def test_quantile_rejects_out_of_range(self):
        hist = LatencyHistogram()
        hist.record(1e-3)
        for q in (-0.01, 1.01):
            with pytest.raises(ValueError, match=r"\[0, 1\]"):
                hist.quantile(q)

    def test_merge_disjoint_ranges_roundtrips_through_to_dict(self):
        # Two histograms whose observations occupy disjoint bucket
        # ranges (sub-millisecond vs multi-second): the merge must
        # report exactly what one stream over the union would, all the
        # way through the JSON summary.
        small = [2e-6 * (1 + i) for i in range(50)]
        large = [2.0 * (1 + i) for i in range(50)]
        left, right, whole = (
            LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        )
        for v in small:
            left.record(v)
            whole.record(v)
        for v in large:
            right.record(v)
            whole.record(v)
        assert not any(
            lc and rc for lc, rc in zip(left.counts, right.counts)
        )
        left.merge(right)
        assert left.counts == whole.counts
        assert left.to_dict() == whole.to_dict()
        restored = LatencyHistogram.from_state(left.state_dict())
        assert restored.counts == whole.counts
        assert restored.to_dict() == whole.to_dict()
        assert restored.min_s == whole.min_s
        assert restored.max_s == whole.max_s

    def test_state_dict_roundtrips_empty(self):
        restored = LatencyHistogram.from_state(
            LatencyHistogram().state_dict()
        )
        assert restored.count == 0
        assert restored.to_dict() == LatencyHistogram().to_dict()
        with pytest.raises(ValueError, match="buckets"):
            LatencyHistogram.from_state({"counts": [0, 1]})


class TestStatsDictConservation:
    def test_to_dict_roundtrip_preserves_conservation(self, system):
        """Conservation must hold on the serialized dict form too."""
        import json

        from repro.faults import FaultSchedule, FaultSpec

        services = [
            PartitioningService(
                train_system(p, BENCHMARKS, model_kind="knn", config=TRAIN),
                ServiceConfig(),
            )
            for p in fleet_platforms(2)
        ]
        router = FleetRouter(services, policy="least-loaded")
        loop = EventLoop.for_fleet(
            router,
            EventLoopConfig(
                faults=FaultSchedule(
                    specs=(
                        FaultSpec(kind="straggler", at_s=0.0, duration_s=0.05,
                                  magnitude=6.0, replica=0),
                        FaultSpec(kind="error", at_s=0.0, duration_s=1.0,
                                  magnitude=0.1),
                    ),
                    seed=3,
                ),
                max_retries=2,
                speculate_at=0.9,
                speculate_min_completions=8,
                slo=SLOConfig(target_s=0.05),
                shed_policy="deadline",
            ),
        )
        spec = _spec("flash-crowd", seed=7, rate_rps=20_000.0)
        stats = loop.run(stream_timed_items(spec, KEYS))
        # Round-trip the summary through JSON and reconstruct the
        # accounting table from the dict alone.
        d = json.loads(json.dumps(stats.to_dict()))
        faults = d["faults"]
        assert d["arrivals"] + faults["speculations"] == (
            d["completed"] + d["shed"] + d["failed"]
            + faults["cancelled_speculative"]
        )
        assert d["arrivals"] == stats.arrivals
        assert faults["speculations"] == stats.speculations
        assert d["latency"]["count"] == d["completed"]
        assert sum(t["completed"] for t in d["tenants"].values()) == (
            d["completed"]
        )


class TestSheddingPolicies:
    def test_priority_protects_premium_tenant(self, system):
        requests = [
            ServingRequest(
                request_id=i,
                program="vec_add",
                size=BENCHMARKS[0].problem_sizes()[0],
                tenant="premium" if i % 2 == 0 else "batch",
            )
            for i in range(60)
        ]
        times = [i * 1e-6 for i in range(60)]  # far above capacity
        loop = _loop(
            system,
            shed_policy="priority",
            slo=SLOConfig(
                target_s=0.002,
                tenant_priorities=(("premium", 1),),
                shed_below_priority=1,
            ),
        )
        stats = loop.run(zip(times, requests))
        tenants = stats.slo.snapshot()
        assert tenants["premium"]["shed"] == 0
        assert tenants["batch"]["shed"] > 0
        assert stats.arrivals == stats.completed + stats.shed

    def test_idle_replica_always_admits(self, system):
        """A tight SLO must not shed everything before the EWMA calibrates.

        With an SLO below the (pessimistic) initial service estimate, a
        non-work-conserving policy would shed every arrival forever —
        nothing completes, so the estimate never corrects.  Admitting
        into an idle replica bootstraps the estimator and lets sparse
        traffic through.
        """
        requests = [
            ServingRequest(
                request_id=i,
                program="vec_add",
                size=BENCHMARKS[0].problem_sizes()[0],
            )
            for i in range(20)
        ]
        times = [i * 0.1 for i in range(20)]  # sparse: replica idle each time
        loop = _loop(system, shed_policy="deadline", slo=SLOConfig(target_s=5e-4))
        stats = loop.run(zip(times, requests))
        assert stats.shed == 0
        assert stats.completed == 20

    def test_none_policy_never_sheds(self, system):
        spec = _spec("stationary", seed=1, num_requests=30, rate_rps=100_000.0)
        stats = _loop(system).run(stream_timed_items(spec, KEYS))
        assert stats.shed == 0
        assert stats.completed == 30

    def test_policies_constant_is_exhaustive(self):
        assert set(SHED_POLICIES) == {"none", "deadline", "priority"}

    def test_shed_policy_requires_target(self):
        with pytest.raises(ValueError, match="target"):
            EventLoopConfig(shed_policy="deadline")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="shed policy"):
            EventLoopConfig(shed_policy="drop-everything")


class TestLoopContract:
    def test_loop_is_single_use(self, system):
        spec = _spec("stationary", seed=2, num_requests=5)
        loop = _loop(system)
        loop.run(stream_timed_items(spec, KEYS))
        with pytest.raises(RuntimeError, match="single-use"):
            loop.run(stream_timed_items(spec, KEYS))

    def test_decreasing_timestamps_rejected(self, system):
        request = ServingRequest(
            request_id=0,
            program="vec_add",
            size=BENCHMARKS[0].problem_sizes()[0],
        )
        loop = _loop(system)
        with pytest.raises(ValueError, match="non-decreasing"):
            loop.run([(1.0, request), (0.5, request)])

    def test_drift_without_handler_rejected(self, system):
        spec = _spec("stationary", seed=2, num_requests=4)
        spec = WorkloadSpec(
            family="stationary",
            num_requests=4,
            seed=2,
            drift_events=(
                __import__("repro.workloads", fromlist=["DriftEvent"]).DriftEvent(
                    at_request=1, scale=0.5
                ),
            ),
        )
        loop = _loop(system)
        with pytest.raises(ValueError, match="drift_handler"):
            loop.run(stream_timed_items(spec, KEYS))

    def test_tenant_defaults_on_requests(self):
        request = ServingRequest(request_id=0, program="vec_add", size=64)
        assert request.tenant == DEFAULT_TENANT


class TestSimulatedTimeEnergy:
    def test_idle_spans_follow_simulated_time(self, system):
        # A sparse arrival stream is almost all idle: the runner's
        # session must price (clock - busy) seconds of loop idle.
        spec = _spec("stationary", seed=4, num_requests=20, rate_rps=50.0)
        service = PartitioningService(system, ServiceConfig())
        before = service.system.runner.stats.loop_idle_s
        loop = EventLoop.for_service(service, EventLoopConfig())
        stats = loop.run(stream_timed_items(spec, KEYS))
        idle = service.system.runner.stats.loop_idle_s - before
        busy = sum(stats.replica_busy_s)
        assert idle == pytest.approx(stats.clock_s - busy)
        assert stats.idle_energy_j > 0.0
        assert math.isfinite(stats.idle_energy_j)

    def test_record_idle_accumulates_and_validates(self):
        stats = SessionStats()
        stats.record_idle(2.0, 10.0)
        assert stats.loop_idle_s == 2.0
        assert stats.loop_idle_j == 20.0
        assert stats.energy_j == 20.0
        with pytest.raises(ValueError):
            stats.record_idle(-1.0, 10.0)
        with pytest.raises(ValueError):
            stats.record_idle(1.0, -10.0)

    def test_metering_can_be_disabled(self, system):
        spec = _spec("stationary", seed=4, num_requests=10, rate_rps=50.0)
        service = PartitioningService(system, ServiceConfig())
        before = service.system.runner.stats.loop_idle_s
        loop = EventLoop.for_service(service, EventLoopConfig(meter_idle=False))
        stats = loop.run(stream_timed_items(spec, KEYS))
        assert service.system.runner.stats.loop_idle_s == before
        assert stats.idle_energy_j == 0.0


class TestArrivalProcesses:
    def test_sequential_has_no_timestamps(self):
        spec = WorkloadSpec(num_requests=10, arrival="sequential")
        with pytest.raises(ValueError, match="sequential"):
            arrival_times(spec)

    def test_uniform_spacing_matches_rate(self):
        spec = WorkloadSpec(num_requests=8, arrival="uniform", rate_rps=100.0)
        times = arrival_times(spec)
        gaps = np.diff(np.concatenate([[0.0], times]))
        assert np.allclose(gaps, 0.01)

    def test_poisson_is_seeded_and_monotone(self):
        spec = WorkloadSpec(num_requests=200, arrival="poisson", seed=13)
        a, b = arrival_times(spec), arrival_times(spec)
        assert np.array_equal(a, b)
        assert np.all(np.diff(a) >= 0)
        other = arrival_times(
            WorkloadSpec(num_requests=200, arrival="poisson", seed=14)
        )
        assert not np.array_equal(a, other)

    def test_flash_crowd_bursts_arrive_faster(self):
        spec = WorkloadSpec(
            family="flash-crowd",
            num_requests=100,
            burst_every=20,
            burst_length=5,
            burst_rate=4.0,
        )
        factors = rate_factors(spec)
        assert factors[20] == 4.0 and factors[24] == 4.0
        assert factors[0] == 1.0 and factors[25] == 1.0

    def test_diurnal_rate_breathes_with_the_skew_cycle(self):
        spec = WorkloadSpec(family="diurnal", num_requests=100, period=100)
        factors = rate_factors(spec)
        assert factors[0] == pytest.approx(0.5)  # trough
        assert factors[50] == pytest.approx(1.5)  # peak
        assert factors.min() >= 0.5 and factors.max() <= 1.5

    def test_unknown_arrival_rejected(self):
        with pytest.raises(ValueError, match="arrival"):
            WorkloadSpec(arrival="bursty")


@pytest.mark.parametrize("family", WORKLOAD_FAMILIES)
def test_streamed_requests_match_materialized(family):
    spec = _spec(family, seed=21, num_requests=60)
    workload = make_workload(spec, KEYS)
    assert tuple(stream_requests(spec, KEYS)) == workload.requests


def test_stream_timed_items_interleaves_drift():
    from repro.workloads import DriftEvent

    spec = WorkloadSpec(
        family="stationary",
        num_requests=6,
        seed=3,
        arrival="uniform",
        rate_rps=100.0,
        drift_events=(
            DriftEvent(at_request=2, scale=0.5),
            DriftEvent(at_request=99, scale=2.0),
        ),
    )
    items = list(stream_timed_items(spec, KEYS))
    assert len(items) == 8
    times = [t for t, _ in items]
    assert times == sorted(times)
    kinds = [type(payload).__name__ for _, payload in items]
    assert kinds[2] == "DriftEvent"  # fires before request index 2
    assert kinds[-1] == "DriftEvent"  # trailing event after the trace
    # Workload.timed_items agrees with the streamed feed.
    workload = make_workload(spec, KEYS)
    assert [
        (t, p) for t, p in workload.timed_items()
    ] == items
