"""Tests for the serving layer: traces, dispatch and the service loop."""

import math

import pytest

from repro.benchsuite import get_benchmark
from repro.core import TrainingConfig, train_system
from repro.machines import MC2
from repro.partitioning import Partitioning, partition_space
from repro.serving import (
    BatchScheduler,
    PartitioningService,
    ServiceConfig,
    ServingRequest,
    key_universe,
    zipf_trace,
)


class TestTrace:
    def _keys(self):
        return key_universe(
            tuple(get_benchmark(n) for n in ("vec_add", "mat_mul")), max_sizes=2
        )

    def test_key_universe_caps_ladders(self):
        keys = self._keys()
        assert len(keys) == 4
        assert all(name in ("vec_add", "mat_mul") for name, _size in keys)

    def test_trace_is_deterministic(self):
        keys = self._keys()
        assert zipf_trace(keys, 50, seed=7) == zipf_trace(keys, 50, seed=7)
        assert zipf_trace(keys, 50, seed=7) != zipf_trace(keys, 50, seed=8)

    def test_trace_is_skewed(self):
        keys = key_universe(
            tuple(get_benchmark(n) for n in ("vec_add", "mat_mul", "saxpy")),
            max_sizes=3,
        )
        trace = zipf_trace(keys, 500, skew=1.5, seed=0)
        counts: dict[tuple[str, int], int] = {}
        for r in trace:
            counts[r.key] = counts.get(r.key, 0) + 1
        top = max(counts.values())
        assert top > 500 / len(keys) * 2  # the head dominates a uniform share

    def test_bad_arguments_rejected(self):
        keys = self._keys()
        with pytest.raises(ValueError):
            zipf_trace(keys, -1)
        with pytest.raises(ValueError):
            zipf_trace(keys, 10, skew=0.0)
        with pytest.raises(ValueError):
            key_universe(())


class TestBatchScheduler:
    def test_disjoint_devices_overlap(self):
        sched = BatchScheduler(num_devices=3)
        a = sched.dispatch(Partitioning((100, 0, 0)), 1.0)
        b = sched.dispatch(Partitioning((0, 50, 50)), 2.0)
        assert a.start_s == 0.0 and b.start_s == 0.0  # run concurrently
        assert sched.makespan_s == 2.0
        assert sched.throughput_rps() == pytest.approx(1.0)

    def test_shared_device_serializes(self):
        sched = BatchScheduler(num_devices=3)
        sched.dispatch(Partitioning((50, 50, 0)), 1.0)
        slot = sched.dispatch(Partitioning((0, 100, 0)), 1.0)
        assert slot.start_s == 1.0
        assert sched.makespan_s == 2.0

    def test_utilization_accounts_busy_time(self):
        sched = BatchScheduler(num_devices=2)
        sched.dispatch(Partitioning((100, 0)), 1.0)
        sched.dispatch(Partitioning((0, 100)), 4.0)
        assert sched.utilization() == pytest.approx((0.25, 1.0))

    def test_device_count_mismatch_rejected(self):
        sched = BatchScheduler(num_devices=2)
        with pytest.raises(ValueError):
            sched.dispatch(Partitioning((100, 0, 0)), 1.0)

    def test_all_zero_duration_runs_report_inf_not_zero(self):
        # Regression: dispatched > 0 with span == 0 used to report
        # 0.0 req/s, indistinguishable from an idle scheduler.
        sched = BatchScheduler(num_devices=2)
        sched.dispatch(Partitioning((100, 0)), 0.0)
        sched.dispatch(Partitioning((0, 100)), 0.0)
        assert sched.dispatched == 2
        assert sched.zero_duration == 2
        t = sched.throughput_rps()
        assert math.isinf(t) and t > 0
        u = sched.utilization()
        assert u == (0.0, 0.0)
        assert not any(math.isnan(x) for x in u)

    def test_idle_scheduler_still_reports_zero(self):
        sched = BatchScheduler(num_devices=2)
        assert sched.throughput_rps() == 0.0
        assert sched.zero_duration == 0

    def test_mixed_zero_duration_runs_are_counted(self):
        sched = BatchScheduler(num_devices=2)
        sched.dispatch(Partitioning((100, 0)), 0.0)
        sched.dispatch(Partitioning((100, 0)), 2.0)
        assert sched.zero_duration == 1
        assert sched.throughput_rps() == pytest.approx(1.0)


@pytest.fixture(scope="module")
def small_system():
    """A system trained on two programs; everything else arrives cold."""
    benchmarks = tuple(get_benchmark(n) for n in ("vec_add", "mat_mul"))
    return train_system(
        MC2,
        benchmarks,
        model_kind="knn",
        config=TrainingConfig(repetitions=1, max_sizes=2),
    )


def _request(i, program, size):
    return ServingRequest(request_id=i, program=program, size=size)


class TestPartitioningService:
    def test_repeat_key_hits_cache(self, small_system):
        service = PartitioningService(small_system, ServiceConfig())
        size = get_benchmark("vec_add").problem_sizes()[0]
        first = service.submit(_request(0, "vec_add", size))
        second = service.submit(_request(1, "vec_add", size))
        assert not first.cache_hit
        assert second.cache_hit
        assert second.partitioning == first.partitioning
        assert service.cache.stats.hits == 1

    def test_every_run_lands_in_database(self, small_system):
        service = PartitioningService(small_system, ServiceConfig())
        db = small_system.database
        size = get_benchmark("saxpy").problem_sizes()[0]
        assert db.record_for("mc2", "saxpy", size) is None
        service.submit(_request(0, "saxpy", size))
        record = db.record_for("mc2", "saxpy", size)
        assert record is not None
        assert record.best_label in record.timings

    def test_cold_key_triggers_local_search(self, small_system):
        service = PartitioningService(
            small_system, ServiceConfig(validate_cold_keys=True)
        )
        size = get_benchmark("triad").problem_sizes()[0]
        response = service.submit(_request(0, "triad", size))
        # The search measured the predicted point plus its neighbours.
        record = small_system.database.record_for("mc2", "triad", size)
        assert record is not None
        assert len(record.timings) > 1
        assert service.stats.cold_validations == 1
        # Whatever won the local search is what the service answers with.
        assert response.partitioning.label == record.best_label

    def test_adaptation_refits_and_invalidates_cache(self, small_system):
        # mandelbrot at a large size is far outside the (vec_add, mat_mul)
        # training distribution, so the cold-key search finds a better
        # partitioning than the misprediction and the model refits.
        service = PartitioningService(
            small_system,
            ServiceConfig(refit_interval=1, validate_cold_keys=True),
        )
        warm_size = get_benchmark("vec_add").problem_sizes()[0]
        service.submit(_request(0, "vec_add", warm_size))
        assert ("mc2", "vec_add", warm_size) in service.cache

        size = get_benchmark("mandelbrot").problem_sizes()[-1]
        response = service.submit(_request(1, "mandelbrot", size))
        assert response.adapted
        assert response.improvement_s > 0
        assert service.stats.refits >= 1
        # The refit invalidated the warm key but pinned the validated one.
        assert ("mc2", "vec_add", warm_size) not in service.cache
        assert ("mc2", "mandelbrot", size) in service.cache
        assert service.cache.get(("mc2", "mandelbrot", size)) == response.partitioning

    def test_off_grid_adaptation_step_rejected(self, small_system):
        # Regression: an off-grid adaptation_step let _adapt pin a
        # neighborhood() winner outside partition_space, whose label
        # could never match a model class after a refit.
        with pytest.raises(ValueError, match="off the trained"):
            PartitioningService(small_system, ServiceConfig(adaptation_step=15))
        with pytest.raises(ValueError, match="off the trained"):
            PartitioningService(small_system, ServiceConfig(adaptation_step=7))

    def test_grid_multiple_adaptation_step_accepted(self, small_system):
        # A multiple of the trained step keeps every local-search move
        # on the trained grid.
        service = PartitioningService(
            small_system, ServiceConfig(adaptation_step=20, refit_interval=100)
        )
        size = get_benchmark("mandelbrot").problem_sizes()[-1]
        service.submit(_request(0, "mandelbrot", size))
        grid = {p.label for p in partition_space(3, 10)}
        record = service.system.database.record_for("mc2", "mandelbrot", size)
        assert record is not None
        assert set(record.timings) <= grid

    def test_adaptation_step_range_validated_by_config(self):
        with pytest.raises(ValueError, match="adaptation_step"):
            ServiceConfig(adaptation_step=0)
        with pytest.raises(ValueError, match="adaptation_step"):
            ServiceConfig(adaptation_step=101)

    def test_validated_winner_survives_eviction(self):
        # An adapted key that falls out of the LRU cache must come back
        # from the validated store, not from the (wrong) model.  Uses a
        # private system: the shared fixture's model may already have
        # been refit on mandelbrot by other tests.
        system = train_system(
            MC2,
            tuple(get_benchmark(n) for n in ("vec_add", "mat_mul")),
            model_kind="knn",
            config=TrainingConfig(repetitions=1, max_sizes=2),
        )
        service = PartitioningService(
            system,
            ServiceConfig(cache_capacity=1, refit_interval=100),
        )
        size = get_benchmark("mandelbrot").problem_sizes()[-1]
        adapted = service.submit(_request(0, "mandelbrot", size))
        assert adapted.adapted
        warm_size = get_benchmark("vec_add").problem_sizes()[0]
        service.submit(_request(1, "vec_add", warm_size))  # evicts mandelbrot
        again = service.submit(_request(2, "mandelbrot", size))
        assert not again.cache_hit
        assert again.partitioning == adapted.partitioning

    def test_validated_restore_refills_cache_after_eviction(self):
        # The _validated restore path must also *re-insert* the winner,
        # so the key goes back to being a plain cache hit afterwards.
        system = train_system(
            MC2,
            tuple(get_benchmark(n) for n in ("vec_add", "mat_mul")),
            model_kind="knn",
            config=TrainingConfig(repetitions=1, max_sizes=2),
        )
        service = PartitioningService(
            system, ServiceConfig(cache_capacity=1, refit_interval=100)
        )
        size = get_benchmark("mandelbrot").problem_sizes()[-1]
        adapted = service.submit(_request(0, "mandelbrot", size))
        assert adapted.adapted
        warm_size = get_benchmark("vec_add").problem_sizes()[0]
        service.submit(_request(1, "vec_add", warm_size))  # evicts mandelbrot
        evictions_before = service.cache.stats.evictions
        assert evictions_before >= 1
        restored = service.submit(_request(2, "mandelbrot", size))
        assert not restored.cache_hit
        assert restored.partitioning == adapted.partitioning
        # The restore put the key back (evicting vec_add in turn) ...
        assert ("mc2", "mandelbrot", size) in service.cache
        assert service.cache.stats.evictions == evictions_before + 1
        # ... so the next request is an ordinary hit on the winner.
        again = service.submit(_request(3, "mandelbrot", size))
        assert again.cache_hit
        assert again.partitioning == adapted.partitioning

    def test_adaptations_bounded_per_key(self, small_system):
        service = PartitioningService(
            small_system,
            ServiceConfig(max_adaptations_per_key=1, refit_interval=100),
        )
        size = get_benchmark("mandelbrot").problem_sizes()[-1]
        service.submit(_request(0, "mandelbrot", size))
        searches_after_first = service.system.runner.stats.executions
        service.submit(_request(1, "mandelbrot", size))
        # The second submit measures exactly once: no second search.
        assert service.system.runner.stats.executions == searches_after_first + 1

    def test_serve_trace_reports_responses(self, small_system):
        service = PartitioningService(small_system, ServiceConfig())
        keys = key_universe(
            [get_benchmark(n) for n in ("vec_add", "mat_mul")], max_sizes=2
        )
        # serve accepts any Sequence, not just tuples.
        trace = list(zipf_trace(keys, 30, seed=3))
        responses = service.serve(trace)
        assert len(responses) == 30
        assert service.stats.requests == 30
        assert service.scheduler.dispatched == 30
        assert service.cache.stats.hit_rate > 0.5  # 4 keys, 30 requests


class TestSubmitMany:
    def _fresh_system(self):
        # Private trained system per service: serving mutates the
        # database, so equivalence runs need independent twins.
        return train_system(
            MC2,
            tuple(get_benchmark(n) for n in ("vec_add", "mat_mul")),
            model_kind="knn",
            config=TrainingConfig(repetitions=1, max_sizes=2),
        )

    def _trace(self, n=60):
        keys = key_universe(
            [get_benchmark(p) for p in ("vec_add", "mat_mul", "saxpy", "mandelbrot")],
            max_sizes=2,
        )
        return zipf_trace(keys, n, skew=1.2, seed=5)

    def test_batched_matches_sequential(self):
        """submit_many ≡ serve at noise_sigma=0: same decisions, same
        measurements, same cache accounting — only cheaper."""
        trace = self._trace()
        sequential = PartitioningService(self._fresh_system(), ServiceConfig())
        batched = PartitioningService(self._fresh_system(), ServiceConfig())
        r_seq = sequential.serve(trace)
        r_bat = batched.submit_many(list(trace))
        assert len(r_bat) == len(r_seq)
        for a, b in zip(r_seq, r_bat):
            assert a.partitioning == b.partitioning
            assert a.cache_hit == b.cache_hit
            assert a.measured_s == b.measured_s
            assert a.adapted == b.adapted
        assert batched.stats == sequential.stats
        assert batched.cache.stats == sequential.cache.stats

    def test_batched_matches_sequential_across_refits(self):
        """Mid-trace refits invalidate prefetched predictions."""
        trace = self._trace(40)
        config = ServiceConfig(refit_interval=1)  # refit on every adaptation
        sequential = PartitioningService(self._fresh_system(), config)
        batched = PartitioningService(self._fresh_system(), config)
        r_seq = sequential.serve(trace)
        r_bat = batched.submit_many(trace)
        assert sequential.stats.refits >= 1  # the scenario actually refits
        assert [r.partitioning for r in r_bat] == [r.partitioning for r in r_seq]
        assert batched.stats == sequential.stats

    def test_unmemoized_config_still_serves(self):
        service = PartitioningService(
            self._fresh_system(), ServiceConfig(memoize=False)
        )
        assert service.engine is None
        responses = service.submit_many(self._trace(10))
        assert len(responses) == 10
        assert service.system.runner.stats.executions >= 10


class TestRunnerSessionStats:
    def test_stats_accumulate_and_reset(self, small_system):
        runner = small_system.runner
        before = runner.stats.executions
        bench = get_benchmark("vec_add")
        inst = bench.make_instance(bench.problem_sizes()[0], seed=0)
        runner.run(bench.request(inst), Partitioning((100, 0, 0)), functional=False)
        assert runner.stats.executions == before + 1
        assert runner.stats.simulated_s > 0
        assert len(runner.stats.device_busy_s) == 3
        closed = runner.reset_stats()
        assert closed.executions == before + 1
        assert runner.stats.executions == 0
