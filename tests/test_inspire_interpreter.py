"""Tests for the reference interpreter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.inspire import (
    FLOAT,
    INT,
    Intent,
    InterpreterError,
    KernelBuilder,
    const,
    run_kernel,
)


def _make_scale_kernel():
    b = KernelBuilder("scale", dim=1)
    x = b.buffer("x", FLOAT, Intent.IN)
    y = b.buffer("y", FLOAT, Intent.OUT)
    s = b.scalar("s", FLOAT)
    n = b.scalar("n", INT)
    gid = b.global_id(0)
    with b.if_(gid < n):
        b.store(y, gid, b.load(x, gid) * s)
    return b.finish()


class TestBasicExecution:
    def test_elementwise_scale(self):
        k = _make_scale_kernel()
        x = np.arange(10, dtype=np.float32)
        y = np.zeros(10, dtype=np.float32)
        run_kernel(k, (10,), {"x": x, "y": y}, {"s": 3.0, "n": 10})
        assert np.allclose(y, 3.0 * x)

    def test_guard_prevents_out_of_range_work(self):
        k = _make_scale_kernel()
        x = np.arange(10, dtype=np.float32)
        y = np.zeros(10, dtype=np.float32)
        run_kernel(k, (10,), {"x": x, "y": y}, {"s": 2.0, "n": 5})
        assert np.allclose(y[:5], 2.0 * x[:5])
        assert np.all(y[5:] == 0)

    def test_offset_range_execution(self):
        k = _make_scale_kernel()
        x = np.arange(10, dtype=np.float32)
        y = np.zeros(10, dtype=np.float32)
        run_kernel(k, (4,), {"x": x, "y": y}, {"s": 2.0, "n": 10}, offset=(3,))
        assert np.all(y[:3] == 0)
        assert np.allclose(y[3:7], 2.0 * x[3:7])
        assert np.all(y[7:] == 0)

    def test_missing_buffer_raises(self):
        k = _make_scale_kernel()
        with pytest.raises(InterpreterError, match="missing buffer"):
            run_kernel(k, (4,), {"x": np.zeros(4, np.float32)}, {"s": 1.0, "n": 4})

    def test_missing_scalar_raises(self):
        k = _make_scale_kernel()
        bufs = {"x": np.zeros(4, np.float32), "y": np.zeros(4, np.float32)}
        with pytest.raises(InterpreterError, match="missing scalar"):
            run_kernel(k, (4,), bufs, {"s": 1.0})

    def test_wrong_dim_raises(self):
        k = _make_scale_kernel()
        bufs = {"x": np.zeros(4, np.float32), "y": np.zeros(4, np.float32)}
        with pytest.raises(InterpreterError, match="1D"):
            run_kernel(k, (2, 2), bufs, {"s": 1.0, "n": 4})

    def test_out_of_bounds_load_raises(self):
        b = KernelBuilder("oob", dim=1)
        x = b.buffer("x", FLOAT, Intent.IN)
        y = b.buffer("y", FLOAT, Intent.OUT)
        gid = b.global_id(0)
        b.store(y, gid, b.load(x, gid + 100))
        k = b.finish()
        bufs = {"x": np.zeros(4, np.float32), "y": np.zeros(4, np.float32)}
        with pytest.raises(InterpreterError, match="out of bounds"):
            run_kernel(k, (4,), bufs, {})


class TestControlFlow:
    def test_for_loop_accumulation(self):
        b = KernelBuilder("sumk", dim=1)
        out = b.buffer("out", FLOAT, Intent.OUT)
        n = b.scalar("n", INT)
        acc = b.let("acc", const(0.0, FLOAT))
        with b.for_("i", 0, n) as i:
            b.assign(acc, acc + i.cast(FLOAT))
        b.store(out, b.global_id(0), acc)
        k = b.finish()
        out = np.zeros(1, np.float32)
        run_kernel(k, (1,), {"out": out}, {"n": 10})
        assert out[0] == pytest.approx(45.0)

    def test_for_loop_with_step(self):
        b = KernelBuilder("step", dim=1)
        out = b.buffer("out", FLOAT, Intent.OUT)
        acc = b.let("acc", const(0.0, FLOAT))
        with b.for_("i", 0, 10, 3):
            b.assign(acc, acc + 1.0)
        b.store(out, 0, acc)
        out = np.zeros(1, np.float32)
        run_kernel(b.finish(), (1,), {"out": out}, {})
        assert out[0] == 4.0  # i = 0, 3, 6, 9

    def test_while_loop(self):
        b = KernelBuilder("halve", dim=1)
        out = b.buffer("out", INT, Intent.OUT)
        n = b.scalar("n", INT)
        v = b.let("v", n + 0)
        steps = b.let("steps", const(0, INT))
        with b.while_(v > 1):
            b.assign(v, v / 2)
            b.assign(steps, steps + 1)
        b.store(out, 0, steps)
        out = np.zeros(1, np.int32)
        run_kernel(b.finish(), (1,), {"out": out}, {"n": 64})
        assert out[0] == 6

    def test_if_else(self):
        b = KernelBuilder("sign", dim=1)
        x = b.buffer("x", FLOAT, Intent.IN)
        y = b.buffer("y", FLOAT, Intent.OUT)
        gid = b.global_id(0)
        with b.if_else(b.load(x, gid) >= 0.0) as (then, otherwise):
            with then:
                b.store(y, gid, 1.0)
            with otherwise:
                b.store(y, gid, -1.0)
        xs = np.array([-2.0, 3.0, 0.0, -0.5], dtype=np.float32)
        ys = np.zeros(4, np.float32)
        run_kernel(b.finish(), (4,), {"x": xs, "y": ys}, {})
        assert list(ys) == [-1.0, 1.0, 1.0, -1.0]

    def test_select(self):
        b = KernelBuilder("sel", dim=1)
        x = b.buffer("x", FLOAT, Intent.IN)
        y = b.buffer("y", FLOAT, Intent.OUT)
        gid = b.global_id(0)
        v = b.load(x, gid)
        b.store(y, gid, b.select(v > 0.5, v, 0.0))
        xs = np.array([0.2, 0.9], dtype=np.float32)
        ys = np.zeros(2, np.float32)
        run_kernel(b.finish(), (2,), {"x": xs, "y": ys}, {})
        assert ys[0] == 0.0 and ys[1] == np.float32(0.9)


class TestAtomicsAndIntrinsics:
    def test_atomic_add(self):
        b = KernelBuilder("count", dim=1)
        out = b.buffer("out", INT, Intent.INOUT)
        b.atomic_add(out, 0, 1)
        out = np.zeros(1, np.int32)
        run_kernel(b.finish(), (37,), {"out": out}, {})
        assert out[0] == 37

    def test_global_size_intrinsic(self):
        b = KernelBuilder("gsz", dim=1)
        out = b.buffer("out", INT, Intent.OUT)
        b.store(out, b.global_id(0), b.global_size(0))
        out = np.zeros(5, np.int32)
        run_kernel(b.finish(), (5,), {"out": out}, {})
        assert np.all(out == 5)

    def test_local_ids(self):
        b = KernelBuilder("lid", dim=1)
        out = b.buffer("out", INT, Intent.OUT)
        b.store(out, b.global_id(0), b.local_id(0) + b.group_id(0) * 100)
        out = np.zeros(8, np.int32)
        run_kernel(b.finish(), (8,), {"out": out}, {}, local_size=(4,))
        assert list(out) == [0, 1, 2, 3, 100, 101, 102, 103]

    def test_2d_execution_order_covers_all(self):
        b = KernelBuilder("grid", dim=2)
        out = b.buffer("out", INT, Intent.OUT)
        w = b.scalar("w", INT)
        col = b.global_id(0)
        row = b.global_id(1)
        b.store(out, row * w + col, row * 10 + col)
        out = np.zeros(12, np.int32)
        run_kernel(b.finish(), (4, 3), {"out": out}, {"w": 4})
        assert out.reshape(3, 4)[2, 3] == 23
        assert out.reshape(3, 4)[0, 0] == 0


class TestNumericSemantics:
    def test_float32_rounding_applied(self):
        b = KernelBuilder("round32", dim=1)
        y = b.buffer("y", FLOAT, Intent.OUT)
        b.store(y, 0, const(0.1, FLOAT) + const(0.2, FLOAT))
        y = np.zeros(1, np.float32)
        run_kernel(b.finish(), (1,), {"y": y}, {})
        assert y[0] == np.float32(np.float32(0.1) + np.float32(0.2))

    def test_integer_division_truncates(self):
        b = KernelBuilder("div", dim=1)
        y = b.buffer("y", INT, Intent.OUT)
        n = b.scalar("n", INT)
        b.store(y, 0, n / 4)
        y = np.zeros(1, np.int32)
        run_kernel(b.finish(), (1,), {"y": y}, {"n": -7})
        assert y[0] == -1  # C semantics: trunc toward zero

    def test_integer_div_by_zero_raises(self):
        b = KernelBuilder("divz", dim=1)
        y = b.buffer("y", INT, Intent.OUT)
        n = b.scalar("n", INT)
        b.store(y, 0, n / (n - n))
        with pytest.raises(InterpreterError):
            run_kernel(b.finish(), (1,), {"y": np.zeros(1, np.int32)}, {"n": 3})

    @given(
        st.floats(min_value=0.01, max_value=100.0),
        st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_math_matches_numpy(self, a, b_val):
        b = KernelBuilder("math", dim=1)
        y = b.buffer("y", FLOAT, Intent.OUT)
        pa = b.scalar("a", FLOAT)
        pb = b.scalar("b", FLOAT)
        b.store(y, 0, b.sqrt(pa) + b.log(pb) * b.exp(-pa / 50.0))
        y = np.zeros(1, np.float32)
        run_kernel(b.finish(), (1,), {"y": y}, {"a": a, "b": b_val})
        a32, b32 = np.float32(a), np.float32(b_val)
        expected = np.float32(np.sqrt(a32)) + np.float32(
            np.float32(np.log(b32))
            * np.float32(np.exp(np.float32(-a32 / np.float32(50.0))))
        )
        assert y[0] == pytest.approx(expected, rel=1e-5)
