"""Tests for the multi-device backend (offset rewriting + codegen)."""

import numpy as np

from repro.compiler import OFFSET_PARAM, compile_kernel, make_offset_kernel
from repro.inspire import INT, Intent, KernelBuilder, run_kernel, validate_kernel


class TestOffsetKernel:
    def test_offset_param_added(self, saxpy_kernel):
        offset = make_offset_kernel(saxpy_kernel)
        assert offset.params[-1].name == OFFSET_PARAM
        assert offset.name == saxpy_kernel.name + "_md"
        validate_kernel(offset)

    def test_offset_semantics_match_subrange(self, saxpy_kernel):
        """Running the offset kernel over [0, c) with offset o must equal
        running the original over global ids [o, o+c)."""
        offset_kernel = make_offset_kernel(saxpy_kernel)
        n = 16
        x = np.arange(n, dtype=np.float32)
        y1 = np.ones(n, dtype=np.float32)
        y2 = np.ones(n, dtype=np.float32)
        # Original: work items 5..11 via interpreter offset.
        run_kernel(
            saxpy_kernel, (6,), {"x": x, "y": y1}, {"a": 3.0, "n": n}, offset=(5,)
        )
        # Multi-device form: plain range + explicit offset argument.
        run_kernel(
            offset_kernel,
            (6,),
            {"x": x, "y": y2},
            {"a": 3.0, "n": n, OFFSET_PARAM: 5},
        )
        assert np.array_equal(y1, y2)

    def test_2d_offsets_last_dim(self):
        b = KernelBuilder("rows", dim=2)
        out = b.buffer("out", INT, Intent.OUT)
        w = b.scalar("w", INT)
        col = b.global_id(0)
        row = b.global_id(1)
        b.store(out, row * w + col, row)
        k = b.finish()
        mk = make_offset_kernel(k)
        out = np.full(12, -1, dtype=np.int32)
        run_kernel(mk, (4, 1), {"out": out}, {"w": 4, OFFSET_PARAM: 2})
        assert list(out.reshape(3, 4)[2]) == [2, 2, 2, 2]
        assert np.all(out.reshape(3, 4)[:2] == -1)


class TestEmission:
    def test_md_source_contains_offset(self, saxpy_kernel):
        compiled = compile_kernel(saxpy_kernel)
        assert OFFSET_PARAM in compiled.program.md_source
        assert f"get_global_id(0) + {OFFSET_PARAM}" in compiled.program.md_source
        assert OFFSET_PARAM not in compiled.program.source

    def test_host_plan_mentions_transfers(self, saxpy_kernel):
        compiled = compile_kernel(saxpy_kernel)
        plan = compiled.program.host_plan
        assert "clEnqueueWriteBuffer" in plan
        assert "clEnqueueNDRangeKernel" in plan
        assert "clEnqueueReadBuffer" in plan

    def test_all_benchmarks_emit(self, benchmarks):
        for bench in benchmarks:
            compiled = bench.compiled()
            assert "__kernel" in compiled.program.md_source
            assert OFFSET_PARAM in compiled.program.md_source


class TestCompileKernel:
    def test_unknown_override_rejected(self, saxpy_kernel):
        import pytest

        from repro.compiler import BufferDistribution

        with pytest.raises(KeyError):
            compile_kernel(saxpy_kernel, {"ghost": BufferDistribution.full()})

    def test_static_features_exposed(self, saxpy_kernel):
        compiled = compile_kernel(saxpy_kernel)
        feats = compiled.static_features()
        assert feats["st_loads"] > 0
        assert compiled.name == "saxpy_t"

    def test_unoptimized_compile(self, saxpy_kernel):
        compiled = compile_kernel(saxpy_kernel, optimize=False)
        assert compiled.kernel == saxpy_kernel
