"""Tests for the workload diversity engine (repro.workloads)."""

import pytest

from repro.benchsuite import get_benchmark
from repro.serving import key_universe, zipf_trace
from repro.workloads import (
    WORKLOAD_FAMILIES,
    DriftEvent,
    WorkloadSpec,
    make_workload,
)


def _keys(programs=("vec_add", "mat_mul", "saxpy"), max_sizes=3):
    return key_universe(
        tuple(get_benchmark(n) for n in programs), max_sizes=max_sizes
    )


def _counts(requests):
    counts: dict[tuple[str, int], int] = {}
    for r in requests:
        counts[r.key] = counts.get(r.key, 0) + 1
    return counts


class TestSpecValidation:
    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="family"):
            WorkloadSpec(family="bursty")

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_requests=-1)
        with pytest.raises(ValueError):
            WorkloadSpec(skew=0.0)
        with pytest.raises(ValueError):
            WorkloadSpec(phases=0)
        with pytest.raises(ValueError):
            WorkloadSpec(burst_every=0)
        with pytest.raises(ValueError):
            WorkloadSpec(burst_share=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(period=1)
        with pytest.raises(ValueError):
            WorkloadSpec(skew_min=-0.1)
        with pytest.raises(ValueError):
            WorkloadSpec(skew_min=2.0, skew_max=1.0)

    def test_burst_and_rate_shape_knobs_rejected(self):
        # Regression: every burst/phase shape knob must be validated at
        # construction, not discovered as a bad array shape mid-trace.
        with pytest.raises(ValueError, match="burst_every"):
            WorkloadSpec(burst_every=-5)
        with pytest.raises(ValueError, match="burst_length"):
            WorkloadSpec(burst_length=0)
        with pytest.raises(ValueError, match="burst_length"):
            WorkloadSpec(burst_length=-1)
        with pytest.raises(ValueError, match="burst_share"):
            WorkloadSpec(burst_share=-0.1)
        with pytest.raises(ValueError, match="burst_rate"):
            WorkloadSpec(burst_rate=0.0)
        with pytest.raises(ValueError, match="burst_rate"):
            WorkloadSpec(burst_rate=-2.0)
        with pytest.raises(ValueError, match="period"):
            WorkloadSpec(period=-3)
        with pytest.raises(ValueError, match="phases"):
            WorkloadSpec(phases=-1)
        with pytest.raises(ValueError, match="rate_rps"):
            WorkloadSpec(rate_rps=0.0)
        # The boundary values stay constructible.
        WorkloadSpec(burst_every=1, burst_length=1, burst_share=0.0)
        WorkloadSpec(burst_share=1.0, period=2, phases=1)

    def test_drift_event_validation(self):
        with pytest.raises(ValueError):
            DriftEvent(at_request=-1, scale=0.5)
        with pytest.raises(ValueError):
            DriftEvent(at_request=0, scale=0.0)

    def test_drift_events_sorted_by_position(self):
        spec = WorkloadSpec(
            drift_events=(
                DriftEvent(at_request=90, scale=2.0),
                DriftEvent(at_request=10, scale=0.5),
            )
        )
        assert [e.at_request for e in spec.drift_events] == [10, 90]

    def test_families_constant_is_exhaustive(self):
        assert set(WORKLOAD_FAMILIES) == {
            "stationary",
            "phase-shift",
            "flash-crowd",
            "diurnal",
            "pipeline",
        }


class TestGenerators:
    def test_empty_key_universe_rejected(self):
        with pytest.raises(ValueError, match="key universe"):
            make_workload(WorkloadSpec(), ())

    def test_stationary_reproduces_zipf_trace(self):
        # Scaling baselines and replay runs keep their exact streams.
        keys = _keys()
        spec = WorkloadSpec(family="stationary", num_requests=64, skew=1.3, seed=9)
        workload = make_workload(spec, keys)
        assert workload.requests == zipf_trace(keys, 64, skew=1.3, seed=9)

    @pytest.mark.parametrize("family", WORKLOAD_FAMILIES)
    def test_every_family_is_deterministic_with_sequential_ids(self, family):
        keys = _keys()
        spec = WorkloadSpec(family=family, num_requests=77, seed=4)
        a = make_workload(spec, keys)
        b = make_workload(spec, keys)
        assert a.requests == b.requests
        assert [r.request_id for r in a.requests] == list(range(77))
        if family == "pipeline":
            # Graph requests: every stage comes from the key universe.
            assert all(
                (node.program, node.size) in keys
                for r in a.requests
                for node in r.graph.nodes
            )
        else:
            assert all(r.key in keys for r in a.requests)

    def test_phase_shift_rotates_the_hot_set(self):
        keys = _keys(max_sizes=4)
        workload = make_workload(
            WorkloadSpec(family="phase-shift", num_requests=300, phases=3, seed=0),
            keys,
        )
        tops = [
            max(_counts(workload.requests[i : i + 100]).items(), key=lambda kv: kv[1])
            for i in (0, 100, 200)
        ]
        # At least one rotation changes which key dominates.
        assert len({key for key, _count in tops}) > 1

    def test_flash_crowd_burst_dominates_its_window(self):
        spec = WorkloadSpec(
            family="flash-crowd",
            num_requests=200,
            burst_every=50,
            burst_length=12,
            burst_share=0.9,
            seed=1,
        )
        workload = make_workload(spec, _keys())
        window = _counts(workload.requests[50:62])
        top_key, top_count = max(window.items(), key=lambda kv: kv[1])
        assert top_count >= 8  # ~90% of a 12-request burst
        # The burst key is a tail key, not the stationary head.
        base_head, _ = max(
            _counts(workload.requests[:50]).items(), key=lambda kv: kv[1]
        )
        assert top_key != base_head

    def test_diurnal_peak_concentrates_traffic(self):
        spec = WorkloadSpec(
            family="diurnal",
            num_requests=2000,
            period=200,
            skew_min=0.05,
            skew_max=3.0,
            seed=2,
        )
        workload = make_workload(spec, _keys(max_sizes=4))
        # Trough windows are the first/last quarter of each cycle;
        # peaks the middle.  Compare top-1 traffic share.
        trough, peak = [], []
        for i, r in enumerate(workload.requests):
            phase = (i % 200) / 200.0
            (peak if 0.25 <= phase < 0.75 else trough).append(r)
        trough_top = max(_counts(trough).values()) / len(trough)
        peak_top = max(_counts(peak).values()) / len(peak)
        assert peak_top > 2 * trough_top

    def test_pipeline_family_emits_graph_requests(self):
        from repro.graphs import STAGE_ROLES
        from repro.serving import GraphServingRequest
        from repro.workloads import stream_requests

        keys = _keys(
            programs=("stencil2d", "hotspot", "reduction", "mat_mul"),
            max_sizes=2,
        )
        spec = WorkloadSpec(family="pipeline", num_requests=50, seed=7)
        workload = make_workload(spec, keys)
        assert len(workload) == 50
        assert all(
            isinstance(r, GraphServingRequest) for r in workload.requests
        )
        # Streaming stays bit-identical to materializing.
        assert tuple(stream_requests(spec, keys)) == workload.requests
        # Chains follow the stage roles: stencil -> reduce -> gemm.
        for r in workload.requests:
            order = r.graph.topological_order()
            programs = [r.graph.node(n).program for n in order]
            assert programs[0] in STAGE_ROLES["stencil"]
            assert programs[1] in STAGE_ROLES["reduce"]
            assert programs[2] in STAGE_ROLES["gemm"]
            assert all(e.nbytes > 0 for e in r.graph.edges)

    def test_pipeline_family_without_role_programs_still_pipelines(self):
        # A universe with no stencil/reduce/gemm programs falls back to
        # consecutive-key chains rather than failing.
        keys = _keys(programs=("vec_add", "saxpy", "triad"), max_sizes=1)
        workload = make_workload(
            WorkloadSpec(family="pipeline", num_requests=10, seed=0), keys
        )
        assert len(workload) == 10
        assert all(len(r.graph.nodes) >= 2 for r in workload.requests)

    def test_items_interleaves_drift_events(self):
        keys = _keys()
        events = (
            DriftEvent(at_request=0, scale=0.5),
            DriftEvent(at_request=3, scale=2.0),
            DriftEvent(at_request=99, scale=0.9),
        )
        workload = make_workload(
            WorkloadSpec(num_requests=5, drift_events=events), keys
        )
        items = list(workload.items())
        assert isinstance(items[0], DriftEvent)
        assert isinstance(items[4], DriftEvent) and items[4].scale == 2.0
        assert isinstance(items[-1], DriftEvent)  # past-the-end event trails
        assert len(items) == 8

    def test_segments_group_batches_between_events(self):
        keys = _keys()
        events = (
            DriftEvent(at_request=2, scale=0.5),
            DriftEvent(at_request=2, scale=0.8),
            DriftEvent(at_request=77, scale=2.0),
        )
        workload = make_workload(
            WorkloadSpec(num_requests=6, drift_events=events), keys
        )
        segments = list(workload.segments())
        assert [len(batch) for _events, batch in segments] == [2, 4, 0]
        assert len(segments[1][0]) == 2  # both events fire before request 2
        assert segments[2][0][0].scale == 2.0
        assert len(workload) == 6


class TestZipfTraceEdgeCases:
    """Edge cases of the underlying Zipf primitive (satellite coverage)."""

    def test_near_zero_skew_is_roughly_uniform(self):
        keys = _keys(max_sizes=3)
        trace = zipf_trace(keys, 3000, skew=1e-6, seed=0)
        counts = _counts(trace)
        assert set(counts) == set(keys)  # every key drawn
        expected = 3000 / len(keys)
        assert max(counts.values()) < 1.5 * expected
        assert min(counts.values()) > 0.5 * expected

    def test_single_key_universe(self):
        keys = (("vec_add", 4096),)
        trace = zipf_trace(keys, 25, skew=2.0, seed=3)
        assert len(trace) == 25
        assert all(r.key == keys[0] for r in trace)
        assert [r.request_id for r in trace] == list(range(25))

    def test_deterministic_per_seed_and_distinct_across_seeds(self):
        keys = _keys()
        assert zipf_trace(keys, 40, seed=11) == zipf_trace(keys, 40, seed=11)
        traces = {zipf_trace(keys, 40, seed=s) for s in range(5)}
        assert len(traces) == 5  # different seeds shuffle differently

    def test_zero_requests_is_empty(self):
        assert zipf_trace(_keys(), 0) == ()
