"""Tests for the task-graph layer (repro.graphs) and its integrations."""

import pytest

from repro.benchsuite import get_benchmark
from repro.core import TrainingConfig, train_system
from repro.energy import EnergyMeter
from repro.engine import SweepEngine
from repro.graphs import (
    GraphPlan,
    GraphPlanner,
    TaskEdge,
    TaskGraph,
    TaskNode,
    chain_universe,
    diamond_graph,
    edge_transfer,
    greedy_plan,
    handoff_nbytes,
    pipeline_chain,
)
from repro.machines import MC1, MC2
from repro.partitioning import Partitioning, partition_space
from repro.runtime import Runner
from repro.serving import (
    EventLoop,
    GraphServingRequest,
    PartitioningService,
    ServiceConfig,
    ServingRequest,
)

#: A transfer-heavy 3-stage chain; co-location beats per-task greed here.
CHAIN_STAGES = [("stencil2d", 256), ("reduction", 65536), ("mat_mul", 160)]


def _chain(scale_bytes=64.0):
    return pipeline_chain(CHAIN_STAGES, scale_bytes=scale_bytes)


def _engine(platform=MC2, noise_sigma=0.0, seed=0):
    return SweepEngine(Runner(platform, noise_sigma=noise_sigma, seed=seed))


def _planner(engine, step_percent=10):
    runner = engine.runner
    idle_w = EnergyMeter(runner.devices).platform_idle_w()
    return GraphPlanner(
        engine.measure, runner.devices, idle_w, step_percent=step_percent
    )


class TestGraphValidation:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="at least one node"):
            TaskGraph(nodes=())

    def test_cycle_rejected(self):
        nodes = (
            TaskNode("a", "vec_add", 4096),
            TaskNode("b", "vec_add", 4096),
            TaskNode("c", "vec_add", 4096),
        )
        edges = (
            TaskEdge("a", "b", 64),
            TaskEdge("b", "c", 64),
            TaskEdge("c", "a", 64),
        )
        with pytest.raises(ValueError, match="cycle"):
            TaskGraph(nodes=nodes, edges=edges)

    def test_two_node_cycle_rejected(self):
        nodes = (TaskNode("a", "vec_add", 64), TaskNode("b", "saxpy", 64))
        with pytest.raises(ValueError, match="cycle"):
            TaskGraph(
                nodes=nodes,
                edges=(TaskEdge("a", "b", 1), TaskEdge("b", "a", 1)),
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate task names"):
            TaskGraph(
                nodes=(TaskNode("a", "vec_add", 64), TaskNode("a", "saxpy", 64))
            )

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            TaskGraph(
                nodes=(TaskNode("a", "vec_add", 64),),
                edges=(TaskEdge("a", "ghost", 1),),
            )

    def test_duplicate_edge_rejected(self):
        nodes = (TaskNode("a", "vec_add", 64), TaskNode("b", "saxpy", 64))
        with pytest.raises(ValueError, match="duplicate edge"):
            TaskGraph(
                nodes=nodes,
                edges=(TaskEdge("a", "b", 1), TaskEdge("a", "b", 2)),
            )

    def test_self_edge_and_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="self-edge"):
            TaskEdge("a", "a", 1)
        with pytest.raises(ValueError, match="negative bytes"):
            TaskEdge("a", "b", -1)

    def test_node_validation(self):
        with pytest.raises(ValueError):
            TaskNode("", "vec_add", 64)
        with pytest.raises(ValueError):
            TaskNode("a", "", 64)
        with pytest.raises(ValueError):
            TaskNode("a", "vec_add", 0)

    def test_chain_builder_shape_checks(self):
        with pytest.raises(ValueError, match="at least one stage"):
            TaskGraph.chain([], 64)
        with pytest.raises(ValueError, match="handoff byte counts"):
            TaskGraph.chain([("vec_add", 64), ("saxpy", 64)], [1, 2])


class TestTopology:
    def test_topological_order_respects_edges_and_is_deterministic(self):
        graph = diamond_graph(
            ("stencil2d", 256),
            [("reduction", 65536), ("dot_product", 65536)],
            ("mat_mul", 160),
        )
        order = graph.topological_order()
        assert order == graph.topological_order()
        pos = {name: i for i, name in enumerate(order)}
        for edge in graph.edges:
            assert pos[edge.src] < pos[edge.dst]

    def test_diamond_join_waits_for_both_branches(self):
        graph = diamond_graph(
            ("stencil2d", 256),
            [("reduction", 65536), ("dot_product", 65536)],
            ("mat_mul", 160),
            scale_bytes=64.0,
        )
        assert set(graph.predecessors("sink")) == {"b0", "b1"}
        engine = _engine()
        even = {n.name: Partitioning((34, 33, 33)) for n in graph.nodes}
        run = engine.measure_graph(graph, even)
        finishes = {s.node: s.finish_s for s in run.schedule}
        starts = {s.node: s.start_s for s in run.schedule}
        assert starts["sink"] >= max(finishes["b0"], finishes["b1"])
        assert run.median_s == finishes["sink"]

    def test_signature_label_distinguishes_graphs(self):
        a = _chain(scale_bytes=1.0)
        b = _chain(scale_bytes=2.0)  # same stages, different edge bytes
        assert a.signature_label != b.signature_label
        assert a.signature_label == _chain(scale_bytes=1.0).signature_label
        assert a.total_size == sum(size for _, size in CHAIN_STAGES)


class TestEdgePricing:
    def test_colocated_transfer_is_free(self):
        devices = Runner(MC2).devices
        p = Partitioning((40, 30, 30))
        seconds, joules = edge_transfer(devices, 1 << 20, p, p)
        assert seconds == 0.0 and joules == 0.0

    def test_zero_bytes_are_free(self):
        devices = Runner(MC2).devices
        a, b = Partitioning((100, 0, 0)), Partitioning((0, 100, 0))
        assert edge_transfer(devices, 0, a, b) == (0.0, 0.0)

    def test_host_resident_handoff_is_free(self):
        # Device 0 is the host-resident CPU on both machines: moving a
        # tensor within host memory prices to zero, like PCIe transfers.
        devices = Runner(MC2).devices
        p = Partitioning((100, 0, 0))
        assert edge_transfer(devices, 1 << 20, p, p) == (0.0, 0.0)

    def test_cross_gpu_handoff_costs_time_and_joules(self):
        devices = Runner(MC2).devices
        seconds, joules = edge_transfer(
            devices, 1 << 22, Partitioning((0, 100, 0)), Partitioning((0, 0, 100))
        )
        assert seconds > 0.0
        assert joules > 0.0
        # Must price like the single-kernel PCIe path: down + up.
        from repro.ocl import TransferDirection

        d2h = devices[1].cost_model.transfer_time_s(
            1 << 22, TransferDirection.DEVICE_TO_HOST
        )
        h2d = devices[2].cost_model.transfer_time_s(
            1 << 22, TransferDirection.HOST_TO_DEVICE
        )
        assert seconds == pytest.approx(d2h + h2d)

    def test_partial_overlap_prices_only_the_moved_share(self):
        devices = Runner(MC2).devices
        full_s, _ = edge_transfer(
            devices, 1 << 22, Partitioning((0, 100, 0)), Partitioning((0, 0, 100))
        )
        half_s, _ = edge_transfer(
            devices, 1 << 22, Partitioning((0, 100, 0)), Partitioning((0, 50, 50))
        )
        assert 0.0 < half_s < full_s


class TestBuilders:
    def test_handoff_bytes_are_output_sized(self):
        bench = get_benchmark("vec_add")
        size = bench.problem_sizes()[0]
        instance = bench.make_instance(size, seed=0)
        expected = sum(
            int(instance.arrays[n].nbytes) for n in instance.output_names
        )
        assert handoff_nbytes("vec_add", size) == max(expected, 4)

    def test_chain_universe_role_chains_are_distinct(self):
        keys = [
            ("stencil2d", 256),
            ("hotspot", 256),
            ("reduction", 65536),
            ("mat_mul", 160),
            ("atax", 256),
        ]
        graphs = chain_universe(keys, max_chains=4)
        assert len(graphs) >= 2
        assert len({g.signature for g in graphs}) == len(graphs)

    def test_chain_universe_fallback_for_roleless_keys(self):
        graphs = chain_universe([("vec_add", 4096), ("saxpy", 4096)])
        assert graphs
        assert all(len(g.nodes) >= 2 for g in graphs)

    def test_builder_argument_validation(self):
        with pytest.raises(ValueError, match="scale_bytes"):
            pipeline_chain(CHAIN_STAGES, scale_bytes=0.0)
        with pytest.raises(ValueError, match="at least one branch"):
            diamond_graph(("vec_add", 64), [], ("saxpy", 64))
        with pytest.raises(ValueError, match="max_chains"):
            chain_universe([("vec_add", 64)], max_chains=0)
        with pytest.raises(ValueError, match="empty key universe"):
            chain_universe([])


class TestSingleNodeEquivalence:
    """The refactor's safety property: one node == one kernel, bit for bit."""

    @pytest.mark.parametrize("noise_sigma", [0.0, 0.02])
    def test_engine_graph_path_matches_single_kernel(self, noise_sigma):
        bench = get_benchmark("mat_mul")
        graph = TaskGraph.single("mat_mul", 160)
        p = Partitioning((40, 30, 30))

        e_graph = _engine(noise_sigma=noise_sigma, seed=7)
        run = e_graph.measure_graph(graph, {"t0": p}, repetitions=3)

        e_kernel = _engine(noise_sigma=noise_sigma, seed=7)
        request = bench.request(bench.make_instance(160, seed=0))
        single = e_kernel.measure(request, p, repetitions=3)

        assert run.median_s == single.median_s
        assert run.energy_j == single.energy_j
        assert run.transfer_s == 0.0
        assert run.critical_path == ("t0",)

    def test_unmemoized_runner_path_matches_engine_path(self):
        graph = TaskGraph.single("reduction", 65536)
        p = Partitioning((60, 20, 20))
        run_engine = _engine(noise_sigma=0.01, seed=3).measure_graph(
            graph, {"t0": p}, repetitions=2
        )
        run_raw = Runner(MC2, noise_sigma=0.01, seed=3).run_graph(
            graph, {"t0": p}, repetitions=2
        )
        assert run_raw.median_s == run_engine.median_s
        assert run_raw.energy_j == run_engine.energy_j

    def test_graph_rerun_is_bit_identical(self):
        # Noise-free: re-measuring the same plan on the same engine is
        # exact.  Noisy runs re-sample per measurement (matching the
        # single-kernel path), so there determinism means fresh engines
        # with the same seed reproduce the same numbers.
        graph = _chain()
        plan = {n.name: Partitioning((34, 33, 33)) for n in graph.nodes}
        engine = _engine()
        a = engine.measure_graph(graph, plan)
        b = engine.measure_graph(graph, plan)
        assert (a.median_s, a.energy_j) == (b.median_s, b.energy_j)
        noisy_a = _engine(noise_sigma=0.02, seed=11).measure_graph(graph, plan)
        noisy_b = _engine(noise_sigma=0.02, seed=11).measure_graph(graph, plan)
        assert (noisy_a.median_s, noisy_a.energy_j) == (
            noisy_b.median_s,
            noisy_b.energy_j,
        )


class TestComposition:
    def test_chain_serializes_and_prices_transfers(self):
        engine = _engine()
        graph = _chain()
        cpu, gpu = Partitioning((100, 0, 0)), Partitioning((0, 100, 0))
        run = engine.measure_graph(
            graph, {"t0": cpu, "t1": gpu, "t2": cpu}
        )
        assert run.transfer_s > 0.0
        assert len(run.transfers) == 2
        order = [s.node for s in run.schedule]
        assert order == list(graph.topological_order())
        finishes = {s.node: s.finish_s for s in run.schedule}
        for edge in graph.edges:
            start = next(s.start_s for s in run.schedule if s.node == edge.dst)
            assert start >= finishes[edge.src]
        assert run.energy_j > 0.0
        assert run.critical_path == ("t0", "t1", "t2")

    def test_missing_plan_entry_raises(self):
        engine = _engine()
        graph = _chain()
        with pytest.raises(ValueError, match="plan misses task"):
            engine.measure_graph(graph, {"t0": Partitioning((100, 0, 0))})

    def test_graph_energy_includes_transfers_and_stalls(self):
        engine = _engine()
        graph = _chain()
        plan = {
            "t0": Partitioning((100, 0, 0)),
            "t1": Partitioning((0, 100, 0)),
            "t2": Partitioning((0, 0, 100)),
        }
        run = engine.measure_graph(graph, plan)
        node_j = sum(r.energy_j for r in run.node_runs.values())
        assert run.transfer_j > 0.0
        assert run.stall_j >= 0.0
        assert run.energy_j == pytest.approx(
            node_j + run.transfer_j + run.stall_j
        )


class TestPlanner:
    def test_cosearch_never_worse_and_strictly_beats_greedy_here(self):
        engine = _engine()
        graph = _chain()
        requests = engine.graph_requests(graph)
        planner = _planner(engine)
        greedy, _ = greedy_plan(
            graph, requests, engine.measure, planner.space
        )
        greedy_run = engine.measure_graph(graph, greedy)
        plan, run = planner.search(graph, requests)
        assert run.median_s < greedy_run.median_s
        assert planner.stats.evaluated > 0
        assert planner.stats.pruned > 0
        assert planner.stats.improvements >= 1

    def test_cosearch_is_deterministic(self):
        runs = []
        for _ in range(2):
            engine = _engine()
            planner = _planner(engine)
            graph = _chain()
            plan, run = planner.search(graph, engine.graph_requests(graph))
            runs.append((plan, run.median_s, run.energy_j))
        assert runs[0] == runs[1]

    def test_plan_round_trip_and_lookup(self):
        plan = GraphPlan.from_dict(
            {"b": Partitioning((100, 0, 0)), "a": Partitioning((0, 100, 0))}
        )
        assert plan.as_dict()["a"] == Partitioning((0, 100, 0))
        assert plan.partitioning_for("b") == Partitioning((100, 0, 0))
        with pytest.raises(KeyError):
            plan.partitioning_for("ghost")
        assert plan.labels() == {"a": "0/100/0", "b": "100/0/0"}

    def test_greedy_shares_sweeps_across_same_key_nodes(self):
        engine = _engine()
        graph = TaskGraph.chain(
            [("vec_add", 4096), ("vec_add", 4096), ("vec_add", 4096)], 64
        )
        space = partition_space(3, 10)
        from repro.graphs.planner import PlannerStats

        stats = PlannerStats()
        greedy_plan(
            graph, engine.graph_requests(graph), engine.measure, space,
            stats=stats,
        )
        # Three nodes, one (program, size): one sweep, not three.
        assert stats.standalone_points == len(space)


def _tiny_service(**config_kwargs):
    system = train_system(
        MC2,
        tuple(get_benchmark(n) for n in ("vec_add", "mat_mul", "reduction")),
        config=TrainingConfig(repetitions=1, max_sizes=2),
    )
    return PartitioningService(system, ServiceConfig(**config_kwargs))


@pytest.fixture(scope="module")
def graph_service():
    return _tiny_service()


@pytest.fixture(scope="module")
def served_chain():
    return pipeline_chain(
        [("vec_add", 4096), ("reduction", 4096), ("mat_mul", 64)],
        scale_bytes=32.0,
    )


class TestGraphServing:
    def test_cold_miss_cosearches_then_hits(self, graph_service, served_chain):
        first = graph_service.submit_graph(
            GraphServingRequest(0, served_chain)
        )
        second = graph_service.submit_graph(
            GraphServingRequest(1, served_chain)
        )
        assert not first.cache_hit
        assert second.cache_hit
        assert graph_service.stats.graph_requests == 2
        assert graph_service.stats.graph_cosearches == 1
        assert second.plan == first.plan
        assert second.measured_s <= first.measured_s
        assert first.critical_path and first.run is not None
        assert first.energy_j > 0.0 and first.power_w > 0.0

    def test_graph_traffic_feeds_the_kernel_database(
        self, graph_service, served_chain
    ):
        db = graph_service.system.database
        for node in served_chain.nodes:
            record = db.record_for(MC2.name, node.program, node.size)
            assert record is not None
            labels = set(record.timings)
            plan_label = graph_service.submit_graph(
                GraphServingRequest(99, served_chain)
            ).plan.partitioning_for(node.name).label
            assert plan_label in labels

    def test_unmemoized_service_matches_memoized_bits(self, served_chain):
        responses = {}
        for memoize in (True, False):
            service = _tiny_service(memoize=memoize)
            r = service.submit_graph(GraphServingRequest(0, served_chain))
            responses[memoize] = (r.measured_s, r.energy_j, r.plan)
        assert responses[True] == responses[False]

    def test_eventloop_serves_mixed_kernel_and_graph_traffic(
        self, served_chain
    ):
        service = _tiny_service()
        loop = EventLoop.for_service(service)
        arrivals = [
            (0.0, ServingRequest(0, "vec_add", 4096)),
            (0.001, GraphServingRequest(1, served_chain)),
            (0.002, ServingRequest(2, "mat_mul", 64)),
            (0.003, GraphServingRequest(3, served_chain)),
        ]
        stats = loop.run(arrivals)
        assert stats.arrivals == 4
        assert stats.completed == 4
        assert stats.failed == 0
        assert service.stats.graph_requests == 2
        assert service.stats.requests == 4
